"""Domain scenario: portable video cross-fade (the dissolve kernels).

The paper's motivating kernel family: blending two frames with a moving
weight, in both 8-bit (fixed-point, widening multiply) and float pixel
formats.  One vectorized bytecode serves an x86 desktop (SSE), a PowerPC
set-top box (AltiVec), and an ARM handheld (NEON, where the widening
multiply is emulated by a library call until the backend matures —
§V-B's dissolve note).

Run:  python examples/image_dissolve.py
"""

import numpy as np

from repro import (
    ArrayBuffer,
    MonoJIT,
    VM,
    compile_source,
    decode_module,
    encode_module,
    get_target,
    split_config,
    vectorize_module,
)

SOURCE = """
void dissolve_s8(int n, int w, char a[], char b[], char out[]) {
    for (int i = 0; i < n; i++) {
        out[i] = (char)(((short)a[i] * (short)w
                       + (short)b[i] * (short)(16 - w)) >> 4);
    }
}

void dissolve_fp(int n, float w, float a[], float b[], float out[]) {
    for (int i = 0; i < n; i++) {
        out[i] = a[i] * w + b[i] * (1.0 - w);
    }
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    blob = encode_module(vectorize_module(module, split_config()))
    print(f"dissolve bytecode: {len(blob)} bytes (both pixel formats)\n")

    n = 2048  # one scanline tile
    rng = np.random.default_rng(7)
    frame_a8 = rng.integers(-100, 100, n).astype(np.int8)
    frame_b8 = rng.integers(-100, 100, n).astype(np.int8)
    frame_af = rng.random(n).astype(np.float32)
    frame_bf = rng.random(n).astype(np.float32)

    print(f"{'device':10s} {'s8 cyc':>9s} {'fp cyc':>9s}  notes")
    for device in ("sse", "altivec", "neon", "scalar"):
        target = get_target(device)
        decoded = decode_module(blob)
        jit = MonoJIT()
        s8 = jit.compile(decoded["dissolve_s8"], target)
        fp = jit.compile(decoded["dissolve_fp"], target)
        uses_library = any(
            ins.op == "call_lib" for ins in s8.mfunc.instrs
        )

        i8 = decoded["dissolve_s8"].find_array("a").elem
        f32 = decoded["dissolve_fp"].find_array("a").elem
        bufs8 = {
            "a": ArrayBuffer(i8, n, data=frame_a8),
            "b": ArrayBuffer(i8, n, data=frame_b8),
            "out": ArrayBuffer(i8, n),
        }
        r8 = VM(target).run(s8.mfunc, {"n": n, "w": 5}, bufs8)
        expect8 = (
            (frame_a8.astype(np.int16) * 5 + frame_b8.astype(np.int16) * 11)
            >> 4
        ).astype(np.int8)
        assert np.array_equal(bufs8["out"].read_elements(), expect8)

        bufsf = {
            "a": ArrayBuffer(f32, n, data=frame_af),
            "b": ArrayBuffer(f32, n, data=frame_bf),
            "out": ArrayBuffer(f32, n),
        }
        rf = VM(target).run(fp.mfunc, {"n": n, "w": 0.3}, bufsf)
        expectf = frame_af * np.float32(0.3) + frame_bf * np.float32(0.7)
        assert np.allclose(bufsf["out"].read_elements(), expectf, rtol=1e-6)

        note = "widen_mult via library fallback" if uses_library else ""
        print(f"{device:10s} {r8.cycles:9.0f} {rf.cycles:9.0f}  {note}")
    print("\nPixel-exact everywhere; NEON pays a library toll for the "
          "widening multiply, exactly like the paper's immature backend.")


if __name__ == "__main__":
    main()
