"""Adaptive recompilation: the paper's §VII future work in action.

A JIT-managed runtime executes a kernel from portable bytecode, watches the
arguments it is actually called with, and — once a call shape gets hot —
recompiles a specialized version with those scalars bound to constants.
The optimizing JIT then folds the entire split-layer prologue (bounds,
peel counts, guards) and, for VF-divisible trip counts, deletes the
epilogue loop outright.

Run:  python examples/adaptive_jit.py
"""

from collections import Counter

import numpy as np

from repro import (
    ArrayBuffer,
    OptimizingJIT,
    VM,
    compile_source,
    get_target,
    specialize_scalars,
    split_config,
    vectorize_function,
)

SOURCE = """
float fir_energy(int n, float x[]) {
    float e = 0;
    for (int i = 0; i < n; i++) {
        e += x[i + 2] * x[i];
    }
    return e;
}
"""

HOT_THRESHOLD = 3


class AdaptiveRuntime:
    """A miniature method-JIT manager over the split bytecode."""

    def __init__(self, bytecode_fn, target) -> None:
        self.generic_fn = bytecode_fn
        self.target = target
        self.jit = OptimizingJIT()
        self.generic = self.jit.compile(bytecode_fn, target)
        self.specialized = {}  # n -> CompiledKernel
        self.calls = Counter()
        self.recompilations = 0

    def call(self, n: int, x: np.ndarray) -> tuple[float, float, str]:
        self.calls[n] += 1
        compiled, args, tier = self.generic, {"n": n}, "generic"
        if n in self.specialized:
            compiled, args, tier = self.specialized[n], {}, "specialized"
        elif self.calls[n] == HOT_THRESHOLD:
            spec_fn = specialize_scalars(self.generic_fn, {"n": n})
            self.specialized[n] = self.jit.compile(spec_fn, self.target)
            self.recompilations += 1
            compiled, args, tier = self.specialized[n], {}, "specialized"
        elem = self.generic_fn.find_array("x").elem
        bufs = {"x": ArrayBuffer(elem, n + 2, data=x)}
        res = VM(self.target).run(compiled.mfunc, args, bufs)
        return float(res.value), res.cycles, tier


def main() -> None:
    module = compile_source(SOURCE)
    bytecode = vectorize_function(module["fir_energy"], split_config())
    runtime = AdaptiveRuntime(bytecode, get_target("sse"))

    rng = np.random.default_rng(0)
    workload = [512] * 6 + [100] * 2 + [512] * 4  # one hot shape, one cold
    print(f"{'call':>4s} {'n':>5s} {'tier':12s} {'cycles':>8s}")
    generic_hot = specialized_hot = None
    for k, n in enumerate(workload):
        x = rng.standard_normal(n + 2).astype(np.float32)
        value, cycles, tier = runtime.call(n, x)
        expect = float((x[2:].astype(np.float64) * x[:-2].astype(np.float64)).sum())
        assert np.isclose(value, expect, rtol=1e-3)
        if n == 512:
            if tier == "generic":
                generic_hot = cycles
            else:
                specialized_hot = cycles
        print(f"{k:4d} {n:5d} {tier:12s} {cycles:8.0f}")
    gain = generic_hot / specialized_hot
    print(
        f"\nrecompilations: {runtime.recompilations}; hot-shape gain after "
        f"specialization: {gain:.2f}x (prologue folded, epilogue deleted — "
        "n=512 divides VF)"
    )
    assert gain > 1.0


if __name__ == "__main__":
    main()
