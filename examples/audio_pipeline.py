"""Domain scenario: a portable audio-processing pipeline.

A DSP vendor ships *one* bytecode blob for a two-stage pipeline —
channel mixing (the SLP-vectorized mix_streams pattern) followed by a
FIR low-pass (a dot-product reduction) — and the device-side JIT
specializes it for whatever SIMD the handset has: a 128-bit SSE-class
DSP, an AltiVec-class core, or a 64-bit-NEON phone.

This is exactly the deployment story of the paper's introduction:
"virtual machines are becoming ubiquitous ... JIT compilation technology
holds the promise of efficiently supporting diverse architectures".

Run:  python examples/audio_pipeline.py
"""

import numpy as np

from repro import (
    ArrayBuffer,
    MonoJIT,
    VM,
    compile_source,
    decode_module,
    encode_module,
    get_target,
    split_config,
    vectorize_module,
)

PIPELINE_SOURCE = """
// Stage 1: mix four interleaved channels into a gain-corrected frame.
void mix(int frames, short in[], short mixed[]) {
    for (int i = 0; i < frames; i++) {
        mixed[4*i + 0] = (short)((in[4*i + 0] * 11) >> 4);
        mixed[4*i + 1] = (short)((in[4*i + 1] * 13) >> 4);
        mixed[4*i + 2] = (short)((in[4*i + 2] * 7) >> 4);
        mixed[4*i + 3] = (short)((in[4*i + 3] * 9) >> 4);
    }
}

// Stage 2: 4-tap FIR energy metric over the mixed stream (dot-product).
int fir_energy(int n, short x[], short taps[]) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc += (int)x[i] * (int)taps[i & 3];
    }
    return acc;
}
"""


def main() -> None:
    # Vendor side: compile + auto-vectorize once, ship the bytecode.
    module = compile_source(PIPELINE_SOURCE)
    blob = encode_module(vectorize_module(module, split_config()))
    print(f"shipped pipeline bytecode: {len(blob)} bytes")

    frames = 512
    rng = np.random.default_rng(11)
    stream = rng.integers(-2000, 2000, 4 * frames).astype(np.int16)
    taps = np.array([3, 5, 5, 3] * frames, np.int16)

    gains = np.array([11, 13, 7, 9], np.int16)
    mixed_ref = ((stream.reshape(-1, 4) * gains) >> 4).astype(np.int16).ravel()

    # Device side: decode + JIT for whatever SIMD this device has.
    for device in ("sse", "altivec", "neon", "scalar"):
        target = get_target(device)
        decoded = decode_module(blob)
        jit = MonoJIT()
        mix_ck = jit.compile(decoded["mix"], target)
        fir_ck = jit.compile(decoded["fir_energy"], target)

        i16 = decoded["mix"].find_array("in").elem
        bufs = {
            "in": ArrayBuffer(i16, 4 * frames, data=stream),
            "mixed": ArrayBuffer(i16, 4 * frames),
        }
        vm = VM(target)
        r1 = vm.run(mix_ck.mfunc, {"frames": frames}, bufs)
        mixed = bufs["mixed"].read_elements()
        assert np.array_equal(mixed, mixed_ref), device

        bufs2 = {
            "x": ArrayBuffer(i16, 4 * frames, data=mixed),
            "taps": ArrayBuffer(i16, 4 * frames, data=taps),
        }
        r2 = vm.run(fir_ck.mfunc, {"n": 4 * frames}, bufs2)
        expected = int(
            (mixed.astype(np.int32) * taps.astype(np.int32)).sum()
        )
        assert int(r2.value) == expected, device
        print(
            f"{device:8s} mix={r1.cycles:7.0f} cyc  fir={r2.cycles:7.0f} cyc  "
            f"energy={int(r2.value)}"
        )
    print("\nBit-identical results on every device, from one blob.")


if __name__ == "__main__":
    main()
