"""The paper's running example (Figures 2 and 3), end to end.

Takes the scalar sum-reduction over a misaligned stream::

    float sum = 0;
    for (i = 0; i < n; i++) sum += a[i + 2];

prints the *vectorized bytecode* the offline stage produces (the analogue of
Figure 3a: get_rt / align_load / realign_load with mis=8 mod=32 hints, the
reduction idioms, loop_bound, and the version guard), then shows how each
online target lowers the realign_load — the four translation schemes of
§III-C:

* AltiVec: explicit realignment (lvsr + floor-aligned loads + vperm, with
  the cross-iteration ``va = vb`` reuse);
* SSE: implicit realignment (one misaligned load; chain dropped);
* NEON: VF=2 and, since mis=8 is divisible by VS=8, an *aligned* load;
* scalar: VF=1, the loop_bound collapse leaves one scalar loop.

The whole flow goes through the one-call :class:`repro.Pipeline` facade
(docs/api.md): ``compile`` for the offline view, ``run`` per target.

Run:  python examples/run_everywhere.py
"""

import numpy as np

from repro import Pipeline, get_target
from repro.ir import print_function

SOURCE = """
float sum_stream(int n, float a[]) {
    float sum = 0;
    for (int i = 0; i < n; i++) {
        sum += a[i + 2];
    }
    return sum;
}
"""


def main() -> None:
    offline = Pipeline(target="sse").compile(SOURCE)

    print("=" * 72)
    print("Vectorized bytecode (compare with the paper's Figure 3a)")
    print("=" * 72)
    print(print_function(offline.vector_ir))

    n = 203
    rng = np.random.default_rng(0)
    a = rng.standard_normal(n + 4).astype(np.float32)
    expected = float(a[2 : n + 2].sum())
    elem = offline.scalar_ir.find_array("a").elem

    print()
    print("=" * 72)
    print("Per-target lowering of the same bytecode (§III-C)")
    print("=" * 72)
    for name in ("altivec", "sse", "neon", "scalar"):
        arts = Pipeline(target=name).run(SOURCE, {"n": n}, {"a": a})
        assert np.isclose(float(arts.value), expected, rtol=1e-4)
        ops: dict[str, int] = {}
        for ins in arts.compiled.mfunc.instrs:
            if ins.op in ("vperm", "lvsr", "vload_fa", "vload_u", "vload_a",
                          "load"):
                ops[ins.op] = ops.get(ins.op, 0) + 1
        vf = get_target(name).vf(elem)
        scheme = (
            "explicit realignment (vperm)"
            if ops.get("vperm")
            else "misaligned load"
            if ops.get("vload_u")
            else "aligned load"
            if ops.get("vload_a")
            else "scalarized"
        )
        print(
            f"{name:8s} VF={vf}  scheme: {scheme:30s} "
            f"mem ops in code: {ops}  cycles={arts.cycles:.0f}"
        )
    print("\nSame bytecode, four different machine-code shapes — "
          "'auto-vectorize once, run everywhere'.")


if __name__ == "__main__":
    main()
