"""The paper's running example (Figures 2 and 3), end to end.

Takes the scalar sum-reduction over a misaligned stream::

    float sum = 0;
    for (i = 0; i < n; i++) sum += a[i + 2];

prints the *vectorized bytecode* the offline stage produces (the analogue of
Figure 3a: get_rt / align_load / realign_load with mis=8 mod=32 hints, the
reduction idioms, loop_bound, and the version guard), then shows how each
online target lowers the realign_load — the four translation schemes of
§III-C:

* AltiVec: explicit realignment (lvsr + floor-aligned loads + vperm, with
  the cross-iteration ``va = vb`` reuse);
* SSE: implicit realignment (one misaligned load; chain dropped);
* NEON: VF=2 and, since mis=8 is divisible by VS=8, an *aligned* load;
* scalar: VF=1, the loop_bound collapse leaves one scalar loop.

Run:  python examples/run_everywhere.py
"""

import numpy as np

from repro import (
    ArrayBuffer,
    OptimizingJIT,
    VM,
    compile_source,
    get_target,
    split_config,
    vectorize_function,
)
from repro.ir import print_function

SOURCE = """
float sum_stream(int n, float a[]) {
    float sum = 0;
    for (int i = 0; i < n; i++) {
        sum += a[i + 2];
    }
    return sum;
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    scalar_ir = module["sum_stream"]
    vec_ir = vectorize_function(scalar_ir, split_config())

    print("=" * 72)
    print("Vectorized bytecode (compare with the paper's Figure 3a)")
    print("=" * 72)
    print(print_function(vec_ir))

    n = 203
    rng = np.random.default_rng(0)
    a = rng.standard_normal(n + 4).astype(np.float32)
    expected = float(a[2 : n + 2].sum())

    print()
    print("=" * 72)
    print("Per-target lowering of the same bytecode (§III-C)")
    print("=" * 72)
    for name in ("altivec", "sse", "neon", "scalar"):
        target = get_target(name)
        compiled = OptimizingJIT().compile(vec_ir, target)
        ops = {}
        for ins in compiled.mfunc.instrs:
            if ins.op in ("vperm", "lvsr", "vload_fa", "vload_u", "vload_a",
                          "load"):
                ops[ins.op] = ops.get(ins.op, 0) + 1
        bufs = {"a": ArrayBuffer(scalar_ir.find_array("a").elem, n + 4, data=a)}
        res = VM(target).run(compiled.mfunc, {"n": n}, bufs)
        assert np.isclose(float(res.value), expected, rtol=1e-4)
        vf = target.vf(scalar_ir.find_array("a").elem)
        scheme = (
            "explicit realignment (vperm)"
            if ops.get("vperm")
            else "misaligned load"
            if ops.get("vload_u")
            else "aligned load"
            if ops.get("vload_a")
            else "scalarized"
        )
        print(
            f"{name:8s} VF={vf}  scheme: {scheme:30s} "
            f"mem ops in code: {ops}  cycles={res.cycles:.0f}"
        )
    print("\nSame bytecode, four different machine-code shapes — "
          "'auto-vectorize once, run everywhere'.")


if __name__ == "__main__":
    main()
