"""Quickstart: auto-vectorize once, run everywhere — via the facade.

Compiles a saxpy kernel from VaporC source with the one-call
:class:`repro.Pipeline` API: auto-vectorize *once* into portable
vectorized bytecode, then run that same bytecode on four different SIMD
targets (and a SIMD-less one), printing the speedup each JIT extracts.
Finally records one traced run with :mod:`repro.obs` to show the
five-phase span taxonomy (see docs/observability.md).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Pipeline, get_target, obs

SOURCE = """
void saxpy(int n, float alpha, float x[n], float y[n]) {
    for (int i = 0; i < n; i++) {
        y[i] = alpha * x[i] + y[i];
    }
}
"""


def main() -> None:
    n = 1000
    rng = np.random.default_rng(42)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)
    expected = 2.5 * x + y
    args = {"n": n, "alpha": 2.5}
    arrays = {"x": x, "y": y}

    # --- offline stage: compile and auto-vectorize once ------------------
    # Pipeline.compile runs frontend -> vectorize -> encode -> JIT; the
    # .vbc blob it produces is the *portable* artifact every target shares.
    arts = Pipeline(target="sse", compiler="mono").compile(SOURCE)
    print(f"portable vectorized bytecode: {len(arts.bytecode)} bytes\n")
    elem = arts.scalar_ir.find_array("x").elem

    # --- online stage: JIT the same bytecode for each machine -------------
    print(f"{'target':10s} {'VF':>3s} {'vector cyc':>11s} "
          f"{'scalar cyc':>11s} {'speedup':>8s}")
    for name in ("sse", "altivec", "neon", "avx", "scalar"):
        vec = Pipeline(target=name, compiler="mono").run(
            SOURCE, args, arrays
        )
        scal = Pipeline(target=name, compiler="mono", vectorize=False).run(
            SOURCE, args, arrays
        )
        for arts_i in (vec, scal):
            got = arts_i.arrays["y"].read_elements()
            assert np.allclose(got, expected, rtol=1e-5)
        vf = get_target(name).vf(elem)
        print(
            f"{name:10s} {vf:3d} {vec.cycles:11.0f} {scal.cycles:11.0f} "
            f"{scal.cycles / vec.cycles:7.2f}x"
        )
    print("\nOne bytecode; every target got its own best code. "
          "(scalar = no SIMD: the loop_bound idiom collapses the "
          "vectorized structure back to a single scalar loop.)")

    # --- one traced run: the five-phase observability spine ---------------
    with obs.recording() as ob:
        Pipeline(target="sse").run(SOURCE, args, arrays)
    names = [s.name for s in ob.spans() if s.phase in obs.PHASES]
    print(f"\ntraced one run: phases {' -> '.join(names)} "
          "(export with ob.write_trace / render with `repro trace`)")


if __name__ == "__main__":
    main()
