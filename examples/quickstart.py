"""Quickstart: auto-vectorize once, run everywhere.

Compiles a saxpy kernel from VaporC source, auto-vectorizes it *once* into
portable vectorized bytecode, then runs that same bytecode on four different
SIMD targets (and a SIMD-less one), printing the speedup each JIT extracts.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ArrayBuffer,
    MonoJIT,
    VM,
    compile_source,
    decode_function,
    encode_function,
    get_target,
    split_config,
    vectorize_function,
)

SOURCE = """
void saxpy(int n, float alpha, float x[n], float y[n]) {
    for (int i = 0; i < n; i++) {
        y[i] = alpha * x[i] + y[i];
    }
}
"""


def main() -> None:
    # --- offline stage: compile and auto-vectorize once ------------------
    module = compile_source(SOURCE)
    scalar_ir = module["saxpy"]
    bytecode = encode_function(vectorize_function(scalar_ir, split_config()))
    print(f"portable vectorized bytecode: {len(bytecode)} bytes\n")

    # --- online stage: JIT the same bytecode for each machine -------------
    n = 1000
    rng = np.random.default_rng(42)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)
    expected = 2.5 * x + y

    print(f"{'target':10s} {'VF':>3s} {'vector cyc':>11s} "
          f"{'scalar cyc':>11s} {'speedup':>8s}")
    for name in ("sse", "altivec", "neon", "avx", "scalar"):
        target = get_target(name)
        jit = MonoJIT()
        vec_fn = decode_function(bytecode)
        compiled = jit.compile(vec_fn, target)
        compiled_scalar = jit.compile(scalar_ir, target)

        def run(ck):
            bufs = {
                "x": ArrayBuffer(scalar_ir.find_array("x").elem, n, data=x),
                "y": ArrayBuffer(scalar_ir.find_array("y").elem, n, data=y),
            }
            res = VM(target).run(ck.mfunc, {"n": n, "alpha": 2.5}, bufs)
            assert np.allclose(bufs["y"].read_elements(), expected, rtol=1e-5)
            return res.cycles

        vec_cycles = run(compiled)
        scalar_cycles = run(compiled_scalar)
        vf = target.vf(scalar_ir.find_array("x").elem)
        print(
            f"{name:10s} {vf:3d} {vec_cycles:11.0f} {scalar_cycles:11.0f} "
            f"{scalar_cycles / vec_cycles:7.2f}x"
        )
    print("\nOne bytecode; every target got its own best code. "
          "(scalar = no SIMD: the loop_bound idiom collapses the "
          "vectorized structure back to a single scalar loop.)")


if __name__ == "__main__":
    main()
