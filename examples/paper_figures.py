"""Regenerate every table and figure of the paper's evaluation in one run.

Produces Figure 5 (a: SSE, b: AltiVec), Figure 6 (a: SSE, b: AltiVec,
c: NEON), Table 3 (AVX/IACA), the §V-A.b alignment ablation and the
§V-A.c bytecode/compile-time statistics.  Writes the report to stdout
(and optionally a file given as argv[1]).

Run:  python examples/paper_figures.py [report.txt]
(Expect a few minutes: the cycle-level VM executes 32 kernels through
six compilation flows on multiple targets.)
"""

import sys
import time

from repro.harness import (
    FlowRunner,
    ablation_alignment,
    compile_time_stats,
    figure5,
    figure6,
    format_figure5,
    format_figure6,
    format_table3,
    table3,
)


def main() -> None:
    start = time.time()
    out_lines: list[str] = []

    def emit(text: str = "") -> None:
        print(text)
        out_lines.append(text)

    runner = FlowRunner()
    for target in ("sse", "altivec"):
        emit(format_figure5(figure5(target, runner=runner)))
        emit()
    for target in ("sse", "altivec", "neon"):
        emit(format_figure6(figure6(target, runner=runner)))
        emit()
    emit(format_table3(table3(runner=runner)))
    emit()

    ab = ablation_alignment(targets=("sse", "altivec"))
    emit(
        "SV-A.b ablation (alignment optimizations/hints disabled): "
        f"average degradation {ab['average_degradation']:.2f}x "
        "(paper: 2.5x)"
    )
    stats = compile_time_stats(targets=("sse", "altivec"))
    emit(
        f"SV-A.c: bytecode size x{stats['avg_size_ratio']:.2f} under "
        "vectorization (paper: ~5x); Mono compile-time ratios: "
        + ", ".join(
            f"{k}: x{v:.2f}" for k, v in stats["avg_compile_time_ratio"].items()
        )
        + " (paper: 4.85x x86, 5.37x PowerPC)"
    )
    emit(f"\ntotal wall time: {time.time() - start:.0f}s")

    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as f:
            f.write("\n".join(out_lines) + "\n")
        print(f"report written to {sys.argv[1]}")


if __name__ == "__main__":
    main()
