"""Pre-admission batching at the gateway (docs/service.md section 10).

Same-shape compile requests arriving within one batch window join one
*flight group*: one admission slot, one service call, one response
payload fanned out byte-identically to every waiter.  These tests pin
the merge invariants (the stampede proof), the deadline edges (a waiter
whose budget dies mid-batch gets a classified rejection, never a late
orphan write), the zero-leak lifecycle of the batch table when the
group's leader connection dies mid-window, and the accounting trail
(``admission.batched``, ``gateway.batch.*``).
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import faults, obs
from repro.service import (
    GatewayClient,
    KernelService,
    ThreadedGateway,
)
from repro.service import wire
from repro.service.admission import Deadline
from repro.service.client import request_shape, shard_index

SIZE = 16
FLOW = "split_vec_gcc4cli"
WINDOW = 0.08


def _payload(kernel="saxpy_fp", target="sse", size=SIZE):
    return {"op": "compile", "kernel": kernel, "flow": FLOW,
            "target": target, "size": size}


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            break
        buf.extend(chunk)
    return bytes(buf)


def _recv_frame(sock: socket.socket):
    """One reply frame off a raw socket -> (payload, raw payload bytes)."""
    header = _recv_exact(sock, wire.HEADER_LEN)
    assert len(header) == wire.HEADER_LEN, "connection closed mid-header"
    _, length = wire.check_header(header)
    rest = _recv_exact(sock, length + 4)
    assert len(rest) == length + 4, "connection closed mid-body"
    body, crc = rest[:length], rest[length:]
    wire.check_frame(header, body, crc)
    return wire.decode_payload(body), body


def _connect(addr) -> socket.socket:
    s = socket.create_connection(addr, timeout=30.0)
    s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    s.settimeout(30.0)
    return s


@pytest.fixture()
def stack(tmp_path):
    """A fresh batching gateway per test: merge tests count admissions
    and compiles, so no state may leak between tests."""
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        workers=4, queue_limit=32)
    gw = ThreadedGateway(svc, max_inflight=8, idle_timeout_s=5.0,
                         drain_grace_s=0.0, batch_window_s=WINDOW,
                         batch_max=16)
    yield svc, gw
    gw.close()
    svc.close()


# -- the stampede proof -------------------------------------------------------


def test_stampede_one_admission_one_compile_identical_bytes(stack):
    """N concurrent identical-shape requests -> exactly one admission
    slot, one ``jit.compiles`` increment, and N byte-identical response
    payloads carrying ``batched == N``."""
    svc, gw = stack
    n = 6
    frame = wire.encode_frame(_payload("sad_s8"))
    with obs.recording(trace=False, metrics=True) as ob:
        socks = [_connect(gw.address) for _ in range(n)]
        try:
            for s in socks:
                s.sendall(frame)
            replies = [_recv_frame(s) for s in socks]
        finally:
            for s in socks:
                s.close()
    payloads = [p for p, _ in replies]
    raws = {raw for _, raw in replies}
    assert [p["status"] for p in payloads] == ["ok"] * n
    assert all(p["batched"] == n for p in payloads)
    assert len(raws) == 1, "waiters saw different bytes"

    adm = svc.admission.stats()
    assert adm["admitted"] == 1
    assert adm["batched"] == n - 1
    compiles = ob.metrics_snapshot().get("jit.compiles", {})
    assert compiles.get("value") == 1
    st = gw.stats()
    assert st["batch.flushed"] == 1
    assert st["batch.merged"] == n - 1
    assert st["batch_pending"] == 0
    assert st["served"] == n


def test_batch_key_is_the_shard_shape(stack):
    """Placement and batching agree: the batch key is exactly the
    canonical shape string :func:`shard_index` hashes."""
    a, b = _payload("sad_s8"), dict(_payload("sad_s8"), op="compile")
    assert request_shape(a) == request_shape(b)
    assert shard_index(a, 7) == shard_index(b, 7)
    # a different size is a different shape (and a different CacheKey)
    assert request_shape(a) != request_shape(_payload("sad_s8", size=32))


def test_distinct_shapes_do_not_merge(stack):
    svc, gw = stack
    frames = [wire.encode_frame(_payload("sad_s8", size=s))
              for s in (16, 24)]
    socks = [_connect(gw.address) for _ in frames]
    try:
        for s, f in zip(socks, frames):
            s.sendall(f)
        payloads = [_recv_frame(s)[0] for s in socks]
    finally:
        for s in socks:
            s.close()
    assert [p["status"] for p in payloads] == ["ok", "ok"]
    assert all(p["batched"] == 1 for p in payloads)
    assert svc.admission.stats()["admitted"] == 2
    assert gw.stats()["batch.flushed"] == 2
    assert gw.stats()["batch.merged"] == 0


def test_batch_max_flushes_early(tmp_path):
    """A full group must not sit out the rest of a long window."""
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        workers=4, queue_limit=32)
    gw = ThreadedGateway(svc, max_inflight=8, drain_grace_s=0.0,
                         batch_window_s=5.0, batch_max=2)
    try:
        frame = wire.encode_frame(_payload("sad_s8"))
        socks = [_connect(gw.address) for _ in range(2)]
        try:
            start = time.perf_counter()
            for s in socks:
                s.sendall(frame)
            payloads = [_recv_frame(s)[0] for s in socks]
            elapsed = time.perf_counter() - start
        finally:
            for s in socks:
                s.close()
        assert [p["status"] for p in payloads] == ["ok", "ok"]
        assert all(p["batched"] == 2 for p in payloads)
        assert elapsed < 4.0, "group waited out the window despite batch_max"
    finally:
        gw.close()
        svc.close()


# -- deadline edges -----------------------------------------------------------


def test_waiter_with_zero_budget_rejected_immediately(stack):
    """A waiter joining with 0 remaining budget can never receive the
    fan-out in time: classified DeadlineError, no group membership."""
    _, gw = stack
    s = _connect(gw.address)
    try:
        s.sendall(wire.encode_frame(_payload("sad_s8"), deadline_s=0.0))
        payload, _ = _recv_frame(s)
    finally:
        s.close()
    assert payload["status"] == "rejected"
    assert payload["error"] == "DeadlineError"
    assert payload["events"][0]["cause"] == "batch-deadline"
    assert gw.stats()["batch.expired"] == 1
    assert gw.stats()["batch_pending"] == 0


def test_waiter_deadline_expiry_mid_batch(stack):
    """A short-budget waiter whose deadline dies inside the window gets
    its own classified rejection while the patient waiter is served —
    never a late orphan write."""
    svc, gw = stack
    frame_short = wire.encode_frame(_payload("sad_s8"), deadline_s=0.02)
    frame_long = wire.encode_frame(_payload("sad_s8"), deadline_s=30.0)
    short, long_ = _connect(gw.address), _connect(gw.address)
    try:
        short.sendall(frame_short)
        long_.sendall(frame_long)
        p_short, _ = _recv_frame(short)
        p_long, _ = _recv_frame(long_)
    finally:
        short.close()
        long_.close()
    assert p_long["status"] == "ok"
    assert p_short["status"] == "rejected"
    assert p_short["error"] == "DeadlineError"
    assert p_short["events"][0]["cause"] == "batch-deadline"
    # both rode one group: one admission, the rider ledgered
    assert svc.admission.stats()["admitted"] == 1
    assert svc.admission.stats()["batched"] == 1


def test_group_with_leader_shortest_deadline_still_serves_followers(stack):
    """The group runs on the *longest* surviving budget: a leader whose
    deadline is the shortest in the group expires individually; the
    followers still get their answer."""
    _, gw = stack
    leader = _connect(gw.address)
    follower = _connect(gw.address)
    try:
        # The leader (first arrival, opens the group) has the short
        # budget; the follower joins with a long one.
        leader.sendall(wire.encode_frame(_payload("sad_s8"),
                                         deadline_s=0.02))
        time.sleep(0.01)
        follower.sendall(wire.encode_frame(_payload("sad_s8"),
                                           deadline_s=30.0))
        p_leader, _ = _recv_frame(leader)
        p_follower, _ = _recv_frame(follower)
    finally:
        leader.close()
        follower.close()
    assert p_follower["status"] == "ok"
    assert p_follower["batched"] == 2
    assert p_leader["status"] == "rejected"
    assert p_leader["error"] == "DeadlineError"


def test_all_waiters_expired_group_never_runs(stack):
    """When every waiter's budget dies inside the window the group is
    not worth serving: no admission, every waiter classified."""
    svc, gw = stack
    frame = wire.encode_frame(_payload("sad_s8"), deadline_s=0.01)
    socks = [_connect(gw.address) for _ in range(3)]
    try:
        for s in socks:
            s.sendall(frame)
        payloads = [_recv_frame(s)[0] for s in socks]
    finally:
        for s in socks:
            s.close()
    assert all(p["status"] == "rejected" for p in payloads)
    assert all(p["error"] == "DeadlineError" for p in payloads)
    assert svc.admission.stats()["admitted"] == 0


def test_deadline_exact_expiry_boundary():
    """The exactly-at-expiry edge: ``expired()`` is >= (the boundary
    instant IS expired) while ``remaining()`` clamps to 0.0 — so code
    gating on ``remaining() == 0`` and code gating on ``expired()``
    agree at the boundary."""
    now = [100.0]
    d = Deadline(1.5, clock=lambda: now[0])
    assert not d.expired()
    assert d.remaining() == pytest.approx(1.5)
    now[0] = 101.5  # exactly at expiry
    assert d.expired()
    assert d.remaining() == 0.0
    now[0] = 102.0  # past expiry: still clamped, still expired
    assert d.expired()
    assert d.remaining() == 0.0
    none = Deadline(None, clock=lambda: now[0])
    assert not none.expired() and none.remaining() is None


# -- group lifecycle under connection death -----------------------------------


def test_leader_death_mid_window_leaves_no_leak_no_double_answer(stack):
    """The flush timer is owned by the event loop, not the leader's
    connection: killing the leader mid-window must not strand the
    followers, leak the group entry, or double-answer anyone."""
    svc, gw = stack
    frame = wire.encode_frame(_payload("sad_s8"))
    leader = _connect(gw.address)
    followers = [_connect(gw.address) for _ in range(2)]
    try:
        leader.sendall(frame)
        time.sleep(0.01)  # the leader's join opens the group
        for s in followers:
            s.sendall(frame)
        leader.close()  # dies inside the window, before the flush
        replies = [_recv_frame(s) for s in followers]
        # exactly one frame per follower: nothing else may arrive
        for s in followers:
            s.settimeout(0.15)
            try:
                extra = s.recv(1)
            except (socket.timeout, OSError):
                extra = b""
            assert extra == b"", "a waiter was answered twice"
    finally:
        for s in followers:
            s.close()
    payloads = [p for p, _ in replies]
    raws = {raw for _, raw in replies}
    assert [p["status"] for p in payloads] == ["ok", "ok"]
    # the dead leader still counted toward the group it opened
    assert all(p["batched"] == 3 for p in payloads)
    assert len(raws) == 1
    assert gw.stats()["batch_pending"] == 0, "leaked flight group"
    assert svc.admission.stats()["admitted"] == 1


def test_injected_conn_drop_tears_exactly_one_fanout(stack):
    """An injected mid-response ConnDrop during fan-out tears only that
    waiter's connection; the other waiters still read complete,
    identical frames and the batch table stays clean."""
    _, gw = stack
    frame = wire.encode_frame(_payload("sad_s8"))
    socks = [_connect(gw.address) for _ in range(3)]
    torn = 0
    whole = []
    try:
        with faults.injected(faults.FaultPlan(
                [faults.ConnDrop(after_bytes=5, count=1)])):
            for s in socks:
                s.sendall(frame)
            for s in socks:
                try:
                    whole.append(_recv_frame(s))
                except AssertionError:
                    torn += 1
    finally:
        for s in socks:
            s.close()
    assert torn == 1
    assert len(whole) == 2
    assert {raw for _, raw in whole} and len({raw for _, raw in whole}) == 1
    assert all(p["status"] == "ok" for p, _ in whole)
    assert gw.stats()["batch_pending"] == 0
    assert gw.stats()["injected_drops"] == 1


def test_drain_serves_pending_batch(tmp_path):
    """Requests batched before drain began still get complete responses:
    drain flushes open groups instead of abandoning their waiters."""
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        workers=4, queue_limit=32)
    gw = ThreadedGateway(svc, max_inflight=8, drain_grace_s=0.0,
                         drain_budget_s=15.0, batch_window_s=10.0,
                         batch_max=16)
    try:
        s = _connect(gw.address)
        try:
            s.sendall(wire.encode_frame(_payload("sad_s8")))
            # wait until the request has actually joined the group
            deadline = time.perf_counter() + 5.0
            while (gw.stats()["batch_pending"] == 0
                   and time.perf_counter() < deadline):
                time.sleep(0.005)
            assert gw.stats()["batch_pending"] == 1
            start = time.perf_counter()
            gw.drain()
            payload, _ = _recv_frame(s)
            elapsed = time.perf_counter() - start
        finally:
            s.close()
        assert payload["status"] == "ok"
        assert payload["batched"] == 1
        assert elapsed < 9.0, "drain waited out the 10s window"
        assert gw.stats()["batch_pending"] == 0
    finally:
        gw.close()
        svc.close()


# -- defaults and client accounting -------------------------------------------


def test_batching_off_by_default(tmp_path):
    """``batch_window_s=0`` (the default) keeps the direct dispatch
    path: no ``batched`` key on responses, no group accounting."""
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        workers=2, queue_limit=16)
    gw = ThreadedGateway(svc, max_inflight=8, drain_grace_s=0.0)
    c = GatewayClient([gw.address], retries=0)
    try:
        resp = c.compile_run("sad_s8", size=SIZE)
        assert resp["status"] == "ok"
        assert "batched" not in resp
        st = gw.stats()
        assert st["batch.flushed"] == 0 and st["batch_pending"] == 0
        assert c.batched_responses == 0
    finally:
        c.close()
        gw.close()
        svc.close()


def test_client_counts_batched_responses(stack):
    """The client-side evidence of a merge: a response carrying
    ``batched >= 2`` bumps ``batched_responses``."""
    _, gw = stack
    clients = [GatewayClient([gw.address], retries=0, seed=i)
               for i in range(3)]
    barrier = threading.Barrier(3)
    errors = []

    def fire(i):
        try:
            barrier.wait()
            clients[i].compile_run("sad_s8", size=SIZE)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=fire, args=(i,)) for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    try:
        assert not errors, errors
        assert sum(c.batched_responses for c in clients) == 3
    finally:
        for c in clients:
            c.close()
