"""Chaos campaign: >= 200 seeded fault injections, zero silent wrong
answers, zero unclassified tracebacks.

This is the closing argument of the fail-soft pipeline: whatever a seeded
adversary corrupts — bytecode bytes, idiom lowering, materialization, VM
memory accesses, array alignment — the toolchain either produces a
numpy-checked correct answer (possibly via the scalar degradation path)
or raises a classified :class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import pytest

from repro.harness.chaos import FAILING, LAYERS, ChaosTrial, run_campaign


@pytest.fixture(scope="module")
def campaign():
    """One 200-fault campaign shared by the assertions below."""
    return run_campaign(n_faults=200, seed=2026)


def test_campaign_injects_at_least_200_faults(campaign):
    assert len(campaign.trials) >= 200


def test_no_silent_wrong_answers(campaign):
    assert not [t for t in campaign.trials if t.outcome == "silent-wrong"], \
        campaign.summary()
    assert not [t for t in campaign.trials if t.outcome == "wrong-answer"], \
        campaign.summary()


def test_no_unclassified_tracebacks(campaign):
    assert not [
        t for t in campaign.trials if t.outcome == "unclassified-trap"
    ], campaign.summary()


def test_engine_parity_under_chaos(campaign):
    assert not [
        t for t in campaign.trials if t.outcome == "parity-mismatch"
    ], campaign.summary()


def test_invariant_holds(campaign):
    assert campaign.ok, campaign.summary()


def test_campaign_covers_every_layer(campaign):
    hit = {t.layer for t in campaign.trials}
    assert hit == set(LAYERS)


def test_campaign_observes_all_three_good_outcomes(campaign):
    outcomes = {t.outcome for t in campaign.trials}
    # the adversary actually bit: traps fired and degradations happened
    assert "trapped" in outcomes
    assert "degraded-correct" in outcomes
    assert "correct" in outcomes


def test_campaign_deterministic_in_seed():
    a = run_campaign(n_faults=25, seed=7)
    b = run_campaign(n_faults=25, seed=7)
    assert a.trials == b.trials
    c = run_campaign(n_faults=25, seed=8)
    assert c.trials != a.trials


def test_trial_ok_semantics():
    good = ChaosTrial("bytecode", "saxpy_fp", "BitFlip()", "trapped")
    assert good.ok
    for outcome in FAILING:
        assert not ChaosTrial("vm-mem", "saxpy_fp", "f", outcome).ok


def test_report_summary_mentions_invariant():
    rep = run_campaign(n_faults=5, seed=1)
    assert "invariant HELD" in rep.summary()
    assert "5 faults injected" in rep.summary()


# -- service profile ----------------------------------------------------------


@pytest.fixture(scope="module")
def service_campaign():
    """One service-profile soak shared by the assertions below (the CI
    job runs the full 200-fault version; this keeps tier-1 quick)."""
    from repro.harness.chaos import run_service_campaign

    return run_service_campaign(n_faults=60, seed=2026)


def test_service_campaign_invariant_holds(service_campaign):
    assert service_campaign.ok, service_campaign.summary()


def test_service_campaign_covers_every_service_layer(service_campaign):
    from repro.harness.chaos import SERVICE_LAYERS

    hit = {t.layer for t in service_campaign.trials}
    assert set(SERVICE_LAYERS) <= hit


def test_service_campaign_exercises_the_cascade(service_campaign):
    outcomes = {t.outcome for t in service_campaign.trials}
    # every resilience mechanism observably fired at least once
    assert "healed" in outcomes        # corrupt entry quarantined+recompiled
    assert "crash-safe" in outcomes    # torn write left destination clean
    assert "served-stale" in outcomes  # stale step of the cascade
    assert "breaker-cycled" in outcomes  # closed -> open -> half-open -> closed
    assert "degraded-correct" in outcomes


def test_service_campaign_reports_service_stats(service_campaign):
    stats = service_campaign.service_stats
    assert stats is not None
    assert stats["requests"] > 0
    assert stats["cache"]["quarantined"] > 0
    assert stats["cache"]["put_failures"] > 0


def test_service_campaign_deterministic_in_seed():
    from repro.harness.chaos import run_service_campaign

    a = run_service_campaign(n_faults=15, seed=11)
    b = run_service_campaign(n_faults=15, seed=11)
    assert [
        (t.layer, t.kernel, t.fault, t.outcome) for t in a.trials
    ] == [
        (t.layer, t.kernel, t.fault, t.outcome) for t in b.trials
    ]


def test_service_campaign_with_farm_faults():
    """``--farm-workers`` mixes the farm layers into the seeded draw:
    worker crash mid-compile (rerouted, no torn entry), worker stall
    (reclaimed by the compile budget), and stale leader markers (taken
    over) — the invariant must hold through all of them."""
    from repro.harness.chaos import FARM_LAYERS, run_service_campaign

    rep = run_service_campaign(n_faults=40, seed=5, farm_workers=2)
    assert rep.ok, rep.summary()
    hit = {t.layer for t in rep.trials}
    assert set(FARM_LAYERS) <= hit
    outcomes = {t.outcome for t in rep.trials if t.layer in FARM_LAYERS}
    assert "rerouted" in outcomes
    assert "marker-takeover" in outcomes
    assert rep.service_stats["farm"]["rebuilds"] > 0


def test_service_campaign_farm_stream_extends_default_stream():
    """The farm layers join the draw without disturbing the pinned-seed
    default stream: a farm-less campaign at the same seed is unchanged
    (bit-for-bit) by the farm feature existing."""
    from repro.harness.chaos import run_service_campaign

    a = run_service_campaign(n_faults=15, seed=11)
    b = run_service_campaign(n_faults=15, seed=11, farm_workers=0)
    assert [
        (t.layer, t.kernel, t.fault, t.outcome) for t in a.trials
    ] == [
        (t.layer, t.kernel, t.fault, t.outcome) for t in b.trials
    ]


@pytest.mark.slow
def test_harness_layer_quarantines():
    """Worker crash + stall inside a real process pool: the sweep finishes
    and only the faulty kernel's cells are quarantined."""
    rep = run_campaign(n_faults=0, seed=3, include_harness=True,
                       harness_timeout=5.0)
    assert len(rep.trials) == 2
    assert all(t.layer == "harness" for t in rep.trials)
    assert rep.ok, rep.summary()
    assert {t.outcome for t in rep.trials} == {"quarantined"}
