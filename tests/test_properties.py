"""Property-based end-to-end tests: randomly generated kernels must produce
identical results under every compilation flow.

These are the strongest invariant checks in the suite: hypothesis builds a
random elementwise expression (or reduction) as VaporC source, and we assert
that split-vectorized execution on a SIMD target matches the scalar
interpretation exactly (integers) or within float tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.ir import F32, I16, I32
from repro.jit import MonoJIT, OptimizingJIT
from repro.machine import VM, ArrayBuffer
from repro.targets import ALTIVEC, NEON, SCALAR, SSE
from repro.vectorizer import split_config, vectorize_function

# -- random expression generator --------------------------------------------

_INT_LEAVES = ["a[i]", "b[i]", "a[i + 1]", "7", "-3", "x"]
_INT_OPS = ["+", "-", "*", "&", "|", "^", ">>"]
_FLOAT_LEAVES = ["a[i]", "b[i]", "a[i + 1]", "2.5", "x"]
_FLOAT_OPS = ["+", "-", "*"]


@st.composite
def int_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(_INT_LEAVES))
    op = draw(st.sampled_from(_INT_OPS))
    lhs = draw(int_expr(depth=depth + 1))
    rhs = draw(int_expr(depth=depth + 1))
    if op == ">>":
        rhs = str(draw(st.integers(0, 7)))
    return f"({lhs} {op} {rhs})"


@st.composite
def float_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(_FLOAT_LEAVES))
    op = draw(st.sampled_from(_FLOAT_OPS))
    lhs = draw(float_expr(depth=depth + 1))
    rhs = draw(float_expr(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


class TestRandomMapKernels:
    @given(expr=int_expr(), n=st.integers(1, 70), x=st.integers(-50, 50))
    @settings(max_examples=60, deadline=None)
    def test_int_map_kernel_matches_scalar(self, expr, n, x):
        src = f"""
void k(int n, int x, int a[], int b[], int o[]) {{
    for (int i = 0; i < n; i++) {{
        o[i] = {expr};
    }}
}}
"""
        fn = compile_source(src)["k"]
        vec = vectorize_function(fn, split_config())
        rng = np.random.default_rng(abs(hash((expr, n, x))) % 2**32)
        a = rng.integers(-100, 100, n + 2).astype(np.int32)
        b = rng.integers(-100, 100, n + 2).astype(np.int32)
        i = np.arange(n)
        # Reference: evaluate the same expression over numpy int32 vectors.
        with np.errstate(over="ignore"):
            expect = eval(
                expr, {"__builtins__": {}},
                {"a": _Idx(a), "b": _Idx(b), "x": np.int32(x), "i": i},
            )
        expect = np.asarray(expect, dtype=np.int32)[:n] if hasattr(
            expect, "__len__"
        ) else np.full(n, expect, np.int32)

        results = {}
        for target in (SSE, SCALAR):
            ck = OptimizingJIT().compile(vec, target)
            bufs = {
                "a": ArrayBuffer(I32, n + 2, data=a),
                "b": ArrayBuffer(I32, n + 2, data=b),
                "o": ArrayBuffer(I32, n),
            }
            VM(target).run(ck.mfunc, {"n": n, "x": x}, bufs)
            results[target.name] = bufs["o"].read_elements()
        assert np.array_equal(results["sse"], results["scalar"])
        assert np.array_equal(results["sse"], expect)

    @given(expr=float_expr(), n=st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_float_map_kernel_targets_agree(self, expr, n):
        src = f"""
void k(int n, float x, float a[], float b[], float o[]) {{
    for (int i = 0; i < n; i++) {{
        o[i] = {expr};
    }}
}}
"""
        fn = compile_source(src)["k"]
        vec = vectorize_function(fn, split_config())
        rng = np.random.default_rng(abs(hash((expr, n))) % 2**32)
        a = rng.standard_normal(n + 2).astype(np.float32)
        b = rng.standard_normal(n + 2).astype(np.float32)
        outs = []
        for target, jit in ((SSE, OptimizingJIT()), (NEON, MonoJIT()),
                            (SCALAR, OptimizingJIT())):
            ck = jit.compile(vec, target)
            bufs = {
                "a": ArrayBuffer(F32, n + 2, data=a),
                "b": ArrayBuffer(F32, n + 2, data=b),
                "o": ArrayBuffer(F32, n),
            }
            VM(target).run(ck.mfunc, {"n": n, "x": 1.5}, bufs)
            outs.append(bufs["o"].read_elements())
        # Elementwise maps have no reassociation: exact agreement.
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])


class _Idx:
    """numpy-array wrapper giving C-style a[i] / a[i+1] indexing over a
    vector of indices inside eval()."""

    def __init__(self, arr):
        self.arr = arr

    def __getitem__(self, idx):
        return self.arr[idx].astype(np.int32)


class TestRandomReductions:
    @given(
        n=st.integers(1, 90),
        kind=st.sampled_from(["+", "min", "max"]),
        offset=st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_int_reduction_exact(self, n, kind, offset):
        if kind == "+":
            update = f"s += a[i + {offset}] * b[i];"
            init = "0"
        elif kind == "min":
            update = f"s = min(s, a[i + {offset}] + b[i]);"
            init = "1000000"
        else:
            update = f"s = max(s, a[i + {offset}] - b[i]);"
            init = "-1000000"
        src = f"""
int k(int n, int a[], int b[]) {{
    int s = {init};
    for (int i = 0; i < n; i++) {{ {update} }}
    return s;
}}
"""
        fn = compile_source(src)["k"]
        vec = vectorize_function(fn, split_config())
        rng = np.random.default_rng(n * 31 + offset)
        a = rng.integers(-1000, 1000, n + 4).astype(np.int32)
        b = rng.integers(-1000, 1000, n + 4).astype(np.int32)
        av = a[offset : offset + n].astype(np.int64)
        bv = b[:n].astype(np.int64)
        if kind == "+":
            expect = int(np.int32((av * bv).sum()))
        elif kind == "min":
            expect = int(min(1000000, (av + bv).min())) if n else 1000000
        else:
            expect = int(max(-1000000, (av - bv).max())) if n else -1000000
        for target in (SSE, ALTIVEC, NEON, SCALAR):
            ck = OptimizingJIT().compile(vec, target)
            bufs = {
                "a": ArrayBuffer(I32, n + 4, data=a),
                "b": ArrayBuffer(I32, n + 4, data=b),
            }
            res = VM(target).run(ck.mfunc, {"n": n}, bufs)
            assert int(res.value) == expect, target.name

    @given(n=st.integers(1, 50), scale=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_i16_widening_reduction_exact(self, n, scale):
        src = f"""
int k(int n, short a[], short b[]) {{
    int s = 0;
    for (int i = 0; i < n; i++) {{
        s += (int)a[i] * (int)b[i] * {scale};
    }}
    return s;
}}
"""
        fn = compile_source(src)["k"]
        vec = vectorize_function(fn, split_config())
        rng = np.random.default_rng(n * 7 + scale)
        a = rng.integers(-500, 500, n).astype(np.int16)
        b = rng.integers(-500, 500, n).astype(np.int16)
        expect = int(
            np.int32((a.astype(np.int64) * b.astype(np.int64) * scale).sum())
        )
        for target in (SSE, ALTIVEC):
            ck = MonoJIT().compile(vec, target)
            bufs = {
                "a": ArrayBuffer(I16, n, data=a),
                "b": ArrayBuffer(I16, n, data=b),
            }
            res = VM(target).run(ck.mfunc, {"n": n}, bufs)
            assert int(res.value) == expect, target.name


class TestAlignmentProperty:
    @given(mis=st.sampled_from([0, 4, 8, 12, 16, 20]), n=st.integers(1, 80))
    @settings(max_examples=40, deadline=None)
    def test_unaligned_bases_still_correct(self, mis, n):
        """With runtime_aligns=False and arbitrarily misaligned bases, the
        guard routes to the fall-back version and results stay exact."""
        src = """
void k(int n, float a[], float o[]) {
    for (int i = 0; i < n; i++) { o[i] = a[i + 1] * 2.0; }
}
"""
        fn = compile_source(src)["k"]
        vec = vectorize_function(fn, split_config())
        jit = OptimizingJIT(runtime_aligns=False)
        rng = np.random.default_rng(mis + n)
        a = rng.standard_normal(n + 2).astype(np.float32)
        for target in (SSE, ALTIVEC):
            ck = jit.compile(vec, target)
            bufs = {
                "a": ArrayBuffer(F32, n + 2, base_misalign=mis, data=a),
                "o": ArrayBuffer(F32, n, base_misalign=mis),
            }
            VM(target).run(ck.mfunc, {"n": n}, bufs)
            assert np.array_equal(
                bufs["o"].read_elements(),
                a[1 : n + 1] * np.float32(2.0),
            ), (target.name, mis)
