"""Size-stability checks: the harness defaults to small problem sizes for
VM speed; the paper used vectors/matrices of 128.  The reported ratios must
not depend on that choice (they are per-iteration properties once overheads
amortize)."""

import pytest

from repro.harness.flows import FlowRunner
from repro.kernels import get_kernel

#: the paper's PolyBench configuration ("vectors and matrices of size 128
#: and 128^2"); kernels cheap enough to run at that size in the VM.
PAPER_SIZE_KERNELS = ["jacobi_fp", "atax_fp", "bicg_fp", "gemver_fp"]
PAPER_POLYBENCH_SIZE = 128


@pytest.fixture(scope="module")
def paper_runner():
    return FlowRunner()


@pytest.mark.parametrize("name", PAPER_SIZE_KERNELS)
def test_figure6_ratio_stable_at_paper_size(paper_runner, name):
    kernel = get_kernel(name)
    small = kernel.instantiate()
    large = kernel.instantiate(PAPER_POLYBENCH_SIZE)
    ratios = {}
    for label, inst in (("small", small), ("large", large)):
        d = paper_runner.run(inst, "split_vec_gcc4cli", "sse").cycles
        f = paper_runner.run(inst, "native_vec", "sse").cycles
        ratios[label] = d / f
    assert ratios["large"] == pytest.approx(ratios["small"], abs=0.1)
    assert 0.85 <= ratios["large"] <= 1.15


@pytest.mark.parametrize("size", [128, 500, 2048])
def test_saxpy_speedup_grows_then_saturates(paper_runner, size):
    """Vectorization speedup is stable across sizes once the peel/epilogue
    amortizes — the reason small default sizes are sound."""
    inst = get_kernel("saxpy_fp").instantiate(size)
    vec = paper_runner.run(inst, "split_vec_gcc4cli", "sse").cycles
    scal = paper_runner.run(inst, "split_scalar_gcc4cli", "sse").cycles
    assert 2.0 <= scal / vec <= 5.0
