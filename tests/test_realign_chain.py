"""Quantitative checks of the optimized-realignment scheme (Figure 2d):
in steady state the chained version issues ~one aligned load + one permute
per misaligned stream per iteration, the naive version two loads."""

import numpy as np
import pytest

from repro import (
    ArrayBuffer,
    OptimizingJIT,
    VM,
    compile_source,
    get_target,
    split_config,
    vectorize_function,
)
from repro.ir import F32

SRC = """
float sfir(int n, float a[], float c[]) {
    float s = 0;
    for (int i = 0; i < n; i++) { s += a[i + 2] * c[i]; }
    return s;
}
"""


def _counts(reuse: bool, n: int = 256):
    fn = compile_source(SRC)["sfir"]
    vec = vectorize_function(
        fn, split_config(enable_realign_reuse=reuse)
    )
    target = get_target("altivec")
    ck = OptimizingJIT().compile(vec, target)
    rng = np.random.default_rng(0)
    a = rng.standard_normal(n + 4).astype(np.float32)
    c = rng.standard_normal(n).astype(np.float32)
    bufs = {
        "a": ArrayBuffer(F32, n + 4, data=a),
        "c": ArrayBuffer(F32, n, data=c),
    }
    res = VM(target).run(ck.mfunc, {"n": n}, bufs, count_ops=True)
    expect = float((a[2 : n + 2].astype(np.float64) * c).sum())
    assert float(res.value) == pytest.approx(expect, rel=1e-3)
    return res.op_counts


class TestChainCounts:
    def test_chained_steady_state_one_load_per_stream(self):
        n = 256
        iters = n // 4  # VF(f32) on AltiVec
        ops = _counts(reuse=True, n=n)
        # Two streams: a[i+2] (misaligned, chained) and c[i] (aligned after
        # the guard folds): ~1 vload_fa + ~1 vload_fa... c is aligned so it
        # lowers to vload_a; the chained stream does 1 floor load + 1 perm.
        assert ops.get("vperm", 0) == pytest.approx(iters, abs=3)
        assert ops.get("vload_fa", 0) == pytest.approx(iters, abs=3)
        assert ops.get("vload_a", 0) == pytest.approx(iters, abs=3)

    def test_naive_doubles_the_floor_loads(self):
        n = 256
        iters = n // 4
        ops = _counts(reuse=False, n=n)
        # Chainless explicit realignment: lvsr + 2 floor loads + perm per
        # iteration for the misaligned stream.
        assert ops.get("vload_fa", 0) == pytest.approx(2 * iters, abs=4)
        assert ops.get("lvsr", 0) == pytest.approx(iters, abs=3)

    def test_chain_saves_cycles(self):
        with_reuse = _counts(reuse=True)
        without = _counts(reuse=False)
        loads_with = with_reuse.get("vload_fa", 0)
        loads_without = without.get("vload_fa", 0)
        assert loads_with < loads_without
