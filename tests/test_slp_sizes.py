"""SLP group-size coverage: pairs (g=2) and wide groups (g=8), plus the
guard behaviour when VF cannot tile the group."""

import numpy as np
import pytest

from repro import (
    ArrayBuffer,
    MonoJIT,
    OptimizingJIT,
    VM,
    compile_source,
    get_target,
    split_config,
    vectorize_function,
)
from repro.ir import I16, I32, InitPattern, verify_function, walk


def _group_src(g: int, elem="short", suffix="(short)") -> str:
    lines = [
        f"        out[{g}*i + {p}] = {suffix}((in[{g}*i + {p}] * {p + 2}) >> 2);"
        for p in range(g)
    ]
    return (
        f"void k(int n, {elem} in[], {elem} out[]) {{\n"
        "    for (int i = 0; i < n; i++) {\n"
        + "\n".join(lines)
        + "\n    }\n}\n"
    )


def _run(out_fn, g, n, dtype, elem, target_name, jit):
    target = get_target(target_name)
    rng = np.random.default_rng(g * 100 + n)
    data = rng.integers(-500, 500, g * n).astype(dtype)
    ck = jit.compile(out_fn, target)
    bufs = {
        "in": ArrayBuffer(elem, g * n, data=data),
        "out": ArrayBuffer(elem, g * n),
    }
    VM(target).run(ck.mfunc, {"n": n}, bufs)
    gains = np.arange(2, g + 2, dtype=dtype)
    expect = ((data.reshape(-1, g) * gains) >> 2).astype(dtype).ravel()
    assert np.array_equal(bufs["out"].read_elements(), expect), (
        g, target_name, jit.name,
    )


class TestGroupSizes:
    @pytest.mark.parametrize("g", [2, 4, 8])
    def test_slp_or_strided_handles_group(self, g):
        fn = compile_source(_group_src(g))["k"]
        out = vectorize_function(fn, split_config())
        verify_function(out)
        report = list(out.annotations["vect_report"].values())[0]
        assert report.startswith("vectorized"), (g, report)
        for target_name in ("sse", "altivec", "neon", "scalar"):
            for jit in (MonoJIT(), OptimizingJIT()):
                _run(out, g, 37, np.int16, I16, target_name, jit)

    def test_g8_pattern_constant(self):
        fn = compile_source(_group_src(8))["k"]
        out = vectorize_function(fn, split_config())
        pats = [i for i in walk(out.body) if isinstance(i, InitPattern)]
        assert any(p.pattern == (2, 3, 4, 5, 6, 7, 8, 9) for p in pats)

    def test_i32_group4_guard_fails_on_neon(self):
        """i32 on NEON has VF=2 < g=4: the slp_group guard must route to
        the scalar loop there while SSE (VF=4) runs the superword code."""
        fn = compile_source(_group_src(4, elem="int", suffix="(int)"))["k"]
        out = vectorize_function(fn, split_config())
        report = list(out.annotations["vect_report"].values())[0]
        assert "slp" in report
        for target_name, expect_vec in (("sse", True), ("neon", False)):
            target = get_target(target_name)
            ck = OptimizingJIT().compile(out, target)
            ops = {i.op for i in ck.mfunc.instrs}
            has_vec_store = "vstore_a" in ops or "vstore_u" in ops
            assert has_vec_store == expect_vec, target_name
            _run(out, 4, 25, np.int32, I32, target_name, OptimizingJIT())
