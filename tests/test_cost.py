"""Tests for the vectorization cost model (§II.c)."""

import pytest

from repro.analysis.loopinfo import LoopInfo
from repro.frontend import compile_source
from repro.ir import Const, ForLoop, walk
from repro.targets import ALTIVEC, NEON, SSE
from repro.vectorizer import (
    check_inner_loop,
    estimate_loop_cost,
    native_config,
    split_config,
    vectorize_function,
)
from repro.vectorizer.stmt import plan_streams


def _estimate(src, config=None, name="f"):
    config = config or split_config()
    fn = compile_source(src)[name]
    loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
    info = LoopInfo(loop, None, 0, [])
    legal = check_inner_loop(info, config)
    assert legal.ok, legal.reasons
    lc = int(loop.lower.value) if isinstance(loop.lower, Const) else None
    plan = plan_streams(legal, info.iv, legal.min_elem, config, lc)
    return estimate_loop_cost(info, legal, plan, config)


SAXPY = """
void f(int n, float alpha, float x[], float y[]) {
    for (int i = 0; i < n; i++) { y[i] = alpha * x[i] + y[i]; }
}
"""


class TestEstimates:
    def test_saxpy_profitable(self):
        est = _estimate(SAXPY)
        assert est.profitable
        assert 1.5 <= est.speedup <= 5.0

    def test_wider_vectors_estimate_better(self):
        generic = _estimate(SAXPY)  # VS=16
        neon = _estimate(SAXPY, native_config(NEON))  # VS=8
        assert generic.speedup > neon.speedup

    def test_narrow_types_estimate_better(self):
        f32 = _estimate(SAXPY)
        s16 = _estimate(
            """
void f(int n, short x[], short y[]) {
    for (int i = 0; i < n; i++) { y[i] = (short)(x[i] + y[i]); }
}
"""
        )
        assert s16.speedup > f32.speedup

    def test_strided_access_costs(self):
        unit = _estimate(
            "void f(int n, float a[], float o[]) {"
            " for (int i = 0; i < n; i++) { o[i] = a[i] * 2.0; } }"
        )
        strided = _estimate(
            "void f(int n, float a[], float o[]) {"
            " for (int i = 0; i < n; i++) { o[i] = a[2*i] * 2.0; } }"
        )
        assert strided.speedup < unit.speedup

    def test_tiny_trip_count_unprofitable(self):
        est = _estimate(
            "void f(float a[2], float o[2]) {"
            " for (int i = 0; i < 2; i++) { o[i] = a[i] * 2.0; } }"
        )
        assert est.trip == 2
        assert not est.profitable

    def test_trip_count_defaults_when_symbolic(self):
        est = _estimate(SAXPY)
        assert est.trip == 128


class TestDriverIntegration:
    def test_tiny_loop_vetoed(self):
        fn = compile_source(
            "void f(float a[2], float o[2]) {"
            " for (int i = 0; i < 2; i++) { o[i] = a[i] * 2.0; } }"
        )["f"]
        out = vectorize_function(fn, split_config())
        report = list(out.annotations["vect_report"].values())[0]
        assert "cost model" in report

    def test_veto_disabled_by_threshold_zero(self):
        fn = compile_source(
            "void f(float a[2], float o[2]) {"
            " for (int i = 0; i < 2; i++) { o[i] = a[i] * 2.0; } }"
        )["f"]
        out = vectorize_function(fn, split_config(cost_threshold=0.0))
        report = list(out.annotations["vect_report"].values())[0]
        assert report.startswith("vectorized")

    def test_report_carries_estimate(self):
        fn = compile_source(SAXPY)["f"]
        out = vectorize_function(fn, split_config())
        report = list(out.annotations["vect_report"].values())[0]
        assert "est x" in report

    def test_all_suite_kernels_pass_cost_model(self):
        from repro.kernels import all_kernels

        for kernel in all_kernels():
            if not kernel.expect_vectorized:
                continue
            inst = kernel.instantiate()
            fn = compile_source(inst.source)[inst.entry]
            out = vectorize_function(fn, split_config())
            report = out.annotations["vect_report"]
            assert any(
                v.startswith("vectorized") for v in report.values()
            ), (kernel.name, report)
