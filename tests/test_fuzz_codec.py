"""Fuzz the bytecode codec with randomly generated kernels.

For arbitrary VaporC programs (random expressions, optional reduction,
random offsets) the pipeline must satisfy:

    run(jit(decode(encode(vectorize(fn))))) == run(jit(vectorize(fn)))

exactly (integer kernels), on a SIMD target and the scalar target.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import decode_function, encode_function
from repro.frontend import compile_source
from repro.ir import I32, print_function, verify_function
from repro.jit import OptimizingJIT, specialize_scalars
from repro.machine import VM, ArrayBuffer
from repro.targets import NEON, SSE
from repro.vectorizer import split_config, vectorize_function

_LEAVES = ["a[i]", "b[i]", "a[i + 1]", "b[i + 2]", "5", "x", "i"]
_OPS = ["+", "-", "*", "&", "^", "|"]


@st.composite
def expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(_LEAVES))
    return (
        f"({draw(expr(depth=depth + 1))} "
        f"{draw(st.sampled_from(_OPS))} "
        f"{draw(expr(depth=depth + 1))})"
    )


@st.composite
def kernel_source(draw):
    body = draw(expr())
    reduce = draw(st.booleans())
    if reduce:
        return f"""
int k(int n, int x, int a[], int b[]) {{
    int s = 0;
    for (int i = 0; i < n; i++) {{ s += {body}; }}
    return s;
}}
"""
    return f"""
void k(int n, int x, int a[], int b[], int o[]) {{
    for (int i = 0; i < n; i++) {{ o[i] = {body}; }}
}}
"""


class TestCodecFuzz:
    @given(src=kernel_source(), n=st.integers(1, 40), x=st.integers(-9, 9))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_execution_identical(self, src, n, x):
        fn = compile_source(src)["k"]
        vec = vectorize_function(fn, split_config())
        verify_function(vec)
        dec = decode_function(encode_function(vec))
        verify_function(dec)
        # Stable re-encoding.
        assert encode_function(dec) == encode_function(
            decode_function(encode_function(dec))
        )

        rng = np.random.default_rng(abs(hash((src, n, x))) % 2**32)
        a = rng.integers(-50, 50, n + 2).astype(np.int32)
        b = rng.integers(-50, 50, n + 3).astype(np.int32)
        has_out = "o[" in src

        def run(fn_ir, target):
            ck = OptimizingJIT().compile(fn_ir, target)
            bufs = {
                "a": ArrayBuffer(I32, n + 2, data=a),
                "b": ArrayBuffer(I32, n + 3, data=b),
            }
            if has_out:
                bufs["o"] = ArrayBuffer(I32, n)
            res = VM(target).run(ck.mfunc, {"n": n, "x": x}, bufs)
            out = bufs["o"].read_elements() if has_out else None
            return res.value, out

        for target in (SSE, NEON):
            v1, o1 = run(vec, target)
            v2, o2 = run(dec, target)
            if v1 is not None or v2 is not None:
                assert int(v1) == int(v2)
            if has_out:
                assert np.array_equal(o1, o2)


class TestSpecializationFuzz:
    @given(src=kernel_source(), n=st.integers(1, 40), x=st.integers(-9, 9))
    @settings(max_examples=40, deadline=None)
    def test_specialized_matches_generic(self, src, n, x):
        fn = compile_source(src)["k"]
        vec = vectorize_function(fn, split_config())
        spec = specialize_scalars(vec, {"n": n, "x": x})
        verify_function(spec)
        rng = np.random.default_rng(abs(hash((src, n, x, 7))) % 2**32)
        a = rng.integers(-50, 50, n + 2).astype(np.int32)
        b = rng.integers(-50, 50, n + 3).astype(np.int32)
        has_out = "o[" in src

        def run(fn_ir, args):
            ck = OptimizingJIT().compile(fn_ir, SSE)
            bufs = {
                "a": ArrayBuffer(I32, n + 2, data=a),
                "b": ArrayBuffer(I32, n + 3, data=b),
            }
            if has_out:
                bufs["o"] = ArrayBuffer(I32, n)
            res = VM(SSE).run(ck.mfunc, args, bufs)
            return res.value, (bufs["o"].read_elements() if has_out else None)

        v1, o1 = run(vec, {"n": n, "x": x})
        v2, o2 = run(spec, {})
        if v1 is not None or v2 is not None:
            assert int(v1) == int(v2)
        if has_out:
            assert np.array_equal(o1, o2)
