"""Tests for the IR type system."""

import numpy as np
import pytest

from repro.ir.types import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    SCALAR_TYPES,
    ScalarType,
    VectorType,
    narrowed,
    scalar_type_from_name,
    widened,
)


class TestScalarType:
    def test_sizes(self):
        assert I8.size == 1
        assert I16.size == 2
        assert I32.size == 4
        assert I64.size == 8
        assert F32.size == 4
        assert F64.size == 8
        assert BOOL.size == 1

    def test_bits(self):
        assert I16.bits == 16
        assert F64.bits == 64

    def test_float_flags(self):
        assert F32.is_float and F64.is_float
        assert not any(t.is_float for t in (I8, I16, I32, I64, BOOL))
        assert I32.is_int and not F32.is_int

    @pytest.mark.parametrize("t", [t for t in SCALAR_TYPES if t is not BOOL])
    def test_numpy_dtype_width(self, t):
        assert t.numpy_dtype.itemsize == t.size

    def test_numpy_dtype_kind(self):
        assert I8.numpy_dtype == np.dtype("int8")
        assert F64.numpy_dtype == np.dtype("float64")

    def test_min_max_values(self):
        assert I8.min_value == -128
        assert I8.max_value == 127
        assert I16.max_value == 32767
        assert F32.max_value > 1e38

    def test_lookup_by_ir_name(self):
        assert scalar_type_from_name("i16") is I16
        assert scalar_type_from_name("f64") is F64

    def test_lookup_by_c_name(self):
        assert scalar_type_from_name("char") is I8
        assert scalar_type_from_name("short") is I16
        assert scalar_type_from_name("int") is I32
        assert scalar_type_from_name("long") is I64
        assert scalar_type_from_name("float") is F32
        assert scalar_type_from_name("double") is F64

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            scalar_type_from_name("quad")

    def test_equality_is_identity_like(self):
        assert ScalarType("i32", 4, False) == I32


class TestVectorType:
    def test_symbolic(self):
        vt = VectorType(F32)
        assert vt.is_symbolic
        assert vt.lanes is None
        with pytest.raises(ValueError):
            _ = vt.size

    def test_concrete_size(self):
        assert VectorType(F32, 4).size == 16
        assert VectorType(I8, 16).size == 16

    def test_with_lanes(self):
        assert VectorType(F32).with_lanes(16).lanes == 4
        assert VectorType(I16).with_lanes(8).lanes == 4

    def test_repr(self):
        assert repr(VectorType(F32)) == "<? x f32>"
        assert repr(VectorType(I8, 16)) == "<16 x i8>"


class TestWidening:
    @pytest.mark.parametrize(
        "narrow,wide", [(I8, I16), (I16, I32), (I32, I64), (F32, F64)]
    )
    def test_widened(self, narrow, wide):
        assert widened(narrow) is wide
        assert narrowed(wide) is narrow

    def test_widened_top_raises(self):
        with pytest.raises(KeyError):
            widened(I64)
        with pytest.raises(KeyError):
            widened(F64)

    def test_narrowed_bottom_raises(self):
        with pytest.raises(KeyError):
            narrowed(I8)
        with pytest.raises(KeyError):
            narrowed(F32)
