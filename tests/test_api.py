"""The redesigned public API: facade, canonical conventions, shims.

Covers the one-call :class:`repro.Pipeline` / :func:`repro.compile_and_run`
facade, the canonical resolvers, the public-API snapshot (so surface
changes are deliberate), and the deprecation shims (which must warn
exactly once per process per alias).
"""

import warnings

import numpy as np
import pytest

import repro
import repro.api as api
from repro import Pipeline, compile_and_run, obs
from repro._compat import reset as reset_warnings
from repro.jit import MonoJIT, OptimizingJIT
from repro.service import KernelService
from repro.targets import SSE, get_target

SRC = """
void saxpy(int n, float alpha, float x[n], float y[n]) {
    for (int i = 0; i < n; i++) {
        y[i] = alpha * x[i] + y[i];
    }
}
"""

TWO_FNS = SRC + """
float total(int n, float x[n]) {
    float s = 0;
    for (int i = 0; i < n; i++) { s += x[i]; }
    return s;
}
"""


def _data(n=64, seed=7):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)
    return x, y


# -- public-API snapshot ------------------------------------------------------


def test_package_all_snapshot():
    assert repro.__all__ == [
        "Pipeline",
        "RunArtifacts",
        "compile_and_run",
        "obs",
        "compile_source",
        "vectorize_function",
        "vectorize_module",
        "split_config",
        "native_config",
        "encode_function",
        "decode_function",
        "encode_module",
        "decode_module",
        "MonoJIT",
        "OptimizingJIT",
        "NativeBackend",
        "specialize_scalars",
        "VM",
        "ArrayBuffer",
        "analyze_loop_throughput",
        "get_target",
        "TARGETS",
        "SSE",
        "ALTIVEC",
        "NEON",
        "AVX",
        "SCALAR",
        "all_kernels",
        "get_kernel",
        "kernel_names",
        "FlowRunner",
        "figure5",
        "figure6",
        "table3",
        "__version__",
    ]
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_api_all_snapshot():
    assert api.__all__ == [
        "Pipeline",
        "RunArtifacts",
        "compile_and_run",
        "resolve_target",
        "resolve_engine",
        "resolve_compiler",
        "COMPILERS",
        "ENGINES",
        "frontend_phase",
        "vectorize_phase",
        "encode_phase",
        "jit_phase",
        "execute_phase",
    ]


# -- canonical resolvers ------------------------------------------------------


def test_resolve_target_accepts_name_and_instance():
    assert api.resolve_target("sse") is get_target("sse")
    assert api.resolve_target(SSE) is SSE
    with pytest.raises(KeyError):
        api.resolve_target("mmx")


def test_resolve_engine_validates():
    assert api.resolve_engine("threaded") == "threaded"
    assert api.resolve_engine("reference") == "reference"
    with pytest.raises(ValueError, match="unknown engine"):
        api.resolve_engine("turbo")


def test_resolve_compiler_name_class_instance():
    assert isinstance(api.resolve_compiler("mono"), MonoJIT)
    assert isinstance(api.resolve_compiler(OptimizingJIT), OptimizingJIT)
    inst = MonoJIT()
    assert api.resolve_compiler(inst) is inst
    with pytest.raises(ValueError, match="unknown compiler"):
        api.resolve_compiler("llvm")


# -- the one-call facade ------------------------------------------------------


def test_compile_and_run_matches_numpy():
    x, y = _data()
    arts = compile_and_run(SRC, {"n": 64, "alpha": 2.5}, {"x": x, "y": y})
    assert arts.function == "saxpy" and arts.target == "sse"
    got = arts.arrays["y"].read_elements()
    assert np.allclose(got, 2.5 * x + y, rtol=1e-5)
    assert arts.cycles > 0 and not arts.degraded
    assert isinstance(arts.bytecode, bytes) and len(arts.bytecode) > 0
    assert arts.vector_ir is not None
    assert arts.trace is None  # tracing was disabled


def test_pipeline_engines_agree():
    x, y = _data()
    a = Pipeline(engine="threaded").run(SRC, {"n": 64, "alpha": 2.0},
                                        {"x": x, "y": y})
    b = Pipeline(engine="reference").run(SRC, {"n": 64, "alpha": 2.0},
                                         {"x": x, "y": y})
    assert a.cycles == b.cycles
    assert np.array_equal(a.arrays["y"].read_elements(),
                          b.arrays["y"].read_elements())


def test_pipeline_scalar_and_forced_scalar_paths():
    x, y = _data()
    scal = Pipeline(vectorize=False).run(SRC, {"n": 64, "alpha": 1.5},
                                         {"x": x, "y": y})
    # Scalar bytecode still rides the wire format (the flow A/E shape).
    assert scal.vector_ir is None and isinstance(scal.bytecode, bytes)
    assert np.allclose(scal.arrays["y"].read_elements(), 1.5 * x + y,
                       rtol=1e-5)
    forced = Pipeline(force_scalar=True).run(SRC, {"n": 64, "alpha": 1.5},
                                             {"x": x, "y": y})
    assert np.allclose(forced.arrays["y"].read_elements(), 1.5 * x + y,
                       rtol=1e-5)
    vec = Pipeline().run(SRC, {"n": 64, "alpha": 1.5}, {"x": x, "y": y})
    assert vec.cycles < forced.cycles  # scalarization costs cycles


def test_pipeline_native_compiler_skips_roundtrip():
    x, y = _data()
    arts = Pipeline(compiler="native", target="avx").run(
        SRC, {"n": 64, "alpha": 3.0}, {"x": x, "y": y}
    )
    assert arts.bytecode is None  # native config: no portable wire format
    assert np.allclose(arts.arrays["y"].read_elements(), 3.0 * x + y,
                       rtol=1e-5)


def test_pipeline_multi_function_module_needs_name():
    x, _ = _data()
    with pytest.raises(ValueError, match="pass function="):
        Pipeline().run(TWO_FNS, {"n": 64, "alpha": 1.0}, {"x": x, "y": x})
    arts = Pipeline().run(TWO_FNS, {"n": 64}, {"x": x}, function="total")
    assert np.isclose(float(arts.value), float(x.sum()), rtol=1e-4)


def test_pipeline_missing_array_is_clear_error():
    with pytest.raises(ValueError, match="'y' not supplied"):
        Pipeline().run(SRC, {"n": 8, "alpha": 1.0}, {"x": np.ones(8, np.float32)})


def test_pipeline_run_captures_trace_when_recording():
    x, y = _data()
    with obs.recording() as ob:
        arts = Pipeline().run(SRC, {"n": 64, "alpha": 2.0},
                              {"x": x, "y": y})
    assert arts.trace is not None
    names = {s.name for s in arts.trace}
    assert {"pipeline", "frontend", "vectorize", "encode", "jit",
            "vm"} <= names
    roots = [s for s in arts.trace if s.parent_id is None]
    assert len(roots) == 1 and roots[0].name == "pipeline"
    assert len(ob.spans()) == len(arts.trace)


def test_smoke_run_covers_jit_and_vm():
    from repro.api import frontend_phase, smoke_run

    fn = frontend_phase(SRC)["saxpy"]
    with obs.recording() as ob:
        result = smoke_run(fn)
    assert result is not None and result.cycles > 0
    assert {s.phase for s in ob.spans()} == {"jit", "vm"}


def test_synthesize_inputs_shapes():
    from repro.api import frontend_phase, synthesize_inputs

    fn = frontend_phase(SRC)["saxpy"]
    scalars, arrays = synthesize_inputs(fn, n=16)
    assert scalars["n"] == 16 and scalars["alpha"] == 1.0
    assert arrays["x"].size == 16 and arrays["y"].size == 16


# -- keyword-only constructor conventions -------------------------------------


def test_constructors_are_keyword_only():
    from repro.harness import FlowRunner

    with pytest.raises(TypeError):
        FlowRunner(0)
    with pytest.raises(TypeError):
        KernelService("somewhere")
    with pytest.raises(TypeError):
        Pipeline("sse")


def test_compiler_compile_accepts_target_name():
    fn = api.frontend_phase(SRC)["saxpy"]
    ck = OptimizingJIT().compile(fn, "neon")
    assert ck.target.name == "neon"


# -- deprecation shims (warn exactly once) ------------------------------------


def test_positional_force_scalar_warns_once():
    reset_warnings()
    fn = api.frontend_phase(SRC)["saxpy"]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        MonoJIT().compile(fn, "sse", True)
        MonoJIT().compile(fn, "sse", True)
    deps = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deps) == 1
    assert "force_scalar" in str(deps[0].message)
    with pytest.raises(TypeError):
        MonoJIT().compile(fn, "sse", True, "extra")


def test_kernel_service_rng_seed_warns_once():
    reset_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        KernelService(rng_seed=3).close()
        KernelService(rng_seed=3).close()
    deps = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deps) == 1
    assert "seed=" in str(deps[0].message)


def test_warn_once_registry_reset():
    from repro._compat import _WARNED, warn_once

    reset_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_once("old_thing", "new_thing")
        warn_once("old_thing", "new_thing")
    assert len(caught) == 1
    assert "old_thing" in _WARNED
    reset_warnings()
    assert "old_thing" not in _WARNED
