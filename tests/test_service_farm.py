"""The cross-process compile fabric (docs/service.md section 7).

Covers the farm end to end through the public service API — dispatch
with byte-identical results, worker-crash rerouting with no torn cache
entry, the per-flight compile-budget watchdog (worker stalls *and*
wedged in-process leaders), the cross-replica leader-marker protocol
(wait-and-read, stale-TTL takeover, injected stale markers) — plus the
satellites that ride along: reservation-style byte-budget admission,
the VBK1 envelope as the farm wire format, and the sharded service
counters.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import faults
from repro.harness.flows import FlowRunner
from repro.kernels import get_kernel
from repro.service import (
    CacheError,
    CacheKey,
    FarmError,
    KernelCache,
    KernelService,
    ServiceRequest,
)
from repro.service.cache import pack_kernel, unpack_kernel
from repro.service.core import _ShardedCounters
from repro.targets import get_target

SIZE = 16
FLOW = "split_vec_gcc4cli"


def _req(kernel="saxpy_fp", **kw):
    kw.setdefault("flow", FLOW)
    kw.setdefault("target", "sse")
    kw.setdefault("size", SIZE)
    return ServiceRequest(kernel, **kw)


def _sig(response):
    r = response.result
    return (r.cycles, r.value, r.bytecode_bytes)


@pytest.fixture()
def farm_svc(tmp_path):
    service = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                            backoff_base=0.0, farm_workers=2)
    yield service
    service.close()


# -- dispatch: results must be indistinguishable from inline ------------------


def test_farm_cold_compiles_match_inline_and_warm_is_byte_identical(tmp_path):
    """Distinct cold misses route through worker processes; execution
    results (cycles, value) must equal an inline service's, and the warm
    read-back of the worker-shipped envelope must be byte-identical to
    the cold response.  (Raw ``bytecode_bytes`` is not compared *across*
    processes: the encoded stream embeds process-global gensym counters,
    which is exactly why cache identity uses ``canonical_crc``.)"""
    reqs = [_req("saxpy_fp"), _req("dscal_fp", target="neon")]

    inline = KernelService(cache_dir=str(tmp_path / "a"), seed=0)
    try:
        want = [(r.result.cycles, r.result.value)
                for r in inline.serve(reqs)]
    finally:
        inline.close()

    svc = KernelService(cache_dir=str(tmp_path / "b"), seed=0,
                        farm_workers=2)
    try:
        cold = svc.serve(reqs)
        assert all(r.ok and not r.from_cache for r in cold)
        assert [(r.result.cycles, r.result.value) for r in cold] == want
        farm = svc.stats()["farm"]
        assert farm["completed"] == len(reqs) == farm["dispatched"]
        # Warm read-back of the worker-produced envelope is byte-identical.
        warm = svc.serve(reqs)
        assert all(r.ok and r.from_cache for r in warm)
        assert [_sig(r) for r in warm] == [_sig(r) for r in cold]
    finally:
        svc.close()


def test_farm_mirrors_compile_metrics_in_parent(tmp_path):
    """jit.* metrics keep meaning one-per-compile even when the compile
    ran in a worker process (the leader mirrors them on dispatch)."""
    from repro import obs

    with obs.recording(trace=True, metrics=True) as ob:
        svc = KernelService(cache_dir=str(tmp_path / "c"), seed=0,
                            farm_workers=1)
        try:
            assert svc.handle(_req()).ok
        finally:
            svc.close()
    snap = ob.metrics_snapshot()
    assert int(snap["jit.compiles"]["value"]) == 1
    assert any(sp.name == "service.farm.dispatch" for sp in ob.spans())


# -- fault paths: crash, stall, watchdog --------------------------------------


def test_worker_crash_mid_compile_reroutes_without_torn_entry(tmp_path):
    """A worker hard-killed mid-compile (os._exit) must not take the
    request down: the leader detects the broken pool, rebuilds it,
    reroutes the compile inline, and the cache entry it publishes is
    whole (warm re-serve byte-identical)."""
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        farm_workers=1)
    try:
        plan = faults.FaultPlan([faults.WorkerCrash(kernel="saxpy_fp")])
        with faults.injected(plan):
            resp = svc.handle(_req())
        assert resp.ok and not resp.from_cache
        stats = svc.stats()
        assert stats["farm"]["crashes"] == 1
        assert stats["farm"]["rebuilds"] == 1
        assert stats["farm_fallbacks"] == 1
        # No torn entry: the rerouted compile's artifact reads back whole.
        warm = svc.handle(_req())
        assert warm.ok and warm.from_cache
        assert _sig(warm) == _sig(resp)
    finally:
        svc.close()


def test_worker_stall_trips_compile_budget_watchdog(tmp_path):
    """A wedged worker is reclaimed by the per-flight compile budget:
    the dispatch times out, the pool is rebuilt, and the compile is
    rerouted inline — the caller just sees a slower success."""
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        farm_workers=1, farm_budget_s=0.3)
    try:
        plan = faults.FaultPlan([faults.WorkerStall(seconds=30.0)])
        with faults.injected(plan):
            start = time.monotonic()
            resp = svc.handle(_req())
            elapsed = time.monotonic() - start
        assert resp.ok
        assert elapsed < 15.0  # reclaimed by budget, not the stall
        stats = svc.stats()
        assert stats["farm"]["stalls"] == 1
        assert stats["farm"]["rebuilds"] == 1
        assert stats["farm_fallbacks"] == 1
    finally:
        svc.close()


def test_follower_usurps_wedged_inprocess_leader(tmp_path):
    """The compile-budget watchdog also guards in-process flights: a
    follower that has waited past the budget removes the wedged flight
    from the single-flight table and compiles for itself."""
    from repro.harness import flows as flows_mod

    form, jit_cls = flows_mod.FLOWS[FLOW]
    gate = threading.Event()
    state = {"n": 0}
    lock = threading.Lock()

    class WedgedFirstJIT(jit_cls):
        def compile(self, *args, **kwargs):
            with lock:
                state["n"] += 1
                first = state["n"] == 1
            if first:
                gate.wait(timeout=10.0)  # wedge the first leader
            return super().compile(*args, **kwargs)

    flows_mod.FLOWS[FLOW] = (form, WedgedFirstJIT)
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        workers=4, farm_budget_s=0.2)
    try:
        results = [None, None]

        def worker(i):
            results[i] = svc.handle(_req())

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        # Let the usurper finish, then release the wedged leader.
        time.sleep(1.5)
        gate.set()
        for t in threads:
            t.join(timeout=20.0)
        assert all(r is not None and r.ok for r in results)
        stats = svc.stats()
        assert stats["flight_usurps"] >= 1
        assert stats["singleflight"]["usurped"] >= 1
    finally:
        svc.close()
        flows_mod.FLOWS[FLOW] = (form, jit_cls)


# -- cross-replica coalescing -------------------------------------------------


def _key_for(svc, kernel="saxpy_fp", target="sse"):
    inst = get_kernel(kernel).instantiate(SIZE)
    key, _ir, _jit = svc._cache_key_ir(inst, FLOW, get_target(target))
    return key


def test_replica_waits_for_fresh_marker_and_reads_entry(tmp_path):
    """Two services on one cache directory: while replica A's leader
    marker is fresh, replica B polls instead of compiling, and serves
    the entry A publishes — one compile across processes."""
    cache_dir = str(tmp_path / "shared")
    a = KernelService(cache_dir=cache_dir, seed=0)
    b = KernelService(cache_dir=cache_dir, seed=0, farm_budget_s=10.0)
    try:
        key = _key_for(a)
        token = a.cache.claim_leader(key, ttl_s=30.0)  # "A is compiling"
        assert isinstance(token, str)

        done = {}

        def follower():
            done["resp"] = b.handle(_req())

        t = threading.Thread(target=follower)
        t.start()
        time.sleep(0.2)  # B is polling the fresh marker
        assert "resp" not in done
        # A finishes its compile and publishes the entry.
        a.replica_coalesce = False
        lead = a.handle(_req())
        assert lead.ok
        t.join(timeout=20.0)

        resp = done["resp"]
        assert resp.ok and resp.from_cache
        assert _sig(resp) == _sig(lead)
        stats = b.stats()
        assert stats["replica_waits"] == 1
        assert stats["replica_hits"] == 1
        a.cache.release_leader(key, token)
    finally:
        a.close()
        b.close()


def test_stale_marker_takeover_between_replicas(tmp_path):
    """A marker older than the TTL is a dead replica's: the waiter
    unlinks it, claims leadership, and compiles — no deadline-less
    follower is stranded behind a crashed leader."""
    cache_dir = str(tmp_path / "shared")
    a = KernelService(cache_dir=cache_dir, seed=0)
    b = KernelService(cache_dir=cache_dir, seed=0, marker_ttl_s=5.0)
    try:
        key = _key_for(a)
        token = a.cache.claim_leader(key, ttl_s=5.0)
        assert isinstance(token, str)
        # Age A's marker past the TTL: A "died" holding leadership.
        marker = b.cache._marker_path(key)
        old = time.time() - 60.0
        os.utime(marker, (old, old))

        resp = b.handle(_req())
        assert resp.ok and not resp.from_cache
        assert b.cache.marker_takeovers == 1
        # The stale marker is gone; B released its own claim after.
        assert not os.path.exists(marker)
    finally:
        a.close()
        b.close()


def test_injected_stale_marker_fault_forces_takeover(tmp_path):
    """faults.StaleMarker plants an expired foreign marker right before
    the claim — the service must take over and still serve."""
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0)
    try:
        plan = faults.FaultPlan([faults.StaleMarker()])
        with faults.injected(plan):
            resp = svc.handle(_req())
        assert resp.ok
        assert svc.cache.marker_takeovers == 1
        assert svc.cache.marker_claims == 1
    finally:
        svc.close()


def test_replica_budget_reclaims_leadership_from_wedged_replica(tmp_path):
    """A fresh-but-wedged foreign marker cannot strand a follower: once
    the compile budget expires, the waiter force-takes leadership."""
    cache_dir = str(tmp_path / "shared")
    svc = KernelService(cache_dir=cache_dir, seed=0, farm_budget_s=0.3,
                        marker_ttl_s=3600.0)
    try:
        key = _key_for(svc)
        other = KernelCache(cache_dir)
        token = other.claim_leader(key, ttl_s=3600.0)  # wedged replica
        assert isinstance(token, str)

        start = time.monotonic()
        resp = svc.handle(_req())
        assert resp.ok
        assert time.monotonic() - start < 15.0
        assert svc.cache.marker_takeovers == 1
        assert svc.stats()["replica_waits"] == 1
    finally:
        svc.close()


# -- envelope as wire format --------------------------------------------------


def test_pack_unpack_kernel_roundtrip_and_corruption(tmp_path):
    runner = FlowRunner()
    inst = get_kernel("saxpy_fp").instantiate(SIZE)
    ck = runner.compiled(inst, FLOW, get_target("sse"))

    envelope = pack_kernel(ck)
    ck2 = unpack_kernel(envelope)
    assert (ck2.compiler, ck2.compile_seconds, ck2.degraded) == \
        (ck.compiler, ck.compile_seconds, ck.degraded)
    assert ck2.stats == ck.stats
    # The byte-identity guarantee is store-exact-bytes (put_bytes keeps a
    # worker's envelope verbatim), not canonical re-serialization: pickle
    # bytes legitimately differ on repack, but must stay a valid envelope.
    assert unpack_kernel(pack_kernel(ck2)).compiler == ck.compiler

    corrupt = bytearray(envelope)
    corrupt[len(corrupt) // 2] ^= 0x40
    with pytest.raises(CacheError):
        unpack_kernel(bytes(corrupt))


# -- reservation-style byte-budget admission ----------------------------------


def _envelope(kernel="saxpy_fp", target="sse"):
    runner = FlowRunner()
    inst = get_kernel(kernel).instantiate(SIZE)
    return pack_kernel(runner.compiled(inst, FLOW, get_target(target)))


def test_oversize_entry_rejected_before_any_write(tmp_path):
    data = _envelope()
    cache = KernelCache(str(tmp_path / "kc"), byte_budget=len(data) - 1)
    key = CacheKey(0x1, "sse", "gcc4cli")
    assert cache.put_bytes(key, data) is False
    assert cache.oversize_rejects == 1
    assert os.listdir(cache.root) == []  # no tempfile ever landed
    stats = cache.stats()
    assert stats["pending_bytes"] == 0 and stats["bytes"] == 0


def test_reservation_evicts_before_write_and_rolls_back(tmp_path):
    data = _envelope()
    cache = KernelCache(str(tmp_path / "kc"), byte_budget=len(data) + 8)
    k1, k2 = CacheKey(0x1, "sse", "gcc4cli"), CacheKey(0x2, "sse", "gcc4cli")
    assert cache.put_bytes(k1, data)
    assert cache.put_bytes(k2, data)  # must evict k1 to fit
    assert cache.get(k1) is None and cache.get(k2) is not None
    stats = cache.stats()
    assert stats["bytes"] <= len(data) + 8
    assert stats["pending_bytes"] == 0

    # A failed write releases its reservation.
    plan = faults.FaultPlan([faults.CacheTornWrite()])
    with faults.injected(plan):
        assert cache.put_bytes(CacheKey(0x3, "sse", "gcc4cli"), data) is False
    assert cache.stats()["pending_bytes"] == 0
    assert cache.put_failures == 1


def test_concurrent_puts_respect_budget_via_reservations(tmp_path):
    data = _envelope()
    cache = KernelCache(str(tmp_path / "kc"),
                        byte_budget=2 * len(data) + 8)
    errs = []

    def put(i):
        try:
            cache.put_bytes(CacheKey(0x100 + i, "sse", "gcc4cli"), data)
        except Exception as exc:  # pragma: no cover - fail loudly below
            errs.append(exc)

    threads = [threading.Thread(target=put, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errs
    stats = cache.stats()
    # Reservations keep the budget a hard bound even when eight puts
    # race: inserts that cannot fit after draining the index are given
    # up (budget_rejects), never allowed to overshoot.
    assert stats["bytes"] <= 2 * len(data) + 8
    assert stats["pending_bytes"] == 0
    assert stats["entries"] + cache.budget_rejects + cache.evictions == 8


# -- sharded counters ---------------------------------------------------------


def test_sharded_counters_sum_exactly_under_contention():
    counters = _ShardedCounters(["a", "b"])
    per_thread, threads_n = 5000, 8

    def hammer():
        for _ in range(per_thread):
            counters.bump("a")
            counters.bump("b", 2)

    threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = counters.snapshot()
    assert snap["a"] == per_thread * threads_n
    assert snap["b"] == 2 * per_thread * threads_n


def test_service_stats_stay_consistent_while_hammered(tmp_path):
    """stats() snapshots mid-traffic must never lose increments."""
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        workers=4)
    try:
        stop = threading.Event()
        snaps = []

        def reader():
            while not stop.is_set():
                snaps.append(svc.stats()["requests"])

        t = threading.Thread(target=reader)
        t.start()
        n = 24
        responses = svc.serve([_req()] * n)
        stop.set()
        t.join()
        assert all(r.ok for r in responses)
        assert svc.stats()["requests"] == n
        assert all(s <= n for s in snaps)
        assert snaps == sorted(snaps)  # monotonic merge
    finally:
        svc.close()


# -- farm lifecycle -----------------------------------------------------------


def test_farm_close_is_classified_and_idempotent(tmp_path):
    from repro.service import CompileFarm, CompileJob

    farm = CompileFarm(1, budget_s=5.0)
    farm.close()
    farm.close()  # idempotent
    job = CompileJob(key=CacheKey(0x0, "sse", "gcc4cli"), kernel="saxpy_fp",
                     size=SIZE, flow=FLOW, target="sse")
    with pytest.raises(FarmError) as exc:
        farm.compile(job)
    assert "[closed]" in str(exc.value)


def test_farm_key_mismatch_is_remote_classified(tmp_path):
    """A job whose CacheKey does not match the worker's rebuilt IR is
    refused by the worker (defense against identity drift)."""
    from repro.service import CompileFarm, CompileJob

    farm = CompileFarm(1, budget_s=30.0)
    try:
        job = CompileJob(key=CacheKey(0xBAD0BAD, "sse", "gcc4cli"),
                         kernel="saxpy_fp", size=SIZE, flow=FLOW,
                         target="sse")
        with pytest.raises(FarmError) as exc:
            farm.compile(job)
        assert "[key-mismatch]" in str(exc.value)
    finally:
        farm.close()
