"""Tests for the machine layer: memory model, VM semantics (hypothesis-
checked against numpy), flattening, register allocation, and the IACA
analyzer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.ir import F32, F64, I8, I16, I32
from repro.machine import (
    GUARD_BYTES,
    VM,
    ArrayBuffer,
    FlattenOptions,
    MFunction,
    VMError,
    VReg,
    allocate_linear_scan,
    allocate_local,
    analyze_loop_throughput,
    flatten,
)
from repro.machine.mir import GPR, VEC
from repro.targets import ALTIVEC, AVX, NEON, SCALAR, SSE


class TestArrayBuffer:
    def test_roundtrip(self, rng):
        data = rng.standard_normal(17).astype(np.float32)
        buf = ArrayBuffer(F32, 17, data=data)
        assert np.array_equal(buf.read_elements(), data)

    def test_base_alignment(self):
        for mis in (0, 4, 12):
            buf = ArrayBuffer(F32, 8, base_misalign=mis)
            assert buf.address_of(0) % 32 == mis

    def test_invalid_misalign(self):
        with pytest.raises(ValueError):
            ArrayBuffer(F32, 8, base_misalign=40)

    def test_guard_region_allows_floor_overread(self):
        buf = ArrayBuffer(F32, 4)
        # Reading one vector past the last element stays in the guard.
        raw = buf.load_bytes(4 * 4, 16)
        assert raw.size == 16

    def test_out_of_bounds_raises(self):
        buf = ArrayBuffer(F32, 4)
        with pytest.raises(IndexError):
            buf.load_bytes(4 * 4 + GUARD_BYTES, 16)

    def test_vector_store_load(self):
        buf = ArrayBuffer(I16, 16)
        v = np.arange(8, dtype=np.int16)
        buf.store_vector(4, v)
        assert np.array_equal(buf.load_vector(4, np.dtype(np.int16), 8), v)

    def test_overlap_and_alias_view(self):
        a = ArrayBuffer(I8, 64)
        b = ArrayBuffer(I8, 64)
        assert not a.overlaps(b)
        view = a.alias_view(I8, 32, byte_offset=8)
        assert a.overlaps(view)
        view.store_scalar(0, 42, np.dtype(np.int8))
        assert a.read_elements()[8] == 42

    @given(st.integers(0, 24), st.integers(1, 8))
    def test_scalar_access_roundtrip(self, off, count):
        buf = ArrayBuffer(I32, 32)
        buf.store_scalar(off * 4, off * 3 - 5, np.dtype(np.int32))
        assert buf.load_scalar(off * 4, np.dtype(np.int32)) == off * 3 - 5


def _run_expr(src, name, args, arrays=None, target=SSE, opts=None):
    fn = compile_source(src)[name]
    mf = flatten(fn, opts or FlattenOptions())
    bufs = {}
    for a in fn.array_params:
        data = arrays[a.name]
        bufs[a.name] = ArrayBuffer(a.elem, len(data), data=data)
    return VM(target).run(mf, args, bufs), bufs


class TestVMScalarSemantics:
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=100)
    def test_i32_add_wraps(self, a, b):
        res, _ = _run_expr(
            "int f(int a, int b) { return a + b; }", "f", {"a": a, "b": b}
        )
        with np.errstate(over="ignore"):
            expect = int(np.int32(np.int32(a) + np.int32(b)))
        assert int(res.value) == expect

    @given(st.integers(-128, 127), st.integers(-128, 127))
    @settings(max_examples=100)
    def test_i8_mul_wraps(self, a, b):
        res, _ = _run_expr(
            "char f(char a, char b) { return (char)(a * b); }",
            "f", {"a": a, "b": b},
        )
        with np.errstate(over="ignore"):
            expect = int(np.int8(np.int8(a) * np.int8(b)))
        assert int(res.value) == expect

    @given(
        st.floats(-1e6, 1e6, allow_nan=False),
        st.floats(-1e6, 1e6, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_f32_arith(self, a, b):
        res, _ = _run_expr(
            "float f(float a, float b) { return a * b + a; }",
            "f", {"a": a, "b": b},
        )
        expect = np.float32(a) * np.float32(b) + np.float32(a)
        assert float(res.value) == pytest.approx(float(expect), rel=1e-6)

    @given(st.integers(-1000, 1000), st.integers(1, 100))
    def test_c_division(self, a, b):
        res, _ = _run_expr(
            "int f(int a, int b) { return a / b; }", "f", {"a": a, "b": b}
        )
        expect = int(a / b)  # trunc toward zero
        assert int(res.value) == expect

    @given(st.integers(-1000, 1000), st.integers(1, 100))
    def test_c_modulo(self, a, b):
        res, _ = _run_expr(
            "int f(int a, int b) { return a % b; }", "f", {"a": a, "b": b}
        )
        assert int(res.value) == int(np.fmod(a, b))

    @given(st.floats(-100, 100, allow_nan=False))
    def test_float_to_int_truncates(self, x):
        res, _ = _run_expr(
            "int f(float x) { return (int)x; }", "f", {"x": x}
        )
        assert int(res.value) == int(np.float32(x))

    def test_abs_min_max(self):
        res, _ = _run_expr(
            "int f(int a, int b) { return abs(a - b) + min(a, b) - max(a, b); }",
            "f", {"a": -3, "b": 9},
        )
        assert int(res.value) == 12 + (-3) - 9

    def test_sqrt(self):
        res, _ = _run_expr(
            "float f(float x) { return sqrt(x); }", "f", {"x": 2.0}
        )
        assert float(res.value) == pytest.approx(2 ** 0.5, rel=1e-6)


class TestVMVectorSemantics:
    """Drive vector opcodes directly through a hand-built MFunction."""

    def _mf(self):
        return MFunction("t")

    def _exec(self, mf, arrays=None, target=SSE):
        return VM(target).run(mf, {}, arrays or {})

    def test_vsplat_and_vadd(self):
        mf = self._mf()
        s = VReg.fresh(GPR, I32)
        v1 = VReg.fresh(VEC)
        v2 = VReg.fresh(VEC)
        out = VReg.fresh(VEC)
        mf.emit("const", s, value=7, type=I32)
        mf.emit("vsplat", v1, [s], elem=I32, lanes=4)
        mf.emit("vsplat", v2, [s], elem=I32, lanes=4)
        mf.emit("vadd", out, [v1, v2], elem=I32, lanes=4)
        mf.emit("vreduce", s, [out], kind="plus")
        mf.emit("ret", srcs=[s])
        assert int(self._exec(mf).value) == 4 * 14

    def test_vaffine(self):
        mf = self._mf()
        base = VReg.fresh(GPR, I32)
        inc = VReg.fresh(GPR, I32)
        v = VReg.fresh(VEC)
        out = VReg.fresh(GPR, I32)
        mf.emit("const", base, value=10, type=I32)
        mf.emit("const", inc, value=3, type=I32)
        mf.emit("vaffine", v, [base, inc], elem=I32, lanes=4)
        mf.emit("vreduce", out, [v], kind="max")
        mf.emit("ret", srcs=[out])
        assert int(self._exec(mf).value) == 19

    def test_vperm_realigns(self):
        # lvsr + two floor-aligned loads + vperm == misaligned load.
        data = np.arange(16, dtype=np.float32)
        buf = ArrayBuffer(F32, 16, data=data)
        mf = self._mf()
        idx = VReg.fresh(GPR, I32)
        rt = VReg.fresh(GPR)
        v1 = VReg.fresh(VEC)
        v2 = VReg.fresh(VEC)
        out = VReg.fresh(VEC)
        red = VReg.fresh(GPR, F32)
        mf.arrays.append(__import__("repro.machine.mir", fromlist=["ArraySlot"]).ArraySlot("a", F32))
        mf.emit("const", idx, value=3 * 4, type=I32)  # byte offset of a[3]
        mf.emit("lvsr", rt, [idx], array="a")
        mf.emit("vload_fa", v1, [idx], array="a", elem=F32, lanes=4)
        idx2 = VReg.fresh(GPR, I32)
        mf.emit("const", idx2, value=3 * 4 + 16, type=I32)
        mf.emit("vload_fa", v2, [idx2], array="a", elem=F32, lanes=4)
        mf.emit("vperm", out, [v1, v2, rt])
        mf.emit("vreduce", red, [out], kind="plus")
        mf.emit("ret", srcs=[red])
        res = self._exec(mf, {"a": buf}, target=ALTIVEC)
        assert float(res.value) == float(data[3:7].sum())

    def test_vload_a_traps_on_misaligned(self):
        buf = ArrayBuffer(F32, 16)
        mf = self._mf()
        from repro.machine.mir import ArraySlot

        mf.arrays.append(ArraySlot("a", F32))
        idx = VReg.fresh(GPR, I32)
        v = VReg.fresh(VEC)
        mf.emit("const", idx, value=4, type=I32)
        mf.emit("vload_a", v, [idx], array="a", elem=F32, lanes=4)
        mf.emit("ret")
        with pytest.raises(VMError):
            self._exec(mf, {"a": buf})

    def test_vstore_a_traps_on_misaligned(self):
        buf = ArrayBuffer(F32, 16)
        mf = self._mf()
        from repro.machine.mir import ArraySlot

        mf.arrays.append(ArraySlot("a", F32))
        idx = VReg.fresh(GPR, I32)
        s = VReg.fresh(GPR, F32)
        v = VReg.fresh(VEC)
        mf.emit("const", idx, value=8, type=I32)
        mf.emit("const", s, value=1.0, type=F32)
        mf.emit("vsplat", v, [s], elem=F32, lanes=4)
        mf.emit("vstore_a", srcs=[idx, v], array="a")
        mf.emit("ret")
        with pytest.raises(VMError):
            self._exec(mf, {"a": buf})

    @given(st.lists(st.integers(-100, 100), min_size=8, max_size=8))
    @settings(max_examples=50)
    def test_vwidenmul_halves(self, vals):
        a = np.array(vals, np.int8)
        mf = self._mf()
        from repro.machine.mir import ArraySlot

        mf.arrays.append(ArraySlot("a", I8))
        idx = VReg.fresh(GPR, I32)
        v = VReg.fresh(VEC)
        lo = VReg.fresh(VEC)
        hi = VReg.fresh(VEC)
        slo = VReg.fresh(GPR, I16)
        shi = VReg.fresh(GPR, I16)
        out = VReg.fresh(GPR, I16)
        mf.emit("const", idx, value=0, type=I32)
        mf.emit("vload_u", v, [idx], array="a", elem=I8, lanes=8)
        mf.emit("vwidenmul", lo, [v, v], elem=I16, lanes=4, half="lo")
        mf.emit("vwidenmul", hi, [v, v], elem=I16, lanes=4, half="hi")
        mf.emit("vreduce", slo, [lo], kind="plus")
        mf.emit("vreduce", shi, [hi], kind="plus")
        mf.emit("add", out, [slo, shi], type=I16)
        mf.emit("ret", srcs=[out])
        buf = ArrayBuffer(I8, 8, data=a)
        res = self._exec(mf, {"a": buf})
        expect = int(np.int16((a.astype(np.int16) ** 2).sum()))
        assert int(res.value) == expect

    def test_vextract_and_vinterleave_inverse(self):
        data = np.arange(8, dtype=np.float32)
        mf = self._mf()
        from repro.machine.mir import ArraySlot

        mf.arrays.append(ArraySlot("a", F32))
        mf.arrays.append(ArraySlot("out", F32))
        z = VReg.fresh(GPR, I32)
        w1 = VReg.fresh(VEC)
        w2 = VReg.fresh(VEC)
        even = VReg.fresh(VEC)
        odd = VReg.fresh(VEC)
        lo = VReg.fresh(VEC)
        hi = VReg.fresh(VEC)
        mf.emit("const", z, value=0, type=I32)
        mf.emit("vload_u", w1, [z], array="a", elem=F32, lanes=4)
        z2 = VReg.fresh(GPR, I32)
        mf.emit("const", z2, value=16, type=I32)
        mf.emit("vload_u", w2, [z2], array="a", elem=F32, lanes=4)
        mf.emit("vextract", even, [w1, w2], elem=F32, lanes=4, stride=2, offset=0)
        mf.emit("vextract", odd, [w1, w2], elem=F32, lanes=4, stride=2, offset=1)
        mf.emit("vinterleave", lo, [even, odd], elem=F32, lanes=4, half="lo")
        mf.emit("vinterleave", hi, [even, odd], elem=F32, lanes=4, half="hi")
        mf.emit("vstore_u", srcs=[z, lo], array="out")
        mf.emit("vstore_u", srcs=[z2, hi], array="out")
        mf.emit("ret")
        bufs = {"a": ArrayBuffer(F32, 8, data=data), "out": ArrayBuffer(F32, 8)}
        self._exec(mf, bufs)
        assert np.array_equal(bufs["out"].read_elements(), data)

    def test_vdot_pairwise(self):
        a = np.array([1, 2, 3, 4, 5, 6, 7, 8], np.int16)
        mf = self._mf()
        from repro.machine.mir import ArraySlot

        mf.arrays.append(ArraySlot("a", I16))
        z = VReg.fresh(GPR, I32)
        v = VReg.fresh(VEC)
        acc = VReg.fresh(VEC)
        zero = VReg.fresh(GPR, I32)
        out = VReg.fresh(GPR, I32)
        mf.emit("const", z, value=0, type=I32)
        mf.emit("const", zero, value=0, type=I32)
        mf.emit("vload_u", v, [z], array="a", elem=I16, lanes=8)
        mf.emit("vsplat", acc, [zero], elem=I32, lanes=4)
        mf.emit("vdot", acc, [v, v, acc], elem=I32, lanes=4)
        mf.emit("vreduce", out, [acc], kind="plus")
        mf.emit("ret", srcs=[out])
        res = self._exec(mf, {"a": ArrayBuffer(I16, 8, data=a)})
        assert int(res.value) == int((a.astype(np.int32) ** 2).sum())

    def test_call_lib_same_semantics(self):
        mf = self._mf()
        s = VReg.fresh(GPR, I8)
        v = VReg.fresh(VEC)
        lo = VReg.fresh(VEC)
        out = VReg.fresh(GPR, I16)
        mf.emit("const", s, value=3, type=I8)
        mf.emit("vsplat", v, [s], elem=I8, lanes=8)
        mf.emit("call_lib", lo, [v, v], sem="vwidenmul", elem=I16, lanes=4,
                half="lo")
        mf.emit("vreduce", out, [lo], kind="plus")
        mf.emit("ret", srcs=[out])
        res = self._exec(mf, target=NEON)
        assert int(res.value) == 4 * 9
        # The library call is priced like a call, not like the idiom.
        assert res.cycles >= NEON.cost.get("call_lib")


class TestRegalloc:
    def _kernel(self):
        return compile_source(
            "float f(int n, float a[], float b[], float c[], float d[]) {"
            " float s = 0;"
            " for (int i = 0; i < n; i++) {"
            "   s += a[i] * b[i] + c[i] * d[i];"
            " } return s; }"
        )["f"]

    def _run(self, mf, n=40):
        rng = np.random.default_rng(0)
        arrays = {
            k: rng.standard_normal(n).astype(np.float32)
            for k in "abcd"
        }
        bufs = {k: ArrayBuffer(F32, n, data=v) for k, v in arrays.items()}
        res = VM(SSE).run(mf, {"n": n}, bufs)
        expect = (
            arrays["a"] * arrays["b"] + arrays["c"] * arrays["d"]
        ).sum()
        assert float(res.value) == pytest.approx(float(expect), rel=1e-4)
        return res

    def test_local_alloc_preserves_semantics(self):
        mf = flatten(self._kernel(), FlattenOptions(rematerialize_consts=True))
        allocate_local(mf, SSE)
        self._run(mf)

    def test_local_alloc_spills_under_pressure(self):
        # Six live accumulators exceed x86's pinnable FPR budget; Mono's
        # local allocator must go to memory for the rest.
        src = (
            "float g(int n, float a[]) {"
            + "".join(f" float s{k} = 0;" for k in range(6))
            + " for (int i = 0; i < n; i++) {"
            + "".join(f" s{k} += a[i] * {float(k + 1)};" for k in range(6))
            + " } return s0 + s1 + s2 + s3 + s4 + s5; }"
        )
        fn = compile_source(src)["g"]
        mf = flatten(fn, FlattenOptions(rematerialize_consts=True))
        stats = allocate_local(mf, SSE)
        assert stats.spilled_values > 0
        n = 32
        data = np.ones(n, np.float32)
        bufs = {"a": ArrayBuffer(F32, n, data=data)}
        res = VM(SSE).run(mf, {"n": n}, bufs)
        assert float(res.value) == pytest.approx(n * (1 + 2 + 3 + 4 + 5 + 6))

    def test_local_alloc_spills_less_on_ppc(self):
        mf_x86 = flatten(self._kernel(), FlattenOptions())
        s_x86 = allocate_local(mf_x86, SSE)
        mf_ppc = flatten(self._kernel(), FlattenOptions())
        s_ppc = allocate_local(mf_ppc, ALTIVEC)
        assert s_ppc.spilled_values <= s_x86.spilled_values

    def test_linear_scan_no_spills_under_pressure_limit(self):
        mf = flatten(self._kernel(), FlattenOptions())
        stats = allocate_linear_scan(mf, ALTIVEC)
        assert stats.spilled_values == 0
        self._run(mf)

    def test_linear_scan_preserves_semantics_when_spilling(self):
        from dataclasses import replace

        tiny = replace(SSE, gpr_count=3, fpr_count=2)
        mf = flatten(self._kernel(), FlattenOptions())
        stats = allocate_linear_scan(mf, tiny)
        assert stats.spilled_values > 0
        self._run(mf)


class TestIACA:
    def test_throughput_of_vector_loop(self, runner):
        from repro.jit import NativeBackend
        from repro.kernels import get_kernel

        inst = get_kernel("saxpy_fp").instantiate()
        ck = NativeBackend().compile(runner.native_ir(inst, AVX), AVX)
        report = analyze_loop_throughput(ck.mfunc, AVX)
        assert report.vector_uops >= 3  # 2 loads + mul + add + store
        assert 1 <= report.rounded() <= 6

    def test_no_loops(self):
        mf = MFunction("empty")
        mf.emit("ret")
        assert analyze_loop_throughput(mf, AVX).cycles_per_iter == 0.0


class TestFlattenOptions:
    def test_scaled_addressing_reduces_instructions(self):
        fn = compile_source(
            "void f(int n, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; } }"
        )["f"]
        lean = flatten(fn, FlattenOptions(scaled_addressing=True))
        fat = flatten(fn, FlattenOptions(scaled_addressing=False))
        assert len(lean.instrs) < len(fat.instrs)

    def test_remat_consts_increases_instructions(self):
        fn = compile_source(
            "void f(int n, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i] = a[i] * 3.0 + 3.0; } }"
        )["f"]
        cached = flatten(fn, FlattenOptions())
        remat = flatten(fn, FlattenOptions(rematerialize_consts=True))
        n = 16
        data = np.ones(n, np.float32)
        for mf in (cached, remat):
            bufs = {"a": ArrayBuffer(F32, n, data=data)}
            VM(SSE).run(mf, {"n": n}, bufs)
            assert np.allclose(bufs["a"].read_elements(), 6.0)
        r_cached = VM(SSE).run(
            cached, {"n": n}, {"a": ArrayBuffer(F32, n, data=data)}
        )
        r_remat = VM(SSE).run(
            remat, {"n": n}, {"a": ArrayBuffer(F32, n, data=data)}
        )
        assert r_remat.instructions > r_cached.instructions
