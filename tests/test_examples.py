"""The example scripts must run clean (they contain their own asserts)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "run_everywhere.py", "audio_pipeline.py",
     "image_dissolve.py", "adaptive_jit.py"],
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_quickstart_reports_all_targets():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    for target in ("sse", "altivec", "neon", "avx", "scalar"):
        assert target in result.stdout


def test_run_everywhere_shows_schemes():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "run_everywhere.py")],
        capture_output=True, text=True, timeout=300,
    )
    out = result.stdout
    assert "realign_load" in out            # the Figure 3a bytecode
    assert "mis=8, mod=32" in out           # the paper's exact hint
    assert "explicit realignment" in out    # AltiVec scheme
    assert "misaligned load" in out         # SSE scheme
    assert "aligned load" in out            # NEON scheme
    assert "scalarized" in out              # no-SIMD scheme
