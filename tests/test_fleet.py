"""The self-healing replica fleet (docs/service.md section 9).

Covers the supervisor tier end to end: client-side hash sharding and
the per-call failover ordering, replica spawn + ``LISTENING`` port
discovery, the crash-loop flap suppression (park with a classified
``FleetError``), the wedged-replica probe deadline (a stalled replica
never hangs its prober), the single-replica ``kill -9``
crash-consistency story (no torn cache entry served, quarantine stays
empty, the recompile matches the warm bytes), the SIGKILL farm-orphan
regression (parent-death watchdog), and a quick fleet chaos gate (CI
runs the full 200-fault campaigns).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import classify
from repro.service import (
    DeadlineError,
    FleetError,
    FleetSupervisor,
    GatewayClient,
    KernelService,
    NetworkError,
    ServiceRequest,
    ThreadedGateway,
)
from repro.service.cache import unpack_kernel
from repro.service.client import parse_address, shard_index

SIZE = 16
FLOW = "split_vec_gcc4cli"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
KERNELS = ("saxpy_fp", "dscal_fp", "interp_fp", "sfir_fp")


def _compile_payload(kernel="saxpy_fp", target="sse", size=SIZE):
    return {"op": "compile", "kernel": kernel, "flow": FLOW,
            "target": target, "size": size}


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _wait_dead(pids, timeout=20.0):
    deadline = time.perf_counter() + timeout
    alive = [p for p in pids if _pid_alive(p)]
    while alive and time.perf_counter() < deadline:
        time.sleep(0.05)
        alive = [p for p in pids if _pid_alive(p)]
    return alive


# -- client-side sharding -----------------------------------------------------


def test_shard_index_deterministic_and_pinned():
    """Placement is a pure function of the request shape — pinned
    values guard the canonical shape string against accidental change
    (a silent change would reshuffle every deployed shard map)."""
    p = _compile_payload()
    assert [shard_index(p, n) for n in (1, 2, 3, 5, 8)] == [0, 1, 0, 4, 5]
    assert shard_index(dict(p), 3) == shard_index(p, 3)


def test_shard_index_applies_gateway_defaults():
    """A payload that omits flow/target shards exactly like one that
    spells out the gateway's defaults — the client-side hash must agree
    with the server-side request defaulting."""
    bare = {"op": "compile", "kernel": "saxpy_fp", "size": SIZE}
    full = _compile_payload()
    for n in (2, 3, 5):
        assert shard_index(bare, n) == shard_index(full, n)


def test_shard_index_ignores_non_shape_keys():
    """Only the cache-identity shape contributes: op, deadlines, or any
    future bookkeeping key must not move a request between replicas."""
    base = _compile_payload()
    noisy = dict(base, op="compile", request_id="abc", attempt=7)
    for n in (2, 3, 5):
        assert shard_index(base, n) == shard_index(noisy, n)


def test_shard_index_spreads_across_slots():
    grid = {
        shard_index(_compile_payload(kernel=k, size=s), 3)
        for k in KERNELS
        for s in (8, 16, 24, 32)
    }
    assert len(grid) > 1
    assert grid <= {0, 1, 2}


def _order_client(slots, **kwargs):
    return GatewayClient(lambda: list(slots), **kwargs)


def test_call_order_puts_shard_owner_first():
    slots = [("127.0.0.1", 9001), ("127.0.0.1", 9002), ("127.0.0.1", 9003)]
    payload = _compile_payload()
    owner = slots[shard_index(payload, 3)]
    c = _order_client(slots, seed=3)
    for _ in range(8):
        order = c._call_order(payload)
        assert order[0] == owner
        assert sorted(order) == sorted(slots)  # every live replica once


def test_call_order_skips_downed_owner_slot():
    payload = _compile_payload()
    slots: list = [("127.0.0.1", 9001), ("127.0.0.1", 9002),
                   ("127.0.0.1", 9003)]
    owner_idx = shard_index(payload, 3)
    downed = slots[owner_idx]
    slots[owner_idx] = None
    c = _order_client(slots, seed=3)
    order = c._call_order(payload)
    assert downed not in order
    assert sorted(order) == sorted(a for a in slots if a is not None)


def test_call_order_demotes_recently_failed_owner():
    """A shard owner that just died must not eat a connect failure on
    every call: within the cooldown it rides at the back of the order,
    after the cooldown it is first in line again."""
    payload = _compile_payload()
    slots = [("127.0.0.1", 9001), ("127.0.0.1", 9002), ("127.0.0.1", 9003)]
    owner = slots[shard_index(payload, 3)]
    c = _order_client(slots, seed=3, dead_cooldown_s=30.0)
    c._failed_at[owner] = time.monotonic()
    order = c._call_order(payload)
    assert order[-1] == owner and order[0] != owner
    c._failed_at[owner] = time.monotonic() - 60.0  # cooldown expired
    assert c._call_order(payload)[0] == owner


def test_call_order_zero_capacity_is_classified():
    c = _order_client([None, None, None], seed=0)
    with pytest.raises(NetworkError):
        c._call_order(_compile_payload())


def test_request_zero_capacity_raises_after_retries():
    c = _order_client([None, None], retries=1, backoff_base=0.001,
                      backoff_cap=0.002, seed=0)
    with pytest.raises(NetworkError):
        c.request(_compile_payload(), deadline_s=1.0)
    assert classify(NetworkError("connect", "x")) == "NetworkError"


# -- supervisor over stub children -------------------------------------------


class _StubFleet(FleetSupervisor):
    """A supervisor over arbitrary stub children: anything that speaks
    the ``LISTENING host:port`` stdout contract can be supervised."""

    def __init__(self, script: str, replicas: int = 1, **kwargs):
        self._script = script
        super().__init__(replicas, cache_dir="/nonexistent-unused",
                         **kwargs)

    def _replica_command(self, index):
        return [sys.executable, "-u", "-c", self._script]


_ANNOUNCE_AND_HOLD = """
import socket, time
s = socket.socket()
s.bind(("127.0.0.1", 0))
s.listen(8)
print("LISTENING 127.0.0.1:%d" % s.getsockname()[1], flush=True)
conns = []
while True:
    c, _ = s.accept()   # accept, then wedge: never answer a frame
    conns.append(c)
"""

_CRASH_LOOP = """
import socket, sys
s = socket.socket()
s.bind(("127.0.0.1", 0))
print("LISTENING 127.0.0.1:%d" % s.getsockname()[1], flush=True)
sys.exit(13)
"""

_NEVER_ANNOUNCE = """
import time
time.sleep(600)
"""


def test_supervisor_discovers_announced_ports():
    sup = _StubFleet(_ANNOUNCE_AND_HOLD, replicas=2,
                     probe_interval_s=60.0, probe_timeout_s=1.0,
                     spawn_timeout_s=15.0, seed=0)
    with sup:
        slots = sup.slots()
        assert len(slots) == 2
        assert all(a is not None for a in slots)
        assert all(a[0] == "127.0.0.1" and a[1] > 0 for a in slots)
        assert slots[0][1] != slots[1][1]
        assert sup.ready() == {"ready": True, "degraded": False,
                               "up": 2, "parked": 0, "replicas": 2}
        pids = sup.replica_pids()
        assert len(pids) == 2
    assert _wait_dead(list(pids.values())) == []
    assert sup.ready()["ready"] is False


def test_spawn_timeout_raises_classified_and_tears_down():
    sup = _StubFleet(_NEVER_ANNOUNCE, replicas=1, spawn_timeout_s=0.5,
                     seed=0)
    with pytest.raises(FleetError) as exc:
        sup.start()
    assert exc.value.kind == "spawn"
    assert classify(exc.value) == "FleetError"
    assert _wait_dead(list(sup.pid_history()[0])) == []


def test_crash_loop_parks_with_classified_fleet_error():
    """Flap suppression: a replica that dies faster than its restart
    budget is parked with a classified FleetError, and readiness
    reports the lost capacity honestly."""
    sup = _StubFleet(_CRASH_LOOP, replicas=1,
                     probe_interval_s=0.05, probe_timeout_s=0.5,
                     restart_backoff_base=0.01, restart_backoff_cap=0.02,
                     restart_budget=2, restart_window_s=30.0,
                     spawn_timeout_s=15.0, seed=0)
    try:
        sup.start()
        deadline = time.perf_counter() + 30.0
        while time.perf_counter() < deadline:
            if sup.stats()["parked"] == 1:
                break
            time.sleep(0.05)
        st = sup.stats()
        assert st["parked"] == 1, st
        assert st["restarts"] == 2
        r = sup._replicas[0]
        assert isinstance(r.error, FleetError)
        assert r.error.kind == "parked"
        assert classify(r.error) == "FleetError"
        assert sup.slots() == [None]
        assert sup.ready() == {"ready": False, "degraded": True,
                               "up": 0, "parked": 1, "replicas": 1}
        # every dead incarnation actually reaped
        assert _wait_dead(sup.pid_history()[0]) == []
    finally:
        sup.stop()


def test_wedged_replica_stalls_prober_at_most_probe_timeout():
    """Satellite regression: a replica that accepts connections but
    never answers (the SlowWire-stall failure mode) costs its prober at
    most ``probe_timeout_s`` per probe — the supervisor detects the
    wedge and acts within a few probe budgets, never hanging on it."""
    sup = _StubFleet(_ANNOUNCE_AND_HOLD, replicas=1,
                     probe_interval_s=0.05, probe_timeout_s=0.4,
                     probe_failures=2,
                     restart_backoff_base=0.01, restart_backoff_cap=0.02,
                     restart_budget=1, restart_window_s=30.0,
                     spawn_timeout_s=15.0, seed=0)
    t0 = time.perf_counter()
    try:
        sup.start()
        deadline = time.perf_counter() + 20.0
        while time.perf_counter() < deadline:
            if sup.stats()["parked"] == 1:
                break
            time.sleep(0.05)
        elapsed = time.perf_counter() - t0
        st = sup.stats()
        assert st["parked"] == 1, st
        assert "wedged" in str(sup._replicas[0].error)
        # 2 probe failures x 0.4s budget + slack: the prober was never
        # on the hook for longer than its per-probe deadline.
        assert elapsed < 15.0, f"wedge detection took {elapsed:.1f}s"
    finally:
        sup.stop()


def test_probe_deadline_rides_the_frame_header():
    """The probe's deadline is the frame header's, not just a socket
    timeout: a directly probed wedged endpoint raises a classified
    failure within the probe budget."""
    srv = socket.socket()
    srv.bind(("127.0.0.1", 0))
    srv.listen(8)
    held = []
    stop = threading.Event()

    def _hold():
        srv.settimeout(0.2)
        while not stop.is_set():
            try:
                held.append(srv.accept()[0])
            except socket.timeout:
                continue
            except OSError:
                return

    t = threading.Thread(target=_hold, daemon=True)
    t.start()
    c = GatewayClient([srv.getsockname()], retries=0,
                      attempt_timeout_s=0.4, connect_timeout_s=0.4, seed=0)
    t0 = time.perf_counter()
    try:
        with pytest.raises((NetworkError, DeadlineError)):
            c.request({"op": "health"}, deadline_s=0.4)
    finally:
        elapsed = time.perf_counter() - t0
        c.close()
        stop.set()
        t.join(timeout=5.0)
        srv.close()
        for s in held:
            s.close()
    assert elapsed < 5.0


# -- real-gateway fleet -------------------------------------------------------


def test_fleet_serves_shards_and_heals_after_sigkill(tmp_path):
    """End to end on real gateways: spawn 2 replicas over one cache
    dir, serve a compile through the sharded client, verify warm
    byte-identity from *each* replica, SIGKILL one replica, and watch
    the supervisor respawn it (new pid) while the client keeps
    getting answers."""
    from repro.service.wire import encode_payload

    sup = FleetSupervisor(
        2, str(tmp_path), farm_workers=0, workers=2,
        probe_interval_s=0.1, probe_timeout_s=2.0, probe_failures=3,
        restart_backoff_base=0.02, restart_backoff_cap=0.1,
        restart_budget=100, spawn_timeout_s=60.0, seed=0,
    )
    with sup:
        client = sup.client(retries=8, backoff_base=0.02,
                            backoff_cap=0.4, dead_cooldown_s=0.2, seed=0)
        try:
            resp = client.compile_run("saxpy_fp", size=SIZE,
                                      deadline_s=120.0)
            assert resp["status"] == "ok"
            # warm read-through: each replica serves the same envelope
            blobs = set()
            for addr in sup.slots():
                assert addr is not None
                direct = GatewayClient([addr], retries=2, seed=1)
                try:
                    r = direct.request(_compile_payload(),
                                       deadline_s=60.0)
                finally:
                    direct.close()
                assert r["status"] == "ok" and r["from_cache"], r
                blobs.add(encode_payload(r["result"]))
            assert len(blobs) == 1, "warm bytes diverge across replicas"

            old_pid = sup.replica_pids()[0]
            assert sup.kill(0, signal.SIGKILL) == old_pid
            # the client rides through while the slot is down
            resp = client.compile_run("saxpy_fp", size=SIZE,
                                      deadline_s=120.0)
            assert resp["status"] == "ok"
            deadline = time.perf_counter() + 60.0
            while time.perf_counter() < deadline:
                pids = sup.replica_pids()
                if (sup.up_count() == 2
                        and pids.get(0) not in (None, old_pid)):
                    break
                time.sleep(0.05)
            assert sup.up_count() == 2, sup.stats()
            assert sup.replica_pids()[0] != old_pid, sup.stats()
            assert sup.stats()["restarts"] >= 1
        finally:
            client.close()
        history = [p for pids in sup.pid_history().values() for p in pids]
    assert _wait_dead(history) == []


# -- single-replica kill -9 crash consistency ---------------------------------


def _audit_cache(cache_root: str):
    """Every committed envelope verifies; quarantine empty; returns the
    (possibly empty) list of committed entry names."""
    entries = []
    for name in os.listdir(cache_root):
        path = os.path.join(cache_root, name)
        if name.endswith(".vbk"):
            with open(path, "rb") as fh:
                unpack_kernel(fh.read())  # raises CacheError if torn
            entries.append(name)
    qdir = os.path.join(cache_root, "quarantine")
    assert not os.path.isdir(qdir) or os.listdir(qdir) == []
    return entries


def test_sigkill_mid_cold_compile_leaves_consistent_cache(tmp_path):
    """kill -9 a gateway mid-cold-compile: the shared cache holds no
    torn committed entry, nothing gets quarantined, and a successor
    service over the same directory recompiles the key to the exact
    bytes it then serves warm."""
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--listen",
         "127.0.0.1:0", "--cache-dir", str(tmp_path),
         "--farm-workers", "0", "--marker-ttl", "0.5"],
        env=env, cwd=str(REPO_ROOT), stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True,
    )
    try:
        line = proc.stdout.readline()
        assert line.startswith("LISTENING "), line
        addr = parse_address(line.split()[1])
        outcome: dict = {}

        def _compile():
            c = GatewayClient([addr], retries=0, seed=0)
            try:
                outcome["resp"] = c.request(_compile_payload(),
                                            deadline_s=120.0)
            except (NetworkError, DeadlineError) as exc:
                outcome["exc"] = exc
            finally:
                c.close()

        t = threading.Thread(target=_compile)
        t.start()
        time.sleep(0.06)  # land inside the cold compile
        os.kill(proc.pid, signal.SIGKILL)
        t.join(timeout=60.0)
        assert not t.is_alive()
        proc.wait(timeout=10.0)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.wait(timeout=10.0)

    # the in-flight caller saw a classified wire failure or a completed
    # answer — never a torn frame handed up as a result
    if "exc" in outcome:
        assert classify(outcome["exc"]) in ("NetworkError", "DeadlineError")
    else:
        assert outcome["resp"]["status"] == "ok"

    _audit_cache(str(tmp_path))

    # a successor over the same directory recovers the key: cold or
    # stale-lead-takeover first, then byte-identical warm
    svc = KernelService(cache_dir=str(tmp_path), seed=0, workers=2,
                        marker_ttl_s=0.5)
    try:
        first = svc.handle(ServiceRequest(
            kernel="saxpy_fp", flow=FLOW, target="sse", size=SIZE))
        assert first.status == "ok", first
        warm = svc.handle(ServiceRequest(
            kernel="saxpy_fp", flow=FLOW, target="sse", size=SIZE))
        assert warm.status == "ok" and warm.from_cache
        assert warm.result == first.result
    finally:
        svc.close()
    entries = _audit_cache(str(tmp_path))
    assert entries, "recompile never committed an envelope"
    leads = [n for n in os.listdir(str(tmp_path)) if n.endswith(".lead")]
    assert leads == [], f"stale leader markers not reclaimed: {leads}"


def test_sigkill_gateway_reaps_farm_workers(tmp_path):
    """SIGKILL the gateway (atexit never runs): its farm workers must
    reap themselves via the parent-death watchdog."""
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--listen",
         "127.0.0.1:0", "--cache-dir", str(tmp_path),
         "--farm-workers", "2"],
        env=env, cwd=str(REPO_ROOT), stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True,
    )
    try:
        line = proc.stdout.readline()
        assert line.startswith("LISTENING "), line
        addr = line.split()[1]
        c = GatewayClient([addr], retries=2, seed=0)
        try:
            pids = [int(p) for p in c.stats(deadline_s=30.0)["farm_pids"]]
        finally:
            c.close()
        assert len(pids) == 2
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10.0)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.wait(timeout=10.0)
    assert _wait_dead(pids) == [], "farm workers outlived a SIGKILLed parent"


# -- quick fleet chaos gate ---------------------------------------------------


@pytest.fixture(scope="module")
def fleet_campaign():
    """One quick fleet soak shared by the assertions below (the CI
    fleet-soak job runs the full 200-fault campaigns at both pinned
    seeds; this keeps tier-1 honest without the full bill)."""
    from repro.harness.chaos import run_fleet_campaign

    return run_fleet_campaign(n_faults=12, seed=2026, replicas=3,
                              farm_workers=1)


def test_fleet_campaign_invariant_holds(fleet_campaign):
    assert fleet_campaign.ok, fleet_campaign.summary()


def test_fleet_campaign_ran_its_epilogues(fleet_campaign):
    """The scripted epilogues always run: flap->park classification,
    the full shared-cache audit, the killed-pid leak audit, and the
    final full-capacity readiness check."""
    outcomes = {t.outcome for t in fleet_campaign.trials}
    assert "parked-classified" in outcomes
    assert "cache-clean" in outcomes
    assert "farm-reaped" in outcomes
    assert "fleet-ready" in outcomes


def test_fleet_campaign_injected_kills(fleet_campaign):
    stats = fleet_campaign.service_stats
    assert stats["kills"] >= 1
    assert stats["ready"]["ready"] is True
    assert stats["ready"]["degraded"] is False
    assert stats["fleet"]["restarts"] >= stats["kills"]
