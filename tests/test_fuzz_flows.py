"""Differential fuzz of the *flows*: for random kernels, the split flow
(offline symbolic vectorization + JIT) and the native flow (monolithic
target-specific vectorization) must produce identical integer results —
the strongest form of the paper's performance-portability claim: same
semantics, different compilation strategies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.ir import I32
from repro.jit import MonoJIT, NativeBackend
from repro.machine import VM, ArrayBuffer
from repro.targets import ALTIVEC, SSE
from repro.vectorizer import native_config, split_config, vectorize_function

_LEAVES = ["a[i]", "b[i]", "a[i + 1]", "4", "x", "min(a[i], x)", "abs(b[i])"]
_OPS = ["+", "-", "*", "&", "^"]


@st.composite
def expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(_LEAVES))
    return (
        f"({draw(expr(depth=depth + 1))} "
        f"{draw(st.sampled_from(_OPS))} "
        f"{draw(expr(depth=depth + 1))})"
    )


@st.composite
def kernel(draw):
    body = draw(expr())
    if draw(st.booleans()):
        return f"""
int k(int n, int x, int a[], int b[]) {{
    int s = 0;
    for (int i = 0; i < n; i++) {{ s += {body}; }}
    return s;
}}
"""
    return f"""
void k(int n, int x, int a[], int b[], int o[]) {{
    for (int i = 0; i < n; i++) {{ o[i] = {body}; }}
}}
"""


class TestSplitVsNative:
    @given(src=kernel(), n=st.integers(1, 50), x=st.integers(-20, 20))
    @settings(max_examples=50, deadline=None)
    def test_flows_agree(self, src, n, x):
        fn = compile_source(src)["k"]
        split_ir = vectorize_function(fn, split_config())
        has_out = "o[" in src
        rng = np.random.default_rng(abs(hash((src, n, x))) % 2**32)
        a = rng.integers(-70, 70, n + 2).astype(np.int32)
        b = rng.integers(-70, 70, n + 2).astype(np.int32)

        def run(ir, jit, target):
            ck = jit.compile(ir, target)
            bufs = {
                "a": ArrayBuffer(I32, n + 2, data=a),
                "b": ArrayBuffer(I32, n + 2, data=b),
            }
            if has_out:
                bufs["o"] = ArrayBuffer(I32, n)
            res = VM(target).run(ck.mfunc, {"n": n, "x": x}, bufs)
            return (
                int(res.value) if res.value is not None else None,
                tuple(bufs["o"].read_elements()) if has_out else None,
            )

        for target in (SSE, ALTIVEC):
            native_ir = vectorize_function(fn, native_config(target))
            results = {
                run(split_ir, MonoJIT(), target),
                run(native_ir, NativeBackend(), target),
            }
            assert len(results) == 1, (target.name, results)
