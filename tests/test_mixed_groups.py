"""Per-group materialization independence: one function can mix loops that
vectorize with loops that scalarize on the same target (the reason idioms
carry a group id)."""

import numpy as np
import pytest

from repro import (
    ArrayBuffer,
    MonoJIT,
    OptimizingJIT,
    VM,
    compile_source,
    get_target,
    split_config,
    vectorize_function,
)
from repro.ir import F32, F64, verify_function

MIXED = """
void mixed(int n, float x[], double y[]) {
    for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0; }
    for (int j = 0; j < n; j++) { y[j] = y[j] * 3.0; }
}
"""


@pytest.fixture(scope="module")
def bytecode():
    out = vectorize_function(compile_source(MIXED)["mixed"], split_config())
    verify_function(out)
    return out


class TestMixedGroups:
    def test_altivec_splits_the_modes(self, bytecode):
        """AltiVec vectorizes the f32 loop but scalarizes the f64 loop —
        within one compiled function."""
        ck = OptimizingJIT().compile(bytecode, get_target("altivec"))
        assert ck.stats["loops_vectorized"] >= 1
        assert ck.stats["loops_scalarized"] >= 1

    def test_sse_vectorizes_both(self, bytecode):
        ck = OptimizingJIT().compile(bytecode, get_target("sse"))
        assert ck.stats["loops_scalarized"] == 0
        assert ck.stats["loops_vectorized"] >= 2

    @pytest.mark.parametrize(
        "target_name", ["sse", "altivec", "neon", "vsx", "scalar"]
    )
    @pytest.mark.parametrize("jit_cls", [MonoJIT, OptimizingJIT])
    def test_both_loops_correct(self, bytecode, target_name, jit_cls):
        target = get_target(target_name)
        n = 41
        rng = np.random.default_rng(5)
        x = rng.standard_normal(n).astype(np.float32)
        y = rng.standard_normal(n)
        ck = jit_cls().compile(bytecode, target)
        bufs = {
            "x": ArrayBuffer(F32, n, data=x),
            "y": ArrayBuffer(F64, n, data=y),
        }
        VM(target).run(ck.mfunc, {"n": n}, bufs)
        assert np.allclose(bufs["x"].read_elements(), x * np.float32(2.0))
        assert np.allclose(bufs["y"].read_elements(), y * 3.0)

    def test_groups_have_distinct_vfs(self, bytecode):
        """On SSE the f32 loop steps by 4, the f64 loop by 2 — the group
        mechanism must materialize each get_VF independently."""
        from repro.machine import VM as _VM

        ck = OptimizingJIT().compile(bytecode, get_target("sse"))
        n = 40
        rng = np.random.default_rng(1)
        x = rng.standard_normal(n).astype(np.float32)
        y = rng.standard_normal(n)
        bufs = {
            "x": ArrayBuffer(F32, n, data=x),
            "y": ArrayBuffer(F64, n, data=y),
        }
        res = _VM(get_target("sse")).run(
            ck.mfunc, {"n": n}, bufs, count_ops=True
        )
        # 40/4 f32 stores + 40/2 f64 stores = 30 aligned vector stores.
        assert res.op_counts.get("vstore_a", 0) == 30
