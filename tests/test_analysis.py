"""Tests for the analysis layer: affine forms, loop info, memory refs,
dependence testing (with a hypothesis soundness check against brute force),
reductions, and alignment hints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Affine,
    affine_of,
    analyze_loops,
    collect_memrefs,
    const_trip_count,
    dependences_for_loop,
    find_reductions,
    linearize,
    misalignment_hint,
)
from repro.analysis import test_dependence as dep_test
from repro.analysis.memrefs import MemRef
from repro.frontend import compile_source
from repro.ir import F32, I32, Argument, ArrayRef, ForLoop, walk
from repro.ir.idioms import MOD_HINT


def _loop(src, name="f", index=0):
    fn = compile_source(src)[name]
    nest = analyze_loops(fn)
    return fn, nest.all_loops()[index]


class TestAffine:
    def test_basic_algebra(self):
        v = Argument("i", I32)
        a = Affine.var(v, 2) + Affine.constant(3)
        b = a.scaled(4)
        assert b.coeff(v) == 8 and b.const == 12
        assert (b - b).is_constant

    def test_cancellation_drops_term(self):
        v = Argument("i", I32)
        z = Affine.var(v) - Affine.var(v)
        assert z.is_constant and z.const == 0

    def test_affine_of_subscript(self):
        fn, li = _loop(
            "void f(int n, float a[]) { for (int i = 0; i < n; i++)"
            " { a[3*i + 5] = 0.0; } }"
        )
        refs = collect_memrefs(li.loop)
        aff = refs[0].affine
        assert aff.coeff(li.iv) == 3 and aff.const == 5

    def test_affine_of_shift(self):
        fn, li = _loop(
            "void f(int n, float a[]) { for (int i = 0; i < n; i++)"
            " { a[(i << 2) + 1] = 0.0; } }"
        )
        aff = collect_memrefs(li.loop)[0].affine
        assert aff.coeff(li.iv) == 4 and aff.const == 1

    def test_nonaffine_becomes_symbol(self):
        fn, li = _loop(
            "void f(int n, int idx[], float a[]) {"
            " for (int i = 0; i < n; i++) { a[idx[i]] = 0.0; } }"
        )
        refs = collect_memrefs(li.loop)
        store = [r for r in refs if r.is_store][0]
        # The idx[i] load is an opaque symbol with coefficient 1.
        assert store.affine.coeff(li.iv) == 0

    def test_symbolic_parameter_term(self):
        fn, li = _loop(
            "void f(int n, int k, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i + k] = 0.0; } }"
        )
        aff = collect_memrefs(li.loop)[0].affine
        k = fn.scalar_params[1]
        assert aff.coeff(li.iv) == 1 and aff.coeff(k) == 1


class TestLoopInfo:
    def test_nesting(self):
        fn, _ = _loop(
            "void f(float A[4][4]) { for (int i = 0; i < 4; i++)"
            " for (int j = 0; j < 4; j++) { A[i][j] = 0.0; } }"
        )
        nest = analyze_loops(fn)
        assert len(nest.roots) == 1
        outer = nest.roots[0]
        assert outer.depth == 0 and len(outer.children) == 1
        inner = outer.children[0]
        assert inner.depth == 1 and inner.is_innermost
        assert inner.enclosing_ivs() == [outer.iv, inner.iv]

    def test_const_trip_count(self):
        fn, li = _loop("void f(float a[8]) { for (int i = 2; i < 8; i++) { a[i] = 0.0; } }")
        assert const_trip_count(li.loop) == 6

    def test_symbolic_trip_count(self):
        fn, li = _loop("void f(int n, float a[]) { for (int i = 0; i < n; i++) { a[i] = 0.0; } }")
        assert const_trip_count(li.loop) is None


class TestLinearize:
    def test_row_major(self):
        fn, li = _loop(
            "void f(float A[8][16]) { for (int i = 0; i < 8; i++)"
            " for (int j = 0; j < 16; j++) { A[i][j] = 0.0; } }",
            index=1,
        )
        aff = collect_memrefs(li.loop)[0].affine
        nest = analyze_loops(fn)
        outer_iv = nest.roots[0].iv
        assert aff.coeff(outer_iv) == 16
        assert aff.coeff(li.iv) == 1


class TestDependence:
    def _refs(self, src):
        fn, li = _loop(src)
        return li, collect_memrefs(li.loop)

    def test_independent_arrays(self):
        li, refs = self._refs(
            "void f(int n, float a[], float b[]) {"
            " for (int i = 0; i < n; i++) { b[i] = a[i]; } }"
        )
        assert dependences_for_loop(refs, li.iv, set()) == []

    def test_carried_distance_one(self):
        li, refs = self._refs(
            "void f(int n, float a[]) {"
            " for (int i = 1; i < n; i++) { a[i] = a[i-1]; } }"
        )
        deps = dependences_for_loop(refs, li.iv, set())
        assert len(deps) == 1
        assert deps[0].result.kind == "carried"
        assert deps[0].result.distance == 1

    def test_loop_independent(self):
        li, refs = self._refs(
            "void f(int n, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; } }"
        )
        deps = dependences_for_loop(refs, li.iv, set())
        assert all(d.result.kind == "loop_independent" for d in deps)

    def test_strong_siv_not_divisible(self):
        li, refs = self._refs(
            "void f(int n, float a[]) {"
            " for (int i = 0; i < n; i++) { a[2*i] = a[2*i + 1]; } }"
        )
        deps = dependences_for_loop(refs, li.iv, set())
        assert deps == []

    def test_may_alias_pair_unknown(self):
        li, refs = self._refs(
            "void f(int n, __may_alias float a[], __may_alias float b[]) {"
            " for (int i = 0; i < n; i++) { b[i] = a[i]; } }"
        )
        deps = dependences_for_loop(refs, li.iv, set())
        assert len(deps) == 1 and deps[0].result.kind == "unknown"

    def test_symbol_mismatch_unknown(self):
        li, refs = self._refs(
            "void f(int n, int k, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i + k] = a[i]; } }"
        )
        deps = dependences_for_loop(refs, li.iv, set())
        assert any(d.result.kind == "unknown" for d in deps)

    def test_banerjee_excludes_far_dep(self):
        # distance would be >= trip count: independent.
        li, refs = self._refs(
            "void f(float a[64]) {"
            " for (int i = 0; i < 8; i++) { a[i] = a[i + 32]; } }"
        )
        deps = dependences_for_loop(
            refs, li.iv, set(), {li.iv: 8}
        )
        assert deps == []

    @given(
        c1=st.integers(0, 4), c2=st.integers(0, 4),
        k1=st.integers(-8, 8), k2=st.integers(-8, 8),
        trip=st.integers(1, 24),
    )
    @settings(max_examples=300, deadline=None)
    def test_siv_soundness_vs_bruteforce(self, c1, c2, k1, k2, trip):
        """If the analysis says 'independent', brute force must find no
        colliding iteration pair; if it gives a distance d, some pair at
        that distance must collide (when in range)."""
        iv = Argument("i", I32)
        arr = ArrayRef("a", F32, (4096,))
        r1 = MemRef(None, arr, Affine({iv: c1} if c1 else {}, k1), True, 0)
        r2 = MemRef(None, arr, Affine({iv: c2} if c2 else {}, k2), False, 1)
        res = dep_test(r1, r2, iv, set(), {iv: trip})
        collisions = {
            abs(i - j)
            for i in range(trip)
            for j in range(trip)
            if c1 * i + k1 == c2 * j + k2
        }
        if res.kind == "independent":
            assert not collisions
        elif res.kind == "loop_independent":
            assert (0 in collisions) or not collisions
        elif res.kind == "carried" and res.distance is not None:
            if collisions:
                assert res.distance in collisions or res.distance >= trip


class TestReductions:
    def test_sum_detected(self):
        fn, li = _loop(
            "float f(int n, float a[]) { float s = 0;"
            " for (int i = 0; i < n; i++) { s += a[i]; } return s; }"
        )
        red = find_reductions(li.loop)
        assert 0 in red and red[0].kind == "plus"
        assert red[0].identity == 0.0

    def test_max_detected_with_identity(self):
        fn, li = _loop(
            "float f(int n, float a[]) { float m = -100000.0;"
            " for (int i = 0; i < n; i++) { m = max(m, a[i]); } return m; }"
        )
        red = find_reductions(li.loop)
        assert red[0].kind == "max"
        assert red[0].identity < -1e30

    def test_min_identity(self):
        fn, li = _loop(
            "int f(int n, int a[]) { int m = 100000;"
            " for (int i = 0; i < n; i++) { m = min(m, a[i]); } return m; }"
        )
        red = find_reductions(li.loop)
        assert red[0].kind == "min"
        assert red[0].identity == 2**31 - 1

    def test_chained_sum_detected(self):
        fn, li = _loop(
            "float f(int n, float a[], float b[]) { float s = 0;"
            " for (int i = 0; i < n; i++) { s = s + a[i] + b[i]; } return s; }"
        )
        assert 0 in find_reductions(li.loop)

    def test_non_reduction_recurrence_rejected(self):
        fn, li = _loop(
            "float f(int n, float a[]) { float s = 1.0;"
            " for (int i = 0; i < n; i++) { s = a[i] - s; } return s; }"
        )
        assert find_reductions(li.loop) == {}

    def test_escaping_accumulator_rejected(self):
        fn, li = _loop(
            "float f(int n, float a[], float b[]) { float s = 0;"
            " for (int i = 0; i < n; i++) { b[i] = s; s += a[i]; } return s; }"
        )
        assert find_reductions(li.loop) == {}

    def test_mul_reduction_not_supported(self):
        # Table 1 has only plus/min/max.
        fn, li = _loop(
            "float f(int n, float a[]) { float p = 1.0;"
            " for (int i = 0; i < n; i++) { p = p * a[i]; } return p; }"
        )
        assert find_reductions(li.loop) == {}


class TestAlignment:
    def _hint(self, src, lower=0):
        fn, li = _loop(src)
        ref = collect_memrefs(li.loop)[0]
        return misalignment_hint(ref.affine, ref.array.elem.size, li.iv, lower)

    def test_paper_figure3_example(self):
        # a[i+2] with 4-byte floats: mis=8, mod=32 — exactly Figure 3a.
        h = self._hint(
            "float f(int n, float a[]) { float s = 0;"
            " for (int i = 0; i < n; i++) { s += a[i + 2]; } return s; }"
        )
        assert (h.mis, h.mod) == (8, MOD_HINT)

    def test_aligned_stream(self):
        h = self._hint(
            "void f(int n, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i] = 0.0; } }"
        )
        assert h.mis == 0 and h.known

    def test_lower_bound_shifts_mis(self):
        h = self._hint(
            "void f(int n, float a[]) {"
            " for (int i = 3; i < n; i++) { a[i] = 0.0; } }",
            lower=3,
        )
        assert h.mis == 12

    def test_symbolic_offset_invalidates(self):
        h = self._hint(
            "void f(int n, int k, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i + k] = 0.0; } }"
        )
        assert not h.known

    def test_unknown_lower_invalidates(self):
        h = self._hint(
            "void f(int n, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i] = 0.0; } }",
            lower=None,
        )
        assert not h.known

    def test_outer_iv_row_multiple_of_mod(self):
        fn = compile_source(
            "void f(float A[8][8]) { for (int i = 0; i < 8; i++)"
            " for (int j = 0; j < 8; j++) { A[i][j] = 0.0; } }"
        )["f"]
        nest = analyze_loops(fn)
        inner = nest.innermost()[0]
        ref = collect_memrefs(inner.loop)[0]
        h = misalignment_hint(ref.affine, 4, inner.iv, 0)
        # 8 floats/row = 32 bytes: the outer term is harmless.
        assert h.known and h.mis == 0

    def test_outer_iv_row_not_multiple(self):
        fn = compile_source(
            "void f(float A[8][6]) { for (int i = 0; i < 8; i++)"
            " for (int j = 0; j < 6; j++) { A[i][j] = 0.0; } }"
        )["f"]
        nest = analyze_loops(fn)
        inner = nest.innermost()[0]
        ref = collect_memrefs(inner.loop)[0]
        h = misalignment_hint(ref.affine, 4, inner.iv, 0)
        assert not h.known

    def test_aligned_for(self):
        h = self._hint(
            "float f(int n, float a[]) { float s = 0;"
            " for (int i = 0; i < n; i++) { s += a[i + 2]; } return s; }"
        )
        assert h.aligned_for(8)       # NEON: 8 % 8 == 0
        assert not h.aligned_for(16)  # SSE/AltiVec: 8 % 16 != 0
