"""Tests for the harness itself: flow consistency, runner options, and
cross-flow numeric agreement."""

import numpy as np
import pytest

from repro.harness import FLOWS, FlowRunner
from repro.kernels import get_kernel


class TestFlowConsistency:
    def test_all_flows_agree_numerically(self):
        """Six compilation flows, one answer (the checker verifies against
        numpy already; this asserts the flows also agree bit-for-bit on an
        integer kernel)."""
        runner = FlowRunner()
        inst = get_kernel("sfir_s16").instantiate(96)
        values = {
            flow: int(runner.run(inst, flow, "sse").value)
            for flow in FLOWS
        }
        assert len(set(values.values())) == 1, values

    def test_flow_table_shape(self):
        assert set(FLOWS) == {
            "split_scalar_mono", "split_vec_mono",
            "split_scalar_gcc4cli", "split_vec_gcc4cli",
            "native_scalar", "native_vec",
        }
        for form, jit_cls in FLOWS.values():
            assert form in ("scalar", "split", "native")
            assert hasattr(jit_cls, "compile") or callable(jit_cls)

    def test_vector_flows_beat_scalar_flows(self):
        runner = FlowRunner()
        inst = get_kernel("dscal_fp").instantiate(256)
        vec = runner.run(inst, "split_vec_gcc4cli", "sse").cycles
        scal = runner.run(inst, "split_scalar_gcc4cli", "sse").cycles
        assert vec < scal


class TestRunnerOptions:
    def test_vectorizer_overrides_change_bytecode(self):
        base = FlowRunner()
        ablated = FlowRunner(
            vectorizer_overrides={"enable_alignment_opts": False}
        )
        inst = get_kernel("sfir_fp").instantiate()
        _, base_bytes = base.bytecode_sizes(inst)
        _, ablated_bytes = ablated.bytecode_sizes(inst)
        # One loop version instead of two: smaller bytecode.
        assert ablated_bytes < base_bytes

    def test_bytecode_roundtrip_toggle(self):
        direct = FlowRunner(use_bytecode_roundtrip=False)
        viabc = FlowRunner(use_bytecode_roundtrip=True)
        inst = get_kernel("saxpy_fp").instantiate(64)
        a = direct.run(inst, "split_vec_gcc4cli", "sse").cycles
        b = viabc.run(inst, "split_vec_gcc4cli", "sse").cycles
        assert a == b  # the codec must be semantically invisible

    def test_base_misalign_still_checked(self):
        """With unaligned bases the default JITs (runtime_aligns=True)
        would be lying about the guard; the harness models an aligning
        runtime, so misaligned buffers are only for special runners —
        but results must still verify when the scalar flow runs."""
        runner = FlowRunner(base_misalign=12)
        inst = get_kernel("saxpy_fp").instantiate(48)
        assert runner.run(inst, "split_scalar_gcc4cli", "sse").checked

    def test_make_buffers_copies_inputs(self):
        runner = FlowRunner()
        inst = get_kernel("dscal_fp").instantiate(32)
        bufs1 = runner.make_buffers(inst)
        bufs1["x"].write_elements(np.zeros(32, np.float32))
        bufs2 = runner.make_buffers(inst)
        assert not np.array_equal(
            bufs2["x"].read_elements(), np.zeros(32, np.float32)
        )


class TestCaching:
    def test_offline_results_shared_across_flows(self):
        runner = FlowRunner()
        inst = get_kernel("gemm_fp").instantiate()
        ir1 = runner.split_ir(inst)
        ir2 = runner.split_ir(get_kernel("gemm_fp").instantiate())
        assert ir1 is ir2

    def test_sizes_are_distinct_cache_keys(self):
        runner = FlowRunner()
        small = runner.split_ir(get_kernel("gemm_fp").instantiate(8))
        large = runner.split_ir(get_kernel("gemm_fp").instantiate(16))
        # Matrix sizes are baked into the source, so each size compiles
        # its own bytecode (and must not collide in the cache).
        assert small is not large
