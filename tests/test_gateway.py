"""The network front door (docs/service.md section 8).

Covers the gateway stack end to end: the CRC-framed wire codec and its
classified failure taxonomy, byte-identity between a wire-served warm
response and the in-process one, deadline propagation from the frame
header into the service, gateway-level backpressure, hostile-wire
hygiene (garbage, truncation, slowloris, idle reclaim), the graceful
drain state machine, the resilient client's retry/failover behaviour,
and the farm-teardown regression (no worker process outlives its
service — atexit, close(), or SIGTERM).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import faults
from repro.errors import classify
from repro.service import (
    DrainError,
    GatewayClient,
    KernelService,
    NetworkError,
    ServiceRequest,
    ThreadedGateway,
)
from repro.service import wire
from repro.service.client import parse_address
from repro.service.wire import (
    HEADER_LEN,
    MAX_PAYLOAD,
    NO_DEADLINE,
    decode_frame,
    encode_frame,
    encode_payload,
    response_payload,
)

SIZE = 16
FLOW = "split_vec_gcc4cli"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _compile_payload(kernel="saxpy_fp", target="sse", size=SIZE):
    return {"op": "compile", "kernel": kernel, "flow": FLOW,
            "target": target, "size": size}


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            break
        buf.extend(chunk)
    return bytes(buf)


def _recv_frame(sock: socket.socket):
    """Read one reply frame; returns (payload_dict, raw_payload_bytes)."""
    header = _recv_exact(sock, HEADER_LEN)
    assert len(header) == HEADER_LEN, "connection closed mid-header"
    _, length = wire.check_header(header)
    rest = _recv_exact(sock, length + 4)
    assert len(rest) == length + 4, "connection closed mid-body"
    body, crc = rest[:length], rest[length:]
    wire.check_frame(header, body, crc)
    return wire.decode_payload(body), body


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """One warm gateway-fronted service shared by the read-only tests."""
    cache = tmp_path_factory.mktemp("gw-cache")
    svc = KernelService(cache_dir=str(cache), seed=0, workers=4,
                        queue_limit=32)
    gw = ThreadedGateway(svc, max_inflight=8, idle_timeout_s=5.0,
                         drain_grace_s=0.0)
    yield svc, gw
    gw.close()
    svc.close()


@pytest.fixture()
def client(stack):
    _, gw = stack
    c = GatewayClient([gw.address], retries=2, backoff_base=0.001,
                      backoff_cap=0.01, seed=0)
    yield c
    c.close()


# -- wire codec ---------------------------------------------------------------


def test_frame_roundtrip_with_and_without_deadline():
    payload = {"op": "compile", "kernel": "saxpy_fp", "size": 16}
    for deadline_s in (None, 1.5, 0.0):
        frame = encode_frame(payload, deadline_s=deadline_s)
        got, got_deadline = decode_frame(frame)
        assert got == payload
        if deadline_s is None:
            assert got_deadline is None
        else:
            assert got_deadline == pytest.approx(deadline_s, abs=1e-3)


def test_deadline_wire_mapping_clamps():
    assert wire.deadline_to_wire(None) == NO_DEADLINE
    assert wire.deadline_to_wire(-3.0) == 0
    assert wire.deadline_to_wire(1e9) == NO_DEADLINE - 1
    assert wire.deadline_from_wire(NO_DEADLINE) is None
    assert wire.deadline_from_wire(250) == 0.25


def test_encode_payload_is_canonical():
    a = encode_payload({"b": 1, "a": [1.5, None, True]})
    b = encode_payload({"a": [1.5, None, True], "b": 1})
    assert a == b
    assert b" " not in a  # minimal separators


@pytest.mark.parametrize("mutate,kind", [
    (lambda f: b"XXXX" + f[4:], "bad-magic"),
    (lambda f: f[:4] + bytes([99]) + f[5:], "bad-version"),
    (lambda f: f[:-1], "truncated"),
    (lambda f: f[:20], "truncated"),
    (lambda f: f[:-2] + bytes([f[-2] ^ 0xFF]) + f[-1:], "bad-crc"),
    # flip a payload byte: CRC catches it
    (lambda f: f[:HEADER_LEN] + bytes([f[HEADER_LEN] ^ 0x01])
        + f[HEADER_LEN + 1:], "bad-crc"),
    # flip a deadline byte: the CRC covers header fields too
    (lambda f: f[:6] + bytes([f[6] ^ 0x01]) + f[7:], "bad-crc"),
])
def test_decode_frame_classifies_corruption(mutate, kind):
    frame = encode_frame(_compile_payload(), deadline_s=2.0)
    with pytest.raises(NetworkError) as exc_info:
        decode_frame(mutate(frame))
    assert exc_info.value.kind == kind
    assert classify(exc_info.value) == "NetworkError"


def test_oversized_declared_length_rejected_before_allocation():
    header = wire._HEADER.pack(wire.MAGIC, wire.VERSION, NO_DEADLINE,
                               MAX_PAYLOAD + 1)
    with pytest.raises(NetworkError) as exc_info:
        wire.check_header(header)
    assert exc_info.value.kind == "oversized"


def test_oversized_outbound_payload_rejected():
    with pytest.raises(NetworkError) as exc_info:
        encode_frame({"blob": "x" * (MAX_PAYLOAD + 1)})
    assert exc_info.value.kind == "oversized"


def test_non_object_payload_rejected():
    frame = encode_frame({"k": 1})
    # splice a JSON array body with a valid CRC
    body = b"[1,2,3]"
    header = wire._HEADER.pack(wire.MAGIC, wire.VERSION, NO_DEADLINE,
                               len(body))
    import zlib
    crc = zlib.crc32(header[4:] + body) & 0xFFFFFFFF
    with pytest.raises(NetworkError) as exc_info:
        decode_frame(header + body + wire._CRC.pack(crc))
    assert exc_info.value.kind == "bad-json"
    assert frame  # keep the honest-roundtrip frame referenced


# -- served requests ----------------------------------------------------------


def test_gateway_compile_roundtrip(client):
    resp = client.compile_run("saxpy_fp", flow=FLOW, target="sse", size=SIZE)
    assert resp["status"] == "ok"
    assert resp["result"]["checked"] is True
    assert resp["kernel"] == "saxpy_fp"


def test_warm_wire_response_is_byte_identical_to_in_process(stack):
    """The acceptance criterion: serving over the wire cannot change a
    byte of the canonical response serialization."""
    svc, gw = stack
    req = ServiceRequest("dscal_fp", flow=FLOW, target="sse", size=SIZE)
    svc.handle(req)  # ensure warm
    expected = encode_payload(response_payload(svc.handle(req)))

    with socket.create_connection(gw.address, timeout=10.0) as sock:
        sock.sendall(encode_frame(
            _compile_payload("dscal_fp", target="sse", size=SIZE)))
        payload, raw = _recv_frame(sock)
    assert payload["status"] == "ok"
    assert payload["from_cache"] is True
    assert raw == expected


def test_ready_health_stats_ops(stack, client):
    svc, gw = stack
    assert client.ready() is True
    health = client.health()
    assert health["op"] == "health" and health["ready"] is True
    stats = client.stats()
    assert stats["gateway"]["state"] == "running"
    assert stats["service"]["requests"] >= 1
    assert stats["farm_pids"] == svc.farm_worker_pids() == []


def test_unknown_op_and_bad_request_rejected(client):
    resp = client.request({"op": "frobnicate"})
    assert resp["status"] == "rejected"
    assert resp["error"] == "bad-request"
    resp = client.request({"op": "compile"})  # no kernel
    assert resp["status"] == "rejected"
    assert resp["error"] == "bad-request"
    resp = client.request({"op": "compile", "kernel": "saxpy_fp",
                           "size": "huge"})
    assert resp["status"] == "rejected"
    assert "size" in resp["events"][0]["detail"]


def test_unknown_kernel_is_classified_not_a_crash(client):
    resp = client.compile_run("no_such_kernel")
    assert resp["status"] in ("rejected", "failed")
    assert resp["error"] is not None


def test_wire_deadline_lands_in_service(stack):
    """A microscopic frame-header deadline must be enforced *by the
    service* (DeadlineError), proving deadline_s propagated."""
    _, gw = stack
    with socket.create_connection(gw.address, timeout=10.0) as sock:
        frame = encode_frame(_compile_payload("interp_fp", size=SIZE),
                             deadline_s=0.0005)
        sock.sendall(frame)
        payload, _ = _recv_frame(sock)
    assert payload["status"] == "rejected"
    assert payload["error"] in ("DeadlineError", "CircuitOpenError")


def test_overload_shed_is_fast_and_classified(tmp_path):
    svc = KernelService(cache_dir=None, workers=2)
    gw = ThreadedGateway(svc, max_inflight=2, drain_grace_s=0.0)
    try:
        c = GatewayClient([gw.address], retries=0, seed=0)
        try:
            # Saturate the admission counter from outside: the event
            # loop sheds without touching the handler pool.
            gw.gateway._inflight += gw.gateway.max_inflight
            start = time.perf_counter()
            resp = c.compile_run("saxpy_fp", size=SIZE)
            elapsed = time.perf_counter() - start
            assert resp["status"] == "shed"
            assert resp["error"] == "OverloadError"
            assert elapsed < 1.0  # one RTT, not a timeout
            gw.gateway._inflight -= gw.gateway.max_inflight
            resp = c.compile_run("saxpy_fp", size=SIZE)
            assert resp["status"] == "ok"
            assert gw.stats()["rejected_overload"] >= 1
        finally:
            c.close()
    finally:
        gw.close()
        svc.close()


# -- hostile wire -------------------------------------------------------------


def test_garbage_frame_gets_classified_error_frame(stack):
    _, gw = stack
    before = gw.stats()["frame_errors"]
    with socket.create_connection(gw.address, timeout=10.0) as sock:
        sock.sendall(b"\xde\xad\xbe\xef" * 8)
        payload, _ = _recv_frame(sock)
        assert payload["status"] == "rejected"
        assert payload["error"] == "NetworkError"
        # framing is untrusted past the first bad byte: connection drops
        assert _recv_exact(sock, 1) == b""
    assert gw.stats()["frame_errors"] == before + 1


def test_corrupt_crc_frame_classified(stack):
    _, gw = stack
    frame = bytearray(encode_frame(_compile_payload()))
    frame[-1] ^= 0xFF
    with socket.create_connection(gw.address, timeout=10.0) as sock:
        sock.sendall(bytes(frame))
        payload, _ = _recv_frame(sock)
    assert payload["status"] == "rejected"
    assert payload["error"] == "NetworkError"
    assert "bad-crc" in payload["events"][0]["detail"]


def test_truncated_frame_classified_on_half_close(stack):
    _, gw = stack
    frame = encode_frame(_compile_payload())
    with socket.create_connection(gw.address, timeout=10.0) as sock:
        sock.sendall(frame[:HEADER_LEN + 3])
        sock.shutdown(socket.SHUT_WR)
        payload, _ = _recv_frame(sock)
    assert payload["status"] == "rejected"
    assert payload["error"] == "NetworkError"
    assert "truncated" in payload["events"][0]["detail"]


@pytest.fixture()
def short_idle_stack():
    svc = KernelService(cache_dir=None, workers=2)
    gw = ThreadedGateway(svc, idle_timeout_s=0.2, drain_grace_s=0.0)
    yield svc, gw
    gw.close()
    svc.close()


def test_slowloris_mid_frame_is_reclaimed(short_idle_stack):
    """A peer that stalls mid-frame gets a classified error frame and
    the drop — it cannot pin the connection open."""
    _, gw = short_idle_stack
    with socket.create_connection(gw.address, timeout=10.0) as sock:
        sock.sendall(encode_frame(_compile_payload())[:7])  # then silence
        payload, _ = _recv_frame(sock)
        assert payload["status"] == "rejected"
        assert payload["error"] == "NetworkError"
        assert _recv_exact(sock, 1) == b""
    assert gw.stats()["frame_errors"] >= 1


def test_idle_connection_reclaimed_quietly(short_idle_stack):
    """A peer that has sent *nothing* is idle, not hostile: the gateway
    closes the connection without writing an error frame (a stale frame
    buffered here would be read as the reply to the next request a
    keep-alive client sends)."""
    _, gw = short_idle_stack
    with socket.create_connection(gw.address, timeout=10.0) as sock:
        data = _recv_exact(sock, 1)  # blocks until the server acts
        assert data == b""  # clean EOF, no stale error frame
    assert gw.stats()["frame_errors"] == 0


# -- graceful drain -----------------------------------------------------------


def test_drain_completes_inflight_and_rejects_late_requests():
    """The drain trio: the in-flight request finishes whole, a request
    inside the grace window gets a classified DrainError rejection, and
    post-drain connections are refused."""
    svc = KernelService(cache_dir=None, seed=0, workers=2)
    gw = ThreadedGateway(svc, drain_grace_s=0.4, drain_budget_s=30.0,
                         close_service=True)
    addr = gw.address
    bg: dict = {}

    def inflight():
        c = GatewayClient([addr], retries=0, seed=7)
        try:
            # cold compile on a cache-less service: slow enough to still
            # be in flight when the drain lands
            bg["resp"] = c.compile_run("gemm_fp", deadline_s=60.0)
        except Exception as exc:  # judged below
            bg["exc"] = exc
        finally:
            c.close()

    worker = threading.Thread(target=inflight)
    worker.start()
    deadline = time.perf_counter() + 5.0
    while gw.stats()["inflight"] == 0 and not bg:
        assert time.perf_counter() < deadline, "request never dispatched"
        time.sleep(0.005)

    drainer = threading.Thread(target=gw.drain)
    drainer.start()
    time.sleep(0.05)  # let the drain coroutine flip the state
    late = GatewayClient([addr], retries=0, seed=8)
    try:
        assert late.ready(deadline_s=5.0) is False
        resp = late.request(_compile_payload(), deadline_s=5.0)
        assert resp["status"] == "rejected"
        assert resp["error"] == "DrainError"
        assert resp["events"][0]["cause"] == "gateway-drain"
    finally:
        late.close()

    worker.join(timeout=60.0)
    drainer.join(timeout=60.0)
    assert "exc" not in bg, bg.get("exc")
    assert bg["resp"]["status"] == "ok", bg["resp"]
    assert bg["resp"]["result"]["checked"] is True

    probe = GatewayClient([addr], retries=0, seed=9)
    try:
        with pytest.raises(NetworkError):
            probe.ready(deadline_s=2.0)
    finally:
        probe.close()
    assert gw.state == "closed"
    gw.close()
    svc.close()  # idempotent; drain already closed it


def test_drain_error_is_classified():
    exc = DrainError("draining")
    assert classify(exc) == "DrainError"
    assert "draining" in str(exc)


# -- resilient client ---------------------------------------------------------


def test_parse_address():
    assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert parse_address(":9000") == ("127.0.0.1", 9000)
    assert parse_address(("10.0.0.1", 80)) == ("10.0.0.1", 80)
    with pytest.raises(ValueError):
        parse_address("nocolon")
    with pytest.raises(ValueError):
        parse_address("host:notaport")


def test_client_retries_through_injected_conn_drop(stack, client):
    """An injected mid-response ConnDrop tears the reply; the client
    must classify the torn frame and retry to success — never hand a
    partial frame to the caller."""
    _, gw = stack
    drops_before = gw.stats()["injected_drops"]
    errors_before = client.wire_errors
    plan = faults.FaultPlan([faults.ConnDrop(after_bytes=9, count=1)])
    with faults.injected(plan):
        resp = client.compile_run("saxpy_fp", size=SIZE)
    assert resp["status"] == "ok"
    assert gw.stats()["injected_drops"] == drops_before + 1
    assert client.wire_errors > errors_before


def test_client_fails_over_to_live_replica(stack):
    """The shard-owner replica is down; the client fails over to the
    live remainder and succeeds."""
    from repro.service.client import shard_index

    _, gw = stack
    # A bound-then-closed socket yields a port nothing listens on.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_addr = probe.getsockname()
    probe.close()
    # Place the dead replica at the slot the shard hash picks first, so
    # the first attempt deterministically eats a classified connect
    # failure and the call must fail over.
    payload = _compile_payload()
    slots = [None, None]
    slots[shard_index(payload, 2)] = dead_addr
    slots[slots.index(None)] = gw.address
    c = GatewayClient(slots, retries=2,
                      backoff_base=0.001, backoff_cap=0.01, seed=0)
    try:
        resp = c.compile_run("saxpy_fp", size=SIZE)
        assert resp["status"] == "ok"
        assert c.failovers >= 1
        assert c.wire_errors >= 1
    finally:
        c.close()


def test_client_deadline_budget_raises_deadline_error():
    from repro.service.admission import DeadlineError

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_addr = probe.getsockname()
    probe.close()
    c = GatewayClient([dead_addr], retries=10, backoff_base=0.05,
                      backoff_cap=0.1, seed=0)
    try:
        with pytest.raises(DeadlineError):
            c.request(_compile_payload(), deadline_s=0.05)
    finally:
        c.close()


def test_client_raises_network_error_when_all_replicas_dead():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_addr = probe.getsockname()
    probe.close()
    c = GatewayClient([dead_addr], retries=1, backoff_base=0.0, seed=0)
    try:
        with pytest.raises(NetworkError) as exc_info:
            c.request(_compile_payload())
        assert exc_info.value.kind == "connect"
    finally:
        c.close()


def _dead_address():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    addr = probe.getsockname()
    probe.close()
    return addr


def test_client_prunes_state_for_departed_replicas(tmp_path):
    """Provider-backed fleets restart replicas onto new ports; the
    client must drop cached sockets and failure timestamps for slots no
    longer in the provider's answer, or both dicts grow without bound
    across supervisor restarts."""
    from repro.service.client import shard_index

    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        workers=2, queue_limit=16)
    gw_old = ThreadedGateway(svc, max_inflight=8, drain_grace_s=0.0)
    gw_new = ThreadedGateway(svc, max_inflight=8, drain_grace_s=0.0)
    dead_addr = _dead_address()
    payload = _compile_payload()
    # Generation 1: the shard owner is dead, the other slot live — one
    # call populates both _failed_at (the dead slot) and _socks (the
    # live one it failed over to).
    gen1 = [None, None]
    gen1[shard_index(payload, 2)] = dead_addr
    gen1[gen1.index(None)] = gw_old.address
    slots = {"current": gen1}
    c = GatewayClient(lambda: slots["current"], retries=2,
                      backoff_base=0.001, backoff_cap=0.01, seed=0)
    try:
        assert c.compile_run("saxpy_fp", size=SIZE)["status"] == "ok"
        assert dead_addr in c._failed_at
        assert gw_old.address in c._socks
        cached = c._socks[gw_old.address]
        # Generation 2: the supervisor restarted everything onto a new
        # port; neither generation-1 slot survives.
        slots["current"] = [gw_new.address]
        assert c.compile_run("saxpy_fp", size=SIZE)["status"] == "ok"
        assert dead_addr not in c._failed_at
        assert gw_old.address not in c._socks
        assert cached.fileno() == -1, "stale cached socket left open"
        assert set(c._socks) <= {gw_new.address}
    finally:
        c.close()
        gw_new.close()
        gw_old.close()
        svc.close()


def test_client_does_not_hammer_dead_shard_owner(stack):
    """One call, one contact: while untried replicas remain, the retry
    loop must prefer them over re-dialling the replica that just
    failed — re-jittering the same order each attempt used to hammer
    the dead shard owner while a live sibling sat idle."""
    from repro.service.client import shard_index

    _, gw = stack
    dead_addr = _dead_address()
    payload = _compile_payload()
    slots = [None, None]
    slots[shard_index(payload, 2)] = dead_addr
    slots[slots.index(None)] = gw.address
    c = GatewayClient(slots, retries=3,
                      backoff_base=0.001, backoff_cap=0.01, seed=0)
    contacted = []
    orig = c._attempt

    def spy(addr, payload, deadline):
        contacted.append(addr)
        return orig(addr, payload, deadline)

    c._attempt = spy
    try:
        assert c.compile_run("saxpy_fp", size=SIZE)["status"] == "ok"
        assert contacted[0] == dead_addr, "shard owner not tried first"
        assert contacted.count(dead_addr) == 1, (
            "dead shard owner re-dialled while a live replica was untried"
        )
        assert gw.address in contacted
    finally:
        c.close()


def test_client_transparently_resends_on_stale_keepalive(tmp_path):
    """A reused keep-alive connection the gateway idle-reclaimed
    between calls yields a clean EOF before any response byte; the
    client resends once on a fresh connection instead of surfacing a
    NetworkError — even with retries=0."""
    svc = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                        workers=2, queue_limit=16)
    gw = ThreadedGateway(svc, max_inflight=8, idle_timeout_s=0.2,
                         drain_grace_s=0.0)
    c = GatewayClient([gw.address], retries=0, seed=0)
    try:
        assert c.compile_run("saxpy_fp", size=SIZE)["status"] == "ok"
        assert gw.address in c._socks
        time.sleep(0.7)  # let the gateway reclaim the idle connection
        assert c.compile_run("saxpy_fp", size=SIZE)["status"] == "ok"
        assert c.stale_reconnects == 1
        assert c.wire_errors == 0, "stale keep-alive surfaced as a failure"
    finally:
        c.close()
        gw.close()
        svc.close()


# -- farm teardown regression -------------------------------------------------


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _wait_dead(pids, timeout=10.0):
    deadline = time.perf_counter() + timeout
    alive = [p for p in pids if _pid_alive(p)]
    while alive and time.perf_counter() < deadline:
        time.sleep(0.05)
        alive = [p for p in pids if _pid_alive(p)]
    return alive


def test_farm_workers_die_with_process_even_without_close(tmp_path):
    """Regression: a process that never calls close() (crash path,
    KeyboardInterrupt unwind) must still reap its farm via atexit."""
    script = (
        "import sys\n"
        "from repro.service import KernelService\n"
        "svc = KernelService(cache_dir=None, farm_workers=2)\n"
        "print('PIDS', *svc.farm_worker_pids(), flush=True)\n"
        "sys.exit(0)\n"  # deliberately no svc.close()
    )
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, cwd=str(REPO_ROOT),
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    pids = [int(p) for p in proc.stdout.split("PIDS", 1)[1].split()]
    assert len(pids) == 2
    assert _wait_dead(pids) == []


def test_sigterm_drains_gateway_and_reaps_farm(tmp_path):
    """The full front-door teardown: ``serve --listen`` + SIGTERM =>
    graceful drain messages, exit 0, and no orphaned farm worker."""
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--listen",
         "--farm-workers", "2", "--requests", "1"],
        env=env, cwd=str(REPO_ROOT), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    try:
        line = proc.stdout.readline()
        assert line.startswith("LISTENING "), line
        addr = line.split()[1]
        c = GatewayClient([addr], retries=2, seed=0)
        try:
            stats = c.stats(deadline_s=30.0)
            pids = list(stats["farm_pids"])
            assert len(pids) == 2
            assert c.compile_run("saxpy_fp", size=SIZE,
                                 deadline_s=60.0)["status"] == "ok"
        finally:
            c.close()
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "gateway drained" in out, out
        assert _wait_dead(pids) == []
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)
