"""Tests for the target descriptors."""

import pytest

from repro.ir import F32, F64, I8, I16, I32, I64
from repro.targets import ALTIVEC, AVX, NEON, SCALAR, SSE, TARGETS, VSX, get_target


class TestRegistry:
    def test_all_paper_targets_present(self):
        assert set(TARGETS) == {
            "sse", "altivec", "neon", "avx", "vsx", "scalar"
        }

    def test_lookup(self):
        assert get_target("neon") is NEON
        with pytest.raises(KeyError):
            get_target("avx512")


class TestVectorFactors:
    """The VF table from §II: 16-byte targets hold 4 floats, NEON's 8-byte
    registers hold 2 — the paper's running example."""

    @pytest.mark.parametrize(
        "target,elem,vf",
        [
            (SSE, F32, 4), (SSE, I16, 8), (SSE, I8, 16), (SSE, F64, 2),
            (ALTIVEC, F32, 4), (ALTIVEC, I8, 16),
            (NEON, F32, 2), (NEON, I16, 4), (NEON, I8, 8),
            (AVX, F32, 8), (AVX, F64, 4),
        ],
    )
    def test_vf(self, target, elem, vf):
        assert target.vf(elem) == vf

    def test_unsupported_elem_vf_is_one(self):
        assert ALTIVEC.vf(F64) == 1  # no 64-bit support
        assert NEON.vf(F64) == 1
        assert AVX.vf(I32) == 1      # AVX1 is float-only

    def test_scalar_target(self):
        assert not SCALAR.has_simd
        assert SCALAR.vf(F32) == 1


class TestCapabilities:
    def test_altivec_alignment_rules(self):
        assert not ALTIVEC.supports_misaligned_load
        assert not ALTIVEC.supports_misaligned_store
        assert ALTIVEC.supports_explicit_realign

    def test_sse_misaligned(self):
        assert SSE.supports_misaligned_load
        assert not SSE.supports_explicit_realign

    def test_neon_library_idioms(self):
        assert "widen_mult" in NEON.library_idioms
        assert "cvt_intfp" in NEON.library_idioms
        assert not SSE.library_idioms

    def test_x86_register_famine(self):
        assert SSE.gpr_count < ALTIVEC.gpr_count

    def test_vsx_extends_altivec(self):
        # The paper's SIII-A: realignment idioms are "available on some
        # SIMD platforms (like AltiVec, VSX, SPU)"; VSX adds 64-bit
        # elements and misaligned accesses on top of AltiVec.
        assert VSX.supports_explicit_realign
        assert VSX.supports_misaligned_load
        assert VSX.vf(F64) == 2 and VSX.vf(I64) == 2

    def test_cost_table_overrides(self):
        assert SSE.cost.get("vload_u") > SSE.cost.get("vload_a")
        assert SSE.cost.get("vstore_u") > SSE.cost.get("vstore_a")
        # Unknown opcodes fall back to a default, never crash.
        assert ALTIVEC.cost.get("made_up_op") == 1.0
