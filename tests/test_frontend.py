"""Tests for the VaporC frontend: lexer, parser, sema, lowering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import (
    LexError,
    ParseError,
    SemaError,
    compile_source,
    parse,
    tokenize,
)
from repro.frontend.ast_nodes import (
    AssignStmt,
    BinExpr,
    CastExpr,
    ForStmt,
    IfStmt,
    NumLit,
    TernaryExpr,
)
from repro.ir import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    Cmp,
    Const,
    Convert,
    ForLoop,
    If,
    Load,
    Select,
    Store,
    verify_function,
    walk,
)


class TestLexer:
    def test_keywords_and_idents(self):
        toks = tokenize("int foo for forx")
        assert [(t.kind, t.text) for t in toks[:-1]] == [
            ("kw", "int"),
            ("ident", "foo"),
            ("kw", "for"),
            ("ident", "forx"),
        ]

    def test_numbers(self):
        toks = tokenize("42 3.5 1e3 2.5e-2 7f")
        kinds = [(t.kind, t.text) for t in toks[:-1]]
        assert kinds == [
            ("int", "42"),
            ("float", "3.5"),
            ("float", "1e3"),
            ("float", "2.5e-2"),
            ("float", "7"),
        ]

    def test_multichar_punct_longest_match(self):
        toks = tokenize("a <<= b >= c << d < e")
        texts = [t.text for t in toks if t.kind == "punct"]
        assert texts == ["<<=", ">=", "<<", "<"]

    def test_line_comment(self):
        toks = tokenize("a // comment with * tokens\nb")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_block_comment(self):
        toks = tokenize("a /* multi\nline */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")

    def test_unknown_char(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1 and toks[0].col == 1
        assert toks[1].line == 2 and toks[1].col == 3

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_int_literal_roundtrip(self, n):
        toks = tokenize(str(n))
        assert toks[0].kind == "int" and int(toks[0].text) == n

    @given(st.floats(min_value=0, max_value=1e18, allow_nan=False))
    @settings(max_examples=50)
    def test_float_literal_roundtrip(self, x):
        text = repr(float(x))
        toks = tokenize(text)
        assert toks[0].kind in ("float", "int")
        assert float(toks[0].text) == pytest.approx(float(x))


_SIMPLE = """
void f(int n, float a[]) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 2.0;
    }
}
"""


class TestParser:
    def test_function_shape(self):
        prog = parse(_SIMPLE)
        assert len(prog.functions) == 1
        fn = prog.functions[0]
        assert fn.name == "f"
        assert fn.return_type == "void"
        assert len(fn.params) == 2

    def test_for_normalization_lt(self):
        prog = parse(_SIMPLE)
        loop = prog.functions[0].body.stmts[0]
        assert isinstance(loop, ForStmt)
        assert loop.iv == "i" and loop.step == 1 and not loop.inclusive

    def test_for_le_and_step(self):
        prog = parse(
            "void f(int n) { int s = 0; for (int i = 0; i <= n; i += 2) { s = s + i; } }"
        )
        loop = prog.functions[0].body.stmts[1]
        assert loop.inclusive and loop.step == 2

    def test_for_i_eq_i_plus_c(self):
        prog = parse(
            "void f(int n) { int s = 0; for (int i = 0; i < n; i = i + 4) { s = s + i; } }"
        )
        assert prog.functions[0].body.stmts[1].step == 4

    def test_precedence_mul_over_add(self):
        prog = parse("int f(int a, int b, int c) { return a + b * c; }")
        ret = prog.functions[0].body.stmts[0]
        assert isinstance(ret.value, BinExpr) and ret.value.op == "+"
        assert isinstance(ret.value.rhs, BinExpr) and ret.value.rhs.op == "*"

    def test_precedence_shift_vs_add(self):
        prog = parse("int f(int a) { return a + 1 >> 2; }")
        ret = prog.functions[0].body.stmts[0]
        assert ret.value.op == ">>"
        assert ret.value.lhs.op == "+"

    def test_ternary(self):
        prog = parse("int f(int a) { return a > 0 ? a : -a; }")
        assert isinstance(prog.functions[0].body.stmts[0].value, TernaryExpr)

    def test_cast(self):
        prog = parse("int f(float x) { return (int)x; }")
        assert isinstance(prog.functions[0].body.stmts[0].value, CastExpr)

    def test_multidim_subscript(self):
        prog = parse(
            "void f(float A[4][8]) { A[1][2] = 0.0; }"
        )
        stmt = prog.functions[0].body.stmts[0]
        assert isinstance(stmt, AssignStmt)
        assert len(stmt.target.indices) == 2

    def test_compound_assign_desugars_in_sema(self):
        prog = parse("void f(int n) { int s = 0; s += n; }")
        assert prog.functions[0].body.stmts[1].op == "+"

    def test_increment_statement(self):
        prog = parse("void f() { int s = 0; s++; }")
        stmt = prog.functions[0].body.stmts[1]
        assert stmt.op == "+" and isinstance(stmt.value, NumLit)

    def test_if_else(self):
        prog = parse("void f(int a) { int s = 0; if (a > 0) s = 1; else s = 2; }")
        assert isinstance(prog.functions[0].body.stmts[1], IfStmt)

    def test_may_alias(self):
        prog = parse("void f(__may_alias char a[]) { a[0] = a[0]; }")
        assert prog.functions[0].params[0].may_alias

    def test_error_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f() { int x = 1 }")

    def test_error_bad_loop_condition(self):
        with pytest.raises(ParseError):
            parse("void f(int n) { for (int i = 0; n > i; i++) {} }")

    def test_error_bad_loop_step(self):
        with pytest.raises(ParseError):
            parse("void f(int n) { for (int i = 0; i < n; i--) {} }")


class TestSema:
    def test_undeclared_identifier(self):
        with pytest.raises(SemaError):
            compile_source("void f() { int x = y; }")

    def test_rank_mismatch(self):
        with pytest.raises(SemaError):
            compile_source("void f(float A[4][4]) { A[0] = 0.0; }")

    def test_subscript_of_scalar(self):
        with pytest.raises(SemaError):
            compile_source("void f(int n) { n[0] = 1; }")

    def test_array_without_subscript(self):
        with pytest.raises(SemaError):
            compile_source("int f(float a[]) { return a; }")

    def test_void_return_with_value(self):
        with pytest.raises(SemaError):
            compile_source("void f() { return 1; }")

    def test_nonvoid_return_without_value(self):
        with pytest.raises(SemaError):
            compile_source("int f() { return; }")

    def test_shift_of_float(self):
        with pytest.raises(SemaError):
            compile_source("float f(float x) { return x << 1; }")

    def test_mod_of_float(self):
        with pytest.raises(SemaError):
            compile_source("float f(float x) { return x % 2.0; }")

    def test_duplicate_function(self):
        with pytest.raises(SemaError):
            compile_source("void f() {} void f() {}")

    def test_redeclaration(self):
        with pytest.raises(SemaError):
            compile_source("void f() { int x = 1; int x = 2; }")

    def test_flexible_float_literal_adopts_f32(self):
        fn = compile_source("float f(float x) { return x * 2.0; }")["f"]
        muls = [i for i in walk(fn.body) if getattr(i, "op", "") == "mul"]
        assert muls[0].type is F32

    def test_flexible_literal_adopts_f64(self):
        fn = compile_source("double f(double x) { return x * 2.0; }")["f"]
        muls = [i for i in walk(fn.body) if getattr(i, "op", "") == "mul"]
        assert muls[0].type is F64

    def test_int_float_mix_promotes(self):
        fn = compile_source("float f(int a, float x) { return a + x; }")["f"]
        adds = [i for i in walk(fn.body) if getattr(i, "op", "") == "add"]
        assert adds[0].type is F32
        converts = [i for i in walk(fn.body) if isinstance(i, Convert)]
        assert any(c.to is F32 for c in converts)

    def test_small_int_arithmetic_stays_narrow(self):
        fn = compile_source("short f(short a, short b) { return (short)(a + b); }")["f"]
        adds = [i for i in walk(fn.body) if getattr(i, "op", "") == "add"]
        assert adds[0].type is I16

    def test_loop_var_must_be_int(self):
        with pytest.raises(SemaError):
            compile_source("void f(float n) { for (float i = 0; i < n; i++) {} }")

    def test_inner_dim_must_be_const(self):
        with pytest.raises(SemaError):
            compile_source("void f(int n, float A[4][n]) { A[0][0] = 1.0; }")


class TestLowering:
    def test_scalar_promotion_reduction(self):
        fn = compile_source(
            "float f(int n, float a[]) { float s = 0;"
            " for (int i = 0; i < n; i++) { s += a[i]; } return s; }"
        )["f"]
        verify_function(fn)
        loops = [i for i in walk(fn.body) if isinstance(i, ForLoop)]
        assert len(loops) == 1
        assert len(loops[0].carried) == 1

    def test_if_with_assignment_yields(self):
        fn = compile_source(
            "int f(int n, int a[]) { int best = 0;"
            " for (int i = 0; i < n; i++) { if (a[i] > best) { best = a[i]; } }"
            " return best; }"
        )["f"]
        verify_function(fn)
        ifs = [i for i in walk(fn.body) if isinstance(i, If)]
        assert len(ifs) == 1 and len(ifs[0].results) == 1

    def test_ternary_becomes_select(self):
        fn = compile_source("int f(int a, int b) { return a > b ? a : b; }")["f"]
        assert any(isinstance(i, Select) for i in walk(fn.body))

    def test_builtin_min_max_abs(self):
        fn = compile_source(
            "int f(int a, int b) { return min(a, b) + max(a, b) + abs(a); }"
        )["f"]
        ops = {getattr(i, "op", None) for i in walk(fn.body)}
        assert {"min", "max", "abs"} <= ops

    def test_iv_read_after_loop_rejected(self):
        with pytest.raises(SemaError):
            compile_source(
                "int f(int n) { int i = 0; int s = 0;"
                " for (i = 0; i < n; i++) { s += i; } return i; }"
            )

    def test_nested_loop_carried_threading(self):
        fn = compile_source(
            "float f(float A[4][4]) { float s = 0;"
            " for (int i = 0; i < 4; i++)"
            "   for (int j = 0; j < 4; j++) { s += A[i][j]; }"
            " return s; }"
        )["f"]
        verify_function(fn)
        loops = [i for i in walk(fn.body) if isinstance(i, ForLoop)]
        assert all(len(l.carried) == 1 for l in loops)

    def test_stores_and_loads_emitted(self):
        fn = compile_source(_SIMPLE)["f"]
        assert any(isinstance(i, Store) for i in walk(fn.body))
        assert any(isinstance(i, Load) for i in walk(fn.body))

    def test_symbolic_array_extent(self):
        fn = compile_source("void f(int n, float a[n]) { a[0] = 1.0; }")["f"]
        arr = fn.array_params[0]
        assert arr.shape[0] is fn.scalar_params[0]

    def test_bool_condition_type(self):
        fn = compile_source("int f(int a) { return a > 3 ? 1 : 0; }")["f"]
        cmps = [i for i in walk(fn.body) if isinstance(i, Cmp)]
        assert cmps and cmps[0].type is BOOL
