"""The resilient JIT compilation service (docs/service.md).

Covers every resilience primitive in isolation — crash-safe cache,
admission, deadlines, circuit breakers — and their composition in
:class:`repro.service.KernelService`: the strictly ordered degradation
cascade, stale serving, warm/cold byte-identity, and the health/stats
surfaces.  The hypothesis suite at the bottom proves the cache's VBK1
envelope catches *any* single-byte corruption (the mirror of
``test_resilience.test_every_single_byte_corruption_rejected`` for the
on-disk artifact store).
"""

from __future__ import annotations

import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.errors import ReproError, classify
from repro.harness.flows import FlowRunner
from repro.kernels import get_kernel
from repro.service import (
    AdmissionQueue,
    CacheError,
    CacheKey,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineError,
    KernelCache,
    KernelService,
    OverloadError,
    ServiceRequest,
    atomic_write,
)

SIZE = 16
FLOW = "split_vec_gcc4cli"


@pytest.fixture()
def svc(tmp_path):
    service = KernelService(cache_dir=str(tmp_path / "cache"), seed=0,
                            backoff_base=0.0)
    yield service
    service.close()


def _req(kernel="saxpy_fp", **kw):
    kw.setdefault("flow", FLOW)
    kw.setdefault("target", "sse")
    kw.setdefault("size", SIZE)
    return ServiceRequest(kernel, **kw)


def _compiled(tmp_path, kernel="saxpy_fp", target="sse"):
    """(cache, key, CompiledKernel) for direct cache-layer tests."""
    from repro.targets import get_target

    runner = FlowRunner()
    inst = get_kernel(kernel).instantiate(SIZE)
    ck = runner.compiled(inst, FLOW, get_target(target))
    cache = KernelCache(str(tmp_path / "kc"))
    key = CacheKey(0xDEADBEEF, target, "gcc4cli")
    return cache, key, ck


# -- atomic_write -------------------------------------------------------------


def test_atomic_write_creates_and_replaces(tmp_path):
    path = str(tmp_path / "artifact.bin")
    atomic_write(path, b"first")
    assert open(path, "rb").read() == b"first"
    atomic_write(path, b"second")
    assert open(path, "rb").read() == b"second"
    # no temp litter
    assert os.listdir(tmp_path) == ["artifact.bin"]


def test_atomic_write_torn_leaves_destination_untouched(tmp_path):
    path = str(tmp_path / "artifact.bin")
    atomic_write(path, b"good old content")
    with faults.injected(faults.FaultPlan([faults.CacheTornWrite()])):
        with pytest.raises(CacheError) as exc_info:
            atomic_write(path, b"NEW content that dies mid-write")
    assert exc_info.value.kind == "torn-write"
    assert isinstance(exc_info.value, faults.FaultInjected)
    assert classify(exc_info.value) == "CacheError[injected]"
    # Destination still the old content; the partial temp file is the
    # only evidence of the crash.
    assert open(path, "rb").read() == b"good old content"
    tmps = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
    assert tmps, "expected the partial temp file to remain"


def test_torn_write_count_bounds_failures(tmp_path):
    path = str(tmp_path / "a.bin")
    with faults.injected(faults.FaultPlan([faults.CacheTornWrite(count=1)])):
        with pytest.raises(CacheError):
            atomic_write(path, b"x" * 64)
        atomic_write(path, b"recovered")  # second write under plan is fine
    assert open(path, "rb").read() == b"recovered"


# -- KernelCache --------------------------------------------------------------


def test_cache_roundtrip_preserves_kernel(tmp_path):
    cache, key, ck = _compiled(tmp_path)
    assert cache.get(key) is None  # miss on empty
    assert cache.put(key, ck)
    got = cache.get(key)
    assert got is not None
    assert got.target.name == ck.target.name
    assert got.compiler == ck.compiler
    assert got.degraded == ck.degraded
    assert got.mfunc.dump() == ck.mfunc.dump()
    s = cache.stats()
    assert s["entries"] == 1 and s["hits"] == 1 and s["misses"] == 1


def test_cache_filename_is_key_deterministic(tmp_path):
    key = CacheKey(0xABCD1234, "neon", "mono")
    assert key.filename() == CacheKey(0xABCD1234, "neon", "mono").filename()
    assert key.filename() != CacheKey(0xABCD1234, "sse", "mono").filename()
    assert key.filename() != CacheKey(0xABCD1235, "neon", "mono").filename()
    other_tool = CacheKey(0xABCD1234, "neon", "mono", toolchain="v2")
    assert key.filename() != other_tool.filename()


def test_cache_quarantines_corrupt_entry_and_self_heals(tmp_path):
    cache, key, ck = _compiled(tmp_path)
    cache.put(key, ck)
    path = os.path.join(cache.root, key.filename())
    data = bytearray(open(path, "rb").read())
    data[len(data) // 2] ^= 0x40
    open(path, "wb").write(bytes(data))

    assert cache.get(key) is None  # classified miss, not an exception
    assert cache.quarantined == 1
    assert not os.path.exists(path)
    assert os.listdir(cache.quarantine_dir)  # evidence kept

    # Self-heal: recompile path re-puts and the entry serves again.
    assert cache.put(key, ck)
    assert cache.get(key) is not None


def test_cache_lru_eviction_respects_byte_budget(tmp_path):
    cache, key, ck = _compiled(tmp_path)
    cache.put(key, ck)
    entry_bytes = cache.total_bytes()
    small = KernelCache(str(tmp_path / "small"),
                        byte_budget=int(entry_bytes * 2.5))
    keys = [CacheKey(i, "sse", "gcc4cli") for i in range(4)]
    for k in keys:
        small.put(k, ck)
    assert small.evictions >= 1
    assert small.total_bytes() <= small.byte_budget
    # Newest entries survive, oldest were evicted.
    assert small.get(keys[-1]) is not None
    assert small.get(keys[0]) is None


def _corrupt(path: str) -> None:
    data = bytearray(open(path, "rb").read())
    data[len(data) // 2] ^= 0x40
    open(path, "wb").write(bytes(data))


def test_quarantine_names_never_collide_across_instances(tmp_path):
    """Regression (quarantine collision): evidence files were named with
    the in-process ``quarantined`` counter, which resets on every
    restart — a second service instance quarantining the same entry name
    silently ``os.replace``d the first instance's evidence away."""
    cache, key, ck = _compiled(tmp_path)
    path = os.path.join(cache.root, key.filename())

    cache.put(key, ck)
    _corrupt(path)
    assert cache.get(key) is None  # quarantined by instance 1

    # A *fresh* cache over the same directory (counter would reset to 0)
    # quarantines the same entry name again.
    cache2 = KernelCache(cache.root)
    cache2.put(key, ck)
    _corrupt(path)
    assert cache2.get(key) is None  # quarantined by instance 2

    evidence = [n for n in os.listdir(cache.quarantine_dir)
                if n.startswith(key.filename())]
    assert len(evidence) == 2, (
        f"expected both evidence files to survive, got {evidence}"
    )


def _assert_bytes_consistent(cache: KernelCache) -> None:
    """The running byte total must equal the O(n) recomputed sum."""
    with cache._lock:
        assert cache._bytes == sum(cache._index.values())
        assert cache.total_bytes() == cache._bytes


def test_cache_running_byte_total_stays_consistent(tmp_path):
    """The eviction loop now budgets against a running byte total
    (O(evicted)) instead of re-summing the index per eviction (O(n²));
    the total must stay exact through put/get/evict/quarantine/scan."""
    cache, key, ck = _compiled(tmp_path)
    cache.put(key, ck)
    entry_bytes = cache.total_bytes()
    assert entry_bytes > 0
    _assert_bytes_consistent(cache)

    small = KernelCache(str(tmp_path / "small"),
                        byte_budget=int(entry_bytes * 2.5))
    keys = [CacheKey(i, "sse", "gcc4cli") for i in range(6)]
    for k in keys:
        small.put(k, ck)
        _assert_bytes_consistent(small)
    assert small.evictions >= 1
    assert small.total_bytes() <= small.byte_budget

    # LRU touch keeps the total exact.
    assert small.get(keys[-1]) is not None
    _assert_bytes_consistent(small)

    # Explicit eviction subtracts.
    assert small.evict(keys[-1])
    _assert_bytes_consistent(small)

    # Quarantine subtracts.
    victim = next(iter(small._index))
    _corrupt(os.path.join(small.root, victim))
    small._scan()
    _assert_bytes_consistent(small)
    for k in keys:
        small.get(k)  # one of these quarantines the corrupt entry
    assert small.quarantined >= 1
    _assert_bytes_consistent(small)

    # A fresh scan over the same directory agrees with disk.
    rescan = KernelCache(small.root, byte_budget=small.byte_budget)
    _assert_bytes_consistent(rescan)
    assert rescan.total_bytes() == sum(
        os.stat(os.path.join(rescan.root, n)).st_size
        for n in rescan._index
    )


def test_cache_evict_is_idempotent(tmp_path):
    cache, key, ck = _compiled(tmp_path)
    cache.put(key, ck)
    assert cache.evict(key) is True
    assert cache.evict(key) is False
    assert cache.get(key) is None


def test_cache_put_failure_is_counted_not_raised(tmp_path):
    cache, key, ck = _compiled(tmp_path)
    with faults.injected(faults.FaultPlan([faults.CacheTornWrite()])):
        assert cache.put(key, ck) is False
    assert cache.put_failures == 1
    assert cache.get(key) is None  # destination never appeared


# -- Deadline / AdmissionQueue ------------------------------------------------


def test_deadline_with_injected_clock():
    now = [0.0]
    dl = Deadline(5.0, clock=lambda: now[0])
    assert dl.remaining() == 5.0 and not dl.expired()
    now[0] = 4.0
    dl.check("mid-flight")  # fine
    now[0] = 5.0
    assert dl.expired() and dl.remaining() == 0.0
    with pytest.raises(DeadlineError) as exc_info:
        dl.check("after compilation")
    assert "after compilation" in str(exc_info.value)
    assert isinstance(exc_info.value, ReproError)
    # no deadline = never expires
    assert Deadline(None).remaining() is None
    assert not Deadline(None).expired()


def test_admission_sheds_past_limit_and_recovers():
    q = AdmissionQueue(limit=2)
    a, b = q.admit(), q.admit()
    with pytest.raises(OverloadError) as exc_info:
        q.admit()
    assert exc_info.value.limit == 2
    assert classify(exc_info.value) == "OverloadError"
    a.__exit__(None, None, None)
    with q.admit():
        pass
    b.__exit__(None, None, None)
    s = q.stats()
    assert s["depth"] == 0 and s["shed"] == 1 and s["peak_depth"] == 2


def test_run_cells_deadline_quarantines_remaining_cells():
    from repro.harness.parallel import Cell, run_cells

    kernels = ["saxpy_fp", "dscal_fp", "interp_fp"]
    cells = [Cell(k, FLOW, "sse", SIZE) for k in kernels]
    now = [0.0]
    expired = Deadline(1.0, clock=lambda: now[0])
    now[0] = 2.0
    results = run_cells(cells, jobs=1, deadline=expired)
    assert len(results) == len(cells)
    for r in results:
        assert not r.ok
        assert r.error_kind == "CellError[deadline]"
        assert "deadline" in (r.error or "")


# -- CircuitBreaker -----------------------------------------------------------


def test_breaker_full_cycle():
    b = CircuitBreaker(failure_threshold=2, cooldown=3)
    assert b.state == "closed" and b.allow()
    b.record_failure()
    assert b.state == "closed"  # below threshold
    b.record_failure()
    assert b.state == "open"
    # cooldown - 1 requests are short-circuited...
    assert not b.allow() and not b.allow()
    assert b.state == "open"
    # ...and the request that crosses the cooldown IS the probe (it used
    # to be denied too, costing sparse traffic one extra request).
    assert b.allow()
    assert b.state == "half-open"
    assert not b.allow()  # only one probe at a time
    b.record_failure()    # probe fails -> back to open
    assert b.state == "open"
    for _ in range(2):
        assert not b.allow()
    assert b.allow()      # cooldown crossed again: next probe
    b.record_success()
    assert b.state == "closed"
    snap = b.snapshot()
    assert snap["opens"] == 2 and snap["probes"] == 2
    assert snap["short_circuits"] == 5  # 2 + 1 (probe busy) + 2


def test_breaker_probe_not_delayed_an_extra_request():
    """Regression (delayed probe): the call that crosses ``cooldown``
    must itself be admitted as the probe — sparse traffic used to need
    cooldown + 1 requests because that call flipped OPEN -> HALF-OPEN
    but still returned False."""
    b = CircuitBreaker(failure_threshold=1, cooldown=2)
    b.record_failure()
    assert b.state == "open"
    assert not b.allow()          # denial 1 of 2
    assert b.allow()              # denial 2 crosses cooldown -> the probe
    assert b.state == "half-open"
    assert b.snapshot()["probes"] == 1
    b.record_success()
    assert b.state == "closed"


def test_breaker_release_probe_frees_slot_without_judging_target():
    """Regression (half-open wedge): a probe that evaporates (deadline
    expiry before the attempt ran) must release the slot — without a
    state change or a failure charge — or the breaker wedges half-open
    and short-circuits every later request forever."""
    b = CircuitBreaker(failure_threshold=1, cooldown=1)
    b.record_failure()
    assert b.state == "open"
    assert b.allow()              # cooldown=1: first call is the probe
    assert b.state == "half-open"
    assert not b.allow()          # probe slot busy
    b.release_probe()             # the probe's request evaporated
    assert b.state == "half-open"  # no judgement either way
    assert b.allow()              # slot free again: next request probes
    b.record_success()
    assert b.state == "closed"


def test_breaker_success_resets_failure_streak():
    b = CircuitBreaker(failure_threshold=3, cooldown=2)
    b.record_failure()
    b.record_failure()
    b.record_success()
    b.record_failure()
    b.record_failure()
    assert b.state == "closed"  # streak broken, never reached 3


# -- KernelService: primary path ----------------------------------------------


def test_service_warm_cache_is_byte_identical_to_cold(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold_runner = FlowRunner()  # no cache at all
    inst = get_kernel("saxpy_fp").instantiate(SIZE)
    cold = cold_runner.run(inst, FLOW, "sse")

    with KernelService(cache_dir=cache_dir) as first:
        r1 = first.handle(_req())
        assert r1.status == "ok" and not r1.from_cache

    # A *fresh* service over the same directory: cross-instance warm hit.
    with KernelService(cache_dir=cache_dir) as second:
        r2 = second.handle(_req())
        assert r2.status == "ok" and r2.from_cache
    for resp in (r1, r2):
        assert resp.result.cycles == cold.cycles
        assert resp.result.value == cold.value
        assert resp.result.checked


def test_service_counts_and_health(svc):
    for _ in range(3):
        assert svc.handle(_req()).ok
    stats = svc.stats()
    assert stats["requests"] == 3 and stats["ok"] == 3
    assert stats["served"] == 3
    assert stats["cache"]["entries"] == 1
    assert stats["cache"]["hits"] == 2
    health = svc.health()
    assert health["status"] == "ok"
    assert health["cache_enabled"] and health["queue_depth"] == 0


def test_service_rejects_unknown_kernel_and_flow(svc):
    bad_kernel = svc.handle(_req(kernel="no_such_kernel"))
    assert bad_kernel.status == "rejected"
    assert bad_kernel.error == "bad-request"
    bad_flow = svc.handle(_req(flow="no_such_flow"))
    assert bad_flow.status == "rejected" and bad_flow.error == "bad-request"
    bad_target = svc.handle(_req(target="vax"))
    assert bad_target.status == "rejected"


def test_service_batch_submit_and_order(svc):
    kernels = ["saxpy_fp", "dscal_fp", "interp_fp", "saxpy_fp"]
    responses = svc.serve([_req(k) for k in kernels])
    assert [r.request.kernel for r in responses] == kernels
    assert all(r.ok for r in responses)


def test_service_submit_after_close_is_classified(tmp_path):
    svc = KernelService(cache_dir=str(tmp_path / "c"))
    svc.close()
    resp = svc.submit(_req()).result()
    assert resp.status == "rejected"
    assert resp.events and resp.events[0].cause == "service-closed"


# -- KernelService: resilience ------------------------------------------------


def test_service_retry_rescues_transient_fault(svc):
    plan = faults.FaultPlan([faults.MemFault(after=5)])  # one-shot
    with faults.injected(plan):
        resp = svc.handle(_req())
    assert resp.status == "ok"
    assert resp.attempts == 2
    assert svc.stats()["retries"] == 1


def test_service_deadline_zero_is_classified_rejection(svc):
    resp = svc.handle(_req(deadline_s=0.0))
    assert resp.status == "rejected"
    assert resp.error == "DeadlineError"
    assert svc.stats()["deadline_misses"] == 1


def test_service_overload_sheds_with_classified_error(svc):
    slots = [svc.admission.admit()
             for _ in range(svc.admission.limit)]
    try:
        resp = svc.handle(_req())
        assert resp.status == "shed"
        assert resp.error == "OverloadError"
        assert svc.health()["status"] == "overloaded"
    finally:
        for s in slots:
            s.__exit__(None, None, None)
    assert svc.handle(_req()).ok  # recovered


def test_materialize_fault_degrades_before_cascade(svc):
    """A materializer fault is absorbed *below* the service: the JIT's
    compile-level retry (PR 2) re-materializes with every group
    scalarized, so the primary attempt itself serves — degraded, with
    the forced-scalar events — and the cascade never engages."""
    plan = faults.FaultPlan([faults.MaterializeFault(target="sse")])
    with faults.injected(plan):
        resp = svc.handle(_req())
    assert resp.status == "degraded"
    assert resp.ok and resp.result.checked
    causes = [e.cause for e in resp.events]
    assert "forced-scalar" in causes
    assert "primary-failed" not in causes  # the primary served
    assert resp.result.flow == FLOW and resp.result.target == "sse"


def test_cascade_order_native_before_forced_scalar(svc):
    """When the primary fails but the cascade serves, the native
    fallback (step 1) is attempted before forced-scalar (step 2)."""
    plan = faults.FaultPlan([faults.MemFault(after=1, repeat=True)])
    with faults.injected(plan):
        resp = svc.handle(_req())
    causes = [e.cause for e in resp.events]
    assert causes[0] == "primary-failed"
    if "forced-scalar" in causes or "forced-scalar-failed" in causes:
        # step 2 only ever runs after step 1 failed
        assert "native-fallback-failed" in causes
        assert causes.index("native-fallback-failed") < max(
            causes.index(c) for c in causes
            if c.startswith("forced-scalar")
        )


def test_cascade_stale_serve_after_total_outage(svc):
    good = svc.handle(_req("dscal_fp"))
    assert good.status == "ok"
    # Persistent memory fault: every engine run traps, every cascade
    # step that executes code fails -> stale is the only source left.
    plan = faults.FaultPlan([faults.MemFault(after=1, repeat=True)])
    with faults.injected(plan):
        resp = svc.handle(_req("dscal_fp"))
    assert resp.status == "stale"
    assert resp.result.value == good.result.value
    assert resp.result.cycles == good.result.cycles
    assert any(e.cause == "stale-cache" for e in resp.events)


def test_cascade_rejection_floor_is_classified(svc):
    """No stale entry + total outage = classified rejection with the
    full event chain, never a traceback."""
    plan = faults.FaultPlan([faults.MemFault(after=1, repeat=True)])
    with faults.injected(plan):
        resp = svc.handle(_req("interp_fp"))
    assert resp.status == "rejected"
    assert resp.error == "VMError[injected]"  # injection stays visible
    causes = [e.cause for e in resp.events]
    assert "primary-failed" in causes
    assert "native-fallback-failed" in causes
    assert "forced-scalar-failed" in causes


def test_breaker_opens_and_short_circuits(tmp_path):
    svc = KernelService(
        cache_dir=str(tmp_path / "c"), retries=0, backoff_base=0.0,
        breaker_threshold=2, breaker_cooldown=3,
    )
    try:
        plan = faults.FaultPlan([faults.MemFault(after=1, repeat=True)])
        with faults.injected(plan):
            svc.handle(_req("interp_fp"))
            svc.handle(_req("interp_fp"))
            assert svc.health()["breakers"]["sse"] == "open"
            resp = svc.handle(_req("interp_fp"))
        assert any(e.cause == "breaker-open" for e in resp.events)
        assert svc.stats()["breaker_short_circuits"] >= 1
        assert svc.health()["status"] == "degraded"
    finally:
        svc.close()


def test_half_open_probe_deadline_does_not_wedge_breaker(tmp_path):
    """Regression (half-open wedge, end to end): a HALF-OPEN probe whose
    request dies of deadline expiry used to return early without
    releasing the probe slot, leaving ``_probe_inflight`` True forever —
    every later request for that target was short-circuited into the
    cascade and the breaker could never close again."""
    svc = KernelService(
        cache_dir=str(tmp_path / "c"), retries=0, backoff_base=0.0,
        breaker_threshold=1, breaker_cooldown=1,
    )
    try:
        plan = faults.FaultPlan([faults.MemFault(after=1, repeat=True)])
        with faults.injected(plan):
            bad = svc.handle(_req("saxpy_fp", target="neon"))
        assert not any(e.cause == "breaker-open" for e in bad.events)
        assert svc.health()["breakers"]["neon"] == "open"

        # cooldown=1: this request crosses the cooldown and IS the
        # probe — and its zero deadline expires before the attempt runs.
        probe = svc.handle(_req("saxpy_fp", target="neon", deadline_s=0.0))
        assert probe.status == "rejected" and probe.error == "DeadlineError"
        # Expiry is load, not target health: no state change...
        assert svc.health()["breakers"]["neon"] == "half-open"

        # ...and crucially the probe slot is free again: the next clean
        # request is admitted as a probe, succeeds, and closes the
        # breaker.  (Wedged, it would cascade-degrade forever.)
        good = svc.handle(_req("saxpy_fp", target="neon"))
        assert good.status == "ok"
        assert not any(e.cause == "breaker-open" for e in good.events)
        assert svc.health()["breakers"]["neon"] == "closed"
    finally:
        svc.close()


def test_fault_degraded_artifacts_are_not_cached(svc):
    """The taint rule: artifacts degraded under an active fault plan
    never reach the persistent cache, so a later clean request does not
    replay the fault."""
    plan = faults.FaultPlan([faults.LoweringFault(idiom="*", target="sse")])
    with faults.injected(plan):
        degraded = svc.handle(_req())
    assert degraded.status == "degraded"
    clean = svc.handle(_req())
    assert clean.status == "ok"
    assert not any(e.cause == "fault-injected" for e in clean.events)


def test_service_concurrent_requests_are_all_served(tmp_path):
    svc = KernelService(cache_dir=str(tmp_path / "c"), workers=4,
                        queue_limit=64)
    try:
        kernels = ["saxpy_fp", "dscal_fp", "interp_fp", "sfir_fp"]
        reqs = [_req(kernels[i % 4]) for i in range(24)]
        responses = svc.serve(reqs)
        assert all(r.ok for r in responses)
        # warm hits appear once each kernel's first compile landed
        assert svc.stats()["cache"]["hits"] > 0
    finally:
        svc.close()


def test_service_thread_safety_under_racing_handles(tmp_path):
    svc = KernelService(cache_dir=str(tmp_path / "c"), queue_limit=64)
    errors: list = []

    def spin():
        try:
            for _ in range(5):
                resp = svc.handle(_req("dscal_fp"))
                assert resp.ok
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=spin) for _ in range(6)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        svc.close()
    assert not errors


# -- hypothesis: the single-byte corruption property --------------------------


class TestCacheCorruptionProperty:
    """Any single-byte corruption of an on-disk entry is detected,
    quarantined, and transparently recompiled — never served."""

    _prepared: dict = {}

    @classmethod
    def _entry(cls):
        if "data" not in cls._prepared:
            import shutil
            import tempfile

            from repro.targets import get_target

            runner = FlowRunner()
            inst = get_kernel("saxpy_fp").instantiate(SIZE)
            ck = runner.compiled(inst, FLOW, get_target("sse"))
            seed_root = tempfile.mkdtemp(prefix="repro-vbk-seed-")
            try:
                cache = KernelCache(seed_root)
                key = CacheKey(0x1234, "sse", "gcc4cli")
                cache.put(key, ck)
                path = os.path.join(cache.root, key.filename())
                cls._prepared = {
                    "data": open(path, "rb").read(),
                    "dump": ck.mfunc.dump(),
                    "ck": ck,
                }
            finally:
                shutil.rmtree(seed_root, ignore_errors=True)
        return cls._prepared

    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_any_single_byte_corruption_never_served(self, data):
        import shutil
        import tempfile

        prep = self._entry()
        blob = bytearray(prep["data"])
        off = data.draw(st.integers(0, len(blob) - 1))
        delta = data.draw(st.integers(1, 255))
        blob[off] = (blob[off] + delta) % 256

        root = tempfile.mkdtemp(prefix="repro-vbk-fuzz-")
        try:
            cache = KernelCache(root)
            key = CacheKey(0x1234, "sse", "gcc4cli")
            path = os.path.join(root, key.filename())
            atomic_write(path, bytes(blob))
            cache._scan()

            got = cache.get(key)
            if got is None:
                # Detected: quarantined, and the self-healing re-put
                # serves the true artifact again.
                assert cache.quarantined == 1
                assert not os.path.exists(path)
                assert cache.put(key, prep["ck"])
                healed = cache.get(key)
                assert healed is not None
                assert healed.mfunc.dump() == prep["dump"]
            else:
                # The VBK1 CRC covers the whole payload, so any byte
                # change must be caught; reaching here is a hole in the
                # envelope.
                pytest.fail(
                    f"single-byte corruption at offset {off} (+{delta}) "
                    "was not detected by the VBK1 envelope"
                )
        finally:
            shutil.rmtree(root, ignore_errors=True)
