"""The full kernel matrix: every Table 2 + PolyBench kernel, through every
compilation flow, on every target, checked against the numpy reference.

This is the repo's ground-truth integration test (and the reason the
FlowRunner fixture is session-scoped — offline results are shared).
"""

import pytest

from repro.kernels import all_kernels, get_kernel
from repro.targets import TARGETS

_KERNELS = all_kernels()
_IDS = [k.name for k in _KERNELS]

#: full matrix of interesting flows; scalar-bytecode flows are cheap on one
#: target and redundant elsewhere (no vector code involved).
_VEC_FLOWS = ("split_vec_mono", "split_vec_gcc4cli", "native_vec")
_SIMD_TARGETS = ("sse", "altivec", "neon")


@pytest.mark.parametrize("kernel", _KERNELS, ids=_IDS)
@pytest.mark.parametrize("target", _SIMD_TARGETS + ("scalar",))
@pytest.mark.parametrize("flow", _VEC_FLOWS)
def test_kernel_flow_target(runner, kernel, flow, target):
    inst = kernel.instantiate()
    result = runner.run(inst, flow, target)  # raises CheckError on mismatch
    assert result.checked
    assert result.cycles > 0


@pytest.mark.parametrize("kernel", _KERNELS, ids=_IDS)
def test_kernel_scalar_flows(runner, kernel):
    inst = kernel.instantiate()
    for flow in ("split_scalar_mono", "split_scalar_gcc4cli", "native_scalar"):
        assert runner.run(inst, flow, "sse").checked


@pytest.mark.parametrize("kernel", _KERNELS, ids=_IDS)
def test_vectorization_expectations(runner, kernel):
    """Kernels the paper vectorized must vectorize; lu/ludcmp/seidel's
    elimination/sweep loops must be rejected."""
    inst = kernel.instantiate()
    report = runner.split_ir(inst).annotations["vect_report"]
    vectorized = sum(1 for v in report.values() if v.startswith("vectorized"))
    if kernel.expect_vectorized:
        assert vectorized >= 1, report
    elif kernel.name == "ludcmp_fp":
        # The triangular substitution vectorizes; LU elimination must not.
        rejected = sum(1 for v in report.values() if v.startswith("rejected"))
        assert rejected >= 2, report
    else:
        assert vectorized == 0, report


@pytest.mark.parametrize(
    "kernel,label",
    [
        ("mix_streams_s16", "slp"),
        ("alvinn_s32fp", "outer"),
        ("dct_s32fp", "outer"),
        ("convolve_s32", "outer"),
        ("sfir_s16", "inner"),
    ],
)
def test_vectorization_strategy(runner, kernel, label):
    inst = get_kernel(kernel).instantiate()
    report = runner.split_ir(inst).annotations["vect_report"]
    assert any(v.startswith(f"vectorized ({label})") for v in report.values()), report


@pytest.mark.parametrize(
    "kernel", [k for k in _KERNELS if k.expect_vectorized], ids=lambda k: k.name
)
def test_vectorization_speeds_up_or_breaks_even(runner, kernel):
    """On SSE with the optimizing JIT, split-vectorized code should not be
    slower than the same JIT's scalar code (the cost model's contract);
    most kernels should be substantially faster."""
    inst = kernel.instantiate()
    vec = runner.run(inst, "split_vec_gcc4cli", "sse").cycles
    scal = runner.run(inst, "split_scalar_gcc4cli", "sse").cycles
    assert vec <= scal * 1.10, (vec, scal)


def test_most_kernels_gain_at_least_2x(runner):
    gains = []
    for kernel in _KERNELS:
        if not kernel.expect_vectorized:
            continue
        inst = kernel.instantiate()
        vec = runner.run(inst, "split_vec_gcc4cli", "sse").cycles
        scal = runner.run(inst, "split_scalar_gcc4cli", "sse").cycles
        gains.append(scal / vec)
    big = sum(1 for g in gains if g >= 2.0)
    assert big >= len(gains) * 0.6, sorted(round(g, 2) for g in gains)


@pytest.mark.parametrize("kernel", _KERNELS, ids=_IDS)
def test_bytecode_roundtrip_in_flow(runner, kernel):
    """The FlowRunner round-trips vectorized IR through the binary
    bytecode; this asserts the codec really is in the hot path."""
    inst = kernel.instantiate()
    scalar_bytes, vec_bytes = runner.bytecode_sizes(inst)
    assert scalar_bytes > 0 and vec_bytes > scalar_bytes


def test_kernel_registry_complete():
    names = {k.name for k in _KERNELS}
    table2 = {
        "dissolve_s8", "sad_s8", "sfir_s16", "interp_s16", "mix_streams_s16",
        "convolve_s32", "alvinn_s32fp", "dct_s32fp", "dissolve_fp", "sfir_fp",
        "interp_fp", "MMM_fp", "dscal_fp", "saxpy_fp", "dscal_dp", "saxpy_dp",
    }
    polybench = {
        "correlation_fp", "covariance_fp", "2mm_fp", "3mm_fp", "atax_fp",
        "gesummv_fp", "doitgen_fp", "gemm_fp", "gemver_fp", "bicg_fp",
        "gramschmidt_fp", "lu_fp", "ludcmp_fp", "adi_fp", "jacobi_fp",
        "seidel_fp",
    }
    assert table2 <= names and polybench <= names
    assert len(names) == 32


@pytest.mark.parametrize("size", [1, 2, 3, 5, 17, 64])
def test_saxpy_all_remainders(runner, size):
    """Trip counts around and below VF exercise peel/epilogue edges."""
    inst = get_kernel("saxpy_fp").instantiate(size)
    for target in ("sse", "neon", "scalar"):
        assert runner.run(inst, "split_vec_gcc4cli", target).checked


@pytest.mark.parametrize("size", [1, 3, 9, 33])
def test_sfir_all_remainders(runner, size):
    inst = get_kernel("sfir_fp").instantiate(size)
    for target in ("sse", "altivec"):
        assert runner.run(inst, "split_vec_mono", target).checked


@pytest.mark.parametrize("kernel", _KERNELS, ids=_IDS)
@pytest.mark.parametrize("target", ("vsx", "avx"))
def test_kernels_on_extended_targets(runner, kernel, target):
    """VSX (explicit realign + doubles + misaligned) and AVX (256-bit,
    fp-only: int kernels scalarize) run the same bytecode correctly."""
    inst = kernel.instantiate()
    assert runner.run(inst, "split_vec_gcc4cli", target).checked


def test_doubles_vectorize_on_vsx_not_altivec(runner):
    for name in ("dscal_dp", "saxpy_dp"):
        inst = get_kernel(name).instantiate()
        vsx = runner.run(inst, "split_vec_gcc4cli", "vsx")
        av = runner.run(inst, "split_vec_gcc4cli", "altivec")
        assert vsx.stats["loops_vectorized"] >= 1
        assert av.stats["loops_vectorized"] == 0
        assert vsx.cycles < av.cycles


def test_avx_vectorizes_fp_only(runner):
    fp = get_kernel("saxpy_fp").instantiate()
    s16 = get_kernel("sfir_s16").instantiate()
    assert runner.run(fp, "split_vec_gcc4cli", "avx").stats[
        "loops_vectorized"] >= 1
    assert runner.run(s16, "split_vec_gcc4cli", "avx").stats[
        "loops_vectorized"] == 0
