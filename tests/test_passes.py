"""Tests for the optimization passes, including hypothesis checks that
constant folding matches the VM's wrap-around semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.ir import (
    F32,
    I8,
    I16,
    I32,
    BinOp,
    Const,
    ForLoop,
    If,
    Load,
    verify_function,
    walk,
)
from repro.passes import (
    eliminate_dead_code,
    eval_binop,
    fold_constants,
    hoist_invariants,
    optimize,
    simplify,
)


def _compile(src, name="f"):
    return compile_source(src)[name]


class TestConstFold:
    def test_folds_arithmetic(self):
        fn = _compile("int f() { return (3 + 4) * 2 - 1; }")
        fold_constants(fn)
        ret = fn.body.terminator
        assert isinstance(ret.value, Const) and ret.value.value == 13

    def test_folds_through_chains(self):
        fn = _compile("int f() { int a = 5; int b = a * 3; return b + a; }")
        fold_constants(fn)
        assert fn.body.terminator.value.value == 20

    def test_division_by_zero_not_folded(self):
        fn = _compile("int f(int x) { return x / (1 - 1); }")
        fold_constants(fn)  # must not raise
        assert any(
            isinstance(i, BinOp) and i.op == "div" for i in walk(fn.body)
        )

    def test_comparison_folds(self):
        fn = _compile("int f() { return 3 < 4 ? 10 : 20; }")
        fold_constants(fn)
        assert fn.body.terminator.value.value == 10

    @given(
        st.sampled_from(["add", "sub", "mul", "min", "max", "and", "or", "xor"]),
        st.integers(-(2**31), 2**31 - 1),
        st.integers(-(2**31), 2**31 - 1),
    )
    @settings(max_examples=200)
    def test_eval_binop_matches_numpy_i32(self, op, a, b):
        got = eval_binop(op, a, b, I32)
        x = np.int32(a)
        y = np.int32(b)
        with np.errstate(over="ignore"):
            ref = {
                "add": x + y, "sub": x - y, "mul": x * y,
                "min": min(x, y), "max": max(x, y),
                "and": x & y, "or": x | y, "xor": x ^ y,
            }[op]
        assert got == int(ref)

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_eval_binop_i8_wraps(self, a, b):
        got = eval_binop("mul", a, b, I8)
        with np.errstate(over="ignore"):
            expect = int(np.int8(np.int8(a) * np.int8(b)))
        assert got == expect
        assert -128 <= got <= 127

    @given(st.integers(-(2**15), 2**15 - 1), st.integers(1, 15))
    def test_shifts_mask_amount(self, a, sh):
        got = eval_binop("shl", a, sh, I16)
        assert got == int(np.int16(np.int16(a) << sh))

    def test_c_division_truncates_toward_zero(self):
        assert eval_binop("div", -7, 2, I32) == -3
        assert eval_binop("div", 7, -2, I32) == -3
        assert eval_binop("mod", -7, 2, I32) == -1


class TestSimplify:
    def test_add_zero(self):
        fn = _compile("float f(float x) { return x + 0.0; }")
        simplify(fn)
        assert not any(isinstance(i, BinOp) for i in walk(fn.body))

    def test_mul_one(self):
        fn = _compile("float f(float x) { return x * 1.0; }")
        simplify(fn)
        assert not any(isinstance(i, BinOp) for i in walk(fn.body))

    def test_int_mul_zero(self):
        fn = _compile("int f(int x) { return x * 0; }")
        simplify(fn)
        assert fn.body.terminator.value.value == 0

    def test_float_mul_zero_not_folded(self):
        # 0.0 * inf != 0.0; float multiply by zero must survive.
        fn = _compile("float f(float x) { return x * 0.0; }")
        simplify(fn)
        assert any(isinstance(i, BinOp) for i in walk(fn.body))

    def test_sub_self_int(self):
        fn = _compile("int f(int x) { return x - x; }")
        simplify(fn)
        assert fn.body.terminator.value.value == 0

    def test_collapse_constant_if(self):
        fn = _compile(
            "int f(int x) { int s = 0; if (1 < 2) { s = x; } else { s = 7; }"
            " return s; }"
        )
        fold_constants(fn)
        simplify(fn)
        assert not any(isinstance(i, If) for i in walk(fn.body))
        verify_function(fn)

    def test_zero_trip_loop_removed(self):
        fn = _compile(
            "int f(int n) { int s = 5; for (int i = n; i < n; i++) { s = 0; }"
            " return s; }"
        )
        # Make bounds literally the same Value so the rule can fire.
        loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
        loop._operands[1] = loop._operands[0]
        simplify(fn)
        eliminate_dead_code(fn)
        assert not any(isinstance(i, ForLoop) for i in walk(fn.body))
        assert fn.body.terminator.value.value == 5


class TestDCE:
    def test_removes_unused_pure(self):
        fn = _compile("int f(int x) { int dead = x * 17; return x; }")
        eliminate_dead_code(fn)
        assert not any(isinstance(i, BinOp) for i in walk(fn.body))

    def test_keeps_stores(self):
        fn = _compile("void f(float a[]) { a[0] = 1.0; }")
        eliminate_dead_code(fn)
        assert len(fn.body.instrs) >= 2  # store + return

    def test_removes_effect_free_loop(self):
        fn = _compile(
            "int f(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) { int t = i * 2; }"
            " return s; }"
        )
        optimize(fn, 2)
        assert not any(isinstance(i, ForLoop) for i in walk(fn.body))

    def test_prunes_dead_carried_value(self):
        fn = _compile(
            "float f(int n, float a[]) { float live = 0; float dead = 0;"
            " for (int i = 0; i < n; i++) { live += a[i]; dead += a[i]; }"
            " return live; }"
        )
        eliminate_dead_code(fn)
        loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
        assert len(loop.carried) == 1
        verify_function(fn)

    def test_keeps_loop_with_used_result(self):
        fn = _compile(
            "float f(int n, float a[]) { float s = 0;"
            " for (int i = 0; i < n; i++) { s += a[i]; } return s; }"
        )
        eliminate_dead_code(fn)
        assert any(isinstance(i, ForLoop) for i in walk(fn.body))


class TestLICM:
    def test_hoists_invariant(self):
        fn = _compile(
            "void f(int n, float x, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i] = x * x + a[i]; } }"
        )
        moved = hoist_invariants(fn)
        assert moved >= 1
        loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
        body_ops = [i for i in loop.body.instrs if isinstance(i, BinOp)]
        # x*x is gone from the body; only the i-dependent add remains.
        assert all(
            any(op is loop.iv or not isinstance(op, Const) for op in i.operands)
            for i in body_ops
        )
        verify_function(fn)

    def test_does_not_hoist_variant(self):
        fn = _compile(
            "void f(int n, float a[]) {"
            " for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; } }"
        )
        loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
        before = len(loop.body.instrs)
        hoist_invariants(fn)
        assert any(isinstance(i, Load) for i in loop.body.instrs)
        assert len(loop.body.instrs) == before

    def test_optimize_pipeline_preserves_semantics(self):
        fn = _compile(
            "float f(int n, float a[]) { float s = 0;"
            " for (int i = 0; i < n; i++) { s += a[i] * (2.0 * 3.0); }"
            " return s; }"
        )
        optimize(fn, 2)
        verify_function(fn)
        # 2*3 folded to one constant.
        consts = [
            i for i in walk(fn.body)
            if isinstance(i, BinOp) and i.op == "mul"
        ]
        assert len(consts) == 1
