"""Tests for the bytecode container: writer primitives (hypothesis
round-trips), function/module codecs, and error handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import (
    FormatError,
    decode_function,
    decode_module,
    encode_function,
    encode_module,
)
from repro.bytecode.writer import Reader, Writer
from repro.frontend import compile_source
from repro.ir import (
    ForLoop,
    GetRT,
    RealignLoad,
    VersionGuard,
    VStore,
    print_function,
    verify_function,
    walk,
)
from repro.kernels import all_kernels
from repro.vectorizer import split_config, vectorize_function


class TestWriter:
    @given(st.integers(-(2**60), 2**60))
    def test_varint_roundtrip(self, v):
        w = Writer()
        w.varint(v)
        assert Reader(w.bytes()).varint() == v

    @given(st.floats(allow_nan=False))
    def test_f64_roundtrip(self, x):
        w = Writer()
        w.f64(x)
        assert Reader(w.bytes()).f64() == x

    @given(st.text(max_size=64))
    def test_string_roundtrip(self, s):
        w = Writer()
        w.string(s)
        assert Reader(w.bytes()).string() == s

    _VALUE = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(-(2**40), 2**40)
        | st.floats(allow_nan=False)
        | st.text(max_size=16),
        lambda inner: st.lists(inner, max_size=4).map(tuple)
        | st.dictionaries(st.text(max_size=8), inner, max_size=4),
        max_leaves=20,
    )

    @given(_VALUE)
    @settings(max_examples=200)
    def test_tagged_value_roundtrip(self, v):
        w = Writer()
        w.value(v)
        got = Reader(w.bytes()).value()

        def norm(x):
            if isinstance(x, (list, tuple)):
                return tuple(norm(i) for i in x)
            if isinstance(x, dict):
                return {k: norm(i) for k, i in x.items()}
            return x

        assert got == norm(v)

    def test_truncated_raises(self):
        w = Writer()
        w.string("hello")
        with pytest.raises(FormatError):
            Reader(w.bytes()[:-2]).string()

    def test_bad_tag_raises(self):
        with pytest.raises(FormatError):
            Reader(b"\xff").value()


_SRC = """
float sfir(int n, float a[], float c[]) {
    float sum = 0;
    for (int i = 0; i < n; i++) { sum += a[i + 2] * c[i]; }
    return sum;
}
"""


class TestFunctionCodec:
    def test_scalar_roundtrip_structure(self):
        fn = compile_source(_SRC)["sfir"]
        dec = decode_function(encode_function(fn))
        verify_function(dec)
        assert print_function(dec).count("for ") == print_function(fn).count("for ")

    def test_vector_roundtrip_preserves_hints(self):
        fn = vectorize_function(
            compile_source(_SRC)["sfir"], split_config()
        )
        dec = decode_function(encode_function(fn))
        verify_function(dec)
        orig_rl = [i for i in walk(fn.body) if isinstance(i, RealignLoad)]
        dec_rl = [i for i in walk(dec.body) if isinstance(i, RealignLoad)]
        assert len(orig_rl) == len(dec_rl)
        assert sorted((r.mis, r.mod, r.has_chain) for r in orig_rl) == sorted(
            (r.mis, r.mod, r.has_chain) for r in dec_rl
        )

    def test_roundtrip_preserves_groups_and_annotations(self):
        fn = vectorize_function(compile_source(_SRC)["sfir"], split_config())
        dec = decode_function(encode_function(fn))
        orig = [i for i in walk(fn.body) if isinstance(i, GetRT)]
        got = [i for i in walk(dec.body) if isinstance(i, GetRT)]
        assert [g.group for g in got] == [g.group for g in orig]
        loops = [
            i for i in walk(dec.body)
            if isinstance(i, ForLoop) and i.kind == "vector"
        ]
        assert loops and all("valign" in l.annotations for l in loops)

    def test_roundtrip_preserves_guards(self):
        fn = vectorize_function(compile_source(_SRC)["sfir"], split_config())
        dec = decode_function(encode_function(fn))
        guards = [i for i in walk(dec.body) if isinstance(i, VersionGuard)]
        assert any(g.kind == "bases_aligned" for g in guards)

    def test_double_roundtrip_stable(self):
        fn = vectorize_function(compile_source(_SRC)["sfir"], split_config())
        once = encode_function(decode_function(encode_function(fn)))
        twice = encode_function(decode_function(once))
        assert once == twice

    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: k.name
    )
    def test_every_kernel_roundtrips(self, kernel):
        inst = kernel.instantiate()
        scalar = compile_source(inst.source)[inst.entry]
        vec = vectorize_function(scalar, split_config())
        for fn in (scalar, vec):
            dec = decode_function(encode_function(fn))
            verify_function(dec)
            assert encode_function(dec) == encode_function(dec)


class TestModuleCodec:
    def test_module_roundtrip(self):
        module = compile_source(_SRC + "\nvoid g(int n, float a[]) { a[0] = 1.0; }")
        blob = encode_module(module)
        dec = decode_module(blob)
        assert set(dec.functions) == {"sfir", "g"}

    def test_bad_magic(self):
        with pytest.raises(FormatError):
            decode_module(b"NOPE" + b"\x00" * 10)

    def test_size_growth_measured(self):
        scalar = compile_source(_SRC)["sfir"]
        vec = vectorize_function(scalar, split_config())
        s, v = len(encode_function(scalar)), len(encode_function(vec))
        # §V-A.c: vectorization inflates bytecode by several x.
        assert v > 2 * s
