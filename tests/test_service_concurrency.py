"""The service's concurrency model (docs/service.md §7).

Proves the three de-serialization properties of the hot path:

* **single-flight** — N concurrent identical cold misses perform exactly
  one JIT compile; followers share the leader's ``CompiledKernel`` (and
  its failure), are marked ``coalesced``, and honour their own deadline
  while waiting;
* **scoped locking** — distinct (kernel, flow, target) shapes compile
  *genuinely in parallel* (a barrier inside the compiler proves no
  global lock serializes them — under the old one-RLock design this
  test deadlocks);
* **hammer invariants** — under a seeded mixed-shape thread hammer:
  response order is stable, every unique key compiles exactly once
  (one non-cached, non-coalesced ``jit`` span and one cache ``put``
  per key), and admission depth never exceeds the limit.

Every test gates on explicit events/polling, never bare sleeps, so the
suite is deterministic on slow CI runners.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import obs
from repro.harness import flows as flows_mod
from repro.jit import OptimizingJIT
from repro.service import KernelService, ServiceRequest
from repro.service.singleflight import Flight, KeyedLocks, SingleFlight

SIZE = 16
FLOW = "split_vec_gcc4cli"


def _req(kernel="saxpy_fp", flow=FLOW, target="sse", **kw):
    return ServiceRequest(kernel, flow=flow, target=target, size=SIZE, **kw)


def _poll(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:  # pragma: no cover - CI guard
            pytest.fail(f"timed out waiting for {what}")
        time.sleep(0.005)


class _Patched:
    """Temporarily swap the online compiler of one flow (restored in
    ``__exit__``), so tests can gate or instrument real compiles."""

    def __init__(self, flow: str, jit_cls):
        self.flow = flow
        self.jit_cls = jit_cls

    def __enter__(self):
        self.saved = flows_mod.FLOWS[self.flow]
        flows_mod.FLOWS[self.flow] = (self.saved[0], self.jit_cls)
        return self

    def __exit__(self, *exc):
        flows_mod.FLOWS[self.flow] = self.saved
        return False


def _gated_jit():
    """An OptimizingJIT whose compile blocks on a test-controlled gate."""

    class GatedJIT(OptimizingJIT):
        name = OptimizingJIT.name  # same cache identity
        gate = threading.Event()
        calls: list = []
        _calls_lock = threading.Lock()

        def compile(self, ir, target, **kw):
            with GatedJIT._calls_lock:
                GatedJIT.calls.append(threading.get_ident())
            assert GatedJIT.gate.wait(20), "test gate never opened"
            return super().compile(ir, target, **kw)

    return GatedJIT


# -- SingleFlight / KeyedLocks primitives -------------------------------------


def test_singleflight_leader_then_fresh_flight():
    sf = SingleFlight()
    flight, leader = sf.begin("k")
    assert leader
    flight.resolve(42)
    sf.end("k", flight)
    # Retired: the next request for the same key is a fresh leader.
    flight2, leader2 = sf.begin("k")
    assert leader2 and flight2 is not flight
    sf.end("k", flight2)
    assert sf.inflight() == 0
    assert sf.stats()["leaders"] == 2


def test_singleflight_follower_shares_value_and_failure():
    sf = SingleFlight()
    flight, leader = sf.begin("k")
    _fl2, leader2 = sf.begin("k")
    assert leader and not leader2 and _fl2 is flight
    flight.resolve("artifact")
    assert flight.wait(1) and flight.outcome() == "artifact"

    fail, _ = sf.begin("boom")
    boom = ValueError("compile exploded")
    fail.reject(boom)
    sf.end("boom", fail)
    with pytest.raises(ValueError):
        fail.outcome()
    assert sf.stats()["followers"] == 1


def test_singleflight_stale_end_never_removes_newer_flight():
    sf = SingleFlight()
    old, _ = sf.begin("k")
    old.resolve(1)
    sf.end("k", old)
    new, leader = sf.begin("k")
    assert leader
    sf.end("k", old)  # stale double-end: must be a no-op
    assert sf.inflight() == 1
    sf.end("k", new)
    assert sf.inflight() == 0


def test_flight_wait_timeout():
    f = Flight()
    assert not f.wait(0.01)
    f.resolve(1)
    assert f.wait(0.01) and f.outcome() == 1


def test_flight_outcome_raises_a_per_follower_copy():
    """Concurrent re-raises must not share one exception object: every
    ``raise`` rewrites ``__traceback__``, so N followers re-raising the
    leader's exception race on (and corrupt) each other's tracebacks.
    Each follower gets its own copy, chained to the original."""
    from repro.service.admission import OverloadError

    f = Flight()
    original = OverloadError(7, 4)  # custom __init__: args != (depth, limit)
    try:
        raise original
    except OverloadError as exc:
        f.reject(exc)
    leader_tb = original.__traceback__

    caught = []
    errors = []

    def follower():
        try:
            f.outcome()
        except OverloadError as exc:
            caught.append(exc)
        except Exception as exc:  # noqa: BLE001 - test census
            errors.append(exc)

    threads = [threading.Thread(target=follower) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    assert len(caught) == 8
    # Distinct objects per follower, none of them the shared original.
    assert len({id(e) for e in caught}) == 8
    assert all(e is not original for e in caught)
    # Class, args, and custom attributes survive the copy; the chain
    # points back at the leader's exception.
    for e in caught:
        assert type(e) is OverloadError
        assert e.args == original.args
        assert (e.depth, e.limit) == (7, 4)
        assert e.__cause__ is original
    # The leader's traceback was never clobbered by a follower re-raise.
    assert original.__traceback__ is leader_tb


def test_keyed_locks_distinct_keys_do_not_block():
    locks = KeyedLocks()
    a, b = locks.get(("x",)), locks.get(("y",))
    assert a is not b
    assert locks.get(("x",)) is a  # stable per key
    with a:
        assert b.acquire(timeout=1)  # distinct key unaffected
        b.release()
    assert len(locks) == 2


# -- single-flight through the service ----------------------------------------


def test_identical_cold_requests_compile_exactly_once_no_cache():
    """8 concurrent identical misses, no persistent cache: one leader
    compiles, 7 followers coalesce.  The gate holds the leader's compile
    open until every follower has joined, so the coalescing is
    deterministic, not a race."""
    GatedJIT = _gated_jit()
    svc = KernelService(cache_dir=None, workers=8, queue_limit=64)
    try:
        with _Patched(FLOW, GatedJIT):
            futures = [svc.submit(_req()) for _ in range(8)]
            _poll(
                lambda: svc._singleflight.stats()["followers"] >= 7,
                what="7 followers to join the flight",
            )
            GatedJIT.gate.set()
            responses = [f.result(timeout=30) for f in futures]
    finally:
        svc.close()

    assert len(GatedJIT.calls) == 1, "single-flight must do ONE compile"
    assert all(r.status == "ok" for r in responses)
    assert sum(r.coalesced for r in responses) == 7
    assert sum(not r.coalesced for r in responses) == 1
    # Followers share the leader's artifact: byte-identical results.
    cycles = {r.result.cycles for r in responses}
    values = {r.result.value for r in responses}
    assert len(cycles) == 1 and len(values) == 1
    sf = svc.stats()["singleflight"]
    assert sf["leaders"] == 1 and sf["followers"] == 7
    assert sf["inflight"] == 0


def test_identical_cold_requests_one_jit_compile_with_cache(tmp_path):
    """The acceptance shape: 8 concurrent identical cold requests against
    a cache-backed service perform exactly one JIT compile, whatever the
    interleaving (coalesced followers or warm hits for stragglers)."""
    with obs.recording(trace=True, metrics=True) as ob:
        svc = KernelService(cache_dir=str(tmp_path / "c"), workers=8,
                            queue_limit=64)
        try:
            responses = svc.serve([_req() for _ in range(8)])
        finally:
            svc.close()
    assert all(r.status == "ok" for r in responses)
    compiles = ob.metrics_snapshot()["jit.compiles"]["value"]
    assert compiles == 1, f"expected exactly 1 compile, saw {compiles}"
    # And exactly one non-cached, non-coalesced jit span.
    real = [
        s for s in ob.spans()
        if s.name == "jit" and not s.attrs.get("cached")
        and not s.attrs.get("coalesced")
    ]
    assert len(real) == 1
    assert svc.stats()["cache"]["entries"] == 1


def test_follower_deadline_honoured_while_waiting():
    """A follower blocked on a leader's compile still dies of ITS OWN
    deadline (classified DeadlineError, no breaker charge), instead of
    waiting unboundedly."""
    GatedJIT = _gated_jit()
    svc = KernelService(cache_dir=None, workers=4, queue_limit=64,
                        retries=0)
    try:
        with _Patched(FLOW, GatedJIT):
            leader_fut = svc.submit(_req())
            _poll(
                lambda: svc._singleflight.stats()["leaders"] >= 1,
                what="the leader to start compiling",
            )
            follower = svc.submit(_req(deadline_s=0.05)).result(timeout=30)
            assert follower.status == "rejected"
            assert follower.error == "DeadlineError"
            GatedJIT.gate.set()
            leader = leader_fut.result(timeout=30)
    finally:
        svc.close()
    assert leader.status == "ok"
    assert svc.stats()["deadline_misses"] == 1
    # Expiry-while-coalesced never judged the target.
    assert svc.health()["breakers"].get("sse", "closed") == "closed"


def test_distinct_kernels_compile_in_parallel():
    """Scoped locking: four distinct keys must be INSIDE the JIT at the
    same time.  A barrier inside the compiler proves it — under the old
    global-RLock design the first compile holds the lock, the barrier
    never fills, and this test times out."""
    kernels = ["saxpy_fp", "dscal_fp", "interp_fp", "sfir_fp"]
    barrier = threading.Barrier(len(kernels), timeout=20)
    outcome: dict = {"broken": False}

    class BarrierJIT(OptimizingJIT):
        name = OptimizingJIT.name

        def compile(self, ir, target, **kw):
            try:
                barrier.wait()
            except threading.BrokenBarrierError:  # pragma: no cover
                outcome["broken"] = True
                raise
            return super().compile(ir, target, **kw)

    svc = KernelService(cache_dir=None, workers=len(kernels),
                        queue_limit=64)
    try:
        with _Patched(FLOW, BarrierJIT):
            responses = svc.serve([_req(k) for k in kernels])
    finally:
        svc.close()
    assert not outcome["broken"], (
        "compiles serialized: a global lock kept the barrier from filling"
    )
    assert all(r.status == "ok" for r in responses)
    assert svc.stats()["singleflight"]["leaders"] == len(kernels)


# -- the seeded thread hammer --------------------------------------------------


HAMMER_KERNELS = ("saxpy_fp", "dscal_fp", "interp_fp", "sfir_fp")
HAMMER_SHAPES = [
    (k, f, t)
    for k in HAMMER_KERNELS
    for f, t in (
        ("split_vec_gcc4cli", "sse"),
        ("split_vec_gcc4cli", "neon"),
        ("split_scalar_mono", "sse"),
    )
]


def test_hammer_one_compile_and_one_put_per_unique_key(tmp_path):
    """Many threads, one service, mixed shapes: exactly one real (non-
    cached, non-coalesced) ``jit`` span and one cache ``put`` per unique
    key, and every response checked-correct."""
    rng = random.Random(2026)
    reqs = [
        ServiceRequest(*rng.choice(HAMMER_SHAPES), size=SIZE)
        for _ in range(48)
    ]
    unique = {(r.kernel, r.flow, r.target, r.size) for r in reqs}

    with obs.recording(trace=True, metrics=True) as ob:
        svc = KernelService(cache_dir=str(tmp_path / "c"), workers=8,
                            queue_limit=64)
        errors: list = []

        def spin(chunk):
            try:
                for r in chunk:
                    resp = svc.handle(r)
                    assert resp.status == "ok", resp.status
                    assert resp.result.checked
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=spin, args=(reqs[i::6],))
            for i in range(6)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            svc.close()
    assert not errors

    real_compiles = [
        s for s in ob.spans()
        if s.name == "jit" and not s.attrs.get("cached")
        and not s.attrs.get("coalesced")
    ]
    assert len(real_compiles) == len(unique), (
        f"{len(real_compiles)} real compiles for {len(unique)} unique keys"
    )
    metrics = ob.metrics_snapshot()
    assert metrics["cache.puts"]["value"] == len(unique), \
        "duplicate cache put for a key"
    assert metrics["jit.compiles"]["value"] == len(unique)


def test_hammer_admission_depth_never_exceeds_limit(tmp_path):
    """Under a saturating hammer the bounded-admission invariant holds:
    depth never exceeds the limit (peak_depth tracks the high-water mark
    under the admission lock), and overload sheds instead of queueing."""
    svc = KernelService(cache_dir=str(tmp_path / "c"), workers=2,
                        queue_limit=4)
    statuses: list = []
    lock = threading.Lock()

    def spin():
        for _ in range(6):
            resp = svc.handle(_req())
            with lock:
                statuses.append(resp.status)

    threads = [threading.Thread(target=spin) for _ in range(10)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        svc.close()
    adm = svc.admission.stats()
    assert adm["peak_depth"] <= adm["limit"] == 4
    assert adm["depth"] == 0
    assert statuses and set(statuses) <= {"ok", "shed"}
    assert "ok" in statuses  # the hammer did not starve everyone


def test_serve_preserves_request_order_under_mixed_load(tmp_path):
    """Response-order stability: ``serve`` returns responses in request
    order no matter how the pool interleaves the work."""
    rng = random.Random(7)
    reqs = [
        ServiceRequest(*rng.choice(HAMMER_SHAPES), size=SIZE)
        for _ in range(32)
    ]
    svc = KernelService(cache_dir=str(tmp_path / "c"), workers=8,
                        queue_limit=64)
    try:
        responses = svc.serve(reqs)
    finally:
        svc.close()
    assert [r.request for r in responses] == reqs
    assert all(r.ok for r in responses)


def test_warm_responses_byte_identical_to_cold_under_concurrency(tmp_path):
    """The refactor's correctness bar: after a concurrent cold hammer,
    warm-cache responses still exactly equal a cache-less cold run."""
    from repro.harness.flows import FlowRunner
    from repro.kernels import get_kernel

    cold_runner = FlowRunner()
    expected = {
        k: cold_runner.run(get_kernel(k).instantiate(SIZE), FLOW, "sse")
        for k in HAMMER_KERNELS
    }

    svc = KernelService(cache_dir=str(tmp_path / "c"), workers=8,
                        queue_limit=64)
    try:
        cold = svc.serve([_req(k) for k in HAMMER_KERNELS] * 4)
        warm = svc.serve([_req(k) for k in HAMMER_KERNELS])
    finally:
        svc.close()
    for resp in cold + warm:
        ref = expected[resp.request.kernel]
        assert resp.status == "ok"
        assert resp.result.cycles == ref.cycles
        assert resp.result.value == ref.value
        assert resp.result.bytecode_bytes == ref.bytecode_bytes
    assert any(r.from_cache for r in warm)
