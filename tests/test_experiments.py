"""Smoke and shape tests for the experiment harness (the figures/tables).

Full-suite experiment runs live in benchmarks/; here we verify the drivers'
structure and the headline *shapes* on small subsets:

* Figure 6: split/native ratios near 1 (performance portability);
* scalarization overhead near 1 (the loop_bound collapse, §III-C.d);
* the alignment ablation degrades performance (§V-A.b);
* Table 3 rows exist with split >= native-ish cycle counts;
* compile time tracks bytecode size (§V-A.c).
"""

import pytest

from repro.harness import (
    TABLE3_KERNELS,
    FlowRunner,
    ablation_dependence_hints,
    format_figure5,
    format_figure6,
    format_table3,
    scalarization_overhead,
    table3,
)
from repro.harness.experiments import _runner
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def shared():
    return FlowRunner()


class TestFlowRunner:
    def test_flow_result_fields(self, shared):
        inst = get_kernel("saxpy_fp").instantiate(64)
        res = shared.run(inst, "split_vec_gcc4cli", "sse")
        assert res.kernel == "saxpy_fp"
        assert res.cycles > 0 and res.checked
        assert res.bytecode_bytes > 0
        assert res.compile_seconds > 0

    def test_caches_compilation(self, shared):
        inst = get_kernel("saxpy_fp").instantiate(64)
        ck1 = shared.compiled(inst, "split_vec_mono", shared_target("sse"))
        ck2 = shared.compiled(inst, "split_vec_mono", shared_target("sse"))
        assert ck1 is ck2

    def test_check_failure_raises(self, shared):
        from repro.harness.flows import CheckError

        inst = get_kernel("saxpy_fp").instantiate(64)
        # Corrupt the expectation to prove the checker has teeth.
        inst.expected_arrays["y"] = inst.expected_arrays["y"] + 1.0
        with pytest.raises(CheckError):
            shared.run(inst, "native_vec", "sse")


def shared_target(name):
    from repro.targets import get_target

    return get_target(name)


class TestFigureShapes:
    def test_figure6_ratio_near_one(self, shared):
        """Performance portability: D/F ~= 1 for a representative kernel."""
        for name in ("saxpy_fp", "sfir_fp", "gemm_fp"):
            inst = get_kernel(name).instantiate()
            for target in ("sse", "altivec", "neon"):
                d = shared.run(inst, "split_vec_gcc4cli", target).cycles
                f = shared.run(inst, "native_vec", target).cycles
                assert 0.7 <= d / f <= 1.3, (name, target, d / f)

    def test_mix_streams_split_beats_native_on_sse(self, shared):
        """The paper's mix-streams exception: versioning gives the JIT an
        aligned version the native compiler lacks (§V-B)."""
        inst = get_kernel("mix_streams_s16").instantiate()
        d = shared.run(inst, "split_vec_gcc4cli", "sse").cycles
        f = shared.run(inst, "native_vec", "sse").cycles
        assert d < f

    def test_sad_guard_degrades_split(self, shared):
        """sad's runtime alias check (per block) costs the split flow."""
        inst = get_kernel("sad_s8").instantiate()
        d = shared.run(inst, "split_vec_gcc4cli", "sse").cycles
        f = shared.run(inst, "native_vec", "sse").cycles
        assert d > f * 1.02  # versioning not resolvable at compile time

    def test_mmm_mono_pays_nested_guard(self, shared):
        """MMM on Mono: the guard inside the nest executes repeatedly, so
        Mono's vectorization impact trails the optimizing JIT's."""
        inst = get_kernel("MMM_fp").instantiate()
        mono_vec = shared.run(inst, "split_vec_mono", "altivec").cycles
        mono_scal = shared.run(inst, "split_scalar_mono", "altivec").cycles
        nat_vec = shared.run(inst, "native_vec", "altivec").cycles
        nat_scal = shared.run(inst, "native_scalar", "altivec").cycles
        impact = (mono_scal / mono_vec) / (nat_scal / nat_vec)
        assert impact < 0.9

    def test_dp_scalarizes_harmlessly_on_altivec(self, shared):
        """§V-B: dscal_dp/saxpy_dp scalarize on AltiVec without a penalty
        over native scalar code."""
        for name in ("dscal_dp", "saxpy_dp"):
            inst = get_kernel(name).instantiate()
            split = shared.run(inst, "split_vec_gcc4cli", "altivec")
            nat_scal = shared.run(inst, "native_scalar", "altivec")
            assert split.stats["loops_vectorized"] == 0
            assert split.cycles <= nat_scal.cycles * 1.10


class TestScalarizationOverhead:
    def test_average_near_one(self):
        out = scalarization_overhead()
        assert 0.9 <= out["average"] <= 1.1
        worst = max(r[1] for r in out["rows"])
        assert worst <= 1.25, sorted(out["rows"], key=lambda r: -r[1])[:3]


class TestAblations:
    def test_alignment_ablation_degrades(self):
        """§V-A.b on a subset: disabling alignment hints costs cycles."""
        base = _runner()
        nohints = _runner(overrides={"enable_alignment_opts": False})
        factors = []
        for name in ("sfir_fp", "saxpy_fp", "interp_s16", "dissolve_s8"):
            inst = get_kernel(name).instantiate()
            for target in ("sse", "altivec"):
                with_opts = base.run(inst, "split_vec_mono", target).cycles
                without = nohints.run(inst, "split_vec_mono", target).cycles
                factors.append(without / with_opts)
        assert all(f >= 0.95 for f in factors)
        assert max(f for f in factors) > 1.3
        assert sum(factors) / len(factors) > 1.1

    def test_dependence_hints_unlock_loops(self):
        out = ablation_dependence_hints()
        # The standard suite has no distance>VF loops; the driver reports
        # per-kernel deltas (possibly empty) without crashing.
        assert isinstance(out["rows"], list)

    def test_realign_reuse_saves_loads_on_altivec(self):
        base = _runner()
        noreuse = _runner(overrides={"enable_realign_reuse": False})
        inst = get_kernel("sfir_fp").instantiate()
        with_reuse = base.run(inst, "split_vec_gcc4cli", "altivec").cycles
        without = noreuse.run(inst, "split_vec_gcc4cli", "altivec").cycles
        assert without > with_reuse


class TestTable3:
    def test_rows_and_shape(self):
        result = table3()
        assert [r[0] for r in result.rows] == list(TABLE3_KERNELS)
        for name, native, split in result.rows:
            assert 1 <= native <= 8
            assert 1 <= split <= 10
            # Split is never better than native here (same backend, minus
            # whole-program knowledge), matching Table 3's direction.
            assert split >= native


class TestCompileStats:
    def test_bytecode_growth_and_compile_time(self, shared):
        import time

        from repro.jit import MonoJIT
        from repro.targets import SSE

        inst = get_kernel("sfir_fp").instantiate()
        scalar_bytes, vec_bytes = shared.bytecode_sizes(inst)
        assert 3 <= vec_bytes / scalar_bytes <= 15

        scalar_ir = shared.scalar_ir(inst)
        vec_ir = shared.split_ir(inst)
        t0 = time.perf_counter()
        n_scal = MonoJIT().compile(scalar_ir, SSE).stats["minstrs"]
        t1 = time.perf_counter()
        n_vec = MonoJIT().compile(vec_ir, SSE).stats["minstrs"]
        # Compile work grows with the bytecode (proxied by emitted code).
        assert n_vec > n_scal


class TestReportFormatting:
    def test_formatters_render(self, shared):
        from repro.harness import Figure5Result, Figure6Result, Table3Result

        f5 = Figure5Result("sse", [("saxpy_fp", 1.1)], 0.9, 1.0)
        f6 = Figure6Result("neon", [("saxpy_fp", 0.98)], 0.98)
        t3 = Table3Result([("saxpy_fp", 2, 3)])
        assert "Figure 5" in format_figure5(f5)
        assert "Figure 6" in format_figure6(f6)
        assert "Table 3" in format_table3(t3)
