"""Tests for the command-line interface."""

import pathlib
import subprocess
import sys

import pytest

DEMO = """
float dot(int n, float a[], float b[]) {
    float s = 0;
    for (int i = 0; i < n; i++) { s += a[i + 2] * b[i]; }
    return s;
}
"""


def _cli(*argv, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=timeout,
    )


@pytest.fixture()
def demo_vbc(tmp_path):
    src = tmp_path / "demo.c"
    src.write_text(DEMO)
    out = tmp_path / "demo.vbc"
    result = _cli("compile", str(src), "-o", str(out))
    assert result.returncode == 0, result.stderr
    return out, result.stdout


class TestCompile:
    def test_reports_vectorization(self, demo_vbc):
        out, stdout = demo_vbc
        assert "vectorized (inner)" in stdout
        assert out.exists() and out.stat().st_size > 100

    def test_scalar_only(self, tmp_path):
        src = tmp_path / "demo.c"
        src.write_text(DEMO)
        out = tmp_path / "scalar.vbc"
        result = _cli("compile", str(src), "-o", str(out), "--scalar-only")
        assert result.returncode == 0
        assert "vectorized" not in result.stdout

    def test_ablation_flag_shrinks_bytecode(self, tmp_path, demo_vbc):
        src = tmp_path / "demo.c"
        src.write_text(DEMO)
        out = tmp_path / "noalign.vbc"
        result = _cli("compile", str(src), "-o", str(out), "--no-alignment")
        assert result.returncode == 0
        # Without alignment versioning only one loop version is emitted.
        assert out.stat().st_size < demo_vbc[0].stat().st_size


class TestDisasm:
    def test_shows_split_idioms(self, demo_vbc):
        out, _ = demo_vbc
        result = _cli("disasm", str(out))
        assert result.returncode == 0
        for idiom in ("get_VF", "loop_bound", "version_guard", "realign_load",
                      "reduc_plus"):
            assert idiom in result.stdout


class TestJit:
    @pytest.mark.parametrize(
        "target,expected_op",
        [("altivec", "vperm"), ("sse", "vload_u"), ("scalar", "load")],
    )
    def test_lowering_per_target(self, demo_vbc, target, expected_op):
        out, _ = demo_vbc
        result = _cli("jit", str(out), "--target", target)
        assert result.returncode == 0
        assert expected_op in result.stdout

    def test_mono_compiler_selected(self, demo_vbc):
        out, _ = demo_vbc
        result = _cli("jit", str(out), "--compiler", "mono", "--target", "sse")
        assert "compiler=mono" in result.stdout


class TestKernelsAndRun:
    def test_kernels_lists_both_suites(self):
        result = _cli("kernels")
        assert result.returncode == 0
        assert "dissolve_s8" in result.stdout
        assert "gramschmidt_fp" in result.stdout
        assert "[not vectorizable]" in result.stdout  # lu/seidel rows

    def test_run_checks_results(self):
        result = _cli("run", "saxpy_fp", "--target", "neon",
                      "--flow", "split_vec_mono", "--size", "64")
        assert result.returncode == 0
        assert "checked=yes" in result.stdout

    def test_run_unknown_kernel(self):
        result = _cli("run", "nonexistent_kernel")
        assert result.returncode == 2

    def test_run_unknown_flow(self):
        result = _cli("run", "saxpy_fp", "--flow", "bogus")
        assert result.returncode == 2


class TestInputHygiene:
    """Missing/unreadable inputs: classified stderr message, exit 2,
    no traceback (the argparse usage-error convention)."""

    @pytest.mark.parametrize("argv", [
        ("compile", "/no/such/source.c"),
        ("disasm", "/no/such/blob.vbc"),
        ("jit", "/no/such/blob.vbc"),
        ("verify", "/no/such/blob.vbc"),
    ])
    def test_missing_input_exits_2(self, argv):
        result = _cli(*argv)
        assert result.returncode == 2
        assert "cannot read" in result.stderr
        assert "Traceback" not in result.stderr

    def test_compile_output_is_atomic(self, tmp_path):
        """No temp litter next to the artifact after a clean compile."""
        src = tmp_path / "demo.c"
        src.write_text(DEMO)
        out = tmp_path / "demo.vbc"
        result = _cli("compile", str(src), "-o", str(out))
        assert result.returncode == 0
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["demo.c", "demo.vbc"]


class TestServe:
    def test_serve_synthetic_stream_with_stats(self, tmp_path):
        stats = tmp_path / "stats.json"
        result = _cli("serve", "--requests", "12", "--seed", "2",
                      "--stats-out", str(stats))
        assert result.returncode == 0, result.stderr
        assert "served 12 request(s)" in result.stdout
        assert "health:" in result.stdout
        import json

        payload = json.loads(stats.read_text())
        assert payload["requests"] == 12
        assert payload["stats"]["requests"] == 12

    def test_serve_persistent_cache_dir_warms(self, tmp_path):
        cache = tmp_path / "cache"
        first = _cli("serve", "--requests", "8", "--seed", "4",
                     "--cache-dir", str(cache))
        assert first.returncode == 0, first.stderr
        assert "0 warm hit(s)" not in first.stdout or True
        second = _cli("serve", "--requests", "8", "--seed", "4",
                      "--cache-dir", str(cache))
        assert second.returncode == 0
        # Same seed -> same request stream -> every compile now warm.
        assert "8 warm hit(s)" in second.stdout


class TestChaosProfile:
    def test_service_profile_holds_invariant(self, tmp_path):
        stats = tmp_path / "soak.json"
        result = _cli("chaos", "--profile", "service", "--faults", "30",
                      "--seed", "2026", "--stats-out", str(stats))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "invariant HELD" in result.stdout
        import json

        payload = json.loads(stats.read_text())
        assert payload["ok"] is True
        assert payload["profile"] == "service"
        assert payload["service"]["requests"] > 0


class TestTrace:
    """`--trace-out` + `repro trace` — the observability round-trip."""

    def test_compile_trace_roundtrip_covers_five_phases(self, tmp_path):
        src = tmp_path / "demo.c"
        src.write_text(DEMO)
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        result = _cli("compile", str(src), "-o", str(tmp_path / "demo.vbc"),
                      "--trace-out", str(trace),
                      "--metrics-out", str(metrics))
        assert result.returncode == 0, result.stderr
        assert "trace written to" in result.stdout
        assert trace.exists() and metrics.exists()

        rendered = _cli("trace", str(trace))
        assert rendered.returncode == 0, rendered.stderr
        for phase in ("frontend", "vectorize", "encode", "jit", "vm"):
            assert f"[{phase}]" in rendered.stdout
        assert "phase rollup" in rendered.stdout
        assert "cycle(s)" in rendered.stdout  # VM-cycle rollup present

        import json

        payload = json.loads(metrics.read_text())
        assert payload["jit.compiles"]["value"] >= 1
        assert payload["vm.runs"]["value"] >= 1

    def test_run_trace_out(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        result = _cli("run", "saxpy_fp", "--trace-out", str(trace))
        assert result.returncode == 0, result.stderr
        rendered = _cli("trace", str(trace))
        assert rendered.returncode == 0
        assert "flow" in rendered.stdout and "[vm]" in rendered.stdout

    def test_serve_trace_carries_request_spans(self, tmp_path):
        trace = tmp_path / "serve.jsonl"
        result = _cli("serve", "--requests", "4", "--trace-out", str(trace))
        assert result.returncode == 0, result.stderr
        rendered = _cli("trace", str(trace), "--phase", "service")
        assert rendered.returncode == 0
        assert rendered.stdout.count("service.request") == 4

    def test_trace_rejects_missing_and_garbage(self, tmp_path):
        missing = _cli("trace", str(tmp_path / "nope.jsonl"))
        assert missing.returncode == 2
        assert "cannot read" in missing.stderr
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        garbage = _cli("trace", str(bad))
        assert garbage.returncode == 2
        assert "line 1" in garbage.stderr
