"""The observability spine: span taxonomy, metrics, export, rendering.

The load-bearing invariant (docs/observability.md): every FlowRunner run
emits exactly one ``flow`` root containing exactly the five phase spans
— ``frontend``, ``vectorize``, ``encode``, ``jit``, ``vm`` — with cache
hits and inapplicable stages recorded as span *attributes*, never as
missing spans.
"""

import json
import threading

import pytest

from repro import obs
from repro.harness import FlowRunner
from repro.kernels import get_kernel
from repro.obs import PHASES, TraceFormatError, load_trace, phase_rollup, render_trace
from repro.obs.trace import NULL_SPAN
from repro.service import KernelService, ServiceRequest


@pytest.fixture()
def inst():
    return get_kernel("saxpy_fp").instantiate(32)


def _phase_spans(spans):
    return [s for s in spans if s.phase in PHASES]


# -- disabled mode ------------------------------------------------------------


def test_disabled_by_default(inst):
    assert not obs.enabled()
    assert obs.span("vm", phase="vm") is NULL_SPAN
    # Guarded helpers are no-ops, not errors.
    obs.count("vm.runs")
    obs.observe("jit.compile_seconds", 0.1)
    obs.gauge("cache.bytes", 1)
    FlowRunner().run(inst, "split_vec_gcc4cli", "sse")
    assert obs.active_tracer() is None and obs.metrics() is None


def test_null_span_is_inert():
    with obs.span("anything") as sp:
        assert sp is NULL_SPAN
        assert sp.set(x=1) is sp


# -- the five-span invariant --------------------------------------------------


def test_flow_run_emits_exactly_five_phase_spans(inst):
    with obs.recording() as ob:
        FlowRunner().run(inst, "split_vec_gcc4cli", "sse")
    spans = ob.spans()
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1 and roots[0].name == "flow"
    phases = _phase_spans(spans)
    assert sorted(s.phase for s in phases) == sorted(PHASES)
    for s in phases:
        assert s.parent_id == roots[0].span_id
        assert s.trace_id == roots[0].trace_id
        assert s.dur_s is not None and s.dur_s >= 0.0
    assert roots[0].attrs["checked"] is True
    assert roots[0].attrs["cycles"] > 0


def test_cached_rerun_still_emits_all_five(inst):
    runner = FlowRunner()
    with obs.recording() as ob:
        runner.run(inst, "split_vec_gcc4cli", "sse")
        runner.run(inst, "split_vec_gcc4cli", "sse")
    spans = ob.spans()
    assert len([s for s in spans if s.name == "flow"]) == 2
    phases = _phase_spans(spans)
    assert len(phases) == 10  # five per run, cached or not
    second = phases[5:]
    # The warm run shows up as cached=True attributes, not missing spans.
    assert any(s.attrs.get("cached") for s in second)


def test_scalar_flow_marks_inapplicable_stages_skipped(inst):
    with obs.recording() as ob:
        FlowRunner().run(inst, "split_scalar_mono", "scalar")
    by_phase = {s.phase: s for s in _phase_spans(ob.spans())}
    assert sorted(by_phase) == sorted(PHASES)
    assert by_phase["vectorize"].attrs.get("skipped") is True
    assert by_phase["encode"].attrs.get("skipped") is True


def test_span_records_error_attr():
    with obs.recording() as ob:
        with pytest.raises(ValueError):
            with obs.span("jit", phase="jit"):
                raise ValueError("boom")
    (sp,) = ob.spans()
    assert sp.attrs["error"] == "ValueError"
    assert sp.dur_s is not None and sp.dur_s >= 0.0


def test_contextvar_parenthood_is_thread_local():
    with obs.recording() as ob:
        def worker():
            with obs.span("child", phase="vm"):
                pass

        with obs.span("root", phase="flow"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
    spans = {s.name: s for s in ob.spans()}
    # The worker thread's span must NOT inherit the main thread's root.
    assert spans["child"].parent_id is None


# -- JSONL export + rendering -------------------------------------------------


def test_jsonl_roundtrip_and_rollup(inst, tmp_path):
    with obs.recording() as ob:
        FlowRunner().run(inst, "split_vec_gcc4cli", "sse")
    path = tmp_path / "t.jsonl"
    ob.write_trace(str(path))
    lines = path.read_text().splitlines()
    records = load_trace(lines)
    assert len(records) == len(ob.spans())
    for rec in records:
        json.dumps(rec)  # every record is plain JSON data
    rollup = phase_rollup(records)
    assert set(PHASES) <= set(rollup["phases"])
    assert all(rollup["phases"][p]["spans"] == 1 for p in PHASES)
    assert rollup["vm_cycles"] > 0
    text = render_trace(records)
    for phase in PHASES:
        assert f"[{phase}]" in text
    assert "phase rollup" in text and "cycle(s)" in text


def test_load_trace_rejects_garbage():
    with pytest.raises(TraceFormatError, match="line 2"):
        load_trace(['{"span_id": 1, "name": "a", "phase": "", '
                    '"parent_id": null, "dur_s": 0.0, "attrs": {}}',
                    "not json"])


# -- metrics ------------------------------------------------------------------


def test_metrics_feed_from_flow_run(inst):
    with obs.recording() as ob:
        FlowRunner().run(inst, "split_vec_gcc4cli", "sse")
    snap = ob.metrics_snapshot()
    assert snap["jit.compiles"]["value"] == 1
    assert snap["jit.loops_vectorized"]["value"] >= 1
    assert snap["vm.runs"]["value"] == 1
    assert snap["vm.cycles"]["value"] > 0
    hist = snap["jit.compile_seconds"]
    assert hist["kind"] == "histogram" and hist["count"] == 1
    assert sum(hist["counts"]) == 1


def test_metric_kind_mismatch_is_type_error():
    reg = obs.MetricsRegistry()
    reg.counter("x").inc()
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_histogram_buckets_are_mergeable():
    h = obs.Histogram("h", bounds=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    snap = h.to_dict()
    assert snap["counts"] == [1, 1, 1]
    assert snap["count"] == 3 and snap["min"] == 0.5 and snap["max"] == 50.0


# -- service request spans ----------------------------------------------------


def test_service_request_span_links_response(inst, tmp_path):
    with obs.recording() as ob:
        with KernelService(cache_dir=str(tmp_path / "c")) as svc:
            r1 = svc.handle(ServiceRequest("saxpy_fp", size=32))
            r2 = svc.handle(ServiceRequest("saxpy_fp", size=32))
    spans = ob.spans()
    requests = [s for s in spans if s.name == "service.request"]
    assert [s.span_id for s in requests] == [r1.span_id, r2.span_id]
    assert all(s.phase == "service" for s in requests)
    assert requests[0].attrs["status"] == "ok"
    assert requests[1].attrs["from_cache"] is True
    # jit/vm children nest under their request span.
    for req in requests:
        kids = [s for s in spans if s.parent_id == req.span_id]
        assert {k.phase for k in kids} == {"jit", "vm"}
    # The warm request's jit span records the cache hit.
    warm_jit = [s for s in spans
                if s.parent_id == r2.span_id and s.phase == "jit"]
    assert warm_jit[0].attrs.get("cached") is True


def test_service_rejection_span_carries_events():
    with obs.recording() as ob:
        with KernelService() as svc:
            resp = svc.handle(ServiceRequest("saxpy_fp", flow="nope"))
    assert resp.status == "rejected"
    (req,) = [s for s in ob.spans() if s.name == "service.request"]
    assert req.attrs["status"] == "rejected"
    assert "bad-request" in req.attrs["events"]
    assert resp.span_id == req.span_id


def test_service_metrics(inst, tmp_path):
    with obs.recording() as ob:
        with KernelService(cache_dir=str(tmp_path / "c")) as svc:
            svc.handle(ServiceRequest("saxpy_fp", size=32))
            svc.handle(ServiceRequest("saxpy_fp", size=32))
    snap = ob.metrics_snapshot()
    assert snap["service.requests"]["value"] == 2
    assert snap["service.ok"]["value"] == 2
    assert snap["admission.admitted"]["value"] == 2
    assert snap["cache.misses"]["value"] >= 1
    assert snap["cache.hits"]["value"] >= 1
    assert snap["cache.bytes"]["kind"] == "gauge"


# -- install/uninstall discipline --------------------------------------------


def test_recording_restores_previous_state():
    outer = obs.TraceRecorder()
    prev = obs.install_tracer(outer)
    try:
        with obs.recording() as ob:
            with obs.span("inner", phase="vm"):
                pass
        assert obs.active_tracer() is outer
        assert [s.name for s in ob.spans()] == ["inner"]
        assert outer.spans == []  # inner recording did not leak outward
    finally:
        obs.install_tracer(prev)
    assert not obs.enabled()


def test_recording_trace_only():
    with obs.recording(metrics=False) as ob:
        obs.count("vm.runs")
        with obs.span("x", phase="vm"):
            pass
    assert ob.metrics is None
    assert ob.metrics_snapshot() == {}
    assert len(ob.spans()) == 1
