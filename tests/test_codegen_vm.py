"""Codegen-engine specifics and the engine-registry API.

The differential matrix (``tests/test_threaded_vm.py``) already proves
the codegen engine bit-identical to the reference VM at small sizes —
which, deliberately, exercises the *non*-batched superinstruction path
(vector trips there are below ``_MIN_BATCH``).  This file covers what
the matrix cannot:

* the batched fast path actually engages at realistic sizes and stays
  bit-identical (values, cycles, instructions, op counts, memory);
* the generated source is byte-stable across processes (no ``id()`` /
  ``hash()`` leakage), so compile caches can key on it;
* the registry API itself: registration rules, error shapes, the
  deprecated ``repro.api.ENGINES`` shim, and — the point of the
  redesign — a toy fourth engine becoming selectable end-to-end
  (``execute_phase``, ``FlowRunner``, CLI ``--engine`` choices) without
  touching any dispatch site.
"""

from __future__ import annotations

import subprocess
import sys
import warnings

import numpy as np
import pytest

import repro.api as api
from repro import _compat
from repro.harness.flows import FlowRunner
from repro.kernels import get_kernel
from repro.machine import VM
from repro.machine.codegen import CodegenCode
from repro.machine.registry import (
    DEFAULT_ENGINE,
    Engine,
    engine_names,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.targets import get_target


@pytest.fixture(scope="module")
def runner() -> FlowRunner:
    return FlowRunner()


# -- batched fast path --------------------------------------------------------


#: streaming kernels whose vector loops run long enough (trip >= 256 at
#: these sizes) for the batch planner to engage.
BATCH_CASES = [
    ("saxpy_fp", 2048),
    ("dscal_dp", 2048),
    ("dissolve_fp", 2048),
    ("mix_streams_s16", 2048),
]


def _codegen_code(runner, name, size, flow="split_vec_gcc4cli",
                  target_name="sse", count_ops=False) -> tuple:
    inst = get_kernel(name).instantiate(size)
    target = get_target(target_name)
    ck = runner.compiled(inst, flow, target)
    return inst, target, ck, ck.translated("codegen", count_ops=count_ops)


@pytest.mark.parametrize("name,size", BATCH_CASES)
def test_batch_path_engages_and_matches_reference(name, size, runner):
    inst, target, ck, code = _codegen_code(
        runner, name, size, count_ops=True
    )
    assert isinstance(code, CodegenCode)
    eng_bufs = runner.make_buffers(inst)
    eng = code.run(inst.scalar_args, eng_bufs)
    # the planner must actually have fired — otherwise this test silently
    # degrades into a rerun of the small-size matrix.
    assert code.plans, f"{name}: no batch plans were planted"
    assert any(p.batches > 0 for p in code.plans), (
        f"{name}@{size}: batch plan never engaged "
        f"(batches={[p.batches for p in code.plans]})"
    )
    assert not any(p.dead for p in code.plans if p.batches), (
        f"{name}@{size}: an engaged batch plan bailed permanently"
    )
    ref_bufs = runner.make_buffers(inst)
    ref = VM(target).run(
        ck.mfunc, inst.scalar_args, ref_bufs, count_ops=True
    )
    assert eng.instructions == ref.instructions
    assert eng.cycles == ref.cycles
    assert dict(eng.op_counts) == dict(ref.op_counts)
    if ref.value is None:
        assert eng.value is None
    else:
        assert eng.value == ref.value
    for pname, buf in ref_bufs.items():
        np.testing.assert_array_equal(
            buf.read_elements(), eng_bufs[pname].read_elements(),
            err_msg=f"{name}@{size}: array {pname!r} diverged",
        )


def test_batch_path_budget_parity_at_scale(runner):
    """A budget landing *inside* a batched region must trap on exactly the
    reference instruction (the plan clamps batches to budget room)."""
    inst, target, ck, code = _codegen_code(runner, "saxpy_fp", 2048)
    full = code.run(inst.scalar_args, runner.make_buffers(inst))
    n = full.instructions
    for budget in (n // 2, n // 2 + 13, n - 1):
        ref_err = eng_err = None
        try:
            VM(target, max_instructions=budget).run(
                ck.mfunc, inst.scalar_args, runner.make_buffers(inst)
            )
        except Exception as exc:  # noqa: BLE001 - comparing trap identity
            ref_err = (type(exc), str(exc))
        try:
            code.run(
                inst.scalar_args, runner.make_buffers(inst),
                max_instructions=budget,
            )
        except Exception as exc:  # noqa: BLE001
            eng_err = (type(exc), str(exc))
        assert ref_err is not None, f"budget {budget}/{n} did not trap"
        assert ref_err == eng_err, f"budget {budget}/{n}"


# -- source determinism -------------------------------------------------------


_HASH_SCRIPT = """\
import hashlib, sys
from repro.harness.flows import FlowRunner
from repro.kernels import get_kernel
from repro.machine.codegen import translate
from repro.targets import get_target

runner = FlowRunner()
h = hashlib.sha256()
for name in ("saxpy_fp", "sad_s8", "MMM_fp"):
    for flow in ("split_vec_gcc4cli", "native_vec"):
        inst = get_kernel(name).instantiate(32)
        ck = runner.compiled(inst, flow, get_target("sse"))
        for count_ops in (False, True):
            src = translate(ck.mfunc, ck.target, count_ops).source
            h.update(src.encode())
sys.stdout.write(h.hexdigest())
"""


def test_generated_source_is_cross_process_deterministic(tmp_path):
    """The emitted Python must not depend on ``id()`` / ``hash()`` /
    dict-iteration salt: two fresh interpreters with different hash seeds
    must generate byte-identical source."""
    import os

    digests = []
    for seed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = subprocess.run(
            [sys.executable, "-c", _HASH_SCRIPT],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
            check=True,
        )
        digests.append(out.stdout.strip())
    assert digests[0] == digests[1]
    assert len(digests[0]) == 64


def test_generated_source_in_process_stable(runner):
    """Two translations of the same kernel yield identical source text."""
    from repro.machine.codegen import translate as cg_translate

    inst = get_kernel("saxpy_fp").instantiate(32)
    ck = runner.compiled(inst, "split_vec_gcc4cli", get_target("sse"))
    a = cg_translate(ck.mfunc, ck.target, False)
    b = cg_translate(ck.mfunc, ck.target, False)
    assert a is not b
    assert a.source == b.source


# -- translation cache --------------------------------------------------------


def test_translated_caches_per_engine_and_count_ops(runner):
    inst = get_kernel("saxpy_fp").instantiate(32)
    ck = runner.compiled(inst, "split_vec_gcc4cli", get_target("sse"))
    cg = ck.translated("codegen")
    assert ck.translated("codegen") is cg
    assert ck.translated("codegen", count_ops=True) is not cg
    thr = ck.translated("threaded")
    assert thr is not cg
    assert ck.threaded() is thr  # shorthand hits the same cache slot


def test_reference_engine_has_no_translate(runner):
    inst = get_kernel("saxpy_fp").instantiate(32)
    ck = runner.compiled(inst, "split_vec_gcc4cli", get_target("sse"))
    assert get_engine("reference").translate is None
    with pytest.raises(ValueError, match="no translate step"):
        ck.translated("reference")


# -- registry API -------------------------------------------------------------


def _toy_run(ck, scalar_args, arrays, *, count_ops=False,
             max_instructions=None):
    """A fourth engine: delegates to the reference interpreter, so it is
    trivially bit-identical — the point is the *plumbing*."""
    vm = VM(ck.target) if max_instructions is None else VM(
        ck.target, max_instructions
    )
    return vm.run(ck.mfunc, scalar_args, arrays, count_ops=count_ops)


@pytest.fixture
def toy_engine():
    eng = register_engine(
        "toy", run=_toy_run, description="reference delegate (test toy)"
    )
    try:
        yield eng
    finally:
        unregister_engine("toy")


def test_register_engine_validates():
    with pytest.raises(ValueError, match="non-empty string"):
        register_engine("", run=_toy_run)
    with pytest.raises(ValueError, match="needs a run callable"):
        register_engine("no-run")


def test_register_engine_rejects_duplicates(toy_engine):
    with pytest.raises(ValueError, match="already registered"):
        register_engine("toy", run=_toy_run)
    # replace=True is the explicit override
    swapped = register_engine(
        "toy", run=_toy_run, description="v2", replace=True
    )
    assert get_engine("toy") is swapped
    assert swapped.description == "v2"


def test_get_engine_error_lists_known_names():
    with pytest.raises(ValueError, match="unknown engine"):
        get_engine("warp")
    with pytest.raises(ValueError, match="threaded"):
        get_engine("warp")


def test_builtin_registry_shape():
    names = engine_names()
    assert set(names) >= {"threaded", "codegen", "reference"}
    assert DEFAULT_ENGINE in names
    eng = get_engine("codegen")
    assert isinstance(eng, Engine)
    assert eng.translate is not None and eng.description


def test_unregister_is_idempotent():
    unregister_engine("never-existed")  # no raise


# -- fourth engine, end to end ------------------------------------------------


def test_toy_engine_selectable_via_execute_phase(toy_engine, runner):
    inst = get_kernel("saxpy_fp").instantiate(32)
    ck = runner.compiled(inst, "split_vec_gcc4cli", get_target("sse"))
    toy = api.execute_phase(
        ck, inst.scalar_args, runner.make_buffers(inst), engine="toy"
    )
    ref = api.execute_phase(
        ck, inst.scalar_args, runner.make_buffers(inst), engine="reference"
    )
    assert toy.cycles == ref.cycles
    assert toy.instructions == ref.instructions
    assert api.resolve_engine("toy") == "toy"


def test_toy_engine_selectable_via_flow_runner(toy_engine):
    inst = get_kernel("saxpy_fp").instantiate(32)
    toy_res = FlowRunner(engine="toy").run(inst, "split_vec_gcc4cli", "sse")
    thr_res = FlowRunner(engine="threaded").run(
        inst, "split_vec_gcc4cli", "sse"
    )
    assert toy_res.cycles == thr_res.cycles
    assert toy_res.checked and thr_res.checked


def test_toy_engine_selectable_via_cli(toy_engine, capsys):
    from repro.cli import main

    rc = main([
        "run", "saxpy_fp", "--flow", "split_vec_gcc4cli",
        "--target", "sse", "--size", "32", "--engine", "toy",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "saxpy_fp" in out and "cycles" in out


def test_cli_rejects_unknown_engine():
    from repro.cli import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "saxpy_fp", "--engine", "warp"])


# -- deprecated ENGINES shim --------------------------------------------------


def test_api_engines_shim_warns_once():
    _compat.reset()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        names = api.ENGINES
        names2 = api.ENGINES
    assert names == engine_names()
    assert names2 == names
    deps = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deps) == 1
    assert "engine_names" in str(deps[0].message)
    _compat.reset()


def test_api_getattr_still_raises_for_unknown():
    with pytest.raises(AttributeError):
        api.no_such_symbol  # noqa: B018
