"""Differential tests: every registered engine vs the reference VM.

The contract of every engine in :mod:`repro.machine.registry` is
*bit-identical observable behavior* to :class:`repro.machine.VM`: same
return value, same cycle count, same executed-instruction count, same
per-op counts, same memory effects — and the same :class:`VMError`
(message included) on every trap (misalignment, unbound parameters,
instruction budget).  These tests enforce that contract over the full
kernel suite, all six targets, and all three online compilers — and they
are parametrized over the registry, so a future fourth engine inherits
the whole gate just by registering itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.flows import FlowRunner
from repro.kernels import all_kernels, get_kernel
from repro.machine import VM, VMError
from repro.machine.registry import engine_names, get_engine
from repro.machine.threaded import ThreadedVM, translate
from repro.targets import TARGETS, get_target

#: The three online compilers of Figure 4, as flow names: the Mono-like JIT
#: and the gcc4cli-like compiler consume the *split* bytecode, the native
#: backend consumes the monolithic native IR.
COMPILER_FLOWS = ("split_vec_mono", "split_vec_gcc4cli", "native_vec")

ALL_TARGETS = tuple(TARGETS)

#: every registered engine except the oracle it is compared against.
CANDIDATE_ENGINES = tuple(n for n in engine_names() if n != "reference")


def _engine_run(ck, engine, scalar_args, bufs, **kw):
    """Run ``ck`` on a registered engine (the registry dispatch path)."""
    return get_engine(engine).run(ck, scalar_args, bufs, **kw)


def _diff_size(kernel) -> int | None:
    """Small-but-representative sizes so the full matrix stays fast."""
    if kernel.category != "kernel":
        return None  # polybench defaults are already small (8-24)
    return min(kernel.default_size, 32)


@pytest.fixture(scope="module")
def diff_runner() -> FlowRunner:
    """Module-wide runner so offline/online compilations are cached across
    the (kernel x target x compiler) matrix."""
    return FlowRunner()


def _run_both(runner, inst, flow, target_name, engine="threaded"):
    """Run one compiled kernel through the reference VM and ``engine``;
    returns the two RunResults plus the two buffer sets (for memory
    comparison)."""
    target = get_target(target_name)
    ck = runner.compiled(inst, flow, target)
    ref_bufs = runner.make_buffers(inst)
    ref = VM(target).run(ck.mfunc, inst.scalar_args, ref_bufs, count_ops=True)
    eng_bufs = runner.make_buffers(inst)
    eng = _engine_run(
        ck, engine, inst.scalar_args, eng_bufs, count_ops=True
    )
    return ref, eng, ref_bufs, eng_bufs


def _assert_identical(ref, thr, ref_bufs, thr_bufs, what):
    assert ref.instructions == thr.instructions, what
    assert ref.cycles == thr.cycles, what
    assert dict(ref.op_counts) == dict(thr.op_counts), what
    if ref.value is None:
        assert thr.value is None, what
    else:
        assert thr.value is not None and ref.value == thr.value, what
    for name, buf in ref_bufs.items():
        a = buf.read_elements()
        b = thr_bufs[name].read_elements()
        assert np.array_equal(a, b), f"{what}: array {name} diverged"


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
@pytest.mark.parametrize("kernel", [k.name for k in all_kernels()])
def test_engines_bit_identical(kernel, engine, diff_runner):
    """Full matrix: every kernel x target x compiler, every engine."""
    k = get_kernel(kernel)
    inst = k.instantiate(_diff_size(k))
    for target_name in ALL_TARGETS:
        for flow in COMPILER_FLOWS:
            ref, eng, rb, eb = _run_both(
                diff_runner, inst, flow, target_name, engine
            )
            _assert_identical(
                ref, eng, rb, eb, f"{kernel}/{flow}/{target_name}/{engine}"
            )


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
def test_scalar_flows_bit_identical(engine, diff_runner):
    """The scalar flows (A and the gcc4cli scalar baseline) agree too."""
    k = get_kernel("saxpy_fp")
    inst = k.instantiate(32)
    for flow in ("split_scalar_mono", "split_scalar_gcc4cli",
                 "native_scalar"):
        for target_name in ("sse", "scalar"):
            ref, eng, rb, eb = _run_both(
                diff_runner, inst, flow, target_name, engine
            )
            _assert_identical(ref, eng, rb, eb, f"{flow}/{target_name}")


def test_flow_runner_engines_agree(diff_runner):
    """FlowRunner(engine=...) is figure-invisible: identical FlowResults
    for every registered engine."""
    runners = [FlowRunner(engine=name) for name in engine_names()]
    inst = get_kernel("sfir_fp").instantiate(32)
    for flow in COMPILER_FLOWS:
        results = [r.run(inst, flow, "sse") for r in runners]
        assert len({res.cycles for res in results}) == 1
        assert all(res.checked for res in results)


def test_flow_runner_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        FlowRunner(engine="jitjit")


# -- trap parity --------------------------------------------------------------


def _trap_of(fn):
    """(exception type, message) raised by ``fn`` — or (None, None)."""
    try:
        fn()
    except VMError as exc:  # noqa: PERF203 - deliberate
        return type(exc), str(exc)
    return None, None


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
def test_trap_parity_misaligned_vector_load(engine, diff_runner):
    """Native code assumes runtime-aligned arrays; feeding it misaligned
    buffers must trap *identically* in every engine."""
    misaligned = FlowRunner(base_misalign=4, check=False)
    inst = get_kernel("saxpy_fp").instantiate(32)
    target = get_target("sse")
    ck = misaligned.compiled(inst, "native_vec", target)

    ref_trap = _trap_of(
        lambda: VM(target).run(
            ck.mfunc, inst.scalar_args, misaligned.make_buffers(inst)
        )
    )
    eng_trap = _trap_of(
        lambda: _engine_run(
            ck, engine, inst.scalar_args, misaligned.make_buffers(inst)
        )
    )
    assert ref_trap[0] is VMError, "expected the reference VM to trap"
    assert ref_trap == eng_trap
    assert "misaligned address" in ref_trap[1]


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
def test_trap_parity_unbound_array(engine, diff_runner):
    inst = get_kernel("saxpy_fp").instantiate(32)
    target = get_target("sse")
    ck = diff_runner.compiled(inst, "split_vec_gcc4cli", target)
    ref_trap = _trap_of(lambda: VM(target).run(ck.mfunc, inst.scalar_args, {}))
    eng_trap = _trap_of(
        lambda: _engine_run(ck, engine, inst.scalar_args, {})
    )
    assert ref_trap == eng_trap
    assert ref_trap[0] is VMError and "not bound" in ref_trap[1]


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
def test_trap_parity_unbound_scalar(engine, diff_runner):
    # find a kernel whose compiled form takes scalar parameters
    for name in ("saxpy_fp", "sfir_fp", "dscal_fp"):
        inst = get_kernel(name).instantiate(32)
        target = get_target("sse")
        ck = diff_runner.compiled(inst, "split_vec_gcc4cli", target)
        if not ck.mfunc.scalar_params:
            continue
        bufs = diff_runner.make_buffers(inst)
        ref_trap = _trap_of(lambda: VM(target).run(ck.mfunc, {}, bufs))
        eng_trap = _trap_of(
            lambda: _engine_run(
                ck, engine, {}, diff_runner.make_buffers(inst)
            )
        )
        assert ref_trap == eng_trap
        assert ref_trap[0] is VMError
        assert "scalar parameter" in ref_trap[1]
        return
    pytest.skip("no kernel with scalar parameters found")


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
def test_trap_parity_instruction_budget(engine, diff_runner):
    """The budget trap must fire after *exactly* the same instruction in
    every engine — including when the overrun lands mid-block, which the
    translating engines handle by replaying the block per-instruction."""
    inst = get_kernel("saxpy_fp").instantiate(32)
    target = get_target("sse")
    ck = diff_runner.compiled(inst, "split_vec_gcc4cli", target)
    full = ck.threaded().run(
        inst.scalar_args, diff_runner.make_buffers(inst)
    )
    n = full.instructions
    for budget in (1, 7, n // 3, n // 2 + 1, n - 1):
        ref_trap = _trap_of(
            lambda: VM(target, max_instructions=budget).run(
                ck.mfunc, inst.scalar_args, diff_runner.make_buffers(inst)
            )
        )
        eng_trap = _trap_of(
            lambda: _engine_run(
                ck, engine, inst.scalar_args,
                diff_runner.make_buffers(inst),
                max_instructions=budget,
            )
        )
        assert ref_trap[0] is VMError, f"budget {budget}/{n} did not trap"
        assert "budget exceeded" in ref_trap[1]
        assert ref_trap == eng_trap, f"budget {budget}/{n}"


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
@pytest.mark.parametrize("budget", [10, 60, 10_000])
def test_trap_parity_budget_vs_alignment_race(budget, engine, diff_runner):
    """With a misaligned buffer *and* a budget, whichever trap fires first
    must be the same one (same message) in every engine."""
    misaligned = FlowRunner(base_misalign=4, check=False)
    inst = get_kernel("saxpy_fp").instantiate(32)
    target = get_target("sse")
    ck = misaligned.compiled(inst, "native_vec", target)
    ref_trap = _trap_of(
        lambda: VM(target, max_instructions=budget).run(
            ck.mfunc, inst.scalar_args, misaligned.make_buffers(inst)
        )
    )
    eng_trap = _trap_of(
        lambda: _engine_run(
            ck, engine, inst.scalar_args, misaligned.make_buffers(inst),
            max_instructions=budget,
        )
    )
    assert ref_trap[0] is VMError
    assert ref_trap == eng_trap


# -- translation caching ------------------------------------------------------


def test_threaded_vm_translation_cache(diff_runner):
    inst = get_kernel("saxpy_fp").instantiate(32)
    target = get_target("sse")
    ck = diff_runner.compiled(inst, "split_vec_gcc4cli", target)
    tvm = ThreadedVM(target)
    first = tvm.translation(ck.mfunc)
    assert tvm.translation(ck.mfunc) is first
    # count_ops variants translate (and cache) separately
    counting = tvm.translation(ck.mfunc, count_ops=True)
    assert counting is not first
    assert tvm.translation(ck.mfunc, count_ops=True) is counting


def test_compiled_kernel_threaded_cache(diff_runner):
    inst = get_kernel("dscal_fp").instantiate(32)
    target = get_target("neon")
    ck = diff_runner.compiled(inst, "split_vec_mono", target)
    assert ck.threaded() is ck.threaded()
    assert ck.threaded(count_ops=True) is not ck.threaded()


def test_translate_is_reusable(diff_runner):
    """One translation survives repeated runs with fresh buffers."""
    inst = get_kernel("interp_fp").instantiate(32)
    target = get_target("altivec")
    ck = diff_runner.compiled(inst, "split_vec_gcc4cli", target)
    code = translate(ck.mfunc, target)
    r1 = code.run(inst.scalar_args, diff_runner.make_buffers(inst))
    r2 = code.run(inst.scalar_args, diff_runner.make_buffers(inst))
    assert r1.cycles == r2.cycles
    assert r1.instructions == r2.instructions


# -- injected-fault trap parity (repro.faults) --------------------------------


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
@pytest.mark.parametrize("after", [1, 3, 9, 20])
def test_trap_parity_injected_memory_fault(after, engine, diff_runner):
    """A seeded MemFault must fire on the identical access — same type,
    same message — in every engine (all observe the same access stream)."""
    from repro import faults

    inst = get_kernel("saxpy_fp").instantiate(32)
    target = get_target("sse")
    ck = diff_runner.compiled(inst, "split_vec_gcc4cli", target)
    plan = faults.FaultPlan([faults.MemFault(after=after)])

    with faults.injected(plan):
        ref_trap = _trap_of(
            lambda: VM(target).run(
                ck.mfunc, inst.scalar_args, diff_runner.make_buffers(inst)
            )
        )
    with faults.injected(plan):
        eng_trap = _trap_of(
            lambda: _engine_run(
                ck, engine, inst.scalar_args,
                diff_runner.make_buffers(inst)
            )
        )
    assert ref_trap == eng_trap
    assert ref_trap[1] is not None
    assert f"access #{after}" in ref_trap[1]


def test_injected_memory_fault_is_marked(diff_runner):
    """Injected traps carry the FaultInjected mixin so chaos campaigns can
    tell them from genuine faults."""
    from repro import faults
    from repro.errors import FaultInjected, classify

    inst = get_kernel("dscal_fp").instantiate(32)
    target = get_target("sse")
    ck = diff_runner.compiled(inst, "split_vec_gcc4cli", target)
    with faults.injected(faults.FaultPlan([faults.MemFault(after=2)])):
        with pytest.raises(VMError) as exc_info:
            ck.threaded().run(
                inst.scalar_args, diff_runner.make_buffers(inst)
            )
    assert isinstance(exc_info.value, FaultInjected)
    assert classify(exc_info.value) == "VMError[injected]"


def test_trap_parity_injected_fault_with_misalignment(diff_runner):
    """MemFault + misaligned buffers: whichever trap fires first (the
    injected one fires before the alignment check on the same access)
    must be the same one in both engines."""
    from repro import faults

    misaligned = FlowRunner(base_misalign=4, check=False)
    inst = get_kernel("saxpy_fp").instantiate(32)
    target = get_target("sse")
    ck = misaligned.compiled(inst, "native_vec", target)
    for after in (1, 2, 8):
        plan = faults.FaultPlan([faults.MemFault(after=after)])
        with faults.injected(plan):
            ref_trap = _trap_of(
                lambda: VM(target).run(
                    ck.mfunc, inst.scalar_args, misaligned.make_buffers(inst)
                )
            )
        with faults.injected(plan):
            thr_trap = _trap_of(
                lambda: ck.threaded().run(
                    inst.scalar_args, misaligned.make_buffers(inst)
                )
            )
        assert ref_trap[0] is not None, f"after={after}"
        assert issubclass(ref_trap[0], VMError), f"after={after}"
        assert ref_trap == thr_trap, f"after={after}"


def test_mem_hook_dormant_without_plan(diff_runner):
    """No plan installed -> injection points are no-ops and execution is
    unchanged (same cycles as an untouched runner)."""
    from repro import faults

    assert faults.active_plan() is None
    assert faults.mem_hook is None
    inst = get_kernel("saxpy_fp").instantiate(32)
    target = get_target("sse")
    ck = diff_runner.compiled(inst, "split_vec_gcc4cli", target)
    a = ck.threaded().run(inst.scalar_args, diff_runner.make_buffers(inst))
    with faults.injected(faults.FaultPlan([faults.MemFault(after=10**9)])):
        b = ck.threaded().run(
            inst.scalar_args, diff_runner.make_buffers(inst)
        )
    assert a.cycles == b.cycles
    assert a.value == b.value
