"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.flows import FlowRunner


@pytest.fixture(scope="session")
def runner() -> FlowRunner:
    """A session-wide FlowRunner so compilation results are cached across
    tests (the kernel matrix reuses offline results heavily)."""
    return FlowRunner()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def compile_one(source: str, name: str):
    """Compile a single-function VaporC snippet and return its IR."""
    from repro.frontend import compile_source

    return compile_source(source)[name]
