"""Tests for runtime specialization (the paper's §VII future work)."""

import numpy as np
import pytest

from repro import (
    ArrayBuffer,
    MonoJIT,
    OptimizingJIT,
    VM,
    compile_source,
    get_target,
    split_config,
    vectorize_function,
)
from repro.bytecode import decode_function, encode_function
from repro.ir import F32, walk
from repro.jit import SpecializationError, specialize_scalars

SFIR = """
float sfir(int n, float a[], float c[]) {
    float s = 0;
    for (int i = 0; i < n; i++) { s += a[i + 2] * c[i]; }
    return s;
}
"""


def _vec():
    return vectorize_function(compile_source(SFIR)["sfir"], split_config())


def _run(fn, target, args, n, a, c):
    ck = OptimizingJIT().compile(fn, target)
    bufs = {
        "a": ArrayBuffer(F32, n + 4, data=a),
        "c": ArrayBuffer(F32, n, data=c),
    }
    res = VM(target).run(ck.mfunc, args, bufs)
    return res, ck


class TestSpecializeScalars:
    def test_signature_shrinks(self):
        spec = specialize_scalars(_vec(), {"n": 100})
        assert [p.name for p in spec.scalar_params] == []
        assert spec.name == "sfir__spec"
        assert spec.annotations["specialized"] == {"n": 100}

    def test_unknown_parameter(self):
        with pytest.raises(SpecializationError):
            specialize_scalars(_vec(), {"m": 5})

    def test_original_untouched(self):
        vec = _vec()
        before = len(list(walk(vec.body)))
        specialize_scalars(vec, {"n": 100})
        assert len(list(walk(vec.body))) == before

    @pytest.mark.parametrize("n", [1, 7, 512, 513])
    @pytest.mark.parametrize("target_name", ["sse", "altivec", "scalar"])
    def test_results_identical(self, n, target_name):
        target = get_target(target_name)
        vec = _vec()
        spec = specialize_scalars(vec, {"n": n})
        rng = np.random.default_rng(n)
        a = rng.standard_normal(n + 4).astype(np.float32)
        c = rng.standard_normal(n).astype(np.float32)
        expect = float((a[2 : n + 2].astype(np.float64) * c).sum())
        generic, _ = _run(vec, target, {"n": n}, n, a, c)
        specialized, _ = _run(spec, target, {}, n, a, c)
        assert float(generic.value) == pytest.approx(expect, rel=1e-3)
        assert float(specialized.value) == float(generic.value)

    def test_optimizing_jit_profits(self):
        """With a VF-divisible trip count the epilogue loop and the whole
        bound prologue fold away under the optimizing JIT."""
        target = get_target("sse")
        vec = _vec()
        spec = specialize_scalars(vec, {"n": 512})
        rng = np.random.default_rng(3)
        a = rng.standard_normal(516).astype(np.float32)
        c = rng.standard_normal(512).astype(np.float32)
        g, ck_g = _run(vec, target, {"n": 512}, 512, a, c)
        s, ck_s = _run(spec, target, {}, 512, a, c)
        assert s.cycles < g.cycles
        assert ck_s.stats["minstrs"] < ck_g.stats["minstrs"]

    def test_mono_gains_nothing(self):
        """Without constant folding, specialization is inert — the reason
        the paper frames it as an *online optimizing* opportunity."""
        target = get_target("sse")
        vec = _vec()
        spec = specialize_scalars(vec, {"n": 512})
        rng = np.random.default_rng(3)
        a = rng.standard_normal(516).astype(np.float32)
        c = rng.standard_normal(512).astype(np.float32)

        def run_mono(fn, args):
            ck = MonoJIT().compile(fn, target)
            bufs = {
                "a": ArrayBuffer(F32, 516, data=a),
                "c": ArrayBuffer(F32, 512, data=c),
            }
            return VM(target).run(ck.mfunc, args, bufs)

        g = run_mono(vec, {"n": 512})
        s = run_mono(spec, {})
        assert abs(s.cycles - g.cycles) / g.cycles < 0.02

    def test_specialize_after_bytecode_roundtrip(self):
        vec = decode_function(encode_function(_vec()))
        spec = specialize_scalars(vec, {"n": 64})
        target = get_target("neon")
        rng = np.random.default_rng(9)
        a = rng.standard_normal(68).astype(np.float32)
        c = rng.standard_normal(64).astype(np.float32)
        res, _ = _run(spec, target, {}, 64, a, c)
        assert float(res.value) == pytest.approx(
            float((a[2:66] * c).sum()), rel=1e-3
        )

    def test_partial_binding(self):
        src = """
void scale(int n, float alpha, float x[]) {
    for (int i = 0; i < n; i++) { x[i] = alpha * x[i]; }
}
"""
        vec = vectorize_function(compile_source(src)["scale"], split_config())
        spec = specialize_scalars(vec, {"alpha": 2.0})
        assert [p.name for p in spec.scalar_params] == ["n"]
        target = get_target("sse")
        x = np.arange(20, dtype=np.float32)
        ck = OptimizingJIT().compile(spec, target)
        bufs = {"x": ArrayBuffer(F32, 20, data=x)}
        VM(target).run(ck.mfunc, {"n": 20}, bufs)
        assert np.allclose(bufs["x"].read_elements(), 2.0 * x)
