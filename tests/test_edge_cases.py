"""Edge-case coverage across the stack: frontend scoping, driver shapes
(multiple loops, deep nests), materializer fallback paths, VM details, and
the bytecode-compaction sub-goal from §I."""

import numpy as np
import pytest

from repro.bytecode import encode_function
from repro.frontend import SemaError, compile_source
from repro.ir import (
    F32,
    F64,
    I32,
    I64,
    ForLoop,
    If,
    VersionGuard,
    verify_function,
    walk,
)
from repro.jit import MonoJIT, OptimizingJIT
from repro.machine import VM, ArrayBuffer
from repro.targets import ALTIVEC, NEON, SCALAR, SSE, VSX
from repro.vectorizer import split_config, vectorize_function


def _vec(src, name=None, **cfg):
    module = compile_source(src)
    fn = module[name or next(iter(module.functions))]
    out = vectorize_function(fn, split_config(**cfg))
    verify_function(out)
    return out


class TestFrontendScoping:
    def test_block_scoped_declaration(self):
        fn = compile_source(
            "int f(int a) { int x = 1; { int x2 = a; x = x2; } return x; }"
        )["f"]
        verify_function(fn)

    def test_shadowing_in_inner_block_rejected_only_same_scope(self):
        # Same-scope redeclaration is an error...
        with pytest.raises(SemaError):
            compile_source("void f() { int x = 1; int x = 2; }")
        # ...but an inner block may declare a fresh name.
        compile_source("void f() { int x = 1; { int y = x; } { int y = 2; } }")

    def test_else_if_chain(self):
        fn = compile_source(
            "int f(int a) { int r = 0;"
            " if (a > 10) { r = 3; } else if (a > 5) { r = 2; }"
            " else { r = 1; } return r; }"
        )["f"]
        verify_function(fn)
        mf_args = [(-1, 1), (7, 2), (11, 3)]
        from repro.machine import flatten

        mf = flatten(fn)
        for a, expect in mf_args:
            res = VM(SSE).run(mf, {"a": a}, {})
            assert int(res.value) == expect

    def test_unary_minus_precedence(self):
        fn = compile_source("int f(int a) { return -a * 2; }")["f"]
        from repro.machine import flatten

        res = VM(SSE).run(flatten(fn), {"a": 3}, {})
        assert int(res.value) == -6

    def test_logical_ops(self):
        fn = compile_source(
            "int f(int a, int b) { return (a > 0 && b > 0) ? 1 : 0; }"
        )["f"]
        from repro.machine import flatten

        mf = flatten(fn)
        assert int(VM(SSE).run(mf, {"a": 1, "b": 1}, {}).value) == 1
        assert int(VM(SSE).run(mf, {"a": 1, "b": -1}, {}).value) == 0

    def test_long_and_double_params(self):
        fn = compile_source(
            "long f(long a, double x) { return a + (long)x; }"
        )["f"]
        from repro.machine import flatten

        res = VM(SSE).run(flatten(fn), {"a": 2**40, "x": 3.7}, {})
        assert int(res.value) == 2**40 + 3


class TestDriverShapes:
    def test_two_sibling_loops_both_vectorized(self):
        out = _vec(
            """
void f(int n, float a[], float b[], float o[], float p[]) {
    for (int i = 0; i < n; i++) { o[i] = a[i] * 2.0; }
    for (int j = 0; j < n; j++) { p[j] = b[j] + 1.0; }
}
"""
        )
        report = out.annotations["vect_report"]
        assert len(report) == 2
        assert all(v.startswith("vectorized") for v in report.values())
        # Distinct groups: the two trios must not share loop_bound routing.
        groups = {
            i.annotations["vect_group"]
            for i in walk(out.body)
            if isinstance(i, ForLoop) and "vect_group" in i.annotations
        }
        assert len(groups) == 2

    def test_triple_nest_inner_vectorized(self):
        out = _vec(
            """
void f(float A[8][8][8]) {
    for (int i = 0; i < 8; i++)
        for (int j = 0; j < 8; j++)
            for (int k = 0; k < 8; k++)
                A[i][j][k] = A[i][j][k] * 2.0;
}
"""
        )
        report = out.annotations["vect_report"]
        assert any(v.startswith("vectorized (inner)") for v in report.values())

    def test_loop_after_vectorized_loop_uses_its_result(self):
        out = _vec(
            """
float f(int n, float a[], float o[]) {
    float s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    for (int j = 0; j < n; j++) { o[j] = a[j] - s; }
    return s;
}
"""
        )
        # Execute to prove the result remapping across regions is right.
        n = 37
        rng = np.random.default_rng(0)
        a = rng.standard_normal(n).astype(np.float32)
        ck = OptimizingJIT().compile(out, SSE)
        bufs = {
            "a": ArrayBuffer(F32, n, data=a),
            "o": ArrayBuffer(F32, n),
        }
        res = VM(SSE).run(ck.mfunc, {"n": n}, bufs)
        s = float(a.astype(np.float64).sum())
        assert float(res.value) == pytest.approx(s, rel=1e-4)
        assert np.allclose(bufs["o"].read_elements(), a - np.float32(res.value),
                           rtol=1e-5)

    def test_vectorized_loop_inside_if(self):
        src = """
void f(int n, int flag, float a[]) {
    if (flag > 0) {
        for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
    }
}
"""
        out = _vec(src)
        assert any(
            v.startswith("vectorized") for v in
            out.annotations["vect_report"].values()
        )
        n = 21
        a = np.arange(n, dtype=np.float32)
        for flag, factor in ((1, 2.0), (0, 1.0)):
            ck = MonoJIT().compile(out, NEON)
            bufs = {"a": ArrayBuffer(F32, n, data=a)}
            VM(NEON).run(ck.mfunc, {"n": n, "flag": flag}, bufs)
            assert np.allclose(bufs["a"].read_elements(), a * factor)


class TestMaterializerFallbacks:
    SRC = """
void f(int n, float a[], float o[]) {
    for (int i = 0; i < n; i++) { o[i] = a[i + 1] + 1.0; }
}
"""

    def test_altivec_unaligned_runtime_takes_scalar_route(self):
        """runtime_aligns=False on AltiVec: the fall-back arm's misaligned
        stores can't exist, so its group scalarizes; with misaligned bases
        the run must still be correct (via that scalar route)."""
        vec = _vec(self.SRC)
        jit = OptimizingJIT(runtime_aligns=False)
        ck = jit.compile(vec, ALTIVEC)
        n = 29
        a = np.arange(n + 1, dtype=np.float32)
        for mis in (0, 8, 20):
            bufs = {
                "a": ArrayBuffer(F32, n + 1, base_misalign=mis, data=a),
                "o": ArrayBuffer(F32, n, base_misalign=mis),
            }
            VM(ALTIVEC).run(ck.mfunc, {"n": n}, bufs)
            assert np.allclose(bufs["o"].read_elements(), a[1:] + 1.0), mis

    def test_vsx_uses_misaligned_not_vperm_when_cheaper(self):
        """VSX has both options; our materializer prefers the single
        misaligned load over the explicit chain."""
        vec = _vec(self.SRC)
        ck = OptimizingJIT().compile(vec, VSX)
        ops = {i.op for i in ck.mfunc.instrs}
        assert "vload_u" in ops and "vperm" not in ops

    def test_guard_counts_in_stats(self):
        vec = _vec(self.SRC)
        ck = OptimizingJIT().compile(vec, SSE)
        assert ck.stats["guards_folded"] >= 1
        assert ck.stats["guards_runtime"] == 0


class TestVMEdgeCases:
    def test_i64_arithmetic(self):
        fn = compile_source(
            "long f(long a, long b) { return a * b + a; }"
        )["f"]
        from repro.machine import flatten

        res = VM(SSE).run(flatten(fn), {"a": 2**33, "b": 3}, {})
        assert int(res.value) == np.int64(2**33 * 3 + 2**33)

    def test_f64_precision_preserved(self):
        fn = compile_source("double f(double x) { return x + 1e-12; }")["f"]
        from repro.machine import flatten

        res = VM(SSE).run(flatten(fn), {"x": 1.0}, {})
        assert float(res.value) == 1.0 + 1e-12

    def test_instruction_budget_guard(self):
        from repro.machine import VMError, flatten

        fn = compile_source(
            "int f(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) { s += i; } return s; }"
        )["f"]
        vm = VM(SSE, max_instructions=100)
        with pytest.raises(VMError):
            vm.run(flatten(fn), {"n": 10_000}, {})

    def test_unbound_array_raises(self):
        from repro.machine import VMError, flatten

        fn = compile_source("void f(float a[]) { a[0] = 1.0; }")["f"]
        with pytest.raises(VMError):
            VM(SSE).run(flatten(fn), {}, {})

    def test_unbound_scalar_raises(self):
        from repro.machine import VMError, flatten

        fn = compile_source("int f(int n) { return n; }")["f"]
        with pytest.raises(VMError):
            VM(SSE).run(flatten(fn), {}, {})

    def test_x87_charges_float_ops_only(self):
        fn = compile_source(
            "float f(int n, float x) { return x * x; }"
        )["f"]
        from repro.machine import flatten

        mf = flatten(fn)
        base = VM(SSE).run(mf, {"n": 0, "x": 2.0}, {}).cycles
        mf.meta["x87"] = True
        slow = VM(SSE).run(mf, {"n": 0, "x": 2.0}, {}).cycles
        assert slow > base


class TestBytecodeCompaction:
    """§I sub-goal 4: 'bytecode compaction' — the container must be compact
    relative to naive serializations of the same IR."""

    def test_vbc_beats_pickle(self):
        import pickle

        vec = _vec(
            """
float f(int n, float a[], float c[]) {
    float s = 0;
    for (int i = 0; i < n; i++) { s += a[i + 2] * c[i]; }
    return s;
}
"""
        )
        vbc = encode_function(vec)
        pickled = pickle.dumps(vec)
        assert len(vbc) < len(pickled) / 5

    def test_varints_keep_small_programs_small(self):
        scalar = compile_source(
            "void f(int n, float x[]) {"
            " for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0; } }"
        )["f"]
        assert len(encode_function(scalar)) < 150
