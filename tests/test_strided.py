"""Strided-access coverage beyond the rate-2 interp kernels: stride 3
(RGB deinterleave) and stride 4 (quad channels) loads via the extract
idiom, plus planner rejection boundaries."""

import numpy as np
import pytest

from repro import (
    ArrayBuffer,
    MonoJIT,
    OptimizingJIT,
    VM,
    compile_source,
    get_target,
    split_config,
    vectorize_function,
)
from repro.ir import F32, I16, Extract, verify_function, walk

RGB = """
void rgb2gray(int n, short rgb[], short gray[]) {
    for (int i = 0; i < n; i++) {
        gray[i] = (short)((rgb[3*i] * 5 + rgb[3*i + 1] * 9
                          + rgb[3*i + 2] * 2) >> 4);
    }
}
"""

QUAD = """
float quad_energy(int n, float q[]) {
    float e = 0;
    for (int i = 0; i < n; i++) {
        e += q[4*i] * q[4*i] + q[4*i + 3] * q[4*i + 3];
    }
    return e;
}
"""


def _vec(src, name):
    out = vectorize_function(compile_source(src)[name], split_config())
    verify_function(out)
    return out


class TestStride3:
    def test_extracts_three_phases(self):
        out = _vec(RGB, "rgb2gray")
        extracts = [i for i in walk(out.body) if isinstance(i, Extract)]
        assert {e.offset for e in extracts} == {0, 1, 2}
        assert all(e.stride == 3 for e in extracts)
        assert all(len(e.operands) == 3 for e in extracts)

    @pytest.mark.parametrize("target_name", ["sse", "altivec", "neon", "scalar"])
    @pytest.mark.parametrize("n", [1, 5, 48])
    def test_correct(self, target_name, n):
        out = _vec(RGB, "rgb2gray")
        target = get_target(target_name)
        rng = np.random.default_rng(n)
        rgb = rng.integers(-500, 500, 3 * n).astype(np.int16)
        px = rgb.reshape(-1, 3).astype(np.int16)
        expect = ((px[:, 0] * 5 + px[:, 1] * 9 + px[:, 2] * 2) >> 4).astype(
            np.int16
        )
        for jit in (MonoJIT(), OptimizingJIT()):
            ck = jit.compile(out, target)
            bufs = {
                "rgb": ArrayBuffer(I16, 3 * n, data=rgb),
                "gray": ArrayBuffer(I16, n),
            }
            VM(target).run(ck.mfunc, {"n": n}, bufs)
            assert np.array_equal(bufs["gray"].read_elements(), expect), (
                target_name, jit.name,
            )


class TestStride4:
    def test_vectorizes_with_two_used_phases(self):
        out = _vec(QUAD, "quad_energy")
        report = out.annotations["vect_report"]
        assert any(v.startswith("vectorized") for v in report.values())
        extracts = [i for i in walk(out.body) if isinstance(i, Extract)]
        # Only the used phases (0 and 3) are extracted.
        assert {e.offset for e in extracts} <= {0, 3}
        assert all(e.stride == 4 for e in extracts)

    def test_correct(self):
        out = _vec(QUAD, "quad_energy")
        n = 33
        rng = np.random.default_rng(2)
        q = rng.standard_normal(4 * n).astype(np.float32)
        expect = float(
            (q[0::4].astype(np.float64) ** 2 + q[3::4].astype(np.float64) ** 2).sum()
        )
        target = get_target("sse")
        ck = OptimizingJIT().compile(out, target)
        bufs = {"q": ArrayBuffer(F32, 4 * n, data=q)}
        res = VM(target).run(ck.mfunc, {"n": n}, bufs)
        assert float(res.value) == pytest.approx(expect, rel=1e-3)


class TestPlannerBoundaries:
    def test_stride5_load_rejected(self):
        out = _vec(
            "void f(int n, float a[], float o[]) {"
            " for (int i = 0; i < n; i++) { o[i] = a[5*i]; } }",
            "f",
        )
        assert "rejected" in list(out.annotations["vect_report"].values())[0]

    def test_stride3_store_rejected(self):
        out = _vec(
            "void f(int n, float a[], float o[]) {"
            " for (int i = 0; i < n; i++) {"
            "   o[3*i] = a[i]; o[3*i+1] = a[i]; o[3*i+2] = a[i]; } }",
            "f",
        )
        assert "rejected" in list(out.annotations["vect_report"].values())[0]

    def test_incomplete_stride2_store_pair_rejected(self):
        # Writing only the even phase leaves holes a vector store can't
        # express; the planner must bail out.
        out = _vec(
            "void f(int n, float a[], float o[]) {"
            " for (int i = 0; i < n; i++) { o[2*i] = a[i]; } }",
            "f",
        )
        assert "rejected" in list(out.annotations["vect_report"].values())[0]
