"""Tests for the offline vectorizer: legality, if-conversion, the trio
structure, versioning, idiom recognition, outer-loop and SLP paths."""

import pytest

from repro.analysis.loopinfo import LoopInfo
from repro.frontend import compile_source
from repro.ir import (
    DotProduct,
    Extract,
    ForLoop,
    GetRT,
    GetVF,
    If,
    InitPattern,
    InitReduc,
    Interleave,
    LoopBound,
    RealignLoad,
    Reduce,
    Select,
    Store,
    VersionGuard,
    VStore,
    WidenMult,
    verify_function,
    walk,
)
from repro.targets import ALTIVEC, SSE
from repro.vectorizer import (
    can_if_convert,
    check_inner_loop,
    if_convert_block,
    native_config,
    split_config,
    vectorize_function,
)


def _fn(src, name=None):
    module = compile_source(src)
    if name is None:
        name = next(iter(module.functions))
    return module[name]


def _vec(src, name=None, **cfg):
    fn = _fn(src, name)
    out = vectorize_function(fn, split_config(**cfg))
    verify_function(out)
    return out


def _report(fn):
    return fn.annotations["vect_report"]


def _loops(fn, kind=None):
    return [
        i for i in walk(fn.body)
        if isinstance(i, ForLoop) and (kind is None or i.kind == kind)
    ]


SAXPY = """
void saxpy(int n, float alpha, float x[], float y[]) {
    for (int i = 0; i < n; i++) { y[i] = alpha * x[i] + y[i]; }
}
"""

SFIR = """
float sfir(int n, float a[], float c[]) {
    float s = 0;
    for (int i = 0; i < n; i++) { s += a[i + 2] * c[i]; }
    return s;
}
"""


class TestLegality:
    def _legal(self, src):
        fn = _fn(src)
        loop = _loops(fn)[0]
        return check_inner_loop(LoopInfo(loop, None, 0, []), split_config())

    def test_map_loop_legal(self):
        assert self._legal(SAXPY).ok

    def test_reduction_legal(self):
        legal = self._legal(SFIR)
        assert legal.ok and 0 in legal.reductions

    def test_recurrence_rejected(self):
        legal = self._legal(
            "float f(int n, float a[]) { float s = 1.0;"
            " for (int i = 0; i < n; i++) { s = a[i] - s; } return s; }"
        )
        assert not legal.ok
        assert "non-reduction" in legal.reasons[0]

    def test_carried_memory_dep_rejected(self):
        legal = self._legal(
            "void f(int n, float a[]) {"
            " for (int i = 1; i < n; i++) { a[i] = a[i-1] * 0.5; } }"
        )
        assert not legal.ok
        assert "loop-carried dependence" in legal.reasons[0]

    def test_large_store_stride_rejected(self):
        legal = self._legal(
            "void f(int n, float a[]) {"
            " for (int i = 0; i < n; i++) { a[4*i] = 1.0; } }"
        )
        assert not legal.ok

    def test_negative_stride_rejected(self):
        legal = self._legal(
            "void f(int n, float a[], float b[]) {"
            " for (int i = 0; i < n; i++) { b[n - i] = a[i]; } }"
        )
        assert not legal.ok

    def test_indirect_subscript_rejected(self):
        legal = self._legal(
            "void f(int n, int idx[], float a[], float b[]) {"
            " for (int i = 0; i < n; i++) { b[i] = a[idx[i]]; } }"
        )
        assert not legal.ok

    def test_alias_pair_requires_guard(self):
        legal = self._legal(
            "void f(int n, __may_alias float a[], __may_alias float b[]) {"
            " for (int i = 0; i < n; i++) { b[i] = a[i]; } }"
        )
        assert legal.ok and len(legal.alias_pairs) == 1

    def test_native_rejects_unsupported_elem(self):
        fn = _fn(
            "void f(int n, double x[]) {"
            " for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0; } }"
        )
        loop = _loops(fn)[0]
        legal = check_inner_loop(
            LoopInfo(loop, None, 0, []), native_config(ALTIVEC)
        )
        assert not legal.ok

    def test_dependence_hints_allow_distance(self):
        fn = _fn(
            "void f(int n, float a[]) {"
            " for (int i = 8; i < n; i++) { a[i] = a[i-8] + 1.0; } }"
        )
        loop = _loops(fn)[0]
        conservative = check_inner_loop(LoopInfo(loop, None, 0, []), split_config())
        hinted = check_inner_loop(
            LoopInfo(loop, None, 0, []), split_config(dependence_hints=True)
        )
        assert not conservative.ok
        assert hinted.ok and hinted.dep_distance_bound == 8


class TestIfConversion:
    def test_convertible(self):
        fn = _fn(
            "int f(int n, int a[]) { int m = 0;"
            " for (int i = 0; i < n; i++) { if (a[i] > m) { m = a[i]; } }"
            " return m; }"
        )
        loop = _loops(fn)[0]
        assert can_if_convert(loop.body)
        if_convert_block(loop.body)
        assert not any(isinstance(i, If) for i in walk(loop.body))
        assert any(isinstance(i, Select) for i in walk(loop.body))
        verify_function(fn)

    def test_store_in_arm_not_convertible(self):
        fn = _fn(
            "void f(int n, int a[]) {"
            " for (int i = 0; i < n; i++) { if (a[i] > 0) { a[i] = 0; } } }"
        )
        loop = _loops(fn)[0]
        assert not can_if_convert(loop.body)

    def test_conditional_max_vectorizes_end_to_end(self):
        out = _vec(
            "int f(int n, int a[]) { int m = -100000;"
            " for (int i = 0; i < n; i++) { if (a[i] > m) { m = a[i]; } }"
            " return m; }"
        )
        assert "vectorized" in list(_report(out).values())[0]


class TestTrioStructure:
    def test_three_loops_and_bounds(self):
        out = _vec(SFIR)
        kinds = [l.kind for l in _loops(out)]
        # Two versions (hinted + fall-back), each peel/vector/epilogue.
        assert kinds.count("peel") == 2
        assert kinds.count("vector") == 2
        assert kinds.count("epilogue") == 2
        assert sum(1 for i in walk(out.body) if isinstance(i, LoopBound)) >= 4

    def test_version_guard_bases_aligned(self):
        out = _vec(SFIR)
        guards = [i for i in walk(out.body) if isinstance(i, VersionGuard)]
        assert [g.kind for g in guards].count("bases_aligned") == 1

    def test_hinted_arm_has_chain_fallback_does_not(self):
        out = _vec(SFIR)
        ifop = next(i for i in walk(out.body) if isinstance(i, If))
        then_rl = [
            i for i in walk(ifop.then_block) if isinstance(i, RealignLoad)
        ]
        else_rl = [
            i for i in walk(ifop.else_block) if isinstance(i, RealignLoad)
        ]
        assert all(r.has_chain for r in then_rl)
        assert all(not r.has_chain for r in else_rl)
        assert all(r.mod == 0 for r in else_rl)
        assert all(r.mod == 32 for r in then_rl)

    def test_figure3_hints(self):
        out = _vec(SFIR)
        rts = [i for i in walk(out.body) if isinstance(i, GetRT)]
        assert (8, 32) in {(r.mis, r.mod) for r in rts}

    def test_reduction_idioms_present(self):
        out = _vec(SFIR)
        assert any(isinstance(i, InitReduc) for i in walk(out.body))
        reduces = [i for i in walk(out.body) if isinstance(i, Reduce)]
        assert all(r.kind == "plus" for r in reduces)

    def test_get_vf_symbolic(self):
        out = _vec(SAXPY)
        vfs = [i for i in walk(out.body) if isinstance(i, GetVF)]
        assert vfs and all(v.group is not None for v in vfs)

    def test_native_has_no_split_idioms(self):
        fn = _fn(SAXPY)
        out = vectorize_function(fn, native_config(SSE))
        assert not any(isinstance(i, (GetVF, LoopBound, VersionGuard))
                       for i in walk(out.body))
        assert _loops(out, "vector")

    def test_alias_guard_wraps_scalar_fallback(self):
        out = _vec(
            "void f(int n, __may_alias float a[], __may_alias float b[]) {"
            " for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0; } }"
        )
        guards = [i for i in walk(out.body) if isinstance(i, VersionGuard)]
        assert any(g.kind == "no_alias" for g in guards)
        scalar_clones = _loops(out, "scalar")
        assert len(scalar_clones) == 1

    def test_alignment_opts_off_single_version(self):
        out = _vec(SFIR, enable_alignment_opts=False)
        guards = [i for i in walk(out.body) if isinstance(i, VersionGuard)]
        assert not any(g.kind == "bases_aligned" for g in guards)
        rls = [i for i in walk(out.body) if isinstance(i, RealignLoad)]
        assert all(r.mod == 0 and not r.has_chain for r in rls)

    def test_realign_reuse_off(self):
        out = _vec(SFIR, enable_realign_reuse=False)
        rls = [i for i in walk(out.body) if isinstance(i, RealignLoad)]
        assert all(not r.has_chain for r in rls)

    def test_original_function_untouched(self):
        fn = _fn(SFIR)
        before = len(list(walk(fn.body)))
        vectorize_function(fn, split_config())
        assert len(list(walk(fn.body))) == before
        assert fn.form == "scalar"


class TestIdiomRecognition:
    def test_widen_mult(self):
        out = _vec(
            "void f(int n, char a[], short o[]) {"
            " for (int i = 0; i < n; i++) {"
            "   o[i] = (short)a[i] * (short)3; } }"
        )
        wms = [i for i in walk(out.body) if isinstance(i, WidenMult)]
        assert {w.half for w in wms} == {"lo", "hi"}

    def test_dot_product(self):
        out = _vec(
            "int f(int n, short a[], short b[]) { int s = 0;"
            " for (int i = 0; i < n; i++) { s += (int)a[i] * (int)b[i]; }"
            " return s; }"
        )
        assert any(isinstance(i, DotProduct) for i in walk(out.body))

    def test_strided_load_extract(self):
        out = _vec(
            "void f(int n, float a[], float o[]) {"
            " for (int i = 0; i < n; i++) { o[i] = a[2*i] + a[2*i+1]; } }"
        )
        extracts = [i for i in walk(out.body) if isinstance(i, Extract)]
        assert {e.offset for e in extracts} == {0, 1}
        assert all(e.stride == 2 for e in extracts)

    def test_strided_store_interleave(self):
        out = _vec(
            "void f(int n, float a[], float o[]) {"
            " for (int i = 0; i < n; i++) {"
            "   o[2*i] = a[i]; o[2*i+1] = a[i] * 0.5; } }"
        )
        ints = [i for i in walk(out.body) if isinstance(i, Interleave)]
        assert {i.half for i in ints} == {"lo", "hi"}

    def test_peel_for_misaligned_store(self):
        out = _vec(
            "void f(int n, float a[], float o[]) {"
            " for (int i = 0; i < n; i++) { o[i + 1] = a[i]; } }"
        )
        main = _loops(out, "vector")[0]
        assert main.annotations["valign"]["has_peel"]
        stores = [i for i in walk(out.body) if isinstance(i, VStore)]
        assert any(s.aligned_by_peel for s in stores)


class TestOuterLoop:
    SRC = """
void f(int n, float w[16][64], float x[16], float out[64]) {
    for (int i = 0; i < n; i++) {
        float s = 0;
        for (int j = 0; j < 16; j++) { s += w[j][i] * x[j]; }
        out[i] = s;
    }
}
"""

    def test_outer_vectorized(self):
        out = _vec(self.SRC)
        assert "outer" in list(_report(out).values())[0]
        # The inner loop survives inside the vector loop as kind "inner".
        assert _loops(out, "inner")

    def test_prefer_outer_guard(self):
        out = _vec(self.SRC)
        guards = [i for i in walk(out.body) if isinstance(i, VersionGuard)]
        assert any(g.kind == "prefer_outer" for g in guards)

    def test_strided_outer_access_rejected(self):
        # w[i][j]: the outer IV strides by the row length -> no outer vec.
        out = _vec(
            """
void f(int n, float w[64][16], float x[16], float out[64]) {
    for (int i = 0; i < n; i++) {
        float s = 0;
        for (int j = 0; j < 16; j++) { s += w[i][j] * x[j]; }
        out[i] = s;
    }
}
"""
        )
        # Inner loop is a plain unit-stride reduction: it vectorizes
        # instead, which is the right call.
        assert any("inner" in v for v in _report(out).values())


class TestSLP:
    SRC = """
void f(int n, short in[], short out[]) {
    for (int i = 0; i < n; i++) {
        out[4*i + 0] = (short)((in[4*i + 0] * 9) >> 4);
        out[4*i + 1] = (short)((in[4*i + 1] * 5) >> 4);
        out[4*i + 2] = (short)((in[4*i + 2] * 12) >> 4);
        out[4*i + 3] = (short)((in[4*i + 3] * 3) >> 4);
    }
}
"""

    def test_slp_detected(self):
        out = _vec(self.SRC)
        assert "slp" in list(_report(out).values())[0]

    def test_pattern_constant(self):
        out = _vec(self.SRC)
        pats = [i for i in walk(out.body) if isinstance(i, InitPattern)]
        assert any(p.pattern == (9, 5, 12, 3) for p in pats)

    def test_slp_guard(self):
        out = _vec(self.SRC)
        guards = [i for i in walk(out.body) if isinstance(i, VersionGuard)]
        slp = [g for g in guards if g.kind == "slp_group"]
        assert slp and slp[0].params["group"] == 4

    def test_stride2_group_uses_interleave_not_slp(self):
        # A width-2 group is within the strided-store machinery's reach, so
        # the inner-loop path wins even with non-isomorphic statements.
        out = _vec(
            """
void f(int n, short in[], short out[]) {
    for (int i = 0; i < n; i++) {
        out[2*i] = (short)(in[2*i] * 3);
        out[2*i + 1] = (short)(in[2*i + 1] >> 1);
    }
}
"""
        )
        assert "vectorized (inner)" in list(_report(out).values())[0]
        assert any(isinstance(i, Interleave) for i in walk(out.body))

    def test_non_isomorphic_group_rejected(self):
        out = _vec(
            """
void f(int n, short in[], short out[]) {
    for (int i = 0; i < n; i++) {
        out[3*i] = (short)(in[3*i] * 3);
        out[3*i + 1] = (short)(in[3*i + 1] >> 1);
        out[3*i + 2] = (short)(in[3*i + 2] * 3);
    }
}
"""
        )
        assert "rejected" in list(_report(out).values())[0]

    def test_slp_disabled(self):
        out = _vec(self.SRC, enable_slp=False)
        assert "rejected" in list(_report(out).values())[0]


class TestExpectedRejections:
    @pytest.mark.parametrize("name", ["lu_fp", "seidel_fp"])
    def test_paper_rejections(self, name):
        from repro.kernels import get_kernel

        kernel = get_kernel(name)
        inst = kernel.instantiate()
        fn = compile_source(inst.source)[inst.entry]
        out = vectorize_function(fn, split_config())
        assert not any(
            v.startswith("vectorized") for v in _report(out).values()
        )


class TestRecognizerGranularity:
    """Regression tests for a fuzz-found miscompile: widen_mult/dot_product
    recognition must not fire when the narrow type is finer than the loop's
    element granularity (min_elem), or lanes double-count."""

    def test_constant_product_reduction_not_dot(self):
        out = _vec(
            "int f(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) { s += 3 * 2; } return s; }"
        )
        assert not any(isinstance(i, DotProduct) for i in walk(out.body))

    def test_constant_product_reduction_value(self):
        import numpy as np

        from repro.jit import OptimizingJIT
        from repro.machine import VM
        from repro.targets import SSE, SCALAR

        out = _vec(
            "int f(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) { s += 3 * 2; } return s; }"
        )
        for target in (SSE, SCALAR):
            ck = OptimizingJIT().compile(out, target)
            res = VM(target).run(ck.mfunc, {"n": 8}, {})
            assert int(res.value) == 48, target.name

    def test_dot_still_fires_at_matching_granularity(self):
        out = _vec(
            "int f(int n, short a[], short b[]) { int s = 0;"
            " for (int i = 0; i < n; i++) { s += (int)a[i] * (int)b[i]; }"
            " return s; }"
        )
        assert any(isinstance(i, DotProduct) for i in walk(out.body))

    def test_widen_mult_not_fired_below_granularity(self):
        # Loop granularity is i32 (loads are i32); a 16-bit-narrowable
        # constant product inside must use plain vector multiplies.
        out = _vec(
            "void f(int n, int a[], int o[]) {"
            " for (int i = 0; i < n; i++) { o[i] = a[i] + 3 * 2; } }"
        )
        assert not any(isinstance(i, WidenMult) for i in walk(out.body))
