"""Diagnostics quality: frontend errors carry source positions and say
what went wrong — the difference between a toolchain and a script."""

import pytest

from repro.frontend import LexError, ParseError, SemaError, compile_source, parse, tokenize


class TestLexDiagnostics:
    def test_position_in_message(self):
        with pytest.raises(LexError, match=r"at 2:3"):
            tokenize("ab\n  $")

    def test_unterminated_comment_position(self):
        with pytest.raises(LexError, match=r"unterminated"):
            tokenize("x /* ...")


class TestParseDiagnostics:
    def test_expected_token_named(self):
        with pytest.raises(ParseError, match=r"expected ';'"):
            parse("void f() { int x = 1 }")

    def test_got_token_shown(self):
        with pytest.raises(ParseError, match=r"got '\}'"):
            parse("void f() { int x = 1 }")

    def test_loop_condition_variable(self):
        with pytest.raises(ParseError, match="loop condition must test 'i'"):
            parse("void f(int n) { for (int i = 0; j < n; i++) {} }")

    def test_loop_step_variable(self):
        with pytest.raises(ParseError, match="loop step must update 'i'"):
            parse("void f(int n) { for (int i = 0; i < n; j++) {} }")

    def test_may_alias_scalar_rejected(self):
        with pytest.raises(ParseError, match="__may_alias"):
            parse("void f(__may_alias int n) {}")


class TestSemaDiagnostics:
    def test_line_number_in_message(self):
        with pytest.raises(SemaError, match=r"line 3"):
            compile_source("void f() {\n  int x = 1;\n  int y = z;\n}")

    def test_identifier_named(self):
        with pytest.raises(SemaError, match="'z'"):
            compile_source("void f() { int y = z; }")

    def test_rank_mismatch_details(self):
        with pytest.raises(SemaError, match="rank 2"):
            compile_source("void f(float A[4][4]) { A[0] = 0.0; }")

    def test_unknown_builtin_named(self):
        # Unknown callables are caught at parse time (only builtins may be
        # called); the message names the identifier position.
        with pytest.raises((ParseError, SemaError)):
            compile_source("void f() { int x = foo(1); }")

    def test_unknown_array_extent(self):
        with pytest.raises(SemaError, match="unknown extent 'm'"):
            compile_source("void f(float a[m]) { a[0] = 1.0; }")
