"""Fail-soft pipeline tests: bytecode verification, the error taxonomy,
JIT degradation, and the hardened parallel harness.

The acceptance properties of the resilience work:

* round-trip ``verify(decode(encode(m)))`` passes for every kernel;
* *any* single-byte corruption of an encoded container is rejected with
  a classified error before the IR can reach the VM;
* a forced idiom-lowering failure degrades the loop group to scalar and
  the run still checks against numpy (never a silent wrong answer);
* the sweep scheduler quarantines crashed/stalled cells while the rest
  of the sweep completes, byte-identical for any job count on the
  fault-free subset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.bytecode import (
    MAGIC,
    BytecodeVerifyError,
    FormatError,
    decode_module,
    encode_function,
    encode_module,
    verify_module,
    verify_module_bytes,
)
from repro.errors import (
    FaultInjected,
    ReproError,
    classify,
    is_classified,
)
from repro.frontend import compile_source
from repro.harness.flows import FlowRunner
from repro.harness.parallel import Cell, CellError, run_cells
from repro.kernels import all_kernels, get_kernel
from repro.targets import get_target
from repro.vectorizer import split_config, vectorize_module

SMALL = 16


def _vec_module(kernel: str, size: int = SMALL):
    inst = get_kernel(kernel).instantiate(size)
    return vectorize_module(
        compile_source(inst.source, inst.name), split_config()
    )


# -- container + verifier -----------------------------------------------------


@pytest.mark.parametrize("kernel", [k.name for k in all_kernels()])
def test_roundtrip_verifies(kernel):
    """verify(decode(encode(m))) holds for every kernel's vectorized IR."""
    module = _vec_module(kernel)
    blob = encode_module(module)
    decoded = verify_module_bytes(blob)
    assert [f.name for f in decoded] == [f.name for f in module]


def test_container_magic_and_checksum_fields():
    blob = encode_module(_vec_module("saxpy_fp"))
    assert blob[:4] == MAGIC


@pytest.mark.parametrize("kernel", ["saxpy_fp", "sad_s8", "interp_s16"])
def test_every_single_byte_corruption_rejected(kernel):
    """Exhaustive over offsets: flipping any bit of any byte must raise a
    classified FormatError — the CRC-32 makes this unconditional."""
    blob = encode_module(_vec_module(kernel))
    for off in range(len(blob)):
        bad = bytearray(blob)
        bad[off] ^= 1 << (off % 8)
        with pytest.raises(FormatError):
            verify_module_bytes(bytes(bad))


def test_bad_magic_reports_expected_and_got():
    blob = bytearray(encode_module(_vec_module("saxpy_fp")))
    blob[:4] = b"XBC9"
    with pytest.raises(BytecodeVerifyError) as exc_info:
        decode_module(bytes(blob))
    exc = exc_info.value
    assert exc.kind == "bad-magic"
    assert exc.offset == 0
    assert repr(MAGIC) in str(exc) and repr(b"XBC9") in str(exc)


def test_checksum_mismatch_classified():
    blob = bytearray(encode_module(_vec_module("saxpy_fp")))
    blob[-1] ^= 0xFF
    with pytest.raises(BytecodeVerifyError) as exc_info:
        decode_module(bytes(blob))
    assert exc_info.value.kind == "bad-checksum"


def test_truncation_classified():
    blob = encode_module(_vec_module("saxpy_fp"))
    with pytest.raises(BytecodeVerifyError) as exc_info:
        decode_module(blob[:5])
    assert exc_info.value.kind == "truncated"


def test_trailing_garbage_classified():
    blob = encode_module(_vec_module("saxpy_fp"))
    # appending bytes invalidates the checksum first — which is the point:
    # nothing after the payload can sneak past the header.
    with pytest.raises(FormatError):
        decode_module(blob + b"\x00\x01")


def test_truncated_function_stream_positions_error():
    """Reader-level truncation surfaces as a positioned FormatError, not an
    IndexError from inside the reader."""
    fn = next(iter(_vec_module("saxpy_fp")))
    blob = encode_function(fn)
    from repro.bytecode import decode_function

    for cut in (1, len(blob) // 2, len(blob) - 1):
        with pytest.raises(FormatError) as exc_info:
            decode_function(blob[:cut])
        assert not isinstance(exc_info.value, IndexError)
        assert exc_info.value.offset is not None


def test_verify_module_rejects_duplicate_functions():
    fn = next(iter(_vec_module("saxpy_fp")))
    with pytest.raises(BytecodeVerifyError) as exc_info:
        verify_module([fn, fn])
    assert exc_info.value.kind == "bad-structure"


def test_verify_rejects_bad_idiom_kind():
    from repro.ir import Reduce, walk

    module = _vec_module("sfir_fp")
    fn = next(iter(module))
    reduces = [i for i in walk(fn.body) if isinstance(i, Reduce)]
    assert reduces, "sfir_fp must contain a reduction idiom"
    reduces[0].kind = "frobnicate"
    with pytest.raises(BytecodeVerifyError) as exc_info:
        verify_module(module)
    assert exc_info.value.kind == "bad-idiom"


# -- error taxonomy -----------------------------------------------------------


def test_all_catalogue_errors_are_repro_errors():
    import repro.errors as errors

    for name in errors._HOMES:
        cls = getattr(errors, name)
        assert issubclass(cls, ReproError), name


def test_classify_tags():
    from repro.machine.vm import VMError

    assert classify(VMError("x")) == "VMError"
    assert classify(TypeError("x")) == "unclassified:TypeError"
    assert is_classified(VMError("x"))
    assert not is_classified(TypeError("x"))
    injected = faults.injected_vm_fault_cls()("boom")
    assert isinstance(injected, VMError)
    assert isinstance(injected, FaultInjected)
    assert classify(injected) == "VMError[injected]"


def test_classify_on_exception_chains():
    """`raise X from Y` classifies as X: the chain's head is what the
    caller must route on, the __cause__ is post-mortem context."""
    from repro.machine.vm import VMError
    from repro.service.cache import CacheError

    def chained(head, cause):
        try:
            try:
                raise cause
            except type(cause) as c:
                raise head from c
        except type(head) as exc:
            return exc

    # classified from classified: head wins, cause preserved.
    exc = chained(CacheError("io", "entry unreadable"), VMError("trap"))
    assert classify(exc) == "CacheError"
    assert isinstance(exc.__cause__, VMError)

    # classified from unclassified (OSError wrapped at the cache layer).
    exc = chained(CacheError("io", "disk"), OSError(5, "I/O error"))
    assert classify(exc) == "CacheError"

    # unclassified head stays unclassified even over a classified cause:
    # the wrap itself is the bug the chaos suite must flag.
    exc = chained(TypeError("bad wrap"), VMError("trap"))
    assert classify(exc) == "unclassified:TypeError"
    assert not is_classified(exc)

    # implicit chains (__context__, no `from`) classify by head too.
    try:
        try:
            raise VMError("trap")
        except VMError:
            raise CacheError("bad-payload", "while handling")
    except CacheError as exc2:
        assert classify(exc2) == "CacheError"
        assert isinstance(exc2.__context__, VMError)


def test_classify_injected_hybrids_keep_catalogue_tags():
    """Anonymous injected hybrids report the nearest catalogue ancestor,
    so the tag space stays closed over the errors table."""
    import repro.errors as errors
    from repro.service.cache import CacheError, _InjectedTornWrite

    torn = _InjectedTornWrite("torn-write", "injected crash")
    assert isinstance(torn, CacheError)
    assert isinstance(torn, FaultInjected)
    assert classify(torn) == "CacheError[injected]"

    vm_injected = faults.injected_vm_fault_cls()("boom")
    for exc in (torn, vm_injected):
        tag = classify(exc)
        base = tag.removesuffix("[injected]")
        assert base in errors._HOMES, tag


def test_classify_non_repro_error_in_injected_path():
    """A non-ReproError raised inside an injected-fault path is still
    unclassified — injection must never launder anonymous failures."""

    class Glitch(RuntimeError, FaultInjected):
        pass

    exc = Glitch("anonymous injected failure")
    assert isinstance(exc, FaultInjected)
    assert not is_classified(exc)
    assert classify(exc) == "unclassified:Glitch"


def test_classify_tag_space_is_closed():
    """Every catalogue class (and any subclass) classifies to a name in
    the _HOMES table — reports can switch on a finite tag set."""
    import repro.errors as errors

    for name in errors._HOMES:
        cls = getattr(errors, name)
        exc = cls.__new__(cls)  # skip __init__: signatures vary
        assert classify(exc) in errors._HOMES

        anon = type("Anon" + name, (cls,), {}).__new__(
            type("Anon" + name, (cls,), {})
        )
        assert classify(anon) in errors._HOMES


def test_classify_tag_space_includes_gateway_taxonomy():
    """Deliberate tag-space expansion (PR 7): the network front door
    added exactly two classified failure modes — a wire-level failure
    (``NetworkError``) and a drain-time rejection (``DrainError``).
    Pinning them here keeps the tag space *closed on purpose*: adding a
    gateway error class without updating this test (and the taxonomy
    table) should fail loudly."""
    import repro.errors as errors
    from repro.service.gateway import DrainError
    from repro.service.wire import NetworkError

    assert errors._HOMES["NetworkError"] == "repro.service.wire"
    assert errors._HOMES["DrainError"] == "repro.service.gateway"
    assert errors.NetworkError is NetworkError
    assert errors.DrainError is DrainError
    assert classify(NetworkError("bad-crc", "torn")) == "NetworkError"
    assert classify(DrainError("draining")) == "DrainError"
    # Both are catalogue citizens: ReproError subclasses, lazily
    # re-exported, and listed in the module's public surface.
    assert issubclass(NetworkError, ReproError)
    assert issubclass(DrainError, ReproError)
    assert "NetworkError" in errors.__all__
    assert "DrainError" in errors.__all__


def test_classify_tag_space_includes_fleet_taxonomy():
    """Deliberate tag-space expansion (PR 8): the supervisor tier adds
    exactly one classified failure mode — a fleet-capacity failure
    (``FleetError``: a parked replica, a spawn that never announced,
    zero live capacity).  Pinned so the tag space stays closed on
    purpose."""
    import repro.errors as errors
    from repro.service.supervisor import FleetError

    assert errors._HOMES["FleetError"] == "repro.service.supervisor"
    assert errors.FleetError is FleetError
    exc = FleetError("parked", "replica 0 parked: 5 restarts within 30s")
    assert classify(exc) == "FleetError"
    assert exc.kind == "parked"
    assert "[parked]" in str(exc)
    assert issubclass(FleetError, ReproError)
    assert "FleetError" in errors.__all__


def test_check_error_is_assertion_error():
    """Back-compat: harness check failures still satisfy AssertionError."""
    from repro.harness.flows import CheckError

    assert issubclass(CheckError, AssertionError)
    assert issubclass(CheckError, ReproError)


# -- JIT degradation ----------------------------------------------------------


def test_clean_compile_not_degraded():
    runner = FlowRunner()
    inst = get_kernel("saxpy_fp").instantiate(SMALL)
    ck = runner.compiled(inst, "split_vec_gcc4cli", get_target("sse"))
    assert not ck.degraded
    assert ck.events == []
    assert ck.stats["degraded_groups"] == 0


@pytest.mark.parametrize("flow", ["split_vec_mono", "split_vec_gcc4cli"])
def test_lowering_fault_degrades_but_stays_correct(flow):
    plan = faults.FaultPlan([faults.LoweringFault(idiom="*")])
    with faults.injected(plan):
        runner = FlowRunner()
        inst = get_kernel("saxpy_fp").instantiate(SMALL)
        result = runner.run(inst, flow, "sse")
        ck = runner.compiled(inst, flow, get_target("sse"))
    assert result.checked
    assert ck.degraded
    assert all(e.cause == "fault-injected" for e in ck.events)
    assert ck.stats["loops_vectorized"] == 0


def test_lowering_fault_matches_specific_idiom():
    plan = faults.FaultPlan([faults.LoweringFault(idiom="realign_load")])
    with faults.injected(plan):
        runner = FlowRunner()
        inst = get_kernel("saxpy_fp").instantiate(SMALL)
        result = runner.run(inst, "split_vec_gcc4cli", "sse")
        ck = runner.compiled(inst, "split_vec_gcc4cli", get_target("sse"))
    assert result.checked and ck.degraded
    assert "realign_load" in ck.events[0].detail


def test_materialize_fault_triggers_forced_scalar_retry():
    plan = faults.FaultPlan([faults.MaterializeFault()])
    with faults.injected(plan):
        runner = FlowRunner()
        inst = get_kernel("dscal_fp").instantiate(SMALL)
        result = runner.run(inst, "split_vec_gcc4cli", "sse")
        ck = runner.compiled(inst, "split_vec_gcc4cli", get_target("sse"))
    assert result.checked
    assert ck.degraded
    assert ck.events[0].cause == "forced-scalar"
    assert ck.events[0].group is None


def test_degraded_run_costs_more_cycles():
    """Scalar fallback is slower — that's what makes it a degradation."""
    inst = get_kernel("saxpy_fp").instantiate(64)
    clean = FlowRunner().run(inst, "split_vec_gcc4cli", "sse")
    with faults.injected(faults.FaultPlan([faults.LoweringFault()])):
        degraded = FlowRunner().run(inst, "split_vec_gcc4cli", "sse")
    assert degraded.checked and clean.checked
    assert degraded.cycles > clean.cycles


def test_degradation_events_reach_flow_stats():
    with faults.injected(faults.FaultPlan([faults.LoweringFault()])):
        runner = FlowRunner()
        inst = get_kernel("saxpy_fp").instantiate(SMALL)
        result = runner.run(inst, "split_vec_gcc4cli", "sse")
    assert result.stats["degraded_groups"] >= 1


def test_native_scalar_target_is_not_degradation():
    """Scalar targets never vectorize; that is policy, not failure."""
    runner = FlowRunner()
    inst = get_kernel("saxpy_fp").instantiate(SMALL)
    ck = runner.compiled(inst, "split_vec_gcc4cli", get_target("scalar"))
    assert not ck.degraded


# -- hardened parallel harness ------------------------------------------------

CELLS = [
    Cell("saxpy_fp", "split_vec_gcc4cli", "sse", SMALL),
    Cell("dscal_fp", "split_vec_gcc4cli", "sse", SMALL),
    Cell("saxpy_fp", "split_scalar_mono", "sse", SMALL),
    Cell("interp_fp", "split_vec_mono", "altivec", SMALL),
]


def _comparable(r):
    v = r.result.value
    return (r.cell, r.result.cycles,
            float(v) if v is not None else None,
            r.result.bytecode_bytes)


def test_run_cells_deterministic_across_jobs():
    serial = run_cells(CELLS, jobs=1)
    parallel = run_cells(CELLS, jobs=3)
    assert [_comparable(r) for r in serial] == \
        [_comparable(r) for r in parallel]
    assert all(r.ok and r.attempts == 1 for r in parallel)


def test_serial_sweep_quarantines_classified_failures():
    cells = CELLS + [Cell("saxpy_fp", "split_vec_gcc4cli", "nope", SMALL)]
    results = run_cells(cells, jobs=1)
    assert len(results) == len(cells)
    bad = [r for r in results if not r.ok]
    assert len(bad) == 1
    assert bad[0].cell.target == "nope"
    assert bad[0].error_kind and "unclassified" not in bad[0].error_kind


def test_worker_crash_quarantines_only_faulty_cell():
    plan = faults.FaultPlan([faults.WorkerCrash(kernel="dscal_fp")])
    results = run_cells(CELLS, jobs=2, fault_plan=plan, retries=1)
    assert len(results) == len(CELLS)
    bad = [r for r in results if not r.ok]
    assert [r.cell.kernel for r in bad] == ["dscal_fp"]
    assert bad[0].error_kind == "CellError[worker-crash]"
    assert bad[0].attempts == 2  # first try + one retry
    # the fault-free subset matches a serial fault-free run
    clean = {(r.cell): _comparable(r) for r in run_cells(CELLS, jobs=1)}
    for r in results:
        if r.ok:
            assert _comparable(r) == clean[r.cell]


def test_worker_stall_hits_timeout_quarantine():
    plan = faults.FaultPlan([faults.WorkerStall(kernel="interp_fp",
                                                seconds=60.0)])
    results = run_cells(CELLS, jobs=2, fault_plan=plan,
                        timeout=5.0, retries=0)
    assert len(results) == len(CELLS)
    bad = [r for r in results if not r.ok]
    assert [r.cell.kernel for r in bad] == ["interp_fp"]
    assert bad[0].error_kind == "CellError[timeout]"


def test_worker_fault_plan_reaches_workers():
    """Non-crash faults (lowering) installed in workers degrade cells the
    same way they would serially."""
    plan = faults.FaultPlan([faults.LoweringFault()])
    results = run_cells(CELLS[:2], jobs=2, fault_plan=plan)
    assert all(r.ok for r in results)
    serial = run_cells(CELLS[:2], jobs=1, fault_plan=plan)
    assert [r.result.cycles for r in results] == \
        [r.result.cycles for r in serial]


def test_cell_error_is_classified():
    err = CellError("timeout", "cell overran")
    assert is_classified(err)
    assert err.kind == "timeout"
