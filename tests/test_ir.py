"""Tests for the IR core: builder, structure, verifier, printer, cloning."""

import pytest

from repro.ir import (
    BOOL,
    F32,
    I32,
    Argument,
    ArrayRef,
    BinOp,
    Block,
    Cmp,
    Const,
    ForLoop,
    Function,
    IRBuilder,
    If,
    Load,
    Return,
    Store,
    UnOp,
    VerificationError,
    Yield,
    clone_function,
    clone_instr,
    print_function,
    uses_in,
    verify_function,
    walk,
    walk_blocks,
)


def sum_function() -> Function:
    n = Argument("n", I32)
    a = ArrayRef("a", F32, (n,))
    fn = Function("sum", [n], [a], F32)
    b = IRBuilder(fn.body)
    loop = b.for_loop(b.const(0), n, 1, [b.const(0.0, F32)], iv_name="i")
    b.push(loop.body)
    x = b.load(a, [loop.iv])
    s = b.add(loop.carried[0], x)
    b.pop()
    b.end_loop(loop, [s])
    b.ret(loop.results[0])
    return fn


class TestBuilder:
    def test_sum_function_verifies(self):
        verify_function(sum_function())

    def test_binop_type_inference(self):
        a = Const(1, I32)
        assert BinOp("add", a, a).type is I32

    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("plus", Const(1, I32), Const(1, I32))

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValueError):
            UnOp("negate", Const(1, I32))

    def test_cmp_produces_bool(self):
        assert Cmp("lt", Const(1, I32), Const(2, I32)).type is BOOL

    def test_load_rank_check(self):
        a = ArrayRef("a", F32, (8, 8))
        with pytest.raises(ValueError):
            Load(a, [Const(0, I32)])

    def test_store_rank_check(self):
        a = ArrayRef("a", F32, (8,))
        with pytest.raises(ValueError):
            Store(a, [Const(0, I32), Const(0, I32)], Const(0.0, F32))

    def test_symbolic_inner_extent_rejected(self):
        n = Argument("n", I32)
        with pytest.raises(ValueError):
            ArrayRef("a", F32, (4, n))

    def test_end_loop_arity_check(self):
        fn = sum_function()
        b = IRBuilder(fn.body)
        loop = b.for_loop(b.const(0), b.const(4), 1, [])
        with pytest.raises(ValueError):
            b.end_loop(loop, [Const(0, I32)])


class TestStructure:
    def test_loop_carried_blockargs(self):
        fn = sum_function()
        loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
        assert loop.iv.index == 0
        assert loop.carried[0].type is F32
        assert loop.results[0].type is F32

    def test_walk_counts(self):
        fn = sum_function()
        kinds = [type(i).__name__ for i in walk(fn.body)]
        assert kinds.count("ForLoop") == 1
        assert kinds.count("Load") == 1
        assert kinds.count("Yield") == 1
        assert kinds.count("Return") == 1

    def test_walk_blocks(self):
        fn = sum_function()
        assert len(list(walk_blocks(fn.body))) == 2

    def test_uses_in(self):
        fn = sum_function()
        loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
        uses = uses_in(fn.body)
        assert loop.iv in uses  # used by the load

    def test_terminator(self):
        fn = sum_function()
        loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
        assert isinstance(loop.body.terminator, Yield)
        assert isinstance(fn.body.terminator, Return)


class TestClone:
    def test_clone_loop_is_deep(self):
        fn = sum_function()
        loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
        vmap = {}
        copy = clone_instr(loop, vmap)
        assert copy is not loop
        assert copy.body is not loop.body
        assert copy.iv is not loop.iv
        assert len(copy.body.instrs) == len(loop.body.instrs)
        # Uses inside the clone reference the clone's block args.
        load = next(i for i in walk(copy.body) if isinstance(i, Load))
        assert load.indices[0] is copy.iv

    def test_clone_remaps_results(self):
        fn = sum_function()
        loop = next(i for i in walk(fn.body) if isinstance(i, ForLoop))
        vmap = {}
        copy = clone_instr(loop, vmap)
        assert vmap[loop.results[0]] is copy.results[0]

    def test_clone_function_independent(self):
        fn = sum_function()
        copy = clone_function(fn)
        verify_function(copy)
        copy.body.instrs.clear()
        assert fn.body.instrs  # original untouched


class TestVerifier:
    def test_use_before_def(self):
        n = Argument("n", I32)
        fn = Function("bad", [n], [], None)
        b = IRBuilder(fn.body)
        dangling = BinOp("add", n, n)  # never emitted
        b.emit(BinOp("add", dangling, n))
        b.ret(None)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_inner_value_escapes_loop(self):
        n = Argument("n", I32)
        fn = Function("bad", [n], [], I32)
        b = IRBuilder(fn.body)
        loop = b.for_loop(b.const(0), n, 1, [])
        b.push(loop.body)
        inner = b.add(loop.iv, b.const(1))
        b.pop()
        b.end_loop(loop, [])
        b.ret(inner)  # not visible outside the loop
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_missing_yield(self):
        n = Argument("n", I32)
        fn = Function("bad", [n], [], None)
        b = IRBuilder(fn.body)
        b.for_loop(b.const(0), n, 1, [])  # body left without yield
        b.ret(None)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_yield_type_mismatch(self):
        n = Argument("n", I32)
        fn = Function("bad", [n], [], None)
        b = IRBuilder(fn.body)
        loop = b.for_loop(b.const(0), n, 1, [Const(0, I32)])
        loop.body.append(Yield([Const(0.0, F32)]))
        b.ret(None)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_operand_type_mismatch(self):
        fn = Function("bad", [], [], None)
        b = IRBuilder(fn.body)
        bad = BinOp("add", Const(1, I32), Const(1, I32))
        bad._operands[1] = Const(1.0, F32)
        b.emit(bad)
        b.ret(None)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_missing_return(self):
        fn = Function("bad", [], [], I32)
        with pytest.raises(VerificationError):
            verify_function(fn)


class TestPrinter:
    def test_prints_signature_and_loop(self):
        text = print_function(sum_function())
        assert "func sum(" in text
        assert "for " in text
        assert "reduc" not in text  # scalar form
        assert "return" in text

    def test_stable_under_clone(self):
        fn = sum_function()
        a = print_function(fn)
        b = print_function(clone_function(fn))
        # Same shape (names may renumber identically from fresh namers).
        assert len(a.splitlines()) == len(b.splitlines())
