"""Verifier coverage for the split-layer idioms and If regions."""

import pytest

from repro.ir import (
    F32,
    I16,
    I32,
    Argument,
    ArrayRef,
    Const,
    DotProduct,
    Function,
    IRBuilder,
    If,
    InitUniform,
    RealignLoad,
    VStore,
    VectorType,
    VerificationError,
    Yield,
    verify_function,
)


def _fn_with(builder_fn) -> Function:
    n = Argument("n", I32)
    a = ArrayRef("a", F32, (n,))
    fn = Function("t", [n], [a], None)
    b = IRBuilder(fn.body)
    builder_fn(b, n, a)
    b.ret(None)
    return fn


class TestIdiomChecks:
    def test_dot_product_accumulator_must_be_widened(self):
        def build(b, n, a):
            v16 = b.emit(InitUniform(VectorType(I16), Const(1, I16)))
            acc16 = b.emit(InitUniform(VectorType(I16), Const(0, I16)))
            bad = DotProduct(v16, v16, acc16)  # acc must be i32
            b.emit(bad)
            b.emit(VStore(a, Const(0, I32), bad, 0, 0))

        with pytest.raises(VerificationError):
            verify_function(_fn_with(build))

    def test_realign_mis_within_mod(self):
        def build(b, n, a):
            rl = RealignLoad(
                VectorType(F32), a, Const(0, I32), None, None, None,
                mis=40, mod=32,  # mis >= mod is malformed
            )
            b.emit(rl)
            b.emit(VStore(a, Const(0, I32), rl, 0, 0))

        with pytest.raises(VerificationError):
            verify_function(_fn_with(build))

    def test_realign_chain_all_or_nothing(self):
        v = InitUniform(VectorType(F32), Const(0.0, F32))
        a = ArrayRef("a", F32, (8,))
        with pytest.raises(ValueError):
            RealignLoad(VectorType(F32), a, Const(0, I32), v, None, None, 0, 0)

    def test_if_arm_yield_arity(self):
        def build(b, n, a):
            cond = b.cmp("gt", n, Const(0, I32))
            ifop = If(cond, [I32])
            ifop.then_block.append(Yield([Const(1, I32)]))
            ifop.else_block.append(Yield([]))  # wrong arity
            b.emit(ifop)

        with pytest.raises(VerificationError):
            verify_function(_fn_with(build))

    def test_valid_idiom_function_passes(self):
        def build(b, n, a):
            rl = RealignLoad(
                VectorType(F32), a, Const(0, I32), None, None, None, 8, 32
            )
            b.emit(rl)
            b.emit(VStore(a, Const(0, I32), rl, 0, 32))

        verify_function(_fn_with(build))
