"""Documentation quality gates: every public module, class, and function
carries a docstring, and the README's promises match the code."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO = pathlib.Path(repro.__file__).resolve().parent.parent.parent


def _public_modules():
    out = []
    pkg_path = pathlib.Path(repro.__file__).parent
    for info in pkgutil.walk_packages([str(pkg_path)], prefix="repro."):
        if "__main__" in info.name:
            continue
        out.append(info.name)
    return out


@pytest.mark.parametrize("module_name", _public_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    names = getattr(module, "__all__", None)
    if not names:
        return
    undocumented = []
    for name in names:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__ != module_name:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


class TestReadmePromises:
    def test_readme_exists_with_sections(self):
        text = (REPO / "README.md").read_text()
        for heading in ("## Install", "## Quickstart", "## Architecture",
                        "## Tests and benchmarks"):
            assert heading in text

    def test_design_and_experiments_exist(self):
        assert (REPO / "DESIGN.md").exists()
        assert (REPO / "EXPERIMENTS.md").exists()

    def test_examples_listed_in_readme_exist(self):
        text = (REPO / "README.md").read_text()
        for name in ("quickstart.py", "run_everywhere.py",
                     "audio_pipeline.py", "image_dissolve.py",
                     "paper_figures.py"):
            assert name in text
            assert (REPO / "examples" / name).exists()

    def test_docs_referenced_exist(self):
        for doc in ("architecture.md", "idioms.md", "bytecode_format.md",
                    "performance_model.md", "kernels.md", "vm_engines.md"):
            assert (REPO / "docs" / doc).exists()

    def test_design_bench_targets_exist(self):
        """Every bench file named in DESIGN.md's experiment index exists."""
        import re

        text = (REPO / "DESIGN.md").read_text()
        for match in re.finditer(r"benchmarks/(\w+\.py)", text):
            assert (REPO / "benchmarks" / match.group(1)).exists(), match.group(0)
