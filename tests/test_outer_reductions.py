"""Tests for outer-loop vectorization with outer-carried reductions."""

import numpy as np
import pytest

from repro import (
    ArrayBuffer,
    MonoJIT,
    OptimizingJIT,
    VM,
    compile_source,
    get_target,
    split_config,
    vectorize_function,
)
from repro.bytecode import decode_function, encode_function
from repro.ir import F32, I32, InitReduc, Reduce, verify_function, walk

FRO = """
float fro(int n, float w[16][64]) {
    float total = 0;
    for (int i = 0; i < n; i++) {
        float s = 0;
        for (int j = 0; j < 16; j++) { s += w[j][i] * w[j][i]; }
        total += s;
    }
    return total;
}
"""


def _vec(src, name):
    fn = compile_source(src)[name]
    out = vectorize_function(fn, split_config())
    verify_function(out)
    return out


class TestOuterReductions:
    def test_outer_strategy_chosen(self):
        out = _vec(FRO, "fro")
        report = out.annotations["vect_report"]
        assert any(v.startswith("vectorized (outer)") for v in report.values())

    def test_reduction_idioms_emitted(self):
        out = _vec(FRO, "fro")
        assert any(isinstance(i, InitReduc) for i in walk(out.body))
        assert any(isinstance(i, Reduce) for i in walk(out.body))

    @pytest.mark.parametrize("n", [1, 7, 60, 64])
    @pytest.mark.parametrize("target_name", ["sse", "altivec", "neon", "scalar"])
    def test_correct_everywhere(self, n, target_name):
        out = decode_function(encode_function(_vec(FRO, "fro")))
        target = get_target(target_name)
        rng = np.random.default_rng(n)
        w = rng.standard_normal((16, 64)).astype(np.float32)
        expect = float((w[:, :n].astype(np.float64) ** 2).sum())
        for jit in (MonoJIT(), OptimizingJIT()):
            ck = jit.compile(out, target)
            bufs = {"w": ArrayBuffer(F32, 16 * 64, data=w)}
            res = VM(target).run(ck.mfunc, {"n": n}, bufs)
            assert float(res.value) == pytest.approx(expect, rel=1e-3)

    def test_outer_min_reduction(self):
        src = """
float colmin(int n, float w[8][32]) {
    float best = 1000000.0;
    for (int i = 0; i < n; i++) {
        float s = 0;
        for (int j = 0; j < 8; j++) { s += w[j][i]; }
        best = min(best, s);
    }
    return best;
}
"""
        out = _vec(src, "colmin")
        assert any(
            v.startswith("vectorized (outer)")
            for v in out.annotations["vect_report"].values()
        )
        rng = np.random.default_rng(1)
        w = rng.standard_normal((8, 32)).astype(np.float32)
        expect = float(w[:, :30].sum(axis=0, dtype=np.float64).min())
        target = get_target("sse")
        ck = OptimizingJIT().compile(out, target)
        bufs = {"w": ArrayBuffer(F32, 8 * 32, data=w)}
        res = VM(target).run(ck.mfunc, {"n": 30}, bufs)
        assert float(res.value) == pytest.approx(expect, rel=1e-4)

    def test_non_reduction_outer_recurrence_rejected(self):
        src = """
float bad(int n, float w[8][32]) {
    float acc = 1.0;
    for (int i = 0; i < n; i++) {
        float s = 0;
        for (int j = 0; j < 8; j++) { s += w[j][i]; }
        acc = s - acc;
    }
    return acc;
}
"""
        out = _vec(src, "bad")
        assert not any(
            v.startswith("vectorized")
            for v in out.annotations["vect_report"].values()
        )
