"""Tests for the online stage: materialization decisions per target
(§III-C's four translation schemes), guard folding policies, scalarization
via loop_bound, library fallback, and the JIT personalities."""

import numpy as np
import pytest

from repro.frontend import compile_source
from repro.jit import MaterializeOptions, MonoJIT, NativeBackend, OptimizingJIT, materialize
from repro.ir import F32, clone_function, verify_function, walk
from repro.machine import VM, ArrayBuffer
from repro.targets import ALTIVEC, AVX, NEON, SCALAR, SSE
from repro.vectorizer import split_config, vectorize_function

SFIR = """
float sfir(int n, float a[], float c[]) {
    float s = 0;
    for (int i = 0; i < n; i++) { s += a[i + 2] * c[i]; }
    return s;
}
"""

MMM = """
void mmm(float A[8][8], float B[8][8], float C[8][8]) {
    for (int i = 0; i < 8; i++) {
        for (int k = 0; k < 8; k++) {
            for (int j = 0; j < 8; j++) {
                C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }
        }
    }
}
"""


def _split(src, name):
    return vectorize_function(compile_source(src)[name], split_config())


def _ops(ck):
    counts = {}
    for ins in ck.mfunc.instrs:
        counts[ins.op] = counts.get(ins.op, 0) + 1
    return counts


class TestTranslationSchemes:
    """§III-C a-d: one bytecode, four lowering schemes for realign_load."""

    @pytest.fixture(scope="class")
    def bytecode(self):
        return _split(SFIR, "sfir")

    def test_altivec_explicit_realignment(self, bytecode):
        ops = _ops(OptimizingJIT().compile(bytecode, ALTIVEC))
        assert ops.get("vperm", 0) >= 1
        assert ops.get("lvsr", 0) >= 1
        assert ops.get("vload_fa", 0) >= 2
        assert "vload_u" not in ops

    def test_sse_implicit_misaligned(self, bytecode):
        ops = _ops(OptimizingJIT().compile(bytecode, SSE))
        # a[i+2] is misaligned for VS=16 -> movdqu; chain idioms dropped.
        assert ops.get("vload_u", 0) >= 1
        assert "vperm" not in ops and "lvsr" not in ops

    def test_neon_aligned(self, bytecode):
        # mis=8 is 0 mod VS=8: the same hint yields *aligned* loads.
        ops = _ops(OptimizingJIT().compile(bytecode, NEON))
        assert ops.get("vload_a", 0) >= 1
        assert "vperm" not in ops

    def test_scalar_collapses_to_one_loop(self, bytecode):
        ck = OptimizingJIT().compile(bytecode, SCALAR)
        ops = _ops(ck)
        assert not any(op.startswith("v") for op in ops)
        # One scalar loop: exactly one backward branch.
        labels = ck.mfunc.labels()
        back = [
            ins for i, ins in enumerate(ck.mfunc.instrs)
            if ins.op == "br" and labels[ins.imm["label"]] < i
        ]
        assert len(back) == 1

    def test_scalar_cost_matches_scalar_bytecode(self, bytecode):
        """Low overhead for scalar execution (one of the four sub-goals)."""
        scalar_ir = compile_source(SFIR)["sfir"]
        n = 77
        rng = np.random.default_rng(0)
        a = rng.standard_normal(n + 4).astype(np.float32)
        c = rng.standard_normal(n).astype(np.float32)

        def run(ir):
            ck = OptimizingJIT().compile(ir, SCALAR)
            bufs = {
                "a": ArrayBuffer(F32, n + 4, data=a),
                "c": ArrayBuffer(F32, n, data=c),
            }
            return VM(SCALAR).run(ck.mfunc, {"n": n}, bufs)

        vec_res = run(bytecode)
        scal_res = run(scalar_ir)
        assert float(vec_res.value) == pytest.approx(float(scal_res.value), rel=1e-5)
        assert vec_res.cycles <= scal_res.cycles * 1.05


class TestScalarization:
    def test_doubles_scalarize_on_altivec(self):
        src = """
void dscal(int n, double alpha, double x[]) {
    for (int i = 0; i < n; i++) { x[i] = alpha * x[i]; }
}
"""
        bytecode = _split(src, "dscal")
        ck = OptimizingJIT().compile(bytecode, ALTIVEC)
        assert ck.stats["loops_scalarized"] >= 1
        assert ck.stats["loops_vectorized"] == 0
        n = 33
        x = np.arange(n, dtype=np.float64)
        from repro.ir import F64

        bufs = {"x": ArrayBuffer(F64, n, data=x)}
        VM(ALTIVEC).run(ck.mfunc, {"n": n, "alpha": 1.5}, bufs)
        assert np.allclose(bufs["x"].read_elements(), 1.5 * x)

    def test_doubles_vectorize_on_sse(self):
        src = """
void dscal(int n, double alpha, double x[]) {
    for (int i = 0; i < n; i++) { x[i] = alpha * x[i]; }
}
"""
        ck = OptimizingJIT().compile(_split(src, "dscal"), SSE)
        assert ck.stats["loops_vectorized"] >= 1


class TestLibraryFallback:
    def test_neon_widen_mult_via_library(self):
        src = """
void widen(int n, char a[], short o[]) {
    for (int i = 0; i < n; i++) { o[i] = (short)a[i] * (short)3; }
}
"""
        bytecode = _split(src, "widen")
        ck = OptimizingJIT().compile(bytecode, NEON)
        ops = _ops(ck)
        assert ops.get("call_lib", 0) >= 2  # hi and lo halves
        # And it still computes the right thing.
        from repro.ir import I8, I16

        n = 37
        a = np.arange(-18, 19, dtype=np.int8)
        bufs = {"a": ArrayBuffer(I8, n, data=a), "o": ArrayBuffer(I16, n)}
        VM(NEON).run(ck.mfunc, {"n": n}, bufs)
        assert np.array_equal(
            bufs["o"].read_elements(), a.astype(np.int16) * 3
        )

    def test_sse_widen_mult_native_instruction(self):
        src = """
void widen(int n, char a[], short o[]) {
    for (int i = 0; i < n; i++) { o[i] = (short)a[i] * (short)3; }
}
"""
        ck = OptimizingJIT().compile(_split(src, "widen"), SSE)
        ops = _ops(ck)
        assert ops.get("vwidenmul", 0) >= 2
        assert "call_lib" not in ops


class TestGuardFolding:
    def test_optimizing_jit_folds_all_guards(self):
        ck = OptimizingJIT().compile(_split(MMM, "mmm"), SSE)
        assert ck.stats["guards_folded"] >= 1
        # After folding + collapse there are no runtime branches on guards.
        assert _ops(ck).get("arr_overlap", 0) == 0

    def test_mono_keeps_nested_guard_at_runtime(self):
        """The paper's MMM-on-Mono effect: the alignment guard inside the
        loop nest is evaluated per outer iteration."""
        bytecode = _split(MMM, "mmm")
        mono = MonoJIT().compile(bytecode, ALTIVEC)
        opt = OptimizingJIT().compile(bytecode, ALTIVEC)
        arrays = lambda: {
            k: ArrayBuffer(F32, 64, data=np.zeros(64, np.float32))
            for k in "ABC"
        }
        r_mono = VM(ALTIVEC).run(mono.mfunc, {}, arrays(), count_ops=True)
        r_opt = VM(ALTIVEC).run(opt.mfunc, {}, arrays(), count_ops=True)
        # Mono executes the guard's or-instruction every outer iteration.
        assert mono.stats["guards_runtime"] >= 1
        assert r_mono.op_counts.get("brfalse", 0) > r_opt.op_counts.get("brfalse", 0)

    def test_mono_folds_top_level_guard(self):
        src = """
void scale(int n, float x[]) {
    for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0; }
}
"""
        ck = MonoJIT().compile(_split(src, "scale"), SSE)
        # The loop guard sits at depth 0 -> folded even by Mono.
        assert ck.stats["guards_folded"] >= 1

    def test_alias_guard_is_runtime_check(self):
        src = """
void copy(int n, __may_alias float a[], __may_alias float b[]) {
    for (int i = 0; i < n; i++) { b[i] = a[i]; }
}
"""
        ck = OptimizingJIT().compile(_split(src, "copy"), SSE)
        assert _ops(ck).get("arr_overlap", 0) == 1

    def test_alias_guard_picks_scalar_on_overlap(self):
        src = """
void shift(int n, __may_alias float a[], __may_alias float b[]) {
    for (int i = 0; i < n; i++) { b[i] = a[i] + 1.0; }
}
"""
        ck = OptimizingJIT().compile(_split(src, "shift"), SSE)
        base = ArrayBuffer(F32, 40, data=np.zeros(40, np.float32))
        overlapping = base.alias_view(F32, 32, byte_offset=16)
        res = VM(SSE).run(
            ck.mfunc, {"n": 24},
            {"a": base, "b": overlapping},
            count_ops=True,
        )
        # The vector path must not run; scalar loop handles the overlap
        # with exact C semantics.
        assert res.op_counts.get("vstore_a", 0) == 0
        assert res.op_counts.get("vstore_u", 0) == 0
        expect = np.zeros(40, np.float32)
        for i in range(24):
            expect[4 + i] = expect[i] + 1.0
        assert np.allclose(base.read_elements(), expect)


class TestRuntimeAlignment:
    def test_unaligned_runtime_uses_fallback_version(self):
        """With a runtime that does NOT align bases, the bases_aligned
        guard becomes a real check and the hint-less version runs."""
        bytecode = _split(SFIR, "sfir")
        jit = OptimizingJIT(runtime_aligns=False)
        ck = jit.compile(bytecode, SSE)
        assert _ops(ck).get("arr_aligned", 0) >= 1
        n = 53
        rng = np.random.default_rng(2)
        a = rng.standard_normal(n + 4).astype(np.float32)
        c = rng.standard_normal(n).astype(np.float32)
        for mis in (0, 4, 12):
            bufs = {
                "a": ArrayBuffer(F32, n + 4, base_misalign=mis, data=a),
                "c": ArrayBuffer(F32, n, base_misalign=mis, data=c),
            }
            res = VM(SSE).run(ck.mfunc, {"n": n}, bufs)
            assert float(res.value) == pytest.approx(
                float((a[2 : n + 2] * c).sum()), rel=1e-4
            )


class TestCompilerPersonalities:
    def test_mono_x87_flag_on_x86_only(self):
        scalar = compile_source(SFIR)["sfir"]
        assert MonoJIT().compile(scalar, SSE).mfunc.meta.get("x87")
        assert not MonoJIT().compile(scalar, ALTIVEC).mfunc.meta.get("x87")
        assert not OptimizingJIT().compile(scalar, SSE).mfunc.meta.get("x87")

    def test_mono_emits_more_code(self):
        bytecode = _split(SFIR, "sfir")
        mono = MonoJIT().compile(bytecode, SSE)
        opt = OptimizingJIT().compile(bytecode, SSE)
        assert mono.stats["minstrs"] > opt.stats["minstrs"]

    def test_compile_does_not_mutate_input(self):
        bytecode = _split(SFIR, "sfir")
        before = len(list(walk(bytecode.body)))
        MonoJIT().compile(bytecode, SSE)
        OptimizingJIT().compile(bytecode, ALTIVEC)
        assert len(list(walk(bytecode.body))) == before
        verify_function(bytecode)

    def test_materialize_reports_stats(self):
        bytecode = _split(SFIR, "sfir")
        work = clone_function(bytecode)
        _, stats = materialize(work, SSE, MaterializeOptions())
        assert stats["guards_folded"] >= 1
        assert stats["loops_vectorized"] >= 1
