"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (see DESIGN.md's
per-experiment index) and prints the rows the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.harness.flows import FlowRunner


@pytest.fixture(scope="session")
def runner() -> FlowRunner:
    return FlowRunner()


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment drivers are deterministic and internally cached, so repeated
    rounds would only measure the cache; a single round reports honest
    wall-clock for regenerating the artifact.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
