"""DESIGN.md ablation: conservative dependences vs distance hints (§III-B.b).

The paper implemented the conservative policy — refuse loops with any
loop-carried dependence — and notes the alternative: version the loop on a
``VF <= distance`` guard.  This bench runs a wavefront-style kernel with a
carried dependence of distance 8 under both policies: the conservative flow
leaves it scalar everywhere, the hinted flow vectorizes wherever VF <= 8
(all our SIMD targets) via the ``vf_le`` version guard.
"""

import numpy as np

from conftest import once
from repro.frontend import compile_source
from repro.harness.report import table
from repro.ir import F32
from repro.jit import OptimizingJIT
from repro.machine import VM, ArrayBuffer
from repro.targets import ALTIVEC, NEON, SSE
from repro.vectorizer import split_config, vectorize_function

SRC = """
void smooth8(int n, float a[]) {
    for (int i = 8; i < n; i++) {
        a[i] = a[i - 8] * 0.5 + a[i];
    }
}
"""


def _run(policy_hints: bool, n: int = 512):
    fn = compile_source(SRC)["smooth8"]
    vec = vectorize_function(fn, split_config(dependence_hints=policy_hints))
    report = vec.annotations["vect_report"]
    rng = np.random.default_rng(0)
    data = rng.standard_normal(n).astype(np.float32)
    expect = data.copy()
    for i in range(8, n):
        expect[i] = expect[i - 8] * np.float32(0.5) + expect[i]
    rows = []
    for target in (SSE, ALTIVEC, NEON):
        ck = OptimizingJIT().compile(vec, target)
        bufs = {"a": ArrayBuffer(F32, n, data=data)}
        res = VM(target).run(ck.mfunc, {"n": n}, bufs)
        assert np.allclose(bufs["a"].read_elements(), expect, rtol=1e-4)
        rows.append((target.name, res.cycles))
    return report, dict(rows)


def test_ablation_dependence_hints(benchmark):
    def experiment():
        conservative = _run(False)
        hinted = _run(True)
        return conservative, hinted

    (cons_report, cons), (hint_report, hint) = once(benchmark, experiment)
    print()
    print("distance-8 recurrence: conservative vs vf_le-versioned cycles")
    print(table(
        ["target", "conservative", "hinted", "speedup"],
        [(t, f"{cons[t]:.0f}", f"{hint[t]:.0f}", cons[t] / hint[t])
         for t in cons],
    ))
    benchmark.extra_info["speedups"] = {
        t: round(cons[t] / hint[t], 2) for t in cons
    }
    assert not any(v.startswith("vectorized") for v in cons_report.values())
    assert any(v.startswith("vectorized") for v in hint_report.values())
    # VF <= 8 on every target here, so the hinted flow must win everywhere.
    for t in cons:
        assert hint[t] < cons[t], t
