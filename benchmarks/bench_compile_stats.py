"""E8 — §V-A.c: bytecode size and JIT compile time under vectorization.

"We observed a bytecode size increase of about 5x, on average ... We
observed a similar increase of 4.85x/5.37x in compile time on x86/PowerPC,
respectively, confirming that JIT compilation time is proportional to the
bytecode size.  Overall, the JIT compile time remained negligible."

This bench measures real encoded bytes of our VBC container and real
wall-clock Mono-JIT compile times for scalar vs vectorized bytecode.
"""

import statistics

from conftest import once
from repro.harness import compile_time_stats
from repro.harness.report import table


def test_compile_stats(benchmark):
    out = once(benchmark, lambda: compile_time_stats(targets=("sse", "altivec")))
    print()
    print("Bytecode size growth under vectorization (scalar -> vectorized)")
    rows = [(k, str(s), str(v), r) for k, s, v, r in out["rows"]]
    print(table(["kernel", "scalar B", "vector B", "ratio"], rows))
    print(f"\naverage size ratio: {out['avg_size_ratio']:.2f}x (paper: ~5x)")
    for target, ratio in out["avg_compile_time_ratio"].items():
        print(f"avg Mono compile-time ratio on {target}: {ratio:.2f}x "
              "(paper: 4.85x x86 / 5.37x PowerPC)")
    benchmark.extra_info["avg_size_ratio"] = round(out["avg_size_ratio"], 2)
    benchmark.extra_info["compile_time_ratio"] = {
        k: round(v, 2) for k, v in out["avg_compile_time_ratio"].items()
    }

    assert 3.0 <= out["avg_size_ratio"] <= 12.0
    for ratio in out["avg_compile_time_ratio"].values():
        assert ratio > 2.0  # compile time tracks bytecode size

    # Proportionality: size ratio and compile-time ratio correlate (the
    # paper's "JIT compilation time is proportional to the bytecode size").
    sizes = [r[3] for r in out["rows"]]
    assert statistics.fmean(sizes) == out["avg_size_ratio"]
