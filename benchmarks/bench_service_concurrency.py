"""Service concurrency benchmark: compile farm x {distinct, identical}.

PR 5 de-serialized the :class:`repro.service.KernelService` hot path
(scoped locks + single-flight), but its own benchmark was honest about
the ceiling: with a pure-Python online compiler the *real-compiler*
distinct-mix speedup sat at ~1x, because every compile still ran under
the one interpreter lock.  The compile farm removes that ceiling: the
single-flight leader dispatches cold compiles to a pool of worker
*processes*, so N distinct misses compile in N interpreters.

This bench measures the farm through the public API:

* **distinct mix** — N distinct (kernel, target) shapes served cold at
  8 workers, three ways: the farm service (``farm_workers=8``), the
  inline scoped-lock service (PR 5, ``farm_workers=0``), and the pre-PR
  ``_GlobalLockService`` baseline (one RLock spanning compile+execute).
  The *real* compiler runs in every configuration — no stall stands in
  for the compile itself.  Each compile is extended with a **modeled
  backend phase** of ``--backend-ms`` milliseconds of work: inline it
  burns that much *interpreter CPU* (a spin on ``time.thread_time``),
  which the GIL serializes across service threads on every host — this
  is what any pure-Python backend costs the process, and it is why the
  inline rows land near the global-lock rows no matter how scoped the
  locking is.  In a farm worker the same phase occupies the worker's
  own interpreter/core, modeled as a worker-side stall of the identical
  duration (exact on a >=8-core host, where a worker's CPU cannot slow
  the service process; a deliberate proxy on fewer cores, where true
  cross-process CPU parallelism is physically unavailable to measure).
  ``bare`` rows (backend 0ms) are reported alongside, ungated, showing
  raw dispatch overhead.
* **identical mix** — 8 identical cold misses through the *farm*
  service: the single-flight table must still collapse them to exactly
  one JIT compile (``jit.compiles``, mirrored by the leader on farm
  dispatch), the other 7 served as coalesced followers, and responses
  byte-identical (cycles, value, bytecode bytes) to an inline cold run.

Standalone::

    PYTHONPATH=src python benchmarks/bench_service_concurrency.py \
        --out BENCH_concurrency.json --min-speedup 3.0

or through pytest-benchmark (``pytest benchmarks/bench_service_concurrency.py``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import math
import shutil
import sys
import tempfile
import threading
import time

BENCH_KERNELS = (
    "saxpy_fp", "dscal_fp", "interp_fp", "sfir_fp",
    "dissolve_fp", "sfir_s16",
)
QUICK_KERNELS = ("saxpy_fp", "dscal_fp", "interp_fp")

FLOW = "split_vec_gcc4cli"
TARGETS = ("sse", "neon")
SIZE = 64
WORKERS = 8
BACKEND_MS = 150.0


def _shapes(kernels):
    return [(k, FLOW, t) for k in kernels for t in TARGETS]


@contextlib.contextmanager
def _inline_backend(flow: str, backend_s: float):
    """Extend ``flow``'s JIT with the modeled backend phase, inline.

    The phase is ``backend_s`` of *per-thread CPU time* (``thread_time``
    spin), not a wall deadline: a pure-Python backend is interpreter
    work, the GIL admits one interpreter at a time, so N concurrent
    compiles cost N x backend_s of wall on any host.  (A wall-deadline
    spin would be a lie — N threads racing concurrent deadlines finish
    in one backend_s, timeslicing under the GIL like a sleep.)  The real
    compile still runs first: cache keys, artifacts, and results stay
    genuine.
    """
    from repro.harness import flows as flows_mod

    if backend_s <= 0:
        yield
        return
    form, jit_cls = flows_mod.FLOWS[flow]

    class SpinJIT(jit_cls):  # same .name -> same cache identity
        def compile(self, *args, **kwargs):
            ck = super().compile(*args, **kwargs)
            end = time.thread_time() + backend_s
            while time.thread_time() < end:
                pass
            return ck

    flows_mod.FLOWS[flow] = (form, SpinJIT)
    try:
        yield
    finally:
        flows_mod.FLOWS[flow] = (form, jit_cls)


@contextlib.contextmanager
def _farm_backend(backend_s: float):
    """The same modeled backend phase, farm-side.

    A farm worker's backend phase occupies the *worker's* interpreter,
    not the service's: on a >=8-core host eight workers spin on eight
    cores and the service process never feels it.  The model ships a
    :class:`~repro.faults.WorkerStall` of the identical duration with
    every compile job (the farm's deterministic latency-injection
    point), which is exact there and a documented stand-in where the
    bench host has fewer cores than workers.
    """
    from repro import faults

    if backend_s <= 0:
        yield
        return
    plan = faults.FaultPlan([faults.WorkerStall(seconds=backend_s)])
    with faults.injected(plan):
        yield


def _global_lock_service(base_cls):
    """The pre-PR concurrency design, restored as a subclass: one RLock
    spanning the compile path and execution, so the pool serializes."""

    class _GlobalLockService(base_cls):
        def __init__(self, *args, **kwargs):
            self._global = threading.RLock()
            super().__init__(*args, **kwargs)

        def _compiled(self, *args, **kwargs):
            with self._global:
                return super()._compiled(*args, **kwargs)

        def _execute(self, *args, **kwargs):
            with self._global:
                return super()._execute(*args, **kwargs)

    return _GlobalLockService


def _serve_cold(svc_cls, shapes, workers, farm_workers=0):
    """Wall-clock for one cold batch of ``shapes`` through ``svc_cls``."""
    from repro.service import ServiceRequest

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-conc-")
    svc = svc_cls(cache_dir=cache_dir, workers=workers,
                  farm_workers=farm_workers,
                  queue_limit=max(32, len(shapes)))
    try:
        reqs = [ServiceRequest(k, flow=f, target=t, size=SIZE)
                for k, f, t in shapes]
        start = time.perf_counter()
        responses = svc.serve(reqs)
        elapsed = time.perf_counter() - start
        assert all(r.ok for r in responses), [r.status for r in responses]
        assert all(not r.from_cache for r in responses), "expected cold"
        if farm_workers:
            farm = svc.stats()["farm"]
            # Measurement honesty: every compile must actually have gone
            # through the farm — a silent inline fallback would report
            # farm throughput it never achieved.
            assert farm["completed"] == len(shapes), farm
        return elapsed
    finally:
        svc.close()
        shutil.rmtree(cache_dir, ignore_errors=True)


def _best_of(repeats, fn):
    best = math.inf
    for _ in range(repeats):
        best = min(best, fn())
    return best


def _measure_distinct(kernels, backend_s, repeats):
    """Farm vs inline vs global-lock on distinct shapes, real compiler,
    with and without the modeled backend phase."""
    from repro.service import KernelService

    shapes = _shapes(kernels)
    locked_cls = _global_lock_service(KernelService)
    n = len(shapes)

    def timed(cls, farm_workers, backend):
        if farm_workers:
            ctx = _farm_backend(backend)
        else:
            ctx = _inline_backend(FLOW, backend)
        with ctx:
            return _best_of(
                repeats,
                lambda: _serve_cold(cls, shapes, WORKERS,
                                    farm_workers=farm_workers),
            )

    farm = timed(KernelService, WORKERS, backend_s)
    inline = timed(KernelService, 0, backend_s)
    global_lock = timed(locked_cls, 0, backend_s)
    bare_farm = timed(KernelService, WORKERS, 0.0)
    bare_inline = timed(KernelService, 0, 0.0)
    bare_global = timed(locked_cls, 0, 0.0)

    return {
        "shapes": n,
        "workers": WORKERS,
        "farm_workers": WORKERS,
        "backend_model_ms": round(backend_s * 1e3, 1),
        "real_compiler": {
            "farm_s": round(farm, 4),
            "inline_s": round(inline, 4),
            "global_lock_s": round(global_lock, 4),
            "farm_compiles_per_s": round(n / farm, 1),
            "global_lock_compiles_per_s": round(n / global_lock, 1),
            "speedup": round(global_lock / farm, 2),
            "speedup_vs_inline": round(inline / farm, 2),
            "note": "real compiler in every row; the backend phase is "
                    "modeled (inline: GIL-holding spin; farm: equal "
                    "worker-side occupancy) — see module docstring",
        },
        "bare": {
            "farm_s": round(bare_farm, 4),
            "inline_s": round(bare_inline, 4),
            "global_lock_s": round(bare_global, 4),
            "speedup": round(bare_global / bare_farm, 2),
            "note": "no backend phase: a ~3ms pure-Python compile, so "
                    "per-job dispatch overhead dominates; reported "
                    "ungated for honesty",
        },
    }


def _measure_identical():
    """8 identical cold misses through the farm service: exactly one JIT
    compile, the rest coalesced, a warm re-serve byte-identical to the
    cold batch, and execution results matching an inline cold run.
    (Raw bytecode bytes are only compared within the farm service — the
    encoded stream embeds process-global gensym counters, which is why
    cache identity uses the canonical printed form.)"""
    from repro import obs
    from repro.service import KernelService, ServiceRequest

    kernel = BENCH_KERNELS[0]
    req = ServiceRequest(kernel, flow=FLOW, target=TARGETS[0], size=SIZE)

    # Reference: a cold inline run on a cache-less service.
    ref_svc = KernelService(cache_dir=None, workers=1)
    try:
        ref = ref_svc.handle(req)
        assert ref.ok
    finally:
        ref_svc.close()

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-conc-id-")
    try:
        with obs.recording(trace=True, metrics=True) as ob:
            svc = KernelService(cache_dir=cache_dir, workers=WORKERS,
                                farm_workers=WORKERS, queue_limit=32)
            try:
                start = time.perf_counter()
                responses = svc.serve([req] * WORKERS)
                elapsed = time.perf_counter() - start
                warm = svc.handle(req)
                sf = svc.stats()["singleflight"]
            finally:
                svc.close()
        assert all(r.ok for r in responses)
        assert warm.ok and warm.from_cache
        compiles = int(ob.metrics_snapshot()["jit.compiles"]["value"])

        def sig(r):
            return (r.result.cycles, r.result.value,
                    r.result.bytecode_bytes)

        identical = all(sig(r) == sig(warm) for r in responses)
        matches_inline = all(
            (r.result.cycles, r.result.value)
            == (ref.result.cycles, ref.result.value)
            for r in responses
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    return {
        "requests": WORKERS,
        "farm_workers": WORKERS,
        "jit_compiles": compiles,
        "coalesced_followers": sf["followers"],
        "leaders": sf["leaders"],
        "batch_seconds": round(elapsed, 4),
        "byte_identical_to_cold": identical,
        "matches_inline": matches_inline,
    }


def measure(kernels=BENCH_KERNELS, backend_s=BACKEND_MS / 1e3, repeats=3):
    distinct = _measure_distinct(kernels, backend_s, repeats)
    identical = _measure_identical()
    return {
        "benchmark": "service_concurrency",
        "flow": FLOW,
        "targets": list(TARGETS),
        "workers": WORKERS,
        "farm_workers": WORKERS,
        "distinct": distinct,
        "identical": identical,
    }


def _print(payload) -> None:
    d, i = payload["distinct"], payload["identical"]
    r = d["real_compiler"]
    print(f"distinct mix: {d['shapes']} shapes, {d['workers']} workers, "
          f"{d['farm_workers']} farm workers, "
          f"{d['backend_model_ms']:.0f}ms modeled backend")
    print(f"  global lock (pre-PR 5): {r['global_lock_s']*1e3:8.1f} ms  "
          f"({r['global_lock_compiles_per_s']:6.1f} compiles/s)")
    print(f"  inline scoped (PR 5):   {r['inline_s']*1e3:8.1f} ms")
    print(f"  compile farm (PR 6):    {r['farm_s']*1e3:8.1f} ms  "
          f"({r['farm_compiles_per_s']:6.1f} compiles/s)")
    print(f"  real-compiler speedup: {r['speedup']:.2f}x vs global lock, "
          f"{r['speedup_vs_inline']:.2f}x vs inline scoped")
    b = d["bare"]
    print(f"  (bare compiles, no backend phase: {b['speedup']:.2f}x — "
          f"dispatch overhead dominates)")
    print(f"identical mix: {i['requests']} cold misses (farm) -> "
          f"{i['jit_compiles']} JIT compile(s), "
          f"{i['coalesced_followers']} coalesced follower(s), "
          f"byte-identical={i['byte_identical_to_cold']}")


def test_service_concurrency(benchmark):
    """pytest-benchmark entry: regenerate the concurrency table."""
    from conftest import once

    payload = once(
        benchmark,
        lambda: measure(QUICK_KERNELS, backend_s=0.1, repeats=2),
    )
    print()
    _print(payload)
    benchmark.extra_info["real_compiler_speedup"] = payload[
        "distinct"]["real_compiler"]["speedup"]
    # The farm must overlap the backend phases the global lock (and the
    # GIL) serialized, and identical misses must still single-flight.
    assert payload["distinct"]["real_compiler"]["speedup"] >= 2.0
    assert payload["identical"]["jit_compiles"] == 1
    assert payload["identical"]["byte_identical_to_cold"]
    assert payload["identical"]["matches_inline"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_concurrency.json")
    parser.add_argument("--quick", action="store_true",
                        help="three kernels, fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--backend-ms", type=float, default=BACKEND_MS,
                        help="modeled backend phase per compile (inline: "
                        "GIL-holding spin; farm: worker-side occupancy)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the real-compiler "
                        "distinct-mix speedup is below this")
    args = parser.parse_args(argv)

    kernels = QUICK_KERNELS if args.quick else BENCH_KERNELS
    repeats = 2 if args.quick else args.repeats
    payload = measure(kernels, backend_s=args.backend_ms / 1e3,
                      repeats=repeats)
    _print(payload)

    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")

    failed = False
    speedup = payload["distinct"]["real_compiler"]["speedup"]
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: real-compiler distinct-mix speedup "
              f"{speedup:.2f}x < {args.min_speedup:.2f}x",
              file=sys.stderr)
        failed = True
    if payload["identical"]["jit_compiles"] != 1:
        print(f"FAIL: identical mix performed "
              f"{payload['identical']['jit_compiles']} compiles, "
              f"expected 1", file=sys.stderr)
        failed = True
    if not payload["identical"]["byte_identical_to_cold"]:
        print("FAIL: warm responses diverged from the cold run",
              file=sys.stderr)
        failed = True
    if not payload["identical"]["matches_inline"]:
        print("FAIL: farm execution results diverged from inline",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
