"""Service concurrency benchmark: threads x {distinct, identical} mixes.

PR 5's tentpole de-serializes the :class:`repro.service.KernelService`
hot path: the old design pushed every request — JIT compile, cache disk
I/O, bytecode sizing — through one global RLock, so the worker pool
added zero compile throughput.  The rework gives each concern its own
lock and coalesces identical cold misses onto a single in-flight
compile (single-flight leader/follower).

This bench measures both properties through the public API:

* **distinct mix** — N distinct (kernel, target) shapes served cold at
  8 workers, against a ``_GlobalLockService`` baseline that restores
  the pre-PR design (one RLock spanning compile + execute).  The repro
  JIT is pure Python, so the GIL alone serializes its CPU work in both
  designs; to expose the lock-scope difference the compile is extended
  with a small ``time.sleep`` stall — a documented stand-in for the
  GIL-*releasing* backend work (codegen subprocesses, mmap/mprotect,
  disk I/O) that dominates a production JIT.  Under the global lock
  the stalls serialize; under scoped locks they overlap.  Real-compiler
  (no stall) numbers are reported alongside, unguarded — expect ~1x
  there, that is the GIL, not the lock.
* **identical mix** — 8 identical cold misses with the *real* compiler:
  the single-flight table must collapse them to exactly one JIT compile
  (``jit.compiles`` metric), with the other 7 served as coalesced
  followers, and warm responses byte-identical to the cold run.

Standalone::

    PYTHONPATH=src python benchmarks/bench_service_concurrency.py \
        --out BENCH_concurrency.json --min-speedup 2.0

or through pytest-benchmark (``pytest benchmarks/bench_service_concurrency.py``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import math
import shutil
import sys
import tempfile
import threading
import time

BENCH_KERNELS = (
    "saxpy_fp", "dscal_fp", "interp_fp", "sfir_fp",
    "dissolve_fp", "sfir_s16",
)
QUICK_KERNELS = ("saxpy_fp", "dscal_fp", "interp_fp")

FLOW = "split_vec_gcc4cli"
TARGETS = ("sse", "neon")
SIZE = 64
WORKERS = 8


def _shapes(kernels):
    return [(k, FLOW, t) for k in kernels for t in TARGETS]


@contextlib.contextmanager
def _stalled_compiler(flow: str, stall_s: float):
    """Extend ``flow``'s JIT with a GIL-releasing stall after compiling.

    ``time.sleep`` releases the GIL, modelling the backend phase a
    native JIT spends outside the interpreter lock.  The real compile
    still runs, so cache keys, artifacts, and results stay genuine.
    """
    from repro.harness import flows as flows_mod

    form, jit_cls = flows_mod.FLOWS[flow]

    class StalledJIT(jit_cls):  # same .name -> same cache identity
        def compile(self, *args, **kwargs):
            ck = super().compile(*args, **kwargs)
            time.sleep(stall_s)
            return ck

    flows_mod.FLOWS[flow] = (form, StalledJIT)
    try:
        yield
    finally:
        flows_mod.FLOWS[flow] = (form, jit_cls)


def _global_lock_service(base_cls):
    """The pre-PR concurrency design, restored as a subclass: one RLock
    spanning the compile path and execution, so the pool serializes."""

    class _GlobalLockService(base_cls):
        def __init__(self, *args, **kwargs):
            self._global = threading.RLock()
            super().__init__(*args, **kwargs)

        def _compiled(self, *args, **kwargs):
            with self._global:
                return super()._compiled(*args, **kwargs)

        def _execute(self, *args, **kwargs):
            with self._global:
                return super()._execute(*args, **kwargs)

    return _GlobalLockService


def _serve_cold(svc_cls, shapes, workers):
    """Wall-clock for one cold batch of ``shapes`` through ``svc_cls``."""
    from repro.service import ServiceRequest

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-conc-")
    svc = svc_cls(cache_dir=cache_dir, workers=workers,
                  queue_limit=max(32, len(shapes)))
    try:
        reqs = [ServiceRequest(k, flow=f, target=t, size=SIZE)
                for k, f, t in shapes]
        start = time.perf_counter()
        responses = svc.serve(reqs)
        elapsed = time.perf_counter() - start
        assert all(r.ok for r in responses), [r.status for r in responses]
        assert all(not r.from_cache for r in responses), "expected cold"
        return elapsed
    finally:
        svc.close()
        shutil.rmtree(cache_dir, ignore_errors=True)


def _best_of(repeats, fn):
    best = math.inf
    for _ in range(repeats):
        best = min(best, fn())
    return best


def _measure_distinct(kernels, stall_s, repeats):
    """Scoped-lock service vs the global-lock baseline on distinct
    shapes, with and without the GIL-releasing compile stall."""
    from repro.service import KernelService

    shapes = _shapes(kernels)
    locked_cls = _global_lock_service(KernelService)

    def timed(cls, stall):
        ctx = (_stalled_compiler(FLOW, stall) if stall
               else contextlib.nullcontext())
        with ctx:
            return _best_of(
                repeats, lambda: _serve_cold(cls, shapes, WORKERS)
            )

    stalled_scoped = timed(KernelService, stall_s)
    stalled_global = timed(locked_cls, stall_s)
    real_scoped = timed(KernelService, 0.0)
    real_global = timed(locked_cls, 0.0)

    n = len(shapes)
    return {
        "shapes": n,
        "workers": WORKERS,
        "stall_ms": round(stall_s * 1e3, 1),
        "stalled": {
            "scoped_s": round(stalled_scoped, 4),
            "global_lock_s": round(stalled_global, 4),
            "scoped_compiles_per_s": round(n / stalled_scoped, 1),
            "global_lock_compiles_per_s": round(n / stalled_global, 1),
            "speedup": round(stalled_global / stalled_scoped, 2),
        },
        "real_compiler": {
            "scoped_s": round(real_scoped, 4),
            "global_lock_s": round(real_global, 4),
            "speedup": round(real_global / real_scoped, 2),
            "note": "pure-Python compile; the GIL, not the lock, "
                    "bounds this at ~1x",
        },
    }


def _measure_identical():
    """8 identical cold misses, real compiler: exactly one JIT compile,
    the rest coalesced or warm, responses byte-identical to cold."""
    from repro import obs
    from repro.service import KernelService, ServiceRequest

    kernel = BENCH_KERNELS[0]
    req = ServiceRequest(kernel, flow=FLOW, target=TARGETS[0], size=SIZE)

    # Reference: a cold run on a cache-less service.
    ref_svc = KernelService(cache_dir=None, workers=1)
    try:
        ref = ref_svc.handle(req)
        assert ref.ok
    finally:
        ref_svc.close()

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-conc-id-")
    try:
        with obs.recording(trace=True, metrics=True) as ob:
            svc = KernelService(cache_dir=cache_dir, workers=WORKERS,
                                queue_limit=32)
            try:
                start = time.perf_counter()
                responses = svc.serve([req] * WORKERS)
                elapsed = time.perf_counter() - start
                sf = svc.stats()["singleflight"]
            finally:
                svc.close()
        assert all(r.ok for r in responses)
        compiles = int(ob.metrics_snapshot()["jit.compiles"]["value"])
        identical = all(
            (r.result.cycles, r.result.value, r.result.bytecode_bytes)
            == (ref.result.cycles, ref.result.value,
                ref.result.bytecode_bytes)
            for r in responses
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    return {
        "requests": WORKERS,
        "jit_compiles": compiles,
        "coalesced_followers": sf["followers"],
        "leaders": sf["leaders"],
        "batch_seconds": round(elapsed, 4),
        "byte_identical_to_cold": identical,
    }


def measure(kernels=BENCH_KERNELS, stall_s=0.02, repeats=3):
    distinct = _measure_distinct(kernels, stall_s, repeats)
    identical = _measure_identical()
    return {
        "benchmark": "service_concurrency",
        "flow": FLOW,
        "targets": list(TARGETS),
        "workers": WORKERS,
        "distinct": distinct,
        "identical": identical,
    }


def _print(payload) -> None:
    d, i = payload["distinct"], payload["identical"]
    s = d["stalled"]
    print(f"distinct mix: {d['shapes']} shapes, {d['workers']} workers, "
          f"{d['stall_ms']:.0f}ms backend stall")
    print(f"  global lock (pre-PR): {s['global_lock_s']*1e3:8.1f} ms  "
          f"({s['global_lock_compiles_per_s']:6.1f} compiles/s)")
    print(f"  scoped locks (PR):    {s['scoped_s']*1e3:8.1f} ms  "
          f"({s['scoped_compiles_per_s']:6.1f} compiles/s)")
    print(f"  aggregate compile throughput: {s['speedup']:.2f}x")
    r = d["real_compiler"]
    print(f"  (real pure-Python compiler, GIL-bound: {r['speedup']:.2f}x)")
    print(f"identical mix: {i['requests']} cold misses -> "
          f"{i['jit_compiles']} JIT compile(s), "
          f"{i['coalesced_followers']} coalesced follower(s), "
          f"byte-identical={i['byte_identical_to_cold']}")


def test_service_concurrency(benchmark):
    """pytest-benchmark entry: regenerate the concurrency table."""
    from conftest import once

    payload = once(
        benchmark, lambda: measure(QUICK_KERNELS, stall_s=0.02, repeats=2)
    )
    print()
    _print(payload)
    benchmark.extra_info["distinct_speedup"] = payload[
        "distinct"]["stalled"]["speedup"]
    # Scoped locks must overlap the GIL-releasing stalls the global
    # lock serialized, and identical misses must single-flight.
    assert payload["distinct"]["stalled"]["speedup"] >= 2.0
    assert payload["identical"]["jit_compiles"] == 1
    assert payload["identical"]["byte_identical_to_cold"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_concurrency.json")
    parser.add_argument("--quick", action="store_true",
                        help="three kernels, fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--stall-ms", type=float, default=20.0,
                        help="GIL-releasing backend stall per compile")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the stalled distinct-mix "
                        "speedup is below this")
    args = parser.parse_args(argv)

    kernels = QUICK_KERNELS if args.quick else BENCH_KERNELS
    repeats = 2 if args.quick else args.repeats
    payload = measure(kernels, stall_s=args.stall_ms / 1e3,
                      repeats=repeats)
    _print(payload)

    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")

    failed = False
    if (
        args.min_speedup is not None
        and payload["distinct"]["stalled"]["speedup"] < args.min_speedup
    ):
        print(f"FAIL: distinct-mix speedup "
              f"{payload['distinct']['stalled']['speedup']:.2f}x < "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    if payload["identical"]["jit_compiles"] != 1:
        print(f"FAIL: identical mix performed "
              f"{payload['identical']['jit_compiles']} compiles, "
              f"expected 1", file=sys.stderr)
        failed = True
    if not payload["identical"]["byte_identical_to_cold"]:
        print("FAIL: warm responses diverged from the cold run",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
