"""DESIGN.md ablation: the loop_bound collapse for non-SIMD targets
(§III-B.c, §III-C.d).

Without ``loop_bound``, scalarizing the vectorized bytecode leaves "three
loops, each with an unknown number of iterations" and the scalarized vector
body keeps the realignment machinery's cross-iteration chains — overhead a
lightweight JIT cannot remove.  With it, "only one loop is executed" and
scalar quality matches the scalar bytecode.  This bench measures both
scalarization strategies with the Mono-like JIT on the SIMD-less target.
"""

import statistics

from conftest import once
from repro.harness.report import table
from repro.jit import MonoJIT
from repro.kernels import get_kernel
from repro.machine import VM, ArrayBuffer
from repro.targets import SCALAR

#: Simple fp kernels only: the naive VF=1 strategy is ill-defined for
#: widening and interleaving idioms (their hi/lo halves are empty at one
#: lane) — which is itself a point in favour of the paper's loop_bound
#: design, where the vector body never executes under scalarization.
KERNELS = ("sfir_fp", "dissolve_fp", "saxpy_fp", "dscal_fp", "gemm_fp")


def _cycles(runner, inst, jit):
    ck = jit.compile(runner.split_ir(inst), SCALAR)
    bufs = runner.make_buffers(inst)
    res = VM(SCALAR).run(ck.mfunc, inst.scalar_args, bufs)
    runner.verify(inst, bufs, res.value)
    return res.cycles


def test_ablation_loopbound(benchmark, runner):
    def experiment():
        rows = []
        for name in KERNELS:
            inst = get_kernel(name).instantiate()
            collapsed = _cycles(runner, inst, MonoJIT())
            naive = _cycles(
                runner, inst, MonoJIT(scalar_via_loop_bound=False)
            )
            rows.append((name, collapsed, naive, naive / collapsed))
        return rows

    rows = once(benchmark, experiment)
    print()
    print("Scalarization on a non-SIMD target: loop_bound collapse vs "
          "naive three-loop VF=1 scalarization (Mono JIT)")
    print(table(
        ["kernel", "loop_bound", "naive", "overhead"],
        [(k, f"{c:.0f}", f"{n:.0f}", r) for k, c, n, r in rows],
    ))
    avg = statistics.fmean(r for _, _, _, r in rows)
    print(f"\naverage naive-scalarization overhead: {avg:.2f}x")
    benchmark.extra_info["average_overhead"] = round(avg, 3)
    assert avg > 1.05
    assert all(r >= 0.98 for _, _, _, r in rows)
