"""E6 — Table 3: IACA-style static AVX throughput (cycles/iteration).

Regenerates the Table 3 rows: for eight fp kernels, the asymptotic cycles
per vector-loop iteration on the 256-bit AVX target, native vs split, from
the static analyzer (no hardware, exactly like the paper's use of Intel's
SDE+IACA).  Paper shape: 1-6 cycles/iter, split equal or slightly worse
(induction-variable/addressing differences), never better.
"""

from conftest import once
from repro.harness import format_table3, table3


def test_table3(benchmark, runner):
    result = once(benchmark, lambda: table3(runner=runner))
    print()
    print(format_table3(result))
    benchmark.extra_info["rows"] = {
        k: {"native": n, "split": s} for k, n, s in result.rows
    }
    for name, native, split in result.rows:
        assert 1 <= native <= 6, (name, native)
        assert native <= split <= native + 3, (name, native, split)
    # dscal (2 in the paper) stays the cheapest loop.
    by_name = {k: (n, s) for k, n, s in result.rows}
    assert by_name["dscal_fp"][0] <= by_name["MMM_fp"][0] + 1
