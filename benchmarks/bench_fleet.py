"""Fleet load benchmark: the heavy-tail mix against a supervised fleet
that is being SIGKILLed while it serves.

PR 8 put a self-healing supervisor over N gateway replicas
(:mod:`repro.service.supervisor`), and this bench measures what the
replica tier costs — and what a replica *dying* costs — under the same
heavy-tail load shape as ``bench_gateway.py`` (~80% warm hits on a hot
set, ~20% cold distinct shapes).  Two phases over one warm fleet:

* **steady** — the mix through the sharded failover client, no faults:
  the baseline p50/p99 for a fleet serving out of one shared cache;
* **kills** — the same mix while a chaos thread ``kill -9``s one live
  replica per third of the phase (every replica index gets a turn).
  The supervisor respawns each victim; the client rides through with
  shard-aware failover.  The point of the bench is the *delta*: the
  kill-phase p99 prices a replica death end to end (connect failure +
  failover + occasional re-compile), and **zero requests may be lost**
  — every response still ``ok``, every hot request still warm (the
  shared cache survives its writer).

Latency is a client-side stopwatch here, not the obs spine: the
replicas are child processes, so their in-process histograms die with
them — exactly the situation a fleet operator is in, which makes the
client's view the honest one.

Standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py --out BENCH_fleet.json

or through pytest-benchmark (``pytest benchmarks/bench_fleet.py``).
``--quick`` shrinks the schedule for CI smoke.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import signal
import sys
import tempfile
import threading
import time

from bench_gateway import COLD_KERNELS, COLD_TARGETS, FLOW, HOT_FRACTION, HOT_SHAPES

REPLICAS = 3
REQUESTS = 240          # per phase
CLIENTS = 8
KILLS = 3               # per kill phase: one per third, every index once
QUICK_REQUESTS = 48
QUICK_CLIENTS = 4


def _schedule(n_requests: int, seed: int, size_base: int):
    """The deterministic heavy-tail mix (same shape as bench_gateway);
    ``size_base`` offsets the cold sizes so each phase's cold shapes
    are genuinely never-seen cache keys."""
    n_cold = max(1, round(n_requests * (1.0 - HOT_FRACTION)))
    n_hot = n_requests - n_cold
    rng = random.Random(seed)
    reqs = []
    for i in range(n_hot):
        k, t, s = HOT_SHAPES[i % len(HOT_SHAPES)]
        reqs.append({"kind": "hot", "kernel": k, "target": t, "size": s})
    for i in range(n_cold):
        reqs.append({
            "kind": "cold",
            "kernel": COLD_KERNELS[i % len(COLD_KERNELS)],
            "target": COLD_TARGETS[i % len(COLD_TARGETS)],
            "size": size_base + 2 * i,
        })
    rng.shuffle(reqs)
    return reqs


def _pct(sorted_lat, q: float):
    if not sorted_lat:
        return None
    idx = min(len(sorted_lat) - 1, max(0, round(q * (len(sorted_lat) - 1))))
    return sorted_lat[idx]


def _drive(sup, schedule, n_clients: int, seed: int, on_progress=None):
    """Fan the schedule across sharded failover clients; every request
    is timed client-side.  Returns (elapsed, latencies, tally, errors)."""
    from repro.service.client import GatewayClient

    chunks = [schedule[i::n_clients] for i in range(n_clients)]
    lock = threading.Lock()
    latencies: list = []
    tallies: list = []
    errors: list = []
    done = [0]

    def worker(idx: int, chunk) -> None:
        tally = {"hot": 0, "cold": 0, "hot_warm": 0, "not_ok": [],
                 "failovers": 0, "wire_errors": 0}
        client = GatewayClient(
            sup.slots, retries=8, backoff_base=0.02, backoff_cap=0.4,
            dead_cooldown_s=0.25, seed=seed + idx,
        )
        lats = []
        try:
            for req in chunk:
                t0 = time.perf_counter()
                resp = client.compile_run(
                    req["kernel"], flow=FLOW, target=req["target"],
                    size=req["size"], deadline_s=120.0,
                )
                lats.append(time.perf_counter() - t0)
                tally[req["kind"]] += 1
                if resp.get("status") != "ok":
                    tally["not_ok"].append(
                        (resp.get("status"), resp.get("error"))
                    )
                elif req["kind"] == "hot" and resp.get("from_cache"):
                    tally["hot_warm"] += 1
                with lock:
                    done[0] += 1
                    if on_progress is not None:
                        on_progress(done[0])
        except Exception as exc:  # surfaced, never swallowed
            with lock:
                errors.append(f"client {idx}: {type(exc).__name__}: {exc}")
        finally:
            tally["failovers"] = client.failovers
            tally["wire_errors"] = client.wire_errors
            client.close()
        with lock:
            latencies.extend(lats)
            tallies.append(tally)

    threads = [
        threading.Thread(target=worker, args=(i, chunk), daemon=True)
        for i, chunk in enumerate(chunks) if chunk
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    merged = {"hot": 0, "cold": 0, "hot_warm": 0, "not_ok": [],
              "failovers": 0, "wire_errors": 0}
    for t in tallies:
        for k in ("hot", "cold", "hot_warm", "failovers", "wire_errors"):
            merged[k] += t[k]
        merged["not_ok"].extend(t["not_ok"])
    return elapsed, sorted(latencies), merged, errors


def _phase_payload(name, elapsed, lats, tally, kills):
    return {
        "phase": name,
        "requests": len(lats),
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(len(lats) / elapsed, 1) if elapsed else None,
        "kills": kills,
        "hot_warm_hits": tally["hot_warm"],
        "hot_served": tally["hot"],
        "failovers": tally["failovers"],
        "wire_errors": tally["wire_errors"],
        "latency_ms": {
            "source": "client-side stopwatch (per request, "
                      "failover + retries included)",
            "p50": round(_pct(lats, 0.50) * 1e3, 3),
            "p90": round(_pct(lats, 0.90) * 1e3, 3),
            "p99": round(_pct(lats, 0.99) * 1e3, 3),
            "mean": round(sum(lats) / len(lats) * 1e3, 3),
            "max": round(lats[-1] * 1e3, 3),
        },
    }


def measure(n_requests=REQUESTS, n_clients=CLIENTS, seed=0,
            replicas=REPLICAS, kills=KILLS):
    """Two-phase fleet load run; returns the BENCH_fleet.json payload."""
    from repro.service import FleetSupervisor, GatewayClient

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-fleet-")
    sup = FleetSupervisor(
        replicas, cache_dir, farm_workers=0, workers=4,
        queue_limit=max(64, n_requests), max_inflight=max(64, n_requests),
        marker_ttl_s=1.5, probe_interval_s=0.1, probe_timeout_s=2.0,
        restart_backoff_base=0.02, restart_backoff_cap=0.1,
        restart_budget=10 ** 9, spawn_timeout_s=120.0, seed=seed,
    )
    try:
        sup.start()
        # Pre-warm the hot set through the sharded client (not timed).
        warmup = GatewayClient(sup.slots, retries=8, seed=seed)
        for k, t, s in HOT_SHAPES:
            resp = warmup.compile_run(k, flow=FLOW, target=t, size=s,
                                      deadline_s=120.0)
            assert resp["status"] == "ok", resp
        warmup.close()

        # Phase 1: steady state, no faults.
        steady = _schedule(n_requests, seed, size_base=1001)
        s_elapsed, s_lats, s_tally, s_errors = _drive(
            sup, steady, n_clients, seed
        )

        # Phase 2: same mix, one SIGKILL per third of the phase —
        # every replica index gets its turn as the victim.
        killplan = {
            max(1, (i + 1) * n_requests // (kills + 1)): i % replicas
            for i in range(kills)
        }
        killed = []

        def on_progress(n_done: int) -> None:
            victim = killplan.pop(n_done, None)
            if victim is not None:
                pid = sup.kill(victim, signal.SIGKILL)
                killed.append({"after_request": n_done,
                               "replica": victim, "pid": pid})

        kill_sched = _schedule(n_requests, seed + 1, size_base=5001)
        k_elapsed, k_lats, k_tally, k_errors = _drive(
            sup, kill_sched, n_clients, seed + 1, on_progress=on_progress
        )

        # Heal: the fleet must return to full capacity.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and sup.up_count() < replicas:
            time.sleep(0.05)
        ready = sup.ready()
        fleet_stats = sup.stats()
    finally:
        sup.stop()
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Invariants: nothing lost, nothing silently wrong, fleet healed.
    assert not s_errors, s_errors
    assert not k_errors, k_errors
    assert not s_tally["not_ok"], s_tally["not_ok"]
    assert not k_tally["not_ok"], k_tally["not_ok"]
    assert len(s_lats) == n_requests, (len(s_lats), n_requests)
    assert len(k_lats) == n_requests, (len(k_lats), n_requests)
    assert len(killed) >= 1, "kill plan never fired"
    assert ready["ready"] and not ready["degraded"], ready

    return {
        "benchmark": "fleet",
        "flow": FLOW,
        "replicas": replicas,
        "requests_per_phase": n_requests,
        "clients": n_clients,
        "seed": seed,
        "hot_shapes": [list(s) for s in HOT_SHAPES],
        "phases": [
            _phase_payload("steady", s_elapsed, s_lats, s_tally, []),
            _phase_payload("kills", k_elapsed, k_lats, k_tally, killed),
        ],
        "fleet": {
            "restarts": fleet_stats["restarts"],
            "parked": fleet_stats["parked"],
            "ready": ready,
        },
    }


def _print(payload) -> None:
    print(f"fleet load: {payload['replicas']} replicas, "
          f"{payload['requests_per_phase']} requests/phase from "
          f"{payload['clients']} clients")
    for ph in payload["phases"]:
        lat = ph["latency_ms"]
        kills = len(ph["kills"])
        print(f"  {ph['phase']:>7}: {ph['throughput_rps']:.1f} req/s, "
              f"p50={lat['p50']:.2f}ms p99={lat['p99']:.2f}ms "
              f"max={lat['max']:.2f}ms "
              f"(kills={kills}, failovers={ph['failovers']}, "
              f"warm {ph['hot_warm_hits']}/{ph['hot_served']})")
    fl = payload["fleet"]
    print(f"  fleet: restarts={fl['restarts']}, parked={fl['parked']}, "
          f"healed={fl['ready']['ready'] and not fl['ready']['degraded']}")


def test_fleet_latency_under_kills(benchmark):
    """pytest-benchmark entry: quick two-phase run, client percentiles."""
    from conftest import once

    payload = once(
        benchmark,
        lambda: measure(QUICK_REQUESTS, QUICK_CLIENTS, seed=0, kills=2),
    )
    print()
    _print(payload)
    steady, kills = payload["phases"]
    benchmark.extra_info["steady_p99_ms"] = steady["latency_ms"]["p99"]
    benchmark.extra_info["kills_p99_ms"] = kills["latency_ms"]["p99"]
    # Hot traffic stays warm through replica deaths (shared cache), the
    # kill phase actually killed, and the fleet healed to full capacity.
    assert steady["hot_warm_hits"] == steady["hot_served"]
    assert kills["hot_warm_hits"] == kills["hot_served"]
    assert len(kills["kills"]) >= 1
    assert payload["fleet"]["ready"]["ready"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_fleet.json")
    parser.add_argument("--quick", action="store_true",
                        help="small schedule (CI smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per phase")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--replicas", type=int, default=REPLICAS)
    parser.add_argument("--kills", type=int, default=None,
                        help="SIGKILLs during the kill phase")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="exit non-zero if the kill-phase p99 "
                             "exceeds this")
    args = parser.parse_args(argv)

    n_requests = args.requests or (QUICK_REQUESTS if args.quick else REQUESTS)
    n_clients = args.clients or (QUICK_CLIENTS if args.quick else CLIENTS)
    kills = args.kills if args.kills is not None else (
        2 if args.quick else KILLS)
    payload = measure(n_requests, n_clients, seed=args.seed,
                      replicas=args.replicas, kills=kills)
    _print(payload)

    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")

    p99 = payload["phases"][1]["latency_ms"]["p99"]
    if args.max_p99_ms is not None and p99 > args.max_p99_ms:
        print(f"FAIL: kill-phase p99 {p99:.2f}ms > {args.max_p99_ms:.2f}ms",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
