"""E1/E2 — Figure 5: Mono JIT normalized vectorization impact.

Regenerates Figure 5(a) (SSE) and 5(b) (AltiVec): for every kernel, the
ratio (A/C)/(E/F) of the Mono JIT's vectorization speedup to the native
compiler's.  Paper shape: noisy on x86 with several overly-high (>1) bars
(the x87 scalar penalty), homogeneous on PowerPC ("within 15% of native")
with MMM as the low outlier (unfoldable nested guard) — both reproduced.
"""

import pytest

from conftest import once
from repro.harness import figure5, format_figure5


@pytest.mark.parametrize("target", ["sse", "altivec"])
def test_figure5(benchmark, runner, target):
    result = once(benchmark, lambda: figure5(target, runner=runner))
    print()
    print(format_figure5(result))
    benchmark.extra_info["rows"] = {k: round(v, 3) for k, v in result.rows}
    benchmark.extra_info["arith_mean"] = round(result.arith_mean, 3)

    values = dict(result.rows)
    # Paper-shape assertions.
    assert 0.75 <= result.arith_mean <= 1.25
    if target == "sse":
        # x87 makes Mono's scalar fp slow => impacts above 1 exist.
        assert any(v > 1.1 for v in values.values())
    if target == "altivec":
        # MMM is the paper's PPC exception: the alignment guard runs per
        # outer iteration under Mono.
        assert values["MMM_fp"] < 0.8
        others = [v for k, v in values.items() if k != "MMM_fp"]
        assert sum(others) / len(others) > 0.75
