"""Gateway load benchmark: a heavy-tail mix through the network front door.

PR 7 put a real wire in front of :class:`repro.service.KernelService`
(:mod:`repro.service.gateway`), and this bench measures what that wire
costs under the load shape the paper's deployment story implies: a
**heavy-tail mix** where most requests are warm cache hits on a few hot
kernels and a steady trickle are cold compiles on distinct shapes.  The
cold tail is what makes tail latency interesting — a p99 read off a
warm-only run would be flattery, not measurement.

The driver:

* pre-warms a small hot set, then drives ``--requests`` total requests
  from ``--clients`` threads, each holding its own
  :class:`~repro.service.client.GatewayClient` over a persistent
  connection.  ~80% of requests hit the hot set (warm, served from
  cache), ~20% are cold distinct shapes (unique ``(kernel, target,
  size)`` never seen before), interleaved by a seeded shuffle so every
  run replays the same schedule.
* reads **p50/p99 from the observability spine, not a client-side
  stopwatch**: the gateway records every served request into the
  ``gateway.request_seconds`` histogram (the fine ``LATENCY_BUCKETS``
  exported by :mod:`repro.service.gateway`), and the percentiles here
  are linear interpolation within the straddling bucket — exactly what
  a dashboard would compute from the same counts.
* is honest about its own invariants: every response must be ``ok``,
  hot requests must actually be warm (``from_cache``), the gateway must
  report zero frame errors, and the served count must equal the offered
  count (no silent sheds at the default ``max_inflight``).

Standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py --out BENCH_gateway.json

or through pytest-benchmark (``pytest benchmarks/bench_gateway.py``).
``--quick`` shrinks the schedule for CI smoke.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import threading
import time

#: the hot set: 80% of traffic lands on these warm shapes.
HOT_SHAPES = (
    ("saxpy_fp", "sse", 64),
    ("dscal_fp", "sse", 64),
    ("saxpy_fp", "neon", 64),
)
#: cold requests cycle kernels/targets with a distinct size per request,
#: so every cold request is a genuinely new cache key.
COLD_KERNELS = ("interp_fp", "sfir_fp", "dissolve_fp")
COLD_TARGETS = ("sse", "neon")
FLOW = "split_vec_gcc4cli"
HOT_FRACTION = 0.8

REQUESTS = 400
CLIENTS = 8
QUICK_REQUESTS = 60
QUICK_CLIENTS = 4

#: identical-mix stampede row: N clients fire the *same* cold shape
#: concurrently, per round over fresh shapes.  With the pre-admission
#: batcher on, each round must cost one admission slot and one compile.
STAMPEDE_CLIENTS = 8
STAMPEDE_ROUNDS = 4
QUICK_STAMPEDE_ROUNDS = 2
STAMPEDE_WINDOW_S = 0.025


def _schedule(n_requests: int, seed: int):
    """The deterministic request schedule: ~80% hot, ~20% cold distinct.

    Cold shapes get sizes no warm shape uses (odd sizes starting at 17),
    each one unique, so a cold request can never be accidentally warm.
    """
    n_cold = max(1, round(n_requests * (1.0 - HOT_FRACTION)))
    n_hot = n_requests - n_cold
    rng = random.Random(seed)
    reqs = []
    for i in range(n_hot):
        k, t, s = HOT_SHAPES[i % len(HOT_SHAPES)]
        reqs.append({"kind": "hot", "kernel": k, "target": t, "size": s})
    for i in range(n_cold):
        reqs.append({
            "kind": "cold",
            "kernel": COLD_KERNELS[i % len(COLD_KERNELS)],
            "target": COLD_TARGETS[i % len(COLD_TARGETS)],
            "size": 17 + 2 * i,
        })
    rng.shuffle(reqs)
    return reqs


def percentile_from_histogram(hist: dict, q: float):
    """``q``-th percentile (0..1) from a bucketed histogram snapshot.

    ``counts[i]`` counts observations ``<= bounds[i]`` (final slot is
    the +Inf overflow).  Linear interpolation inside the straddling
    bucket; the overflow bucket interpolates toward the recorded max.
    This is the same estimate a metrics backend computes from the same
    counts — the point of reading latency off the spine instead of a
    private stopwatch.
    """
    total = hist["count"]
    if not total:
        return None
    bounds, counts = hist["bounds"], hist["counts"]
    observed_max = hist["max"]
    target = q * total
    cum = 0.0
    lo = 0.0
    for i, c in enumerate(counts):
        if c and cum + c >= target:
            if i < len(bounds):
                hi = bounds[i]
            else:  # overflow bucket: cap at the observed max
                hi = observed_max if observed_max is not None else lo
            est = lo + (target - cum) / c * (max(hi, lo) - lo)
            # Interpolation can overshoot the true tail inside a sparse
            # bucket; the recorded max is a hard ceiling.
            return min(est, observed_max) if observed_max is not None else est
        cum += c
        if i < len(bounds):
            lo = bounds[i]
    return observed_max


def _drive(address, schedule, n_clients: int, seed: int):
    """Fan the schedule across ``n_clients`` persistent-connection
    clients; returns (elapsed_s, per-kind response tallies, errors)."""
    from repro.service.client import GatewayClient

    chunks = [schedule[i::n_clients] for i in range(n_clients)]
    tallies = []
    errors = []
    lock = threading.Lock()

    def worker(idx: int, chunk) -> None:
        tally = {"hot": 0, "cold": 0, "hot_warm": 0, "not_ok": []}
        client = GatewayClient(
            [address], retries=2, backoff_base=0.005, backoff_cap=0.1,
            seed=seed + idx,
        )
        try:
            for req in chunk:
                resp = client.compile_run(
                    req["kernel"], flow=FLOW, target=req["target"],
                    size=req["size"],
                )
                tally[req["kind"]] += 1
                if resp.get("status") != "ok":
                    tally["not_ok"].append(
                        (resp.get("status"), resp.get("error"))
                    )
                elif req["kind"] == "hot" and resp.get("from_cache"):
                    tally["hot_warm"] += 1
        except Exception as exc:  # surfaced, never swallowed
            with lock:
                errors.append(f"client {idx}: {type(exc).__name__}: {exc}")
        finally:
            client.close()
        with lock:
            tallies.append(tally)

    threads = [
        threading.Thread(target=worker, args=(i, chunk), daemon=True)
        for i, chunk in enumerate(chunks) if chunk
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    merged = {"hot": 0, "cold": 0, "hot_warm": 0, "not_ok": []}
    for t in tallies:
        merged["hot"] += t["hot"]
        merged["cold"] += t["cold"]
        merged["hot_warm"] += t["hot_warm"]
        merged["not_ok"].extend(t["not_ok"])
    return elapsed, merged, errors


def measure(n_requests=REQUESTS, n_clients=CLIENTS, seed=0,
            trace_out=None):
    """One full load run; returns the BENCH_gateway.json payload."""
    from repro import obs
    from repro.service import KernelService, ThreadedGateway
    from repro.service.client import GatewayClient

    schedule = _schedule(n_requests, seed)
    n_hot = sum(1 for r in schedule if r["kind"] == "hot")
    n_cold = len(schedule) - n_hot

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-gw-")
    try:
        with obs.recording(trace=trace_out is not None, metrics=True) as ob:
            svc = KernelService(
                cache_dir=cache_dir, workers=max(8, n_clients),
                farm_workers=0, queue_limit=max(64, n_requests),
            )
            gw = ThreadedGateway(
                svc, max_inflight=max(64, 2 * n_clients),
                handler_threads=max(8, n_clients),
            )
            try:
                address = "%s:%d" % gw.address
                # Pre-warm the hot set through the wire (not counted).
                warmup = GatewayClient([address], seed=seed)
                for k, t, s in HOT_SHAPES:
                    resp = warmup.compile_run(k, flow=FLOW, target=t, size=s)
                    assert resp["status"] == "ok", resp
                warmup.close()
                warm_hist = ob.metrics_snapshot().get(
                    "gateway.request_seconds", {"count": 0}
                )
                warm_served = warm_hist["count"]

                elapsed, tally, errors = _drive(
                    address, schedule, n_clients, seed
                )
                gw_stats = gw.stats()
            finally:
                gw.close()
                svc.close()
            hist = ob.metrics_snapshot()["gateway.request_seconds"]
            if trace_out is not None:
                ob.write_trace(trace_out)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Subtract the warmup requests so percentiles cover the load run
    # only where possible; counts are cumulative, so report both.
    load_count = hist["count"] - warm_served
    assert not errors, errors
    assert not tally["not_ok"], tally["not_ok"]
    assert load_count == n_requests, (load_count, n_requests)
    assert gw_stats["frame_errors"] == 0, gw_stats
    assert gw_stats["rejected_overload"] == 0, gw_stats

    return {
        "benchmark": "gateway",
        "flow": FLOW,
        "requests": n_requests,
        "clients": n_clients,
        "seed": seed,
        "hot": {
            "offered": n_hot,
            "served": tally["hot"],
            "warm_hits": tally["hot_warm"],
            "shapes": [list(s) for s in HOT_SHAPES],
        },
        "cold": {"offered": n_cold, "served": tally["cold"]},
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(n_requests / elapsed, 1),
        "latency": {
            "source": "gateway.request_seconds histogram "
                      "(bucket interpolation; includes warmup in counts)",
            "count": hist["count"],
            "p50_ms": round(
                percentile_from_histogram(hist, 0.50) * 1e3, 3),
            "p90_ms": round(
                percentile_from_histogram(hist, 0.90) * 1e3, 3),
            "p99_ms": round(
                percentile_from_histogram(hist, 0.99) * 1e3, 3),
            "mean_ms": round(hist["sum"] / hist["count"] * 1e3, 3),
            "max_ms": round(hist["max"] * 1e3, 3),
        },
        "gateway": {
            "served": gw_stats["served"],
            "peak_inflight": gw_stats["peak_inflight"],
            "max_inflight": gw_stats["max_inflight"],
            "rejected_overload": gw_stats["rejected_overload"],
            "rejected_drain": gw_stats["rejected_drain"],
            "frame_errors": gw_stats["frame_errors"],
            "conn_resets": gw_stats["conn_resets"],
            "connections": gw_stats["connections"],
        },
    }


def _stampede_once(n_clients: int, rounds: int, seed: int,
                   batch_window_s: float) -> dict:
    """One stampede run: per round, ``n_clients`` concurrent identical
    cold requests; returns tallies read off the observability spine."""
    from repro import obs
    from repro.service import KernelService, ThreadedGateway
    from repro.service.client import GatewayClient
    from repro.service.wire import encode_payload

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-stampede-")
    try:
        with obs.recording(trace=False, metrics=True) as ob:
            svc = KernelService(
                cache_dir=cache_dir, workers=max(8, n_clients),
                farm_workers=0, queue_limit=max(64, 4 * n_clients),
            )
            gw = ThreadedGateway(
                svc, max_inflight=max(64, 2 * n_clients),
                handler_threads=max(8, n_clients),
                batch_window_s=batch_window_s,
                batch_max=max(16, n_clients),
            )
            try:
                address = "%s:%d" % gw.address
                clients = [
                    GatewayClient([address], retries=2, seed=seed + i)
                    for i in range(n_clients)
                ]
                # Establish every connection up front so the TCP
                # handshake never eats into the batch window.
                for c in clients:
                    assert c.ready()
                identical = 0
                start = time.perf_counter()
                for r in range(rounds):
                    kernel = COLD_KERNELS[r % len(COLD_KERNELS)]
                    size = 101 + 2 * r  # odd, never warmed elsewhere
                    results = [None] * n_clients
                    errors = []
                    barrier = threading.Barrier(n_clients)

                    def fire(i, kernel=kernel, size=size,
                             results=results, errors=errors,
                             barrier=barrier):
                        try:
                            barrier.wait()
                            results[i] = clients[i].compile_run(
                                kernel, flow=FLOW, target="sse", size=size,
                            )
                        except Exception as exc:  # surfaced below
                            errors.append(
                                f"client {i}: {type(exc).__name__}: {exc}"
                            )

                    threads = [
                        threading.Thread(target=fire, args=(i,), daemon=True)
                        for i in range(n_clients)
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()
                    assert not errors, errors
                    statuses = [r.get("status") for r in results]
                    assert statuses == ["ok"] * n_clients, statuses
                    # The stampede-proof byte-identity check: every
                    # waiter of the round saw the same canonical payload.
                    if len({encode_payload(r) for r in results}) == 1:
                        identical += 1
                elapsed = time.perf_counter() - start
                for c in clients:
                    c.close()
                gw_stats = gw.stats()
                adm = svc.admission.stats()
            finally:
                gw.close()
                svc.close()
            snap = ob.metrics_snapshot()
            hist = snap.get("gateway.request_seconds", {"count": 0})
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    total = rounds * n_clients
    assert gw_stats["frame_errors"] == 0, gw_stats
    assert hist["count"] == total, (hist["count"], total)
    p99 = percentile_from_histogram(hist, 0.99)
    return {
        "batch_window_ms": round(batch_window_s * 1e3, 3),
        "rounds": rounds,
        "clients": n_clients,
        "requests": total,
        "identical_payload_rounds": identical,
        "compiles": snap.get("jit.compiles", {}).get("value", 0),
        "admitted": adm["admitted"],
        "batched": adm["batched"],
        "batch_merged": gw_stats["batch.merged"],
        "batch_flushed": gw_stats["batch.flushed"],
        "elapsed_s": round(elapsed, 4),
        "p50_ms": round(percentile_from_histogram(hist, 0.50) * 1e3, 3),
        "p99_ms": round(p99 * 1e3, 3) if p99 is not None else None,
    }


def measure_stampede(n_clients=STAMPEDE_CLIENTS, rounds=STAMPEDE_ROUNDS,
                     seed=0) -> dict:
    """The identical-mix stampede row: the same storm twice — batched
    (one admission slot + one compile per round) vs. unbatched (one
    admission slot per *client*; single-flight still dedups compiles).

    The batched run must prove the merge: exactly ``rounds`` admissions
    and ``rounds`` compiles for ``rounds * n_clients`` requests, with
    byte-identical payloads inside every round.
    """
    batched = _stampede_once(n_clients, rounds, seed,
                             batch_window_s=STAMPEDE_WINDOW_S)
    unbatched = _stampede_once(n_clients, rounds, seed,
                               batch_window_s=0.0)

    # The stampede proof (acceptance criteria): per round of N identical
    # requests, the batched gateway spends one admission slot and one
    # compile, and every waiter reads the same bytes.
    assert batched["compiles"] == rounds, batched
    assert batched["admitted"] == rounds, batched
    assert batched["batched"] == rounds * (n_clients - 1), batched
    assert batched["identical_payload_rounds"] == rounds, batched
    # Unbatched: every client burns its own admission slot (single-
    # flight still coalesces the compiles downstream).
    assert unbatched["admitted"] == rounds * n_clients, unbatched
    assert unbatched["compiles"] == rounds, unbatched

    return {
        "clients_per_round": n_clients,
        "rounds": rounds,
        "admissions_per_round": {
            "batched": batched["admitted"] / rounds,
            "unbatched": unbatched["admitted"] / rounds,
        },
        "stampede_ratio": n_clients / (batched["admitted"] / rounds),
        "batched": batched,
        "unbatched": unbatched,
    }


def _print(payload) -> None:
    lat = payload["latency"]
    hot, cold = payload["hot"], payload["cold"]
    print(f"gateway load: {payload['requests']} requests "
          f"({hot['offered']} hot / {cold['offered']} cold) from "
          f"{payload['clients']} clients -> "
          f"{payload['throughput_rps']:.1f} req/s")
    print(f"  hot warm hits: {hot['warm_hits']}/{hot['served']}")
    print(f"  latency (from gateway.request_seconds): "
          f"p50={lat['p50_ms']:.2f}ms p90={lat['p90_ms']:.2f}ms "
          f"p99={lat['p99_ms']:.2f}ms max={lat['max_ms']:.2f}ms")
    gw = payload["gateway"]
    print(f"  gateway: peak_inflight={gw['peak_inflight']}/"
          f"{gw['max_inflight']}, frame_errors={gw['frame_errors']}, "
          f"sheds={gw['rejected_overload']}")
    st = payload.get("stampede")
    if st:
        b, u = st["batched"], st["unbatched"]
        print(f"  stampede ({st['clients_per_round']} clients x "
              f"{st['rounds']} identical rounds): "
              f"batched {b['admitted']} admissions / {b['compiles']} "
              f"compiles (p99={b['p99_ms']:.2f}ms) vs unbatched "
              f"{u['admitted']} admissions / {u['compiles']} compiles "
              f"(p99={u['p99_ms']:.2f}ms); "
              f"ratio {st['stampede_ratio']:.1f}x")


def test_gateway_stampede(benchmark):
    """pytest-benchmark entry: the identical-mix stampede proof."""
    from conftest import once

    st = once(
        benchmark,
        lambda: measure_stampede(STAMPEDE_CLIENTS, QUICK_STAMPEDE_ROUNDS,
                                 seed=0),
    )
    benchmark.extra_info["stampede_ratio"] = st["stampede_ratio"]
    assert st["stampede_ratio"] >= 4.0, st


def test_gateway_latency(benchmark):
    """pytest-benchmark entry: quick heavy-tail run, spine percentiles."""
    from conftest import once

    payload = once(
        benchmark,
        lambda: measure(QUICK_REQUESTS, QUICK_CLIENTS, seed=0),
    )
    print()
    _print(payload)
    benchmark.extra_info["p99_ms"] = payload["latency"]["p99_ms"]
    # Every hot request after pre-warm must actually be warm, the tail
    # must be ordered (p50 <= p99), and the wire must stay clean.
    assert payload["hot"]["warm_hits"] == payload["hot"]["served"]
    assert payload["latency"]["p50_ms"] <= payload["latency"]["p99_ms"]
    assert payload["gateway"]["frame_errors"] == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_gateway.json")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="also write the gateway trace (JSONL spans)")
    parser.add_argument("--quick", action="store_true",
                        help="small schedule (CI smoke)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="exit non-zero if p99 exceeds this")
    parser.add_argument("--min-stampede-ratio", type=float, default=None,
                        help="exit non-zero if the identical-mix batched "
                        "run admits more than clients/RATIO requests per "
                        "round")
    args = parser.parse_args(argv)

    n_requests = args.requests or (QUICK_REQUESTS if args.quick else REQUESTS)
    n_clients = args.clients or (QUICK_CLIENTS if args.quick else CLIENTS)
    payload = measure(n_requests, n_clients, seed=args.seed,
                      trace_out=args.trace_out)
    rounds = QUICK_STAMPEDE_ROUNDS if args.quick else STAMPEDE_ROUNDS
    payload["stampede"] = measure_stampede(
        STAMPEDE_CLIENTS, rounds, seed=args.seed
    )
    _print(payload)

    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    if args.trace_out:
        print(f"wrote {args.trace_out}")

    p99 = payload["latency"]["p99_ms"]
    if args.max_p99_ms is not None and p99 > args.max_p99_ms:
        print(f"FAIL: p99 {p99:.2f}ms > {args.max_p99_ms:.2f}ms",
              file=sys.stderr)
        return 1
    ratio = payload["stampede"]["stampede_ratio"]
    if args.min_stampede_ratio is not None and (
            ratio < args.min_stampede_ratio):
        print(f"FAIL: stampede ratio {ratio:.1f}x < "
              f"{args.min_stampede_ratio:.1f}x "
              f"(batched identical mix admitted too much)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
