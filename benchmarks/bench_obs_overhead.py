"""Observability overhead: the <5% disabled-mode budget, measured.

The spine's first design constraint (``docs/observability.md`` §5) is
that tracing and metrics cost *near nothing when off*: with no recorder
installed, :func:`repro.obs.span` is one global ``None`` check returning
the shared ``NULL_SPAN``, and each metric feed is one ``None`` check.
``repro.api.execute_phase`` is the single instrumented VM call site —
the engines themselves stay raw — so the overhead is measurable as the
ratio between the instrumented call and the raw engine call on the same
workload.

This file measures exactly that, with the same interleaved best-of-N
protocol as ``bench_vm_throughput.py`` (alternating samples so host
contention hits both paths alike):

* **raw** — ``ck.threaded().run(...)``: the uninstrumented engine.
* **disabled** — ``api.execute_phase(...)`` with no recorder installed:
  the NULL_SPAN path.  Budgeted **<5%** over raw; CI runs ``--quick
  --max-disabled-overhead 5`` and fails the build on a breach.
* **enabled** — the same call under ``obs.recording()``: a real span
  plus three counter feeds per run.  Reported for reference only; a
  requested trace is allowed to cost more.

Standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --out BENCH_obs.json

or through pytest-benchmark (``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

#: same quick subset as the VM-throughput bench: one O(n) kernel at a
#: scaled size plus the O(n^3) MMM, so per-run dispatch dominates and a
#: per-call overhead (what this file measures) shows up as a ratio.
BENCH_KERNELS = ("saxpy_fp", "dissolve_fp", "sfir_fp", "MMM_fp")
QUICK_KERNELS = ("saxpy_fp", "MMM_fp")

FLOW = "split_vec_gcc4cli"
TARGET = "sse"
ENGINE = "threaded"
SIZE_SCALE = 16  # match bench_vm_throughput: steady state over setup


def _bench_size(kernel, size):
    if size is not None:
        return size
    if kernel.name.startswith("MMM"):
        return None
    return kernel.default_size * SIZE_SCALE


def _best_of_interleaved(repeats, *fns):
    """Best-of-``repeats`` for competing callables, sampled in
    alternation (same protocol as ``bench_vm_throughput.py``)."""
    best = [math.inf] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def measure(kernel_names=BENCH_KERNELS, size=None, repeats=5):
    """Time raw vs disabled vs enabled; returns the payload dict."""
    from repro import obs
    from repro.api import execute_phase
    from repro.harness.flows import FlowRunner
    from repro.kernels import get_kernel
    from repro.targets import get_target

    # The disabled-path numbers are only honest with nothing installed.
    assert obs.trace.active_tracer() is None, "recorder already installed"

    runner = FlowRunner()
    target = get_target(TARGET)
    rows = []
    for name in kernel_names:
        kernel = get_kernel(name)
        inst = kernel.instantiate(_bench_size(kernel, size))
        ck = runner.compiled(inst, FLOW, target)
        code = ck.threaded()  # translate once, outside the timing

        def raw():
            return code.run(inst.scalar_args, runner.make_buffers(inst))

        def disabled():
            return execute_phase(ck, inst.scalar_args,
                                 runner.make_buffers(inst), engine=ENGINE)

        def enabled():
            with obs.recording():
                return execute_phase(ck, inst.scalar_args,
                                     runner.make_buffers(inst), engine=ENGINE)

        probe = raw()  # warm both the engine and the buffers path
        t_raw, t_dis, t_en = _best_of_interleaved(
            repeats, raw, disabled, enabled)
        rows.append({
            "kernel": name,
            "flow": FLOW,
            "target": TARGET,
            "instructions": probe.instructions,
            "raw_seconds": round(t_raw, 6),
            "disabled_seconds": round(t_dis, 6),
            "enabled_seconds": round(t_en, 6),
            "disabled_overhead_pct": round(100.0 * (t_dis / t_raw - 1.0), 2),
            "enabled_overhead_pct": round(100.0 * (t_en / t_raw - 1.0), 2),
        })

    total_raw = sum(r["raw_seconds"] for r in rows)
    total_dis = sum(r["disabled_seconds"] for r in rows)
    total_en = sum(r["enabled_seconds"] for r in rows)
    return {
        "benchmark": "obs_overhead",
        "paths": ["raw", "disabled", "enabled"],
        "engine": ENGINE,
        "rows": rows,
        "aggregate_disabled_overhead_pct": round(
            100.0 * (total_dis / total_raw - 1.0), 2),
        "aggregate_enabled_overhead_pct": round(
            100.0 * (total_en / total_raw - 1.0), 2),
        "budget_disabled_pct": 5.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--quick", action="store_true",
                        help="two kernels, fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--max-disabled-overhead", type=float, default=None,
                        help="exit non-zero if the aggregate disabled-mode "
                             "overhead (percent) exceeds this")
    args = parser.parse_args(argv)

    kernels = QUICK_KERNELS if args.quick else BENCH_KERNELS
    repeats = 3 if args.quick else args.repeats
    payload = measure(kernels, size=args.size, repeats=repeats)

    for r in payload["rows"]:
        print(f"{r['kernel']:14s} raw {r['raw_seconds']*1e3:8.3f}ms  "
              f"disabled {r['disabled_overhead_pct']:+6.2f}%  "
              f"enabled {r['enabled_overhead_pct']:+6.2f}%")
    print(f"aggregate: disabled "
          f"{payload['aggregate_disabled_overhead_pct']:+.2f}%  enabled "
          f"{payload['aggregate_enabled_overhead_pct']:+.2f}%  "
          f"(budget: disabled < {payload['budget_disabled_pct']:.0f}%)")

    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")

    if (args.max_disabled_overhead is not None
            and payload["aggregate_disabled_overhead_pct"]
            > args.max_disabled_overhead):
        print(f"FAIL: disabled-mode overhead "
              f"{payload['aggregate_disabled_overhead_pct']}% > "
              f"{args.max_disabled_overhead}%", file=sys.stderr)
        return 1
    return 0


def test_obs_overhead(benchmark):
    """pytest-benchmark entry: one timed pass over the quick kernel set."""
    from conftest import once

    payload = once(benchmark, lambda: measure(QUICK_KERNELS, repeats=3))
    benchmark.extra_info["disabled_overhead_pct"] = (
        payload["aggregate_disabled_overhead_pct"])
    benchmark.extra_info["enabled_overhead_pct"] = (
        payload["aggregate_enabled_overhead_pct"])
    # The spine's contract: near-free when off (generous CI-noise floor;
    # the standalone gate in CI uses the real 5% budget).
    assert payload["aggregate_disabled_overhead_pct"] < 15.0


if __name__ == "__main__":
    raise SystemExit(main())
