"""§VII future work, implemented and measured: runtime specialization.

"In the future, we wish to extend our framework to take full advantage of
online compilation, leveraging dynamic context and workload information
for improved specialization."

The online compiler binds observed scalar arguments (the trip count) to
constants and recompiles: the split-layer bound/peel arithmetic folds, and
for VF-divisible trip counts the epilogue loop disappears entirely.  The
gain accrues only to the *optimizing* JIT — the Mono-like JIT cannot fold,
which quantifies why the paper frames specialization as an online-strength
opportunity.
"""

import statistics

from conftest import once
from repro.harness.report import table
from repro.jit import MonoJIT, OptimizingJIT, specialize_scalars
from repro.kernels import get_kernel
from repro.machine import VM
from repro.targets import SSE

KERNELS = ("sfir_fp", "saxpy_fp", "dscal_fp", "dissolve_fp", "sfir_s16")


def _cycles(runner, inst, fn, jit, args):
    ck = jit.compile(fn, SSE)
    bufs = runner.make_buffers(inst)
    res = VM(SSE).run(ck.mfunc, args, bufs)
    runner.verify(inst, bufs, res.value)
    return res.cycles


def test_specialization(benchmark, runner):
    def experiment():
        rows = []
        for name in KERNELS:
            inst = get_kernel(name).instantiate(512)
            vec = runner.split_ir(inst)
            spec = specialize_scalars(vec, {"n": 512})
            spec_args = {
                k: v for k, v in inst.scalar_args.items() if k != "n"
            }
            opt_g = _cycles(runner, inst, vec, OptimizingJIT(), inst.scalar_args)
            opt_s = _cycles(runner, inst, spec, OptimizingJIT(), spec_args)
            mono_g = _cycles(runner, inst, vec, MonoJIT(), inst.scalar_args)
            mono_s = _cycles(runner, inst, spec, MonoJIT(), spec_args)
            rows.append((name, opt_g / opt_s, mono_g / mono_s))
        return rows

    rows = once(benchmark, experiment)
    print()
    print("Runtime specialization on n=512 (speedup over generic bytecode)")
    print(table(["kernel", "optimizing JIT", "mono JIT"], rows))
    opt_gain = statistics.fmean(r[1] for r in rows)
    print(f"\naverage optimizing-JIT gain: {opt_gain:.3f}x")
    benchmark.extra_info["opt_gains"] = {r[0]: round(r[1], 3) for r in rows}

    assert opt_gain > 1.02
    # The lightweight JIT cannot exploit the constants.
    assert all(0.97 <= r[2] <= 1.03 for r in rows)
    # No kernel regresses under specialization.
    assert all(r[1] >= 0.99 for r in rows)
