"""JIT service benchmark: warm vs cold compile latency, requests/sec.

The resilience PR's service thesis is that the crash-safe kernel cache
converts the online JIT's per-request compile cost into a one-time cost
per (bytecode, target, compiler) key: a *cold* request pays frontend +
vectorizer + JIT + cache put, a *warm* request pays a checksum-verified
cache read.  This bench measures both paths through the public
:class:`repro.service.KernelService` API — a second service instance over
the same cache directory, so the warm numbers include the cross-process
pickle/verify cost, not just a dict hit — plus the sustained batch
throughput of the multi-threaded request path.

Standalone::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json

or through pytest-benchmark (``pytest benchmarks/bench_service.py``).
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
import tempfile
import time

BENCH_KERNELS = (
    "saxpy_fp", "dscal_fp", "interp_fp", "sfir_fp",
    "dissolve_fp", "sfir_s16",
)
QUICK_KERNELS = ("saxpy_fp", "dscal_fp")

FLOW = "split_vec_gcc4cli"
TARGET = "sse"
SIZE = 64


def _best_of(repeats, fn):
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(kernel_names=BENCH_KERNELS, repeats=3, batch=64):
    """Time cold vs warm service requests; returns the payload dict."""
    from repro.service import KernelService, ServiceRequest

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    rows = []
    try:
        # -- cold: empty cache, each request compiles and puts ------------
        cold_svc = KernelService(cache_dir=cache_dir)
        cold_s = {}
        try:
            for name in kernel_names:
                req = ServiceRequest(name, flow=FLOW, target=TARGET,
                                     size=SIZE)
                start = time.perf_counter()
                resp = cold_svc.handle(req)
                cold_s[name] = time.perf_counter() - start
                assert resp.ok and not resp.from_cache, resp.status
        finally:
            cold_svc.close()

        # -- warm: a *fresh* service over the same directory --------------
        # (queue sized to the batch: this measures throughput, not the
        # admission controller — bench_service is not a load test)
        warm_svc = KernelService(cache_dir=cache_dir,
                                 queue_limit=max(32, batch))
        try:
            for name in kernel_names:
                req = ServiceRequest(name, flow=FLOW, target=TARGET,
                                     size=SIZE)
                first = warm_svc.handle(req)
                assert first.ok and first.from_cache, (
                    f"{name}: expected a warm hit, got "
                    f"{first.status}/from_cache={first.from_cache}"
                )
                warm = _best_of(
                    repeats, lambda r=req: warm_svc.handle(r)
                )
                rows.append({
                    "kernel": name,
                    "flow": FLOW,
                    "target": TARGET,
                    "cold_ms": round(cold_s[name] * 1e3, 3),
                    "warm_ms": round(warm * 1e3, 3),
                    "speedup": round(cold_s[name] / warm, 2),
                })

            # -- throughput: a mixed warm batch through the pool ----------
            reqs = [
                ServiceRequest(
                    kernel_names[i % len(kernel_names)],
                    flow=FLOW, target=TARGET, size=SIZE,
                )
                for i in range(batch)
            ]
            start = time.perf_counter()
            responses = warm_svc.serve(reqs)
            elapsed = time.perf_counter() - start
            assert all(r.ok for r in responses)
            rps = len(responses) / elapsed
            stats = warm_svc.stats()
        finally:
            warm_svc.close()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    geomean = math.exp(
        sum(math.log(r["speedup"]) for r in rows) / len(rows)
    )
    return {
        "benchmark": "service",
        "flow": FLOW,
        "target": TARGET,
        "rows": rows,
        "cold_ms_total": round(sum(r["cold_ms"] for r in rows), 3),
        "warm_ms_total": round(sum(r["warm_ms"] for r in rows), 3),
        "geomean_warm_speedup": round(geomean, 2),
        "batch_requests": batch,
        "batch_seconds": round(elapsed, 4),
        "requests_per_second": round(rps, 1),
        "cache_hit_ratio": round(stats["cache"]["hit_ratio"], 3),
    }


def _print(payload) -> None:
    for r in payload["rows"]:
        print(f"{r['kernel']:14s} cold {r['cold_ms']:>8.2f}ms  "
              f"warm {r['warm_ms']:>7.2f}ms  {r['speedup']:.2f}x")
    print(f"geomean warm speedup: {payload['geomean_warm_speedup']:.2f}x")
    print(f"throughput: {payload['batch_requests']} requests in "
          f"{payload['batch_seconds']:.3f}s = "
          f"{payload['requests_per_second']:.0f} req/s "
          f"(hit ratio {payload['cache_hit_ratio']:.2f})")


def test_service_latency(benchmark):
    """pytest-benchmark entry: regenerate the warm/cold latency table."""
    from conftest import once

    payload = once(benchmark, lambda: measure(QUICK_KERNELS, repeats=2,
                                              batch=16))
    print()
    _print(payload)
    benchmark.extra_info["geomean_warm_speedup"] = payload[
        "geomean_warm_speedup"
    ]
    # The cache must actually pay: a warm request skips the vectorizer
    # and the JIT, so it cannot plausibly be slower than a cold compile.
    assert payload["geomean_warm_speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--quick", action="store_true",
                        help="two kernels, small batch (CI smoke)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if geomean warm speedup is "
                        "below this")
    args = parser.parse_args(argv)

    kernels = QUICK_KERNELS if args.quick else BENCH_KERNELS
    batch = 16 if args.quick else args.batch
    payload = measure(kernels, repeats=args.repeats, batch=batch)
    _print(payload)

    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")

    if (
        args.min_speedup is not None
        and payload["geomean_warm_speedup"] < args.min_speedup
    ):
        print(f"FAIL: geomean warm speedup "
              f"{payload['geomean_warm_speedup']:.2f}x < "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
