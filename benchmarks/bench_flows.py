"""Wall-clock benchmarks of the toolchain itself.

Unlike the figure/table benches (which report simulated cycles), these
measure real Python wall-clock for the pipeline's stages on a
representative kernel — offline vectorization, bytecode encode/decode, JIT
compilation, and VM execution — so regressions in the *implementation* are
visible.  The JIT-time numbers also back the paper's "JIT compile times are
indeed very small" claim at our scale.
"""

import pytest

from repro.bytecode import decode_function, encode_function
from repro.frontend import compile_source
from repro.jit import MonoJIT, OptimizingJIT
from repro.kernels import get_kernel
from repro.machine import VM
from repro.targets import ALTIVEC, SSE
from repro.vectorizer import split_config, vectorize_function


@pytest.fixture(scope="module")
def sfir():
    inst = get_kernel("sfir_fp").instantiate()
    scalar = compile_source(inst.source)[inst.entry]
    vec = vectorize_function(scalar, split_config())
    return inst, scalar, vec


def test_offline_vectorize_time(benchmark, sfir):
    inst, scalar, _ = sfir
    benchmark(lambda: vectorize_function(scalar, split_config()))


def test_bytecode_encode_time(benchmark, sfir):
    _, _, vec = sfir
    blob = benchmark(lambda: encode_function(vec))
    assert len(blob) > 100


def test_bytecode_decode_time(benchmark, sfir):
    _, _, vec = sfir
    blob = encode_function(vec)
    benchmark(lambda: decode_function(blob))


@pytest.mark.parametrize("jit_cls", [MonoJIT, OptimizingJIT],
                         ids=["mono", "gcc4cli"])
def test_jit_compile_time(benchmark, sfir, jit_cls):
    _, _, vec = sfir
    ck = benchmark(lambda: jit_cls().compile(vec, SSE))
    assert ck.stats["minstrs"] > 0


@pytest.mark.parametrize("target", [SSE, ALTIVEC], ids=["sse", "altivec"])
def test_vm_execution_time(benchmark, runner, sfir, target):
    inst, _, vec = sfir
    ck = OptimizingJIT().compile(vec, target)

    def run():
        bufs = runner.make_buffers(inst)
        return VM(target).run(ck.mfunc, inst.scalar_args, bufs)

    res = benchmark(run)
    assert res.cycles > 0
