"""E3/E4/E5/E10 — Figure 6: split-vectorized time normalized to native.

Regenerates Figure 6(a) SSE, 6(b) AltiVec, 6(c) NEON: D/F for all 32
kernels plus the harmonic mean.  Paper shape: "for all targets, we obtain
harmonic means in the range of 0.8x to 1x", with mix-streams faster than
native (versioning gives the JIT the aligned version) and sad slower
(unresolvable runtime guard); dscal_dp/saxpy_dp scalarize on AltiVec
without penalty (E10).
"""

import pytest

from conftest import once
from repro.harness import figure6, format_figure6


@pytest.mark.parametrize("target", ["sse", "altivec", "neon"])
def test_figure6(benchmark, runner, target):
    result = once(benchmark, lambda: figure6(target, runner=runner))
    print()
    print(format_figure6(result))
    values = dict(result.rows)
    benchmark.extra_info["rows"] = {k: round(v, 3) for k, v in result.rows}
    benchmark.extra_info["harmonic_mean"] = round(result.harmonic_mean, 3)

    # Paper shape: harmonic mean in [0.8, 1.05]-ish.
    assert 0.75 <= result.harmonic_mean <= 1.10
    # Most kernels are within 10% of native.
    close = sum(1 for v in values.values() if 0.9 <= v <= 1.1)
    assert close >= len(values) * 0.7
    if target == "sse":
        assert values["mix_streams_s16"] < 0.95  # split beats native
        assert values["sad_s8"] > 1.02           # guard penalty
    # lu/seidel run scalar in both flows: ratio ~1.
    assert 0.95 <= values["lu_fp"] <= 1.05
    assert 0.95 <= values["seidel_fp"] <= 1.05
