"""VM engine throughput: reference interpreter vs threaded vs codegen.

Measures wall-clock and instructions/second for the same compiled kernels
under the decode-per-instruction reference interpreter
(:class:`repro.machine.VM`), the pre-decoded threaded engine
(:mod:`repro.machine.threaded`), and the source-generating codegen engine
(:mod:`repro.machine.codegen`).  All three are differential-tested to be
bit-identical (``tests/test_threaded_vm.py``), so this file measures the
*only* way they are allowed to differ: host-machine speed.

Standalone::

    PYTHONPATH=src python benchmarks/bench_vm_throughput.py --out BENCH_vm.json

or through pytest-benchmark (``pytest benchmarks/bench_vm_throughput.py``).
The JSON payload records per-kernel seconds, instructions/second for both
engines, the one-time translation cost, and the geometric-mean speedup.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

#: loop-heavy fp kernels (the Table 3 subset): the steady-state dispatch
#: cost dominates, which is what an engine benchmark should measure.
BENCH_KERNELS = (
    "dissolve_fp", "sfir_fp", "interp_fp", "MMM_fp",
    "saxpy_fp", "dscal_fp", "saxpy_dp", "dscal_dp",
)
QUICK_KERNELS = ("saxpy_fp", "MMM_fp")

FLOW = "split_vec_gcc4cli"
TARGET = "sse"

#: engine throughput needs steady-state dispatch to dominate per-run setup,
#: so the O(n) kernels run at 16x their default problem size (a few
#: milliseconds each); MMM is O(n^3) and already long at its default.
BENCH_SIZE_SCALE = 16


def _bench_size(kernel, size):
    if size is not None:
        return size
    if kernel.name.startswith("MMM"):
        return None
    return kernel.default_size * BENCH_SIZE_SCALE


def _best_of_interleaved(repeats, *fns):
    """Best-of-``repeats`` for competing functions, sampled in alternation
    so host contention (this is often a noisy shared box) hits every
    engine alike rather than whichever ran last."""
    best = [math.inf] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def measure(kernel_names=BENCH_KERNELS, size=None, repeats=3):
    """Time both engines over ``kernel_names``; returns the payload dict."""
    from repro.harness.flows import FlowRunner
    from repro.kernels import get_kernel
    from repro.machine import VM
    from repro.targets import get_target

    runner = FlowRunner()
    target = get_target(TARGET)
    rows = []
    for name in kernel_names:
        kernel = get_kernel(name)
        inst = kernel.instantiate(_bench_size(kernel, size))
        ck = runner.compiled(inst, FLOW, target)

        # translation is one-time; report it but keep it out of the
        # steady-state timing (CompiledKernel caches it, like a sweep does)
        t_translate_start = time.perf_counter()
        code = ck.translated("threaded")
        t_translate = time.perf_counter() - t_translate_start
        t_cg_start = time.perf_counter()
        cg = ck.translated("codegen")
        t_cg_translate = time.perf_counter() - t_cg_start

        probe = code.run(inst.scalar_args, runner.make_buffers(inst))
        instructions = probe.instructions
        # warm the remaining paths too
        cg.run(inst.scalar_args, runner.make_buffers(inst))
        VM(target).run(
            ck.mfunc, inst.scalar_args, runner.make_buffers(inst)
        )

        t_ref, t_thr, t_cg = _best_of_interleaved(
            repeats,
            lambda: VM(target).run(
                ck.mfunc, inst.scalar_args, runner.make_buffers(inst)
            ),
            lambda: code.run(inst.scalar_args, runner.make_buffers(inst)),
            lambda: cg.run(inst.scalar_args, runner.make_buffers(inst)),
        )
        rows.append({
            "kernel": name,
            "flow": FLOW,
            "target": TARGET,
            "instructions": instructions,
            "reference_seconds": round(t_ref, 6),
            "threaded_seconds": round(t_thr, 6),
            "codegen_seconds": round(t_cg, 6),
            "translate_seconds": round(t_translate, 6),
            "codegen_translate_seconds": round(t_cg_translate, 6),
            "reference_ips": round(instructions / t_ref),
            "threaded_ips": round(instructions / t_thr),
            "codegen_ips": round(instructions / t_cg),
            "speedup": round(t_ref / t_thr, 2),
            "codegen_speedup": round(t_ref / t_cg, 2),
            "codegen_vs_threaded": round(t_thr / t_cg, 2),
        })

    total_instr = sum(r["instructions"] for r in rows)
    total_ref = sum(r["reference_seconds"] for r in rows)
    total_thr = sum(r["threaded_seconds"] for r in rows)
    total_cg = sum(r["codegen_seconds"] for r in rows)

    def _geomean(key):
        return math.exp(sum(math.log(r[key]) for r in rows) / len(rows))

    return {
        "benchmark": "vm_throughput",
        "engines": ["reference", "threaded", "codegen"],
        "rows": rows,
        "total_instructions": total_instr,
        "aggregate_reference_ips": round(total_instr / total_ref),
        "aggregate_threaded_ips": round(total_instr / total_thr),
        "aggregate_codegen_ips": round(total_instr / total_cg),
        "aggregate_speedup": round(total_ref / total_thr, 2),
        "geomean_speedup": round(_geomean("speedup"), 2),
        "aggregate_codegen_speedup": round(total_ref / total_cg, 2),
        "geomean_codegen_speedup": round(_geomean("codegen_speedup"), 2),
        "geomean_codegen_vs_threaded": round(
            _geomean("codegen_vs_threaded"), 2
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_vm.json")
    parser.add_argument("--quick", action="store_true",
                        help="two kernels, one repeat (CI smoke)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if geomean threaded speedup is "
                        "below this")
    parser.add_argument("--min-codegen-vs-threaded", type=float, default=None,
                        help="exit non-zero if geomean codegen-vs-threaded "
                        "is below this (the CI quick gate uses 1.0: codegen "
                        "must never regress below the threaded engine)")
    args = parser.parse_args(argv)

    kernels = QUICK_KERNELS if args.quick else BENCH_KERNELS
    repeats = 2 if args.quick else args.repeats
    payload = measure(kernels, size=args.size, repeats=repeats)

    for r in payload["rows"]:
        print(f"{r['kernel']:14s} {r['instructions']:>9d} instr  "
              f"ref {r['reference_ips']:>9,d} i/s  "
              f"threaded {r['threaded_ips']:>10,d} i/s "
              f"({r['speedup']:.2f}x)  "
              f"codegen {r['codegen_ips']:>11,d} i/s "
              f"({r['codegen_speedup']:.2f}x ref, "
              f"{r['codegen_vs_threaded']:.2f}x thr)")
    print(f"aggregate: ref {payload['aggregate_reference_ips']:,} i/s, "
          f"threaded {payload['aggregate_threaded_ips']:,} i/s "
          f"(geomean {payload['geomean_speedup']:.2f}x), "
          f"codegen {payload['aggregate_codegen_ips']:,} i/s "
          f"(geomean {payload['geomean_codegen_speedup']:.2f}x ref, "
          f"{payload['geomean_codegen_vs_threaded']:.2f}x threaded)")

    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.min_speedup and payload["geomean_speedup"] < args.min_speedup:
        print(f"FAIL: geomean speedup {payload['geomean_speedup']} < "
              f"{args.min_speedup}", file=sys.stderr)
        return 1
    if (args.min_codegen_vs_threaded
            and payload["geomean_codegen_vs_threaded"]
            < args.min_codegen_vs_threaded):
        print(f"FAIL: geomean codegen-vs-threaded "
              f"{payload['geomean_codegen_vs_threaded']} < "
              f"{args.min_codegen_vs_threaded}", file=sys.stderr)
        return 1
    return 0


def test_vm_throughput(benchmark):
    """pytest-benchmark entry: one timed pass over the quick kernel set."""
    from conftest import once

    payload = once(benchmark, lambda: measure(QUICK_KERNELS, repeats=2))
    benchmark.extra_info["geomean_speedup"] = payload["geomean_speedup"]
    benchmark.extra_info["threaded_ips"] = payload["aggregate_threaded_ips"]
    benchmark.extra_info["codegen_ips"] = payload["aggregate_codegen_ips"]
    benchmark.extra_info["geomean_codegen_speedup"] = (
        payload["geomean_codegen_speedup"]
    )
    # Each engine's reason to exist: a healthy multiple over the reference
    # interpreter, and codegen at least matching threaded (conservative
    # floors to absorb CI noise).
    assert payload["geomean_speedup"] >= 3.0
    assert payload["geomean_codegen_speedup"] >= 6.0
    assert payload["geomean_codegen_vs_threaded"] >= 1.0


if __name__ == "__main__":
    raise SystemExit(main())
