"""E7 — §V-A.b ablation: alignment optimizations and hints disabled.

"To evaluate the importance of these optimizations, we repeated the above
experiment with these optimizations and hints disabled.  The impact was
dramatic ... The average degradation factor is 2.5x across all benchmarks."

Without hints the JIT must use misaligned accesses everywhere (penalized on
SSE/NEON) and, on AltiVec — which has no misaligned accesses at all —
whole loops fall back to scalar code, exactly as the paper describes.
"""

from conftest import once
from repro.harness import ablation_alignment
from repro.harness.report import table


def test_ablation_alignment(benchmark):
    out = once(benchmark, lambda: ablation_alignment(targets=("sse", "altivec")))
    rows = sorted(out["rows"], key=lambda r: -r[2])
    print()
    print("Alignment optimizations disabled: per-kernel degradation factor")
    print(table(["target", "kernel", "slowdown"], rows[:16]))
    print(f"... ({len(rows)} rows total)")
    print(f"average degradation: {out['average_degradation']:.2f}x "
          "(paper: 2.5x)")
    benchmark.extra_info["average_degradation"] = round(
        out["average_degradation"], 3
    )
    # Paper shape: dramatic average degradation, worst cases are AltiVec
    # loops that fell all the way back to scalar code.
    assert out["average_degradation"] > 1.5
    worst_target, worst_kernel, worst = rows[0]
    assert worst > 2.5
    assert worst_target == "altivec"
    # A few SSE kernels get slightly faster without the hints: there the
    # peel loop costs more than the misaligned-access penalty it avoids
    # (a cost-model trade-off real vectorizers also weigh); the effect is
    # bounded and AltiVec rows all degrade.
    assert all(r[2] > 0.55 for r in rows)
    assert all(r[2] > 0.95 for r in rows if r[0] == "altivec")
