"""DESIGN.md ablation: optimized realignment (cross-iteration reuse).

The paper's offline stage emits the Figure 2d scheme — reuse the previous
iteration's aligned load (``va = vb``) so each misaligned stream costs one
aligned load + one permute per iteration instead of two loads + permute.
This bench disables the reuse (``enable_realign_reuse=False``) and measures
the cost on AltiVec, the explicit-realignment target.
"""

import statistics

from conftest import once
from repro.harness import ablation_realign_reuse
from repro.harness.report import table


def test_ablation_realign_reuse(benchmark):
    out = once(benchmark, lambda: ablation_realign_reuse(target="altivec"))
    print()
    print("Naive realignment vs optimized (cross-iteration reuse), AltiVec")
    print(table(["kernel", "slowdown without reuse"], out["rows"]))
    print(f"\naverage: {out['average']:.3f}x")
    benchmark.extra_info["average"] = round(out["average"], 3)
    # Kernels with misaligned load streams (sfir_fp reads a[i+2]) must pay.
    values = dict(out["rows"])
    assert values["sfir_fp"] > 1.02
    assert out["average"] >= 1.0
    # Kernels without misaligned streams are unaffected; sad_s8's inner
    # loops run a single vector iteration per block, so the chain's setup
    # cost slightly outweighs its benefit there (the cost-model caveat the
    # paper notes for short loops).
    assert all(v >= 0.90 for v in values.values())
