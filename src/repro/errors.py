"""Unified exception taxonomy for the whole toolchain.

The paper's central promise is *graceful degradation*: vapor bytecode
"runs everywhere", lowering to SIMD where the target supports an idiom and
falling back to scalar code where it does not (§III-C.d).  A fail-soft
pipeline needs one property above all: **every failure is classified**.
A corrupted bytecode stream, an unsupported idiom, a crashed sweep worker
— each must surface as a well-typed exception that the layer above can
catch, annotate, and route around, never as an anonymous traceback from
deep inside materialization or the VM.

Every error the toolchain deliberately raises therefore derives from
:class:`ReproError`:

========================== ==================================================
class                      layer / meaning
========================== ==================================================
``LexError``               frontend: unrecognized character / literal
``ParseError``             frontend: syntax error (with source position)
``SemaError``              frontend: type or name error
``PlanError``              vectorizer: access shapes defeat stream planning
``VerificationError``      IR: structural/type invariant violated
``FormatError``            bytecode: malformed container or stream
``BytecodeVerifyError``    bytecode: classified verification failure
``MaterializeError``       JIT: idiom cannot be lowered for the target
``SpecializationError``    JIT: bad runtime-specialization request
``VMError``                VM: alignment trap, unbound args, runaway code
``CheckError``             harness: results disagree with the numpy oracle
``CellError``              harness: a sweep cell was quarantined
``OverloadError``          service: request shed at the admission queue
``DeadlineError``          service: per-request deadline expired
``CircuitOpenError``       service: target short-circuited by its breaker
``CacheError``             service: kernel-cache entry unusable (quarantined)
``FarmError``              service: compile-farm dispatch failed (rerouted)
``NetworkError``           gateway wire: framing/CRC/connection/timeout failure
``DrainError``             gateway: request rejected while draining for shutdown
``FleetError``             supervisor: replica parked / fleet capacity failure
``FaultInjected``          faults: marker mixin for injected failures
========================== ==================================================

The concrete classes stay defined in (and importable from) their home
modules — this module re-exports them lazily so ``repro.errors`` is a
one-stop catalogue without creating import cycles::

    from repro.errors import ReproError, classify

    try:
        run_pipeline(blob)
    except ReproError as exc:
        log.warning("classified failure: %s", classify(exc))
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FaultInjected",
    "classify",
    "is_classified",
    # lazily re-exported concrete classes (PEP 562):
    "LexError",
    "ParseError",
    "SemaError",
    "PlanError",
    "VerificationError",
    "FormatError",
    "BytecodeVerifyError",
    "MaterializeError",
    "SpecializationError",
    "VMError",
    "CheckError",
    "CellError",
    "OverloadError",
    "DeadlineError",
    "CircuitOpenError",
    "CacheError",
    "FarmError",
    "NetworkError",
    "DrainError",
    "FleetError",
]


class ReproError(Exception):
    """Base class of every classified toolchain error.

    Layers communicate failure exclusively through subclasses of this
    type; anything else escaping a pipeline stage is a bug (the chaos
    suite asserts exactly that invariant).
    """


class FaultInjected:
    """Marker mixin carried by exceptions raised by injected faults.

    ``isinstance(exc, FaultInjected)`` distinguishes a chaos-campaign
    fault from a genuine failure without disturbing the exception's
    primary classification (an injected VM memory fault is still a
    :class:`VMError`).
    """


#: home module of each lazily re-exported error class.
_HOMES = {
    "LexError": "repro.frontend.lexer",
    "ParseError": "repro.frontend.parser",
    "SemaError": "repro.frontend.sema",
    "PlanError": "repro.vectorizer.stmt",
    "VerificationError": "repro.ir.verifier",
    "FormatError": "repro.bytecode.writer",
    "BytecodeVerifyError": "repro.bytecode.verify",
    "MaterializeError": "repro.jit.materialize",
    "SpecializationError": "repro.jit.specialize",
    "VMError": "repro.machine.vm",
    "CheckError": "repro.harness.flows",
    "CellError": "repro.harness.parallel",
    "OverloadError": "repro.service.admission",
    "DeadlineError": "repro.service.admission",
    "CircuitOpenError": "repro.service.breaker",
    "CacheError": "repro.service.cache",
    "FarmError": "repro.service.farm",
    "NetworkError": "repro.service.wire",
    "DrainError": "repro.service.gateway",
    "FleetError": "repro.service.supervisor",
}


def __getattr__(name: str):  # PEP 562 lazy re-export, avoids import cycles
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(home), name)
    globals()[name] = value  # cache for next access
    return value


def is_classified(exc: BaseException) -> bool:
    """True when ``exc`` belongs to the taxonomy (or wraps system exits).

    ``KeyboardInterrupt``/``SystemExit`` are deliberately *not* classified:
    they must propagate, never be swallowed by fail-soft machinery.
    """
    return isinstance(exc, ReproError)


def classify(exc: BaseException) -> str:
    """Short classification tag for reports: ``"VMError"``,
    ``"VMError[injected]"``, or ``"unclassified:TypeError"``.

    Anonymous :class:`ReproError` subclasses (e.g. the injected-fault
    hybrids) report as their nearest catalogue ancestor, so the tag space
    stays closed over the table above.
    """
    if isinstance(exc, ReproError):
        name = type(exc).__name__
        if name not in _HOMES:
            for base in type(exc).__mro__:
                if base.__name__ in _HOMES:
                    name = base.__name__
                    break
        return f"{name}[injected]" if isinstance(exc, FaultInjected) else name
    return f"unclassified:{type(exc).__name__}"
