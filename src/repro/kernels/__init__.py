"""The benchmark kernels: Table 2's suite plus PolyBench 1.0."""

from . import media, polybench  # noqa: F401  (register kernels)
from .suite import Kernel, KernelInstance, all_kernels, get_kernel, kernel_names

__all__ = [
    "Kernel",
    "KernelInstance",
    "all_kernels",
    "get_kernel",
    "kernel_names",
]
