"""Kernel registry: Table 2's auto-vectorization kernels + PolyBench 1.0.

Each :class:`Kernel` bundles the VaporC source (parameterized by problem
size), a data generator, and a numpy reference implementation.  The harness
and the test suite run every kernel through every compilation flow and
check results against the reference.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["Kernel", "KernelInstance", "register", "get_kernel", "all_kernels",
           "kernel_names"]

_REGISTRY: dict[str, "Kernel"] = {}


@dataclass
class KernelInstance:
    """A kernel at a concrete problem size, ready to compile and run."""

    kernel: "Kernel"
    size: int
    source: str
    scalar_args: dict
    arrays: dict  # name -> numpy array (inputs filled, outputs zeroed)
    expected_arrays: dict  # name -> numpy array
    expected_return: object | None

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def entry(self) -> str:
        return self.kernel.entry


@dataclass
class Kernel:
    """A benchmark kernel description.

    Attributes:
        name: Table 2 style name (dissolve_s8, saxpy_fp, gemm_fp, ...).
        entry: the VaporC function name.
        features: the paper's feature tag ("widening multiplication", ...).
        category: "kernel" (Table 2 suite) or "polybench".
        source_fn: size -> VaporC source text.
        data_fn: (size, rng) -> (scalar_args, arrays dict of numpy arrays).
        ref_fn: (size, scalar_args, arrays) -> (expected arrays, return).
        default_size: harness problem size (kept VM-friendly; the paper's
            sizes are larger but the measured *ratios* are size-stable).
        expect_vectorized: False for the kernels the paper could not
            vectorize (lu, ludcmp, seidel).
        rtol: check tolerance (float kernels reassociate reductions).
    """

    name: str
    entry: str
    features: str
    category: str
    source_fn: Callable[[int], str]
    data_fn: Callable
    ref_fn: Callable
    default_size: int
    expect_vectorized: bool = True
    rtol: float = 1e-4
    #: tolerated absolute error on integer outputs (fp->int conversions
    #: round differently under reassociated vector sums).
    int_atol: int = 0

    def instantiate(self, size: int | None = None, seed: int = 0) -> KernelInstance:
        size = self.default_size if size is None else size
        # crc32, not hash(): str hashes are salted per process, and the
        # input data must be identical across service replicas (a warm
        # cache entry computed by one process is checked and served by
        # another — same bytes demand same data).
        rng = np.random.default_rng(
            seed + zlib.crc32(self.name.encode("utf-8")) % 10_000
        )
        scalar_args, arrays = self.data_fn(size, rng)
        inputs = {k: v.copy() for k, v in arrays.items()}
        expected_arrays, expected_return = self.ref_fn(size, scalar_args, inputs)
        return KernelInstance(
            kernel=self,
            size=size,
            source=self.source_fn(size),
            scalar_args=scalar_args,
            arrays=arrays,
            expected_arrays=expected_arrays,
            expected_return=expected_return,
        )


def register(kernel: Kernel) -> Kernel:
    """Add a kernel to the global registry (module import time)."""
    if kernel.name in _REGISTRY:
        raise ValueError(f"duplicate kernel {kernel.name}")
    _REGISTRY[kernel.name] = kernel
    return kernel


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by its Table 2 / PolyBench name."""
    from . import media, polybench  # noqa: F401  (populate registry)

    return _REGISTRY[name]


def all_kernels(category: str | None = None) -> list[Kernel]:
    """All registered kernels, optionally filtered by category."""
    from . import media, polybench  # noqa: F401

    kernels = list(_REGISTRY.values())
    if category is not None:
        kernels = [k for k in kernels if k.category == category]
    return kernels


def kernel_names(category: str | None = None) -> list[str]:
    """Names of all registered kernels (registration order)."""
    return [k.name for k in all_kernels(category)]
