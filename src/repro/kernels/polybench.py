"""PolyBench 1.0 kernels (single-precision configuration, §IV-B).

The paper ran PolyBench with float matrices and manually applied enabling
transformations — "loop interchange and distribution, array layout
transposition, and scalar promotion" — before auto-vectorization.  The
sources below are written in that already-normalized form (e.g. matrix
products in ikj order, gramschmidt over a transposed layout), which is what
GCC's vectorizer saw in the original study.

lu, ludcmp and seidel are included *unvectorizable on purpose*: they
"require loop skewing ... which unfortunately results in a control flow
incompatible with the current auto-vectorizer"; the test suite asserts the
vectorizer rejects them, and the harness runs them scalar in both flows.

Problem sizes default far below the paper's 128^2 to keep the cycle-level
VM fast; every reported number is a ratio, which is size-stable.
"""

from __future__ import annotations

import numpy as np

from .suite import Kernel, register

__all__ = []

_f32 = np.float32
_f64 = np.float64


def _randmat(rng, *shape):
    return rng.standard_normal(shape).astype(_f32)


# ---------------------------------------------------------------------------
# correlation / covariance
# ---------------------------------------------------------------------------

def _correlation_src(n: int) -> str:
    return f"""
void correlation_fp(float data[{n}][{n}], float mean[{n}], float stddev[{n}],
                    float symmat[{n}][{n}]) {{
    for (int j = 0; j < {n}; j++) {{
        mean[j] = 0.0;
        stddev[j] = 0.0;
    }}
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            mean[j] = mean[j] + data[i][j];
        }}
    }}
    for (int j = 0; j < {n}; j++) {{
        mean[j] = mean[j] / {float(n)};
    }}
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            data[i][j] = data[i][j] - mean[j];
            stddev[j] = stddev[j] + data[i][j] * data[i][j];
        }}
    }}
    for (int j = 0; j < {n}; j++) {{
        stddev[j] = sqrt(stddev[j] / {float(n)}) + 0.0001;
    }}
    for (int j1 = 0; j1 < {n}; j1++) {{
        for (int i = 0; i < {n}; i++) {{
            for (int j2 = 0; j2 < {n}; j2++) {{
                symmat[j1][j2] = symmat[j1][j2]
                    + data[i][j1] * data[i][j2]
                      / ({float(n)} * stddev[j1] * stddev[j2]);
            }}
        }}
    }}
}}
"""


def _correlation_data(n, rng):
    return {}, {
        "data": _randmat(rng, n, n),
        "mean": np.zeros(n, _f32),
        "stddev": np.zeros(n, _f32),
        "symmat": np.zeros((n, n), _f32),
    }


def _correlation_ref(n, args, arrays):
    data = arrays["data"].astype(_f64)
    mean = data.sum(axis=0) / n
    centered = data - mean
    stddev = np.sqrt((centered * centered).sum(axis=0) / n) + 1e-4
    symmat = np.zeros((n, n), _f64)
    for j1 in range(n):
        symmat[j1] = (centered[:, j1:j1+1] * centered).sum(axis=0) / (
            n * stddev[j1] * stddev
        )
    return {
        "mean": mean.astype(_f32),
        "stddev": stddev.astype(_f32),
        "data": centered.astype(_f32),
        "symmat": symmat.astype(_f32),
    }, None


register(
    Kernel(
        "correlation_fp", "correlation_fp", "datamining", "polybench",
        _correlation_src, _correlation_data, _correlation_ref, 16, rtol=5e-2,
    )
)


def _covariance_src(n: int) -> str:
    return f"""
void covariance_fp(float data[{n}][{n}], float mean[{n}], float symmat[{n}][{n}]) {{
    for (int j = 0; j < {n}; j++) {{
        mean[j] = 0.0;
    }}
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            mean[j] = mean[j] + data[i][j];
        }}
    }}
    for (int j = 0; j < {n}; j++) {{
        mean[j] = mean[j] / {float(n)};
    }}
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            data[i][j] = data[i][j] - mean[j];
        }}
    }}
    for (int j1 = 0; j1 < {n}; j1++) {{
        for (int i = 0; i < {n}; i++) {{
            for (int j2 = 0; j2 < {n}; j2++) {{
                symmat[j1][j2] = symmat[j1][j2] + data[i][j1] * data[i][j2];
            }}
        }}
    }}
}}
"""


def _covariance_data(n, rng):
    return {}, {
        "data": _randmat(rng, n, n),
        "mean": np.zeros(n, _f32),
        "symmat": np.zeros((n, n), _f32),
    }


def _covariance_ref(n, args, arrays):
    data = arrays["data"].astype(_f64)
    mean = data.sum(axis=0) / n
    centered = data - mean
    symmat = centered.T @ centered
    return {
        "mean": mean.astype(_f32),
        "data": centered.astype(_f32),
        "symmat": symmat.astype(_f32),
    }, None


register(
    Kernel(
        "covariance_fp", "covariance_fp", "datamining", "polybench",
        _covariance_src, _covariance_data, _covariance_ref, 16, rtol=2e-2,
    )
)


# ---------------------------------------------------------------------------
# linear-algebra kernels: 2mm, 3mm, atax, gesummv, doitgen, gemm, gemver, bicg
# ---------------------------------------------------------------------------

def _matmul_block(dst, a, b, n, alpha=None) -> str:
    scale = f"{alpha} * " if alpha else ""
    return f"""
    for (int i = 0; i < {n}; i++) {{
        for (int k = 0; k < {n}; k++) {{
            for (int j = 0; j < {n}; j++) {{
                {dst}[i][j] = {dst}[i][j] + {scale}{a}[i][k] * {b}[k][j];
            }}
        }}
    }}"""


def _mm2_src(n: int) -> str:
    return f"""
void mm2_fp(float A[{n}][{n}], float B[{n}][{n}], float C[{n}][{n}],
            float tmp[{n}][{n}], float D[{n}][{n}]) {{
{_matmul_block("tmp", "A", "B", n)}
{_matmul_block("D", "tmp", "C", n)}
}}
"""


def _mm2_data(n, rng):
    return {}, {
        "A": _randmat(rng, n, n),
        "B": _randmat(rng, n, n),
        "C": _randmat(rng, n, n),
        "tmp": np.zeros((n, n), _f32),
        "D": np.zeros((n, n), _f32),
    }


def _mm2_ref(n, args, arrays):
    tmp = arrays["A"].astype(_f64) @ arrays["B"].astype(_f64)
    d = tmp @ arrays["C"].astype(_f64)
    return {"tmp": tmp.astype(_f32), "D": d.astype(_f32)}, None


register(
    Kernel(
        "2mm_fp", "mm2_fp", "linear algebra", "polybench",
        _mm2_src, _mm2_data, _mm2_ref, 16, rtol=5e-3,
    )
)


def _mm3_src(n: int) -> str:
    return f"""
void mm3_fp(float A[{n}][{n}], float B[{n}][{n}], float C[{n}][{n}],
            float D[{n}][{n}], float E[{n}][{n}], float F[{n}][{n}],
            float G[{n}][{n}]) {{
{_matmul_block("E", "A", "B", n)}
{_matmul_block("F", "C", "D", n)}
{_matmul_block("G", "E", "F", n)}
}}
"""


def _mm3_data(n, rng):
    return {}, {
        "A": _randmat(rng, n, n),
        "B": _randmat(rng, n, n),
        "C": _randmat(rng, n, n),
        "D": _randmat(rng, n, n),
        "E": np.zeros((n, n), _f32),
        "F": np.zeros((n, n), _f32),
        "G": np.zeros((n, n), _f32),
    }


def _mm3_ref(n, args, arrays):
    e = arrays["A"].astype(_f64) @ arrays["B"].astype(_f64)
    f = arrays["C"].astype(_f64) @ arrays["D"].astype(_f64)
    g = e @ f
    return {
        "E": e.astype(_f32),
        "F": f.astype(_f32),
        "G": g.astype(_f32),
    }, None


register(
    Kernel(
        "3mm_fp", "mm3_fp", "linear algebra", "polybench",
        _mm3_src, _mm3_data, _mm3_ref, 16, rtol=5e-3,
    )
)


def _atax_src(n: int) -> str:
    return f"""
void atax_fp(float A[{n}][{n}], float x[{n}], float tmp[{n}], float y[{n}]) {{
    for (int i = 0; i < {n}; i++) {{
        float s = 0;
        for (int j = 0; j < {n}; j++) {{
            s += A[i][j] * x[j];
        }}
        tmp[i] = s;
    }}
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            y[j] = y[j] + A[i][j] * tmp[i];
        }}
    }}
}}
"""


def _atax_data(n, rng):
    return {}, {
        "A": _randmat(rng, n, n),
        "x": _randmat(rng, n),
        "tmp": np.zeros(n, _f32),
        "y": np.zeros(n, _f32),
    }


def _atax_ref(n, args, arrays):
    a = arrays["A"].astype(_f64)
    tmp = a @ arrays["x"].astype(_f64)
    y = a.T @ tmp
    return {"tmp": tmp.astype(_f32), "y": y.astype(_f32)}, None


register(
    Kernel(
        "atax_fp", "atax_fp", "linear algebra", "polybench",
        _atax_src, _atax_data, _atax_ref, 24, rtol=5e-3,
    )
)


def _gesummv_src(n: int) -> str:
    return f"""
void gesummv_fp(float alpha, float beta, float A[{n}][{n}], float B[{n}][{n}],
                float x[{n}], float y[{n}]) {{
    for (int i = 0; i < {n}; i++) {{
        float ta = 0;
        float tb = 0;
        for (int j = 0; j < {n}; j++) {{
            ta += A[i][j] * x[j];
            tb += B[i][j] * x[j];
        }}
        y[i] = alpha * ta + beta * tb;
    }}
}}
"""


def _gesummv_data(n, rng):
    return {"alpha": 1.2, "beta": 0.8}, {
        "A": _randmat(rng, n, n),
        "B": _randmat(rng, n, n),
        "x": _randmat(rng, n),
        "y": np.zeros(n, _f32),
    }


def _gesummv_ref(n, args, arrays):
    a = arrays["A"].astype(_f64)
    b = arrays["B"].astype(_f64)
    x = arrays["x"].astype(_f64)
    y = args["alpha"] * (a @ x) + args["beta"] * (b @ x)
    return {"y": y.astype(_f32)}, None


register(
    Kernel(
        "gesummv_fp", "gesummv_fp", "linear algebra", "polybench",
        _gesummv_src, _gesummv_data, _gesummv_ref, 24, rtol=5e-3,
    )
)


def _doitgen_src(n: int) -> str:
    return f"""
void doitgen_fp(float A[{n}][{n}][{n}], float C4[{n}][{n}], float sum[{n}]) {{
    for (int r = 0; r < {n}; r++) {{
        for (int q = 0; q < {n}; q++) {{
            for (int s = 0; s < {n}; s++) {{
                sum[s] = 0.0;
            }}
            for (int p = 0; p < {n}; p++) {{
                for (int s = 0; s < {n}; s++) {{
                    sum[s] = sum[s] + A[r][q][p] * C4[p][s];
                }}
            }}
            for (int p = 0; p < {n}; p++) {{
                A[r][q][p] = sum[p];
            }}
        }}
    }}
}}
"""


def _doitgen_data(n, rng):
    return {}, {
        "A": _randmat(rng, n, n, n),
        "C4": _randmat(rng, n, n),
        "sum": np.zeros(n, _f32),
    }


def _doitgen_ref(n, args, arrays):
    a = arrays["A"].astype(_f64)
    c4 = arrays["C4"].astype(_f64)
    out = a @ c4
    return {"A": out.astype(_f32), "sum": out[n - 1, n - 1].astype(_f32)}, None


register(
    Kernel(
        "doitgen_fp", "doitgen_fp", "linear algebra", "polybench",
        _doitgen_src, _doitgen_data, _doitgen_ref, 8, rtol=5e-3,
    )
)


def _gemm_src(n: int) -> str:
    return f"""
void gemm_fp(float alpha, float beta, float A[{n}][{n}], float B[{n}][{n}],
             float C[{n}][{n}]) {{
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            C[i][j] = C[i][j] * beta;
        }}
    }}
    for (int i = 0; i < {n}; i++) {{
        for (int k = 0; k < {n}; k++) {{
            for (int j = 0; j < {n}; j++) {{
                C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
            }}
        }}
    }}
}}
"""


def _gemm_data(n, rng):
    return {"alpha": 1.1, "beta": 0.9}, {
        "A": _randmat(rng, n, n),
        "B": _randmat(rng, n, n),
        "C": _randmat(rng, n, n),
    }


def _gemm_ref(n, args, arrays):
    c = args["beta"] * arrays["C"].astype(_f64) + args["alpha"] * (
        arrays["A"].astype(_f64) @ arrays["B"].astype(_f64)
    )
    return {"C": c.astype(_f32)}, None


register(
    Kernel(
        "gemm_fp", "gemm_fp", "linear algebra", "polybench",
        _gemm_src, _gemm_data, _gemm_ref, 16, rtol=5e-3,
    )
)


def _gemver_src(n: int) -> str:
    return f"""
void gemver_fp(float alpha, float beta, float A[{n}][{n}],
               float u1[{n}], float v1[{n}], float u2[{n}], float v2[{n}],
               float x[{n}], float y[{n}], float z[{n}], float w[{n}]) {{
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
        }}
    }}
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            x[j] = x[j] + beta * A[i][j] * y[i];
        }}
    }}
    for (int i = 0; i < {n}; i++) {{
        x[i] = x[i] + z[i];
    }}
    for (int i = 0; i < {n}; i++) {{
        float s = 0;
        for (int j = 0; j < {n}; j++) {{
            s += alpha * A[i][j] * x[j];
        }}
        w[i] = w[i] + s;
    }}
}}
"""


def _gemver_data(n, rng):
    return {"alpha": 1.05, "beta": 0.95}, {
        "A": _randmat(rng, n, n),
        "u1": _randmat(rng, n), "v1": _randmat(rng, n),
        "u2": _randmat(rng, n), "v2": _randmat(rng, n),
        "x": _randmat(rng, n), "y": _randmat(rng, n),
        "z": _randmat(rng, n), "w": np.zeros(n, _f32),
    }


def _gemver_ref(n, args, arrays):
    a = arrays["A"].astype(_f64)
    a = a + np.outer(arrays["u1"], arrays["v1"]) + np.outer(
        arrays["u2"], arrays["v2"]
    )
    x = arrays["x"].astype(_f64) + args["beta"] * (a.T @ arrays["y"].astype(_f64))
    x = x + arrays["z"].astype(_f64)
    w = args["alpha"] * (a @ x)
    return {
        "A": a.astype(_f32),
        "x": x.astype(_f32),
        "w": w.astype(_f32),
    }, None


register(
    Kernel(
        "gemver_fp", "gemver_fp", "linear algebra", "polybench",
        _gemver_src, _gemver_data, _gemver_ref, 24, rtol=5e-3,
    )
)


def _bicg_src(n: int) -> str:
    return f"""
void bicg_fp(float A[{n}][{n}], float r[{n}], float p[{n}],
             float s[{n}], float q[{n}]) {{
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            s[j] = s[j] + r[i] * A[i][j];
        }}
    }}
    for (int i = 0; i < {n}; i++) {{
        float acc = 0;
        for (int j = 0; j < {n}; j++) {{
            acc += A[i][j] * p[j];
        }}
        q[i] = acc;
    }}
}}
"""


def _bicg_data(n, rng):
    return {}, {
        "A": _randmat(rng, n, n),
        "r": _randmat(rng, n),
        "p": _randmat(rng, n),
        "s": np.zeros(n, _f32),
        "q": np.zeros(n, _f32),
    }


def _bicg_ref(n, args, arrays):
    a = arrays["A"].astype(_f64)
    s = a.T @ arrays["r"].astype(_f64)
    q = a @ arrays["p"].astype(_f64)
    return {"s": s.astype(_f32), "q": q.astype(_f32)}, None


register(
    Kernel(
        "bicg_fp", "bicg_fp", "linear algebra", "polybench",
        _bicg_src, _bicg_data, _bicg_ref, 24, rtol=5e-3,
    )
)


# ---------------------------------------------------------------------------
# linear-algebra solvers: gramschmidt (vectorizable), lu/ludcmp (not)
# ---------------------------------------------------------------------------

def _gramschmidt_src(n: int) -> str:
    # Transposed layout (rows are column vectors), per the paper's manual
    # array-layout transposition.
    return f"""
void gramschmidt_fp(float At[{n}][{n}], float Qt[{n}][{n}], float R[{n}][{n}]) {{
    for (int k = 0; k < {n}; k++) {{
        float nrm = 0;
        for (int i = 0; i < {n}; i++) {{
            nrm += At[k][i] * At[k][i];
        }}
        R[k][k] = sqrt(nrm);
        for (int i = 0; i < {n}; i++) {{
            Qt[k][i] = At[k][i] / R[k][k];
        }}
        for (int j = k + 1; j < {n}; j++) {{
            float s = 0;
            for (int i = 0; i < {n}; i++) {{
                s += Qt[k][i] * At[j][i];
            }}
            R[k][j] = s;
            for (int i = 0; i < {n}; i++) {{
                At[j][i] = At[j][i] - Qt[k][i] * R[k][j];
            }}
        }}
    }}
}}
"""


def _gramschmidt_data(n, rng):
    return {}, {
        "At": (_randmat(rng, n, n) + np.eye(n, dtype=_f32) * 4),
        "Qt": np.zeros((n, n), _f32),
        "R": np.zeros((n, n), _f32),
    }


def _gramschmidt_ref(n, args, arrays):
    at = arrays["At"].astype(_f64).copy()
    qt = np.zeros((n, n), _f64)
    r = np.zeros((n, n), _f64)
    for k in range(n):
        r[k, k] = np.sqrt((at[k] * at[k]).sum())
        qt[k] = at[k] / r[k, k]
        for j in range(k + 1, n):
            r[k, j] = (qt[k] * at[j]).sum()
            at[j] = at[j] - qt[k] * r[k, j]
    return {
        "At": at.astype(_f32),
        "Qt": qt.astype(_f32),
        "R": r.astype(_f32),
    }, None


register(
    Kernel(
        "gramschmidt_fp", "gramschmidt_fp", "linear algebra solver",
        "polybench", _gramschmidt_src, _gramschmidt_data, _gramschmidt_ref,
        16, rtol=2e-2,
    )
)


def _lu_src(n: int) -> str:
    return f"""
void lu_fp(float A[{n}][{n}]) {{
    for (int k = 0; k < {n}; k++) {{
        for (int j = k + 1; j < {n}; j++) {{
            A[k][j] = A[k][j] / A[k][k];
        }}
        for (int i = k + 1; i < {n}; i++) {{
            for (int j = k + 1; j < {n}; j++) {{
                A[i][j] = A[i][j] - A[i][k] * A[k][j];
            }}
        }}
    }}
}}
"""


def _lu_data(n, rng):
    return {}, {"A": _randmat(rng, n, n) + np.eye(n, dtype=_f32) * 8}


def _lu_ref(n, args, arrays):
    a = arrays["A"].astype(_f32).copy()
    for k in range(n):
        a[k, k + 1 :] = a[k, k + 1 :] / a[k, k]
        for i in range(k + 1, n):
            a[i, k + 1 :] = a[i, k + 1 :] - a[i, k] * a[k, k + 1 :]
    return {"A": a}, None


register(
    Kernel(
        "lu_fp", "lu_fp", "linear algebra solver (requires skewing)",
        "polybench", _lu_src, _lu_data, _lu_ref, 16,
        expect_vectorized=False, rtol=2e-3,
    )
)


def _ludcmp_src(n: int) -> str:
    # LU elimination (rejected, as in the paper) plus forward substitution
    # (a triangular reduction whose inner loop does vectorize).
    return f"""
void ludcmp_fp(float A[{n}][{n}], float b[{n}], float y[{n}]) {{
    for (int k = 0; k < {n}; k++) {{
        for (int j = k + 1; j < {n}; j++) {{
            A[k][j] = A[k][j] / A[k][k];
        }}
        for (int i = k + 1; i < {n}; i++) {{
            for (int j = k + 1; j < {n}; j++) {{
                A[i][j] = A[i][j] - A[i][k] * A[k][j];
            }}
        }}
    }}
    for (int i = 0; i < {n}; i++) {{
        float s = 0;
        for (int j = 0; j < i; j++) {{
            s += A[i][j] * y[j];
        }}
        y[i] = b[i] - s;
    }}
}}
"""


def _ludcmp_data(n, rng):
    return {}, {
        "A": _randmat(rng, n, n) + np.eye(n, dtype=_f32) * 8,
        "b": _randmat(rng, n),
        "y": np.zeros(n, _f32),
    }


def _ludcmp_ref(n, args, arrays):
    a = arrays["A"].astype(_f32).copy()
    for k in range(n):
        a[k, k + 1 :] = a[k, k + 1 :] / a[k, k]
        for i in range(k + 1, n):
            a[i, k + 1 :] = a[i, k + 1 :] - a[i, k] * a[k, k + 1 :]
    y = np.zeros(n, _f32)
    for i in range(n):
        s = _f32(0.0)
        for j in range(i):
            s = _f32(s + a[i, j] * y[j])
        y[i] = _f32(arrays["b"][i] - s)
    return {"A": a, "y": y}, None


register(
    Kernel(
        "ludcmp_fp", "ludcmp_fp", "linear algebra solver (requires skewing)",
        "polybench", _ludcmp_src, _ludcmp_data, _ludcmp_ref, 16,
        expect_vectorized=False, rtol=2e-3,
    )
)


# ---------------------------------------------------------------------------
# stencils: adi, jacobi, seidel
# ---------------------------------------------------------------------------

def _adi_src(n: int) -> str:
    # One ADI-like sweep pair: the recurrence runs along the outer (row)
    # dimension; the inner (column) loop is parallel and vectorizes.
    return f"""
void adi_fp(float X[{n}][{n}], float A[{n}][{n}], float B[{n}][{n}]) {{
    for (int i = 1; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            X[i][j] = X[i][j] - X[i-1][j] * A[i][j] / B[i-1][j];
            B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i-1][j];
        }}
    }}
    for (int i = 1; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            X[i][j] = X[i][j] / B[i][j];
        }}
    }}
}}
"""


def _adi_data(n, rng):
    return {}, {
        "X": _randmat(rng, n, n),
        "A": _randmat(rng, n, n) * _f32(0.1),
        "B": np.abs(_randmat(rng, n, n)) + _f32(2.0),
    }


def _adi_ref(n, args, arrays):
    x = arrays["X"].astype(_f64).copy()
    a = arrays["A"].astype(_f64)
    b = arrays["B"].astype(_f64).copy()
    for i in range(1, n):
        x[i] = x[i] - x[i - 1] * a[i] / b[i - 1]
        b[i] = b[i] - a[i] * a[i] / b[i - 1]
    for i in range(1, n):
        x[i] = x[i] / b[i]
    return {"X": x.astype(_f32), "B": b.astype(_f32)}, None


register(
    Kernel(
        "adi_fp", "adi_fp", "stencil (alternating direction implicit)",
        "polybench", _adi_src, _adi_data, _adi_ref, 24, rtol=2e-2,
    )
)


def _jacobi_src(n: int) -> str:
    return f"""
void jacobi_fp(float A[{n}][{n}], float B[{n}][{n}]) {{
    for (int i = 1; i < {n} - 1; i++) {{
        for (int j = 1; j < {n} - 1; j++) {{
            B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1]
                             + A[i-1][j] + A[i+1][j]);
        }}
    }}
}}
"""


def _jacobi_data(n, rng):
    return {}, {
        "A": _randmat(rng, n, n),
        "B": np.zeros((n, n), _f32),
    }


def _jacobi_ref(n, args, arrays):
    a = arrays["A"]
    b = np.zeros((n, n), _f32)
    b[1:-1, 1:-1] = _f32(0.2) * (
        a[1:-1, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:] + a[:-2, 1:-1] + a[2:, 1:-1]
    )
    return {"B": b}, None


register(
    Kernel(
        "jacobi_fp", "jacobi_fp", "stencil (jacobi 5-point)", "polybench",
        _jacobi_src, _jacobi_data, _jacobi_ref, 24, rtol=1e-3,
    )
)


def _seidel_src(n: int) -> str:
    return f"""
void seidel_fp(float A[{n}][{n}]) {{
    for (int i = 1; i < {n} - 1; i++) {{
        for (int j = 1; j < {n} - 1; j++) {{
            A[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1]
                             + A[i-1][j] + A[i+1][j]);
        }}
    }}
}}
"""


def _seidel_data(n, rng):
    return {}, {"A": _randmat(rng, n, n)}


def _seidel_ref(n, args, arrays):
    a = arrays["A"].astype(_f32).copy()
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            a[i, j] = _f32(0.2) * _f32(
                _f32(_f32(_f32(a[i, j] + a[i, j - 1]) + a[i, j + 1])
                     + a[i - 1, j]) + a[i + 1, j]
            )
    return {"A": a}, None


register(
    Kernel(
        "seidel_fp", "seidel_fp", "stencil (gauss-seidel, requires skewing)",
        "polybench", _seidel_src, _seidel_data, _seidel_ref, 16,
        expect_vectorized=False, rtol=2e-3,
    )
)
