"""The Table 2 auto-vectorization kernel suite.

Sixteen kernels exercising the full feature matrix the paper lists:
widening multiplication (dissolve_s8), abs+reduction (sad_s8), dot-product
(sfir_s16), strided access (interp_*), SLP (mix_streams_s16), 2-D reduction
(convolve_s32), outer-loop vectorization with int<->fp conversion
(alvinn_s32fp, dct_s32fp), plain fp loops, matrix multiply, and the BLAS
pairs in single and double precision (the doubles scalarize on AltiVec and
NEON, §V-B).
"""

from __future__ import annotations

import numpy as np

from .suite import Kernel, register

__all__ = []

_i8 = np.int8
_i16 = np.int16
_i32 = np.int32
_f32 = np.float32
_f64 = np.float64


# ---------------------------------------------------------------------------
# dissolve_s8 — video image dissolve (widening multiplication)
# ---------------------------------------------------------------------------

def _dissolve_s8_src(n: int) -> str:
    return """
void dissolve_s8(int n, int w, char a[], char b[], char out[]) {
    for (int i = 0; i < n; i++) {
        out[i] = (char)(((short)a[i] * (short)w
                       + (short)b[i] * (short)(16 - w)) >> 4);
    }
}
"""


def _dissolve_s8_data(n, rng):
    return (
        {"n": n, "w": 5},
        {
            "a": rng.integers(-100, 100, n).astype(_i8),
            "b": rng.integers(-100, 100, n).astype(_i8),
            "out": np.zeros(n, _i8),
        },
    )


def _dissolve_s8_ref(n, args, arrays):
    a16 = arrays["a"].astype(_i16)
    b16 = arrays["b"].astype(_i16)
    w = args["w"]
    out = ((a16 * w + b16 * (16 - w)) >> 4).astype(_i8)
    return {"out": out}, None


register(
    Kernel(
        "dissolve_s8", "dissolve_s8",
        "video image dissolve (widening multiplication)", "kernel",
        _dissolve_s8_src, _dissolve_s8_data, _dissolve_s8_ref, 512,
    )
)


# ---------------------------------------------------------------------------
# sad_s8 — sum of absolute differences over blocks (abs pattern, reduction,
# runtime alias versioning: the arrays are may-alias pointers)
# ---------------------------------------------------------------------------

def _sad_s8_src(nb: int) -> str:
    # Per-block SAD with a stored residual map.  The three buffers are
    # may-alias pointers (as in real codecs that slide windows over one
    # frame), so the offline compiler must emit a no_alias version guard
    # that no online compiler can fold — the paper's sad versioning
    # penalty (SV-B: "When that is not the case (e.g., sad), performance
    # is degraded").
    return """
int sad_s8(int nb, __may_alias char a[], __may_alias char b[],
           __may_alias int d[]) {
    int sum = 0;
    for (int blk = 0; blk < nb; blk++) {
        for (int k = 0; k < 16; k++) {
            int v = abs((int)a[16*blk + k] - (int)b[16*blk + k]);
            d[16*blk + k] = v;
            sum += v;
        }
    }
    return sum;
}
"""


def _sad_s8_data(nb, rng):
    n = 16 * nb
    return (
        {"nb": nb},
        {
            "a": rng.integers(-128, 128, n).astype(_i8),
            "b": rng.integers(-128, 128, n).astype(_i8),
            "d": np.zeros(n, _i32),
        },
    )


def _sad_s8_ref(nb, args, arrays):
    d = np.abs(arrays["a"].astype(_i32) - arrays["b"].astype(_i32))
    return {"d": d}, int(d.sum())


register(
    Kernel(
        "sad_s8", "sad_s8",
        "sum of absolute differences (abs pattern, reduction)", "kernel",
        _sad_s8_src, _sad_s8_data, _sad_s8_ref, 32,
    )
)


# ---------------------------------------------------------------------------
# sfir_s16 — single-sample FIR (dot-product)
# ---------------------------------------------------------------------------

def _sfir_s16_src(n: int) -> str:
    return """
int sfir_s16(int n, short a[], short c[]) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        sum += (int)a[i] * (int)c[i];
    }
    return sum;
}
"""


def _sfir_s16_data(n, rng):
    return (
        {"n": n},
        {
            "a": rng.integers(-400, 400, n).astype(_i16),
            "c": rng.integers(-400, 400, n).astype(_i16),
        },
    )


def _sfir_s16_ref(n, args, arrays):
    return {}, int(
        (arrays["a"].astype(_i32) * arrays["c"].astype(_i32)).sum()
    )


register(
    Kernel(
        "sfir_s16", "sfir_s16", "single sample FIR (dot-product)", "kernel",
        _sfir_s16_src, _sfir_s16_data, _sfir_s16_ref, 512,
    )
)


# ---------------------------------------------------------------------------
# interp_s16 — rate-2 interpolation (strided access)
# ---------------------------------------------------------------------------

def _interp_s16_src(n: int) -> str:
    return """
void interp_s16(int n, short a[], short out[]) {
    for (int i = 0; i < n; i++) {
        out[2*i] = a[i];
        out[2*i + 1] = (short)((a[i] + a[i+1]) >> 1);
    }
}
"""


def _interp_s16_data(n, rng):
    return (
        {"n": n},
        {
            "a": rng.integers(-1000, 1000, n + 1).astype(_i16),
            "out": np.zeros(2 * n, _i16),
        },
    )


def _interp_s16_ref(n, args, arrays):
    a = arrays["a"]
    out = np.zeros(2 * n, _i16)
    out[0::2] = a[:n]
    out[1::2] = (a[:n] + a[1 : n + 1]) >> 1
    return {"out": out}, None


register(
    Kernel(
        "interp_s16", "interp_s16",
        "rate-2 interpolation (strided access, dot-product)", "kernel",
        _interp_s16_src, _interp_s16_data, _interp_s16_ref, 512,
    )
)


# ---------------------------------------------------------------------------
# mix_streams_s16 — mix four audio channels (SLP vectorization)
# ---------------------------------------------------------------------------

def _mix_streams_src(n: int) -> str:
    return """
void mix_streams_s16(int n, short in[], short out[]) {
    for (int i = 0; i < n; i++) {
        out[4*i + 0] = (short)((in[4*i + 0] * 9) >> 4);
        out[4*i + 1] = (short)((in[4*i + 1] * 5) >> 4);
        out[4*i + 2] = (short)((in[4*i + 2] * 12) >> 4);
        out[4*i + 3] = (short)((in[4*i + 3] * 3) >> 4);
    }
}
"""


def _mix_streams_data(n, rng):
    return (
        {"n": n},
        {
            "in": rng.integers(-1000, 1000, 4 * n).astype(_i16),
            "out": np.zeros(4 * n, _i16),
        },
    )


def _mix_streams_ref(n, args, arrays):
    gains = np.array([9, 5, 12, 3], _i16)
    frames = arrays["in"].reshape(-1, 4)
    out = ((frames * gains) >> 4).astype(_i16).ravel()
    return {"out": out}, None


register(
    Kernel(
        "mix_streams_s16", "mix_streams_s16",
        "mix four audio channels (SLP vectorization)", "kernel",
        _mix_streams_src, _mix_streams_data, _mix_streams_ref, 128,
    )
)


# ---------------------------------------------------------------------------
# convolve_s32 — 2-D convolution (reduction; outer-loop vectorized columns)
# ---------------------------------------------------------------------------

_CONV_W = 64
_CONV_H = 16


def _convolve_s32_src(n: int) -> str:
    return f"""
void convolve_s32(int rows, int kern[4],
                  int img[{_CONV_H}][{_CONV_W}], int out[{_CONV_H}][{_CONV_W}]) {{
    for (int r = 0; r < rows; r++) {{
        for (int c = 0; c < {_CONV_W}; c++) {{
            int s = 0;
            for (int k = 0; k < 4; k++) {{
                s += img[r + k][c] * kern[k];
            }}
            out[r][c] = s;
        }}
    }}
}}
"""


def _convolve_s32_data(n, rng):
    img = rng.integers(-50, 50, (_CONV_H, _CONV_W)).astype(_i32)
    kern = rng.integers(-4, 5, 4).astype(_i32)
    return (
        {"rows": _CONV_H - 4},
        {"kern": kern, "img": img, "out": np.zeros((_CONV_H, _CONV_W), _i32)},
    )


def _convolve_s32_ref(n, args, arrays):
    img = arrays["img"]
    kern = arrays["kern"]
    rows = args["rows"]
    out = np.zeros((_CONV_H, _CONV_W), _i32)
    for r in range(rows):
        acc = np.zeros(_CONV_W, _i32)
        for k in range(4):
            acc += img[r + k] * kern[k]
        out[r] = acc
    return {"out": out}, None


register(
    Kernel(
        "convolve_s32", "convolve_s32", "2D convolution (reduction)", "kernel",
        _convolve_s32_src, _convolve_s32_data, _convolve_s32_ref, 0,
    )
)


# ---------------------------------------------------------------------------
# alvinn_s32fp — neural-net layer (outer-loop vectorization, int+fp)
# ---------------------------------------------------------------------------

_ALV_IN = 32


def _alvinn_src(n: int) -> str:
    return f"""
void alvinn_s32fp(int n, float w[{_ALV_IN}][{n}], float in[{_ALV_IN}],
                  float hidden[{n}], int qout[{n}]) {{
    for (int i = 0; i < n; i++) {{
        float s = 0;
        for (int j = 0; j < {_ALV_IN}; j++) {{
            s += w[j][i] * in[j];
        }}
        hidden[i] = s;
        qout[i] = (int)(s * 256.0);
    }}
}}
"""


def _alvinn_data(n, rng):
    return (
        {"n": n},
        {
            "w": rng.standard_normal((_ALV_IN, n)).astype(_f32),
            "in": rng.standard_normal(_ALV_IN).astype(_f32),
            "hidden": np.zeros(n, _f32),
            "qout": np.zeros(n, _i32),
        },
    )


def _alvinn_ref(n, args, arrays):
    hidden = (arrays["w"].T.astype(_f64) @ arrays["in"].astype(_f64)).astype(_f32)
    qout = np.trunc(hidden * np.float32(256.0)).astype(_i32)
    return {"hidden": hidden, "qout": qout}, None


register(
    Kernel(
        "alvinn_s32fp", "alvinn_s32fp",
        "weight propagation for neural-net training (outer-loop)", "kernel",
        _alvinn_src, _alvinn_data, _alvinn_ref, 128, rtol=2e-3, int_atol=1,
    )
)


# ---------------------------------------------------------------------------
# dct_s32fp — 8x8 DCT columns (outer-loop, int<->fp conversion)
# ---------------------------------------------------------------------------

def _dct_src(n: int) -> str:
    return f"""
void dct_s32fp(int cols, float cosines[8][8],
               int in[8][{n}], int out[8][{n}]) {{
    for (int c = 0; c < cols; c++) {{
        for (int k = 0; k < 8; k++) {{
            float s = 0;
            for (int u = 0; u < 8; u++) {{
                s += cosines[k][u] * (float)in[u][c];
            }}
            out[k][c] = (int)s;
        }}
    }}
}}
"""


def _dct_data(n, rng):
    k = np.arange(8).reshape(-1, 1)
    u = np.arange(8).reshape(1, -1)
    cosines = np.cos((2 * u + 1) * k * np.pi / 16).astype(_f32)
    return (
        {"cols": n},
        {
            "cosines": cosines,
            "in": rng.integers(-128, 128, (8, n)).astype(_i32),
            "out": np.zeros((8, n), _i32),
        },
    )


def _dct_ref(n, args, arrays):
    s = arrays["cosines"].astype(_f32) @ arrays["in"].astype(_f32)
    return {"out": np.trunc(s).astype(_i32)}, None


register(
    Kernel(
        "dct_s32fp", "dct_s32fp",
        "8x8 discrete cosine transform (outer-loop)", "kernel",
        _dct_src, _dct_data, _dct_ref, 64, rtol=1e-3, int_atol=1,
    )
)


# ---------------------------------------------------------------------------
# dissolve_fp — video dissolve with a constant weight (fp)
# ---------------------------------------------------------------------------

def _dissolve_fp_src(n: int) -> str:
    return """
void dissolve_fp(int n, float w, float a[], float b[], float out[]) {
    for (int i = 0; i < n; i++) {
        out[i] = a[i] * w + b[i] * (1.0 - w);
    }
}
"""


def _dissolve_fp_data(n, rng):
    return (
        {"n": n, "w": 0.3},
        {
            "a": rng.standard_normal(n).astype(_f32),
            "b": rng.standard_normal(n).astype(_f32),
            "out": np.zeros(n, _f32),
        },
    )


def _dissolve_fp_ref(n, args, arrays):
    w = _f32(args["w"])
    out = arrays["a"] * w + arrays["b"] * (_f32(1.0) - w)
    return {"out": out}, None


register(
    Kernel(
        "dissolve_fp", "dissolve_fp", "video image dissolve (constant)",
        "kernel", _dissolve_fp_src, _dissolve_fp_data, _dissolve_fp_ref, 512,
    )
)


# ---------------------------------------------------------------------------
# sfir_fp — single-sample FIR (fp reduction with a misaligned stream)
# ---------------------------------------------------------------------------

def _sfir_fp_src(n: int) -> str:
    return """
float sfir_fp(int n, float a[], float c[]) {
    float sum = 0;
    for (int i = 0; i < n; i++) {
        sum += a[i + 2] * c[i];
    }
    return sum;
}
"""


def _sfir_fp_data(n, rng):
    return (
        {"n": n},
        {
            "a": rng.standard_normal(n + 2).astype(_f32),
            "c": rng.standard_normal(n).astype(_f32),
        },
    )


def _sfir_fp_ref(n, args, arrays):
    return {}, float(
        (arrays["a"][2:].astype(_f64) * arrays["c"].astype(_f64)).sum()
    )


register(
    Kernel(
        "sfir_fp", "sfir_fp", "single sample FIR (reduction)", "kernel",
        _sfir_fp_src, _sfir_fp_data, _sfir_fp_ref, 512, rtol=1e-3,
    )
)


# ---------------------------------------------------------------------------
# interp_fp — rate-2 interpolation (strided store, fp)
# ---------------------------------------------------------------------------

def _interp_fp_src(n: int) -> str:
    return """
void interp_fp(int n, float a[], float out[]) {
    for (int i = 0; i < n; i++) {
        out[2*i] = a[i];
        out[2*i + 1] = (a[i] + a[i+1]) * 0.5;
    }
}
"""


def _interp_fp_data(n, rng):
    return (
        {"n": n},
        {
            "a": rng.standard_normal(n + 1).astype(_f32),
            "out": np.zeros(2 * n, _f32),
        },
    )


def _interp_fp_ref(n, args, arrays):
    a = arrays["a"]
    out = np.zeros(2 * n, _f32)
    out[0::2] = a[:n]
    out[1::2] = (a[:n] + a[1 : n + 1]) * _f32(0.5)
    return {"out": out}, None


register(
    Kernel(
        "interp_fp", "interp_fp",
        "rate-2 interpolation (strided access, reduction)", "kernel",
        _interp_fp_src, _interp_fp_data, _interp_fp_ref, 512,
    )
)


# ---------------------------------------------------------------------------
# MMM_fp — matrix multiplication (ikj order; the Mono nested-guard case)
# ---------------------------------------------------------------------------

def _mmm_src(n: int) -> str:
    return f"""
void MMM_fp(float A[{n}][{n}], float B[{n}][{n}], float C[{n}][{n}]) {{
    for (int i = 0; i < {n}; i++) {{
        for (int k = 0; k < {n}; k++) {{
            for (int j = 0; j < {n}; j++) {{
                C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }}
        }}
    }}
}}
"""


def _mmm_data(n, rng):
    return (
        {},
        {
            "A": rng.standard_normal((n, n)).astype(_f32),
            "B": rng.standard_normal((n, n)).astype(_f32),
            "C": np.zeros((n, n), _f32),
        },
    )


def _mmm_ref(n, args, arrays):
    return {"C": (arrays["A"] @ arrays["B"]).astype(_f32)}, None


register(
    Kernel(
        "MMM_fp", "MMM_fp", "matrix multiplication", "kernel",
        _mmm_src, _mmm_data, _mmm_ref, 24, rtol=2e-3,
    )
)


# ---------------------------------------------------------------------------
# BLAS: dscal / saxpy in fp and dp
# ---------------------------------------------------------------------------

def _dscal_src(type_name: str, fname: str):
    def src(n: int) -> str:
        return f"""
void {fname}(int n, {type_name} alpha, {type_name} x[]) {{
    for (int i = 0; i < n; i++) {{
        x[i] = alpha * x[i];
    }}
}}
"""

    return src


def _saxpy_src(type_name: str, fname: str):
    def src(n: int) -> str:
        return f"""
void {fname}(int n, {type_name} alpha, {type_name} x[], {type_name} y[]) {{
    for (int i = 0; i < n; i++) {{
        y[i] = alpha * x[i] + y[i];
    }}
}}
"""

    return src


def _blas_data(dtype, with_y):
    def data(n, rng):
        arrays = {"x": rng.standard_normal(n).astype(dtype)}
        if with_y:
            arrays["y"] = rng.standard_normal(n).astype(dtype)
        return {"n": n, "alpha": 1.5}, arrays

    return data


def _dscal_ref(dtype):
    def ref(n, args, arrays):
        return {"x": (dtype(args["alpha"]) * arrays["x"]).astype(dtype)}, None

    return ref


def _saxpy_ref(dtype):
    def ref(n, args, arrays):
        y = dtype(args["alpha"]) * arrays["x"] + arrays["y"]
        return {"y": y.astype(dtype)}, None

    return ref


register(
    Kernel(
        "dscal_fp", "dscal_fp", "scale elements by constant (BLAS)", "kernel",
        _dscal_src("float", "dscal_fp"), _blas_data(_f32, False),
        _dscal_ref(_f32), 512,
    )
)
register(
    Kernel(
        "saxpy_fp", "saxpy_fp", "constant times a vector plus a vector (BLAS)",
        "kernel", _saxpy_src("float", "saxpy_fp"), _blas_data(_f32, True),
        _saxpy_ref(_f32), 512,
    )
)
register(
    Kernel(
        "dscal_dp", "dscal_dp", "scale elements by constant (BLAS, double)",
        "kernel", _dscal_src("double", "dscal_dp"), _blas_data(_f64, False),
        _dscal_ref(_f64), 512,
    )
)
register(
    Kernel(
        "saxpy_dp", "saxpy_dp",
        "constant times a vector plus a vector (BLAS, double)", "kernel",
        _saxpy_src("double", "saxpy_dp"), _blas_data(_f64, True),
        _saxpy_ref(_f64), 512,
    )
)
