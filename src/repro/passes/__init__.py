"""Scalar optimization passes shared by the offline and online compilers."""

from .constfold import eval_binop, eval_cmp, eval_unop, fold_constants
from .dce import eliminate_dead_code
from .licm import hoist_invariants
from .simplify import collapse_ifs, simplify

__all__ = [
    "fold_constants",
    "eval_binop",
    "eval_unop",
    "eval_cmp",
    "eliminate_dead_code",
    "hoist_invariants",
    "simplify",
    "collapse_ifs",
]


def optimize(fn, level: int = 2) -> None:
    """Run the standard pipeline: fold -> simplify -> (licm) -> dce.

    ``level`` 0 does nothing (Mono-like), 1 folds and sweeps, 2 adds
    simplification and invariant hoisting (gcc4cli-like).
    """
    if level <= 0:
        return
    fold_constants(fn)
    if level >= 2:
        simplify(fn)
        hoist_invariants(fn)
        fold_constants(fn)
        simplify(fn)
    eliminate_dead_code(fn)
