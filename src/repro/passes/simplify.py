"""Algebraic simplification and If-collapsing.

Strength-reduction-lite peepholes (``x+0``, ``x*1``, ``x*0``, ``x-x``,
``select`` with constant condition) plus collapsing of ``If`` regions whose
condition folded to a constant — the step that erases the losing loop
version once the online compiler resolves a ``version_guard``.
"""

from __future__ import annotations

from ..ir import (
    BinOp,
    Block,
    Const,
    ForLoop,
    Function,
    If,
    Instr,
    Select,
    Value,
    Yield,
)
from ..ir.types import ScalarType


def _is_scalar_int(t) -> bool:
    return isinstance(t, ScalarType) and not t.is_float

__all__ = ["simplify", "collapse_ifs"]


def _simplify_instr(instr: Instr) -> Value | None:
    from ..machine import ops as mops

    if isinstance(instr, mops.MVReduce):
        # reduce(insert0(splat(identity), x)) == x — the shape left behind
        # when a vector loop collapsed to zero trips under scalarization.
        vec = instr.operands[0]
        if isinstance(vec, mops.MVInsert0):
            base, scalar = vec.operands
            if isinstance(base, mops.MVConst) and len(set(base.values)) == 1:
                ident = base.values[0]
                t = base.type.elem
                expected = {
                    "plus": 0,
                    "min": t.max_value,
                    "max": t.min_value,
                }[instr.kind]
                if ident == expected:
                    return scalar
    if isinstance(instr, BinOp):
        lhs, rhs = instr.lhs, instr.rhs
        lc = lhs.value if isinstance(lhs, Const) else None
        rc = rhs.value if isinstance(rhs, Const) else None
        op = instr.op
        if op == "add":
            if rc == 0:
                return lhs
            if lc == 0:
                return rhs
        elif op == "sub":
            if rc == 0:
                return lhs
            if lhs is rhs and _is_scalar_int(instr.type):
                return Const(0, instr.type)
        elif op == "mul":
            if rc == 1:
                return lhs
            if lc == 1:
                return rhs
            if (rc == 0 or lc == 0) and _is_scalar_int(instr.type):
                return Const(0, instr.type)
        elif op == "div":
            if rc == 1:
                return lhs
        elif op in ("and", "or"):
            if lhs is rhs:
                return lhs
        elif op == "xor":
            if lhs is rhs and _is_scalar_int(instr.type):
                return Const(0, instr.type)
        elif op in ("shl", "shr"):
            if rc == 0:
                return lhs
        elif op in ("min", "max"):
            if lhs is rhs:
                return lhs
    elif isinstance(instr, Select) and isinstance(instr.cond, Const):
        return instr.if_true if instr.cond.value else instr.if_false
    return None


def _simplify_block(block: Block, subst: dict[Value, Value]) -> int:
    changed = 0
    kept = []
    for instr in block.instrs:
        instr.replace_uses(subst)
        replacement = _simplify_instr(instr)
        if replacement is not None:
            subst[instr] = replacement
            changed += 1
            continue  # drop the replaced instruction
        if isinstance(instr, ForLoop):
            changed += _simplify_block(instr.body, subst)
        elif isinstance(instr, If):
            changed += _simplify_block(instr.then_block, subst)
            changed += _simplify_block(instr.else_block, subst)
        kept.append(instr)
    block.instrs = kept
    return changed


def collapse_ifs(fn: Function) -> int:
    """Inline the taken arm of every If whose condition is constant."""
    return _collapse_block(fn.body)


def _collapse_block(block: Block) -> int:
    changed = 0
    new_instrs: list[Instr] = []
    subst: dict[Value, Value] = {}
    for instr in block.instrs:
        instr.replace_uses(subst)
        if isinstance(instr, ForLoop):
            zero_trip = instr.lower is instr.upper or (
                isinstance(instr.lower, Const)
                and isinstance(instr.upper, Const)
                and instr.lower.value >= instr.upper.value
            )
            if zero_trip:
                # Provably zero-trip (e.g. a vector loop whose loop_bound
                # materialized to the same value on both ends, or constant
                # bounds after runtime specialization): results are the
                # initial values.
                for res, init in zip(instr.results, instr.init_values):
                    subst[res] = subst.get(init, init)
                changed += 1
                continue
            changed += _collapse_block(instr.body)
            new_instrs.append(instr)
        elif isinstance(instr, If):
            changed += _collapse_block(instr.then_block)
            changed += _collapse_block(instr.else_block)
            if isinstance(instr.cond, Const):
                arm = instr.then_block if instr.cond.value else instr.else_block
                term = arm.terminator
                for inner in arm.instrs:
                    if inner is term and isinstance(term, Yield):
                        continue
                    inner.replace_uses(subst)
                    new_instrs.append(inner)
                if isinstance(term, Yield):
                    for r, v in zip(instr.results, term.values):
                        subst[r] = subst.get(v, v)
                changed += 1
            else:
                new_instrs.append(instr)
        else:
            new_instrs.append(instr)
    block.instrs = new_instrs
    if subst:
        _apply_subst(block, subst)
    return changed


def _apply_subst(block: Block, subst: dict[Value, Value]) -> None:
    for instr in block.instrs:
        instr.replace_uses(subst)
        if isinstance(instr, ForLoop):
            _apply_subst(instr.body, subst)
        elif isinstance(instr, If):
            _apply_subst(instr.then_block, subst)
            _apply_subst(instr.else_block, subst)


def simplify(fn: Function) -> int:
    """Run algebraic simplification to a fixed point; returns change count."""
    total = 0
    while True:
        n = _simplify_block(fn.body, {})
        n += collapse_ifs(fn)
        total += n
        if n == 0:
            return total
