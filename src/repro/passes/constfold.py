"""Constant folding over the structured IR.

Folds arithmetic on compile-time constants.  Table 1 idioms are *never*
folded here — materializing ``get_VF``/``loop_bound``/``version_guard`` is
the online compiler's job; this pass serves both the offline normalizer and
the optimizing online compiler (after materialization those idioms are
already gone).
"""

from __future__ import annotations

import numpy as np

from ..ir import (
    BinOp,
    Block,
    Cmp,
    Const,
    Convert,
    ForLoop,
    Function,
    If,
    Instr,
    Select,
    UnOp,
    Value,
)
from ..ir.types import BOOL

__all__ = ["fold_constants", "eval_binop", "eval_unop", "eval_cmp"]


def _np(value, type):
    if not type.is_float:
        # Wrap Python ints into the type's range explicitly; numpy >= 2
        # raises OverflowError instead of wrapping on scalar construction.
        bits = type.bits
        v = int(value) & ((1 << bits) - 1)
        if v >= 1 << (bits - 1):
            v -= 1 << bits
        return type.numpy_dtype.type(v)
    return type.numpy_dtype.type(value)


def eval_binop(op: str, a, b, type) -> float | int:
    """Evaluate a scalar binary op with the wrap-around semantics of the
    target type (ints wrap at their width, like C and like the VM)."""
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        x, y = _np(a, type), _np(b, type)
        if op == "add":
            r = x + y
        elif op == "sub":
            r = x - y
        elif op == "mul":
            r = x * y
        elif op == "div":
            if not type.is_float and int(y) == 0:
                raise ZeroDivisionError("constant integer division by zero")
            if type.is_float:
                r = x / y
            else:
                # C-style truncating division.
                r = int(x) // int(y)
                if (int(x) % int(y) != 0) and ((int(x) < 0) != (int(y) < 0)):
                    r += 1
                r = _np(r, type)
        elif op == "mod":
            if int(y) == 0:
                raise ZeroDivisionError("constant integer modulo by zero")
            r = int(x) - int(eval_binop("div", a, b, type)) * int(y)
            r = _np(r, type)
        elif op == "min":
            r = min(x, y)
        elif op == "max":
            r = max(x, y)
        elif op == "and":
            r = _np(int(x) & int(y), type)
        elif op == "or":
            r = _np(int(x) | int(y), type)
        elif op == "xor":
            r = _np(int(x) ^ int(y), type)
        elif op == "shl":
            r = _np(int(x) << (int(y) & (type.bits - 1)), type)
        elif op == "shr":
            r = _np(int(x) >> (int(y) & (type.bits - 1)), type)
        else:
            raise ValueError(f"unknown op {op}")
    return float(r) if type.is_float else int(r)


def eval_unop(op: str, a, type) -> float | int:
    """Evaluate a scalar unary op with the VM's semantics."""
    if op == "neg":
        return eval_binop("sub", 0, a, type)
    if op == "abs":
        return eval_binop("max", a, eval_binop("sub", 0, a, type), type)
    if op == "not":
        return eval_binop("xor", a, -1, type)
    if op == "sqrt":
        return float(np.sqrt(_np(a, type)))
    raise ValueError(f"unknown unary op {op}")


def eval_cmp(op: str, a, b) -> int:
    """Evaluate a comparison, returning 0/1."""
    return int(
        {
            "eq": a == b,
            "ne": a != b,
            "lt": a < b,
            "le": a <= b,
            "gt": a > b,
            "ge": a >= b,
        }[op]
    )


def _fold_instr(instr: Instr) -> Const | None:
    """Return a replacement Const if ``instr`` folds, else None."""
    ops = instr.operands
    if isinstance(instr, BinOp) and all(isinstance(o, Const) for o in ops):
        try:
            return Const(
                eval_binop(instr.op, ops[0].value, ops[1].value, instr.type),
                instr.type,
            )
        except ZeroDivisionError:
            return None
    if isinstance(instr, UnOp) and isinstance(ops[0], Const):
        return Const(eval_unop(instr.op, ops[0].value, instr.type), instr.type)
    if isinstance(instr, Cmp) and all(isinstance(o, Const) for o in ops):
        return Const(eval_cmp(instr.op, ops[0].value, ops[1].value), BOOL)
    if isinstance(instr, Convert) and isinstance(ops[0], Const):
        v = ops[0].value
        return Const(float(v) if instr.to.is_float else int(v), instr.to)
    if isinstance(instr, Select) and isinstance(ops[0], Const):
        return ops[1] if ops[0].value else ops[2]  # type: ignore[return-value]
    return None


def _fold_block(block: Block, subst: dict[Value, Value]) -> int:
    folded = 0
    kept = []
    for instr in block.instrs:
        instr.replace_uses(subst)
        replacement = _fold_instr(instr)
        if replacement is not None:
            subst[instr] = replacement
            folded += 1
            continue  # drop the folded instruction
        if isinstance(instr, ForLoop):
            folded += _fold_block(instr.body, subst)
        elif isinstance(instr, If):
            folded += _fold_block(instr.then_block, subst)
            folded += _fold_block(instr.else_block, subst)
        kept.append(instr)
    block.instrs = kept
    return folded


def fold_constants(fn: Function) -> int:
    """Fold constants in ``fn`` in place; returns the number of folds.

    Folded instructions become dead and are left for DCE to sweep.
    """
    total = 0
    while True:
        n = _fold_block(fn.body, {})
        total += n
        if n == 0:
            return total
