"""Dead code elimination over the structured IR.

Removes pure instructions whose results are unused, loops whose bodies have
no effects and whose results are unused, and If arms collapsed by constant
folding.  The online compiler relies on this to sweep away realignment
chains after it decides to use misaligned/aligned loads ("The JIT compiler
can remove some of this code by recognizing dead code", §III-C.d) — our
structured IR keeps that linear-time.
"""

from __future__ import annotations

from ..ir import (
    Block,
    Const,
    ForLoop,
    Function,
    If,
    Instr,
    Value,
    Yield,
)

__all__ = ["eliminate_dead_code"]


def _block_has_effects(block: Block) -> bool:
    for instr in block.instrs:
        if isinstance(instr, ForLoop):
            if _block_has_effects(instr.body):
                return True
        elif isinstance(instr, If):
            if _block_has_effects(instr.then_block) or _block_has_effects(
                instr.else_block
            ):
                return True
        elif isinstance(instr, Yield):
            continue
        elif instr.has_side_effects:
            return True
    return False


def _mark(fn: Function) -> set[int]:
    """Mark live values: reachable from effectful instructions' operands."""
    live: set[int] = set()
    worklist: list[Value] = []

    def use(v: Value) -> None:
        if v.id not in live:
            live.add(v.id)
            worklist.append(v)

    def scan_block(block: Block) -> None:
        for instr in block.instrs:
            if isinstance(instr, ForLoop):
                scan_block(instr.body)
                # Loop control is needed if the loop survives at all; handled
                # during sweep.  Mark bounds/inits lazily via results/effects.
                if _block_has_effects(instr.body) or any(
                    r.id in live for r in instr.results
                ):
                    for op in instr.operands:
                        use(op)
            elif isinstance(instr, If):
                scan_block(instr.then_block)
                scan_block(instr.else_block)
                if (
                    _block_has_effects(instr.then_block)
                    or _block_has_effects(instr.else_block)
                    or any(r.id in live for r in instr.results)
                ):
                    use(instr.cond)
            elif isinstance(instr, Yield):
                # Yield values are live iff their consumer (carried arg /
                # loop result / if result) is live; approximated below by
                # marking all yields of surviving regions during sweep.
                continue
            elif instr.has_side_effects:
                for op in instr.operands:
                    use(op)

    # Fixed point: region liveness can cascade outward.
    defs: dict[int, Instr] = {}

    def index_defs(block: Block) -> None:
        for instr in block.instrs:
            defs[instr.id] = instr
            if isinstance(instr, ForLoop):
                index_defs(instr.body)
            elif isinstance(instr, If):
                index_defs(instr.then_block)
                index_defs(instr.else_block)

    index_defs(fn.body)

    # Map from loop-result/if-result/block-arg ids back to their producers.
    producers: dict[int, tuple] = {}

    def index_producers(block: Block) -> None:
        for instr in block.instrs:
            if isinstance(instr, ForLoop):
                for r in instr.results:
                    producers[r.id] = ("loop_result", instr, r.index)
                for k, arg in enumerate(instr.carried):
                    producers[arg.id] = ("carried", instr, k)
                index_producers(instr.body)
            elif isinstance(instr, If):
                for r in instr.results:
                    producers[r.id] = ("if_result", instr, r.index)
                index_producers(instr.then_block)
                index_producers(instr.else_block)

    index_producers(fn.body)
    scan_block(fn.body)

    while worklist:
        v = worklist.pop()
        info = producers.get(v.id)
        if info is not None:
            kind, region, index = info
            if kind == "loop_result":
                term = region.body.terminator
                if isinstance(term, Yield):
                    use(term.values[index])
                for op in region.operands:
                    use(op)
            elif kind == "carried":
                term = region.body.terminator
                if isinstance(term, Yield):
                    use(term.values[index])
                use(region.init_values[index])
                for op in (region.lower, region.upper, region.step):
                    use(op)
            elif kind == "if_result":
                for blk in (region.then_block, region.else_block):
                    term = blk.terminator
                    if isinstance(term, Yield):
                        use(term.values[index])
                use(region.cond)
        producer = defs.get(v.id)
        if producer is not None and not isinstance(producer, (ForLoop, If)):
            for op in producer.operands:
                use(op)
    return live


def _sweep_block(block: Block, live: set[int]) -> int:
    removed = 0
    kept: list[Instr] = []
    for instr in block.instrs:
        if isinstance(instr, ForLoop):
            removed += _sweep_block(instr.body, live)
            needed = _block_has_effects(instr.body) or any(
                r.id in live for r in instr.results
            )
            if not needed:
                removed += 1
                continue
        elif isinstance(instr, If):
            removed += _sweep_block(instr.then_block, live)
            removed += _sweep_block(instr.else_block, live)
            needed = (
                _block_has_effects(instr.then_block)
                or _block_has_effects(instr.else_block)
                or any(r.id in live for r in instr.results)
            )
            if not needed:
                removed += 1
                continue
        elif isinstance(instr, Yield):
            pass
        elif not instr.has_side_effects and instr.id not in live:
            removed += 1
            continue
        kept.append(instr)
    block.instrs = kept
    return removed


def _prune_carried(block: Block, live: set[int]) -> int:
    """Drop loop-carried slots whose arg and result are both dead.

    Without this, a dead reduction chain stays alive through its Yield use.
    """
    pruned = 0
    for instr in block.instrs:
        if isinstance(instr, ForLoop):
            pruned += _prune_carried(instr.body, live)
            term = instr.body.terminator
            keep = [
                k
                for k in range(len(instr.carried))
                if instr.carried[k].id in live or instr.results[k].id in live
            ]
            if len(keep) != len(instr.carried):
                pruned += len(instr.carried) - len(keep)
                inits = instr.init_values
                instr._operands = [
                    instr.lower,
                    instr.upper,
                    instr.step,
                    *[inits[k] for k in keep],
                ]
                iv = instr.body.args[0]
                new_args = [iv]
                for pos, k in enumerate(keep):
                    arg = instr.body.args[k + 1]
                    arg.index = pos + 1
                    new_args.append(arg)
                instr.body.args = new_args
                new_results = []
                for pos, k in enumerate(keep):
                    r = instr.results[k]
                    r.index = pos
                    new_results.append(r)
                instr.results = new_results
                if isinstance(term, Yield):
                    term._operands = [term.values[k] for k in keep]
        elif isinstance(instr, If):
            pruned += _prune_carried(instr.then_block, live)
            pruned += _prune_carried(instr.else_block, live)
    return pruned


def eliminate_dead_code(fn: Function) -> int:
    """Remove dead instructions from ``fn`` in place; returns count removed."""
    total = 0
    while True:
        live = _mark(fn)
        removed = _sweep_block(fn.body, live)
        removed += _prune_carried(fn.body, live)
        total += removed
        if removed == 0:
            return total
