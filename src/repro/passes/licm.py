"""Loop-invariant code motion.

Hoists pure instructions whose operands are all defined outside the loop.
The optimizing online compiler runs this so that e.g. ``get_rt`` tokens and
splatted constants are computed once per loop, while the lightweight Mono
JIT does not — one of the code-quality deltas Figure 5 of the paper shows.
"""

from __future__ import annotations

from ..ir import Block, ForLoop, Function, If, Instr, Value

__all__ = ["hoist_invariants"]


def _defined_in(block: Block) -> set[int]:
    ids: set[int] = {a.id for a in block.args}
    for instr in block.instrs:
        ids.add(instr.id)
        if isinstance(instr, ForLoop):
            ids |= _defined_in(instr.body)
            ids |= {r.id for r in instr.results}
        elif isinstance(instr, If):
            ids |= _defined_in(instr.then_block)
            ids |= _defined_in(instr.else_block)
            ids |= {r.id for r in instr.results}
    return ids


def _hoist_from_loop(loop: ForLoop, dest: list[Instr]) -> int:
    """Move invariant instructions from ``loop.body`` into ``dest``."""
    hoisted = 0
    changed = True
    while changed:
        changed = False
        inside = _defined_in(loop.body)
        kept: list[Instr] = []
        for instr in loop.body.instrs:
            movable = (
                not instr.has_side_effects
                and not isinstance(instr, (ForLoop, If))
                and all(op.id not in inside for op in instr.operands)
            )
            if movable:
                dest.append(instr)
                hoisted += 1
                changed = True
            else:
                kept.append(instr)
        loop.body.instrs = kept
    return hoisted


def _walk(block: Block) -> int:
    hoisted = 0
    new_instrs: list[Instr] = []
    for instr in block.instrs:
        if isinstance(instr, ForLoop):
            hoisted += _walk(instr.body)
            pre: list[Instr] = []
            hoisted += _hoist_from_loop(instr, pre)
            new_instrs.extend(pre)
            new_instrs.append(instr)
        elif isinstance(instr, If):
            hoisted += _walk(instr.then_block)
            hoisted += _walk(instr.else_block)
            new_instrs.append(instr)
        else:
            new_instrs.append(instr)
    block.instrs = new_instrs
    return hoisted


def hoist_invariants(fn: Function) -> int:
    """Hoist loop-invariant code in ``fn``; returns the number of moves."""
    return _walk(fn.body)
