"""Target descriptors: the per-ISA facts both compilation stages consume.

A :class:`Target` captures exactly the properties the paper's §IV-A table of
platforms varies: vector size, alignment capabilities, supported element
types, realignment idiom availability, plus a cycle-cost table that stands
in for the real microarchitecture (see DESIGN.md's substitution notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.types import F32, F64, I8, I16, I32, I64, ScalarType

__all__ = ["Target", "CostTable", "BASE_COSTS"]

#: Default per-opcode cycle costs; targets override entries.  Scalar loads
#: and stores model L1 hits; division and sqrt are long-latency; vector op
#: costs are per *instruction* (the whole register), which is what makes
#: vectorization pay off.
BASE_COSTS: dict[str, float] = {
    "const": 0.5,
    "mov": 0.5,
    "lea": 0.5,
    "add": 1.0, "sub": 1.0, "and": 1.0, "or": 1.0, "xor": 1.0,
    "shl": 1.0, "shr": 1.0, "min": 1.0, "max": 1.0,
    "mul": 3.0, "div": 18.0, "mod": 20.0,
    "neg": 1.0, "abs": 1.0, "not": 1.0, "sqrt": 16.0,
    "cmp": 1.0, "select": 1.0, "cvt": 2.0,
    "load": 1.0, "store": 1.0,
    "br": 1.0, "brtrue": 1.0, "brfalse": 1.0, "label": 0.0, "ret": 1.0,
    "arr_overlap": 3.0, "arr_aligned": 2.0,
    "call_lib": 24.0,
    "spill_st": 1.0, "spill_ld": 1.0,
    # vector
    "vconst": 1.0, "vsplat": 1.0, "vaffine": 2.0,
    "vload_a": 1.0, "vload_u": 2.0, "vload_fa": 1.0,
    "vstore_a": 1.0, "vstore_u": 3.0,
    "lvsr": 1.0, "vperm": 1.0,
    "vadd": 1.0, "vsub": 1.0, "vand": 1.0, "vor": 1.0, "vxor": 1.0,
    "vshl": 1.0, "vshr": 1.0, "vmin": 1.0, "vmax": 1.0,
    "vmul": 2.0, "vdiv": 20.0, "vmod": 24.0,
    "vneg": 1.0, "vabs": 1.0, "vnot": 1.0, "vsqrt": 18.0,
    "vcmp": 1.0, "vselect": 1.0, "vcvt": 2.0,
    "vreduce": 3.0, "vdot": 2.0, "vinsert0": 1.0,
    "vwidenmul": 2.0, "vpack": 1.0, "vunpack": 1.0,
    "vextract": 2.0, "vinterleave": 1.0,
}

#: Extra cost per scalar floating-point operation when the online compiler
#: routes scalar FP through the x87 stack (Mono on x86, §V-A: "use of the
#: x87 floating point unit, which Mono does not optimize").
X87_FP_EXTRA = 4.0


@dataclass
class CostTable:
    """Per-opcode cycle costs with simple lookup semantics."""

    costs: dict[str, float] = field(default_factory=dict)

    def get(self, op: str) -> float:
        if op in self.costs:
            return self.costs[op]
        return BASE_COSTS.get(op, 1.0)


@dataclass
class Target:
    """An execution target for the online stage (or the native compiler).

    Attributes:
        name: registry key ("sse", "altivec", "neon", "avx", "scalar").
        vector_size: VS in bytes; 0 means no SIMD (scalarize everything).
        supports_misaligned_load / supports_misaligned_store: whether
            misaligned vector memory ops exist at all (SSE/NEON/AVX yes,
            AltiVec no).
        supports_explicit_realign: vperm/lvsr-style realignment (AltiVec).
        vector_elem_types: element types with vector arithmetic support;
            AltiVec has no 64-bit support, NEON-64 no doubles, AVX(1) is
            floating-point only.
        library_idioms: idiom mnemonics only available via a library call
            (the paper's immature-NEON dissolve/dct fallback).
        gpr_count/fpr_count/vec_count: physical register file sizes — the
            lever behind Mono's spill behaviour on x86 vs PowerPC.
        has_scaled_addressing: base+index*scale addressing is free (x86);
            otherwise address arithmetic costs explicit instructions.
        issue_width: superscalar width used by the IACA-style analyzer.
        description: one-line human description (docs/reports).
    """

    name: str
    vector_size: int
    supports_misaligned_load: bool = True
    supports_misaligned_store: bool = True
    supports_explicit_realign: bool = False
    vector_elem_types: frozenset = frozenset({I8, I16, I32, F32})
    library_idioms: frozenset = frozenset()
    gpr_count: int = 16
    fpr_count: int = 16
    vec_count: int = 16
    has_scaled_addressing: bool = False
    issue_width: int = 4
    cost: CostTable = field(default_factory=CostTable)
    description: str = ""

    @property
    def has_simd(self) -> bool:
        return self.vector_size > 0

    def vf(self, elem: ScalarType) -> int:
        """get_VF materialization: lanes of ``elem`` per register (1 if no
        SIMD or the element type is unsupported)."""
        if not self.has_simd or elem not in self.vector_elem_types:
            return 1
        return self.vector_size // elem.size

    def supports_elem(self, elem: ScalarType) -> bool:
        return self.has_simd and elem in self.vector_elem_types

    def __repr__(self) -> str:
        return f"Target({self.name}, VS={self.vector_size})"
