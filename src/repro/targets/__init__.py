"""SIMD target descriptors (SSE, AltiVec, NEON, AVX, scalar)."""

from .base import BASE_COSTS, X87_FP_EXTRA, CostTable, Target
from .defs import (
    ALTIVEC,
    AVX,
    NEON,
    SCALAR,
    SSE,
    TARGETS,
    VSX,
    UnknownTargetError,
    get_target,
)

__all__ = [
    "Target",
    "CostTable",
    "BASE_COSTS",
    "X87_FP_EXTRA",
    "SSE",
    "ALTIVEC",
    "NEON",
    "AVX",
    "VSX",
    "SCALAR",
    "TARGETS",
    "get_target",
    "UnknownTargetError",
]
