"""The concrete targets of the paper's evaluation (§IV-A).

Register-file sizes and cost quirks are chosen to reproduce the *behaviour*
the paper reports, not exact microarchitectural numbers:

* **SSE** (Core2-era x86): misaligned loads exist but cost extra; only six
  allocatable GPRs, so Mono's local allocator spills heavily; scaled
  addressing is free.
* **AltiVec** (PowerPC G5): aligned-only memory ops with lvsr/vperm
  realignment; no 64-bit element support (doubles scalarize); large
  register files, so Mono behaves better than on x86.
* **NEON** (Cortex-A8, 64-bit vectors): VS=8 demonstrates VF portability;
  no double support; the widening-multiply and int<->fp conversion idioms
  fall back to library calls, modelling the immature GCC NEON backend the
  paper mentions for dissolve and dct.
* **AVX** (emulated, 256-bit): floating-point only, evaluated via the
  IACA-style static analyzer (Table 3), not wall-clock runs.
* **scalar**: no SIMD at all — exercises the scalarization path (§III-C.d).
"""

from __future__ import annotations

from ..errors import ReproError
from ..ir.types import F32, F64, I8, I16, I32, I64
from .base import CostTable, Target

__all__ = ["SSE", "ALTIVEC", "NEON", "AVX", "VSX", "SCALAR", "TARGETS",
           "get_target", "UnknownTargetError"]

SSE = Target(
    name="sse",
    vector_size=16,
    supports_misaligned_load=True,
    supports_misaligned_store=True,
    supports_explicit_realign=False,
    vector_elem_types=frozenset({I8, I16, I32, I64, F32, F64}),
    gpr_count=6,
    fpr_count=8,
    vec_count=8,
    has_scaled_addressing=True,
    issue_width=4,
    cost=CostTable({"vload_u": 2.0, "vstore_u": 3.0, "vextract": 2.0}),
    description="Intel Core2 Duo E6850 @ 3 GHz (SSE/SSE2/SSE3/SSSE3)",
)

ALTIVEC = Target(
    name="altivec",
    vector_size=16,
    supports_misaligned_load=False,
    supports_misaligned_store=False,
    supports_explicit_realign=True,
    vector_elem_types=frozenset({I8, I16, I32, F32}),
    gpr_count=32,
    fpr_count=32,
    vec_count=32,
    has_scaled_addressing=False,
    issue_width=4,
    cost=CostTable({"vperm": 1.0, "lvsr": 1.0, "vreduce": 4.0}),
    description="PowerPC G5 @ 2.3 GHz (AltiVec; aligned accesses only)",
)

NEON = Target(
    name="neon",
    vector_size=8,
    supports_misaligned_load=True,
    supports_misaligned_store=True,
    supports_explicit_realign=False,
    vector_elem_types=frozenset({I8, I16, I32, F32}),
    library_idioms=frozenset({"widen_mult", "cvt_intfp"}),
    gpr_count=14,
    fpr_count=16,
    vec_count=16,
    has_scaled_addressing=False,
    issue_width=2,
    cost=CostTable({"vload_u": 1.5, "vstore_u": 2.0, "mul": 4.0}),
    description="ARM Cortex A8 @ 720 MHz (NEON, 64-bit vector mode)",
)

AVX = Target(
    name="avx",
    vector_size=32,
    supports_misaligned_load=True,
    supports_misaligned_store=True,
    supports_explicit_realign=False,
    vector_elem_types=frozenset({F32, F64}),
    gpr_count=16,
    fpr_count=16,
    vec_count=16,
    has_scaled_addressing=True,
    issue_width=4,
    cost=CostTable({"vload_u": 1.5, "vstore_u": 2.0}),
    description="Intel AVX via SDE/IACA emulation (256-bit FP vectors)",
)

VSX = Target(
    name="vsx",
    vector_size=16,
    supports_misaligned_load=True,
    supports_misaligned_store=True,
    supports_explicit_realign=True,
    vector_elem_types=frozenset({I8, I16, I32, I64, F32, F64}),
    gpr_count=32,
    fpr_count=64,
    vec_count=64,
    has_scaled_addressing=False,
    issue_width=4,
    cost=CostTable({"vload_u": 1.5, "vstore_u": 2.0, "vperm": 1.0}),
    description=(
        "POWER7-class VSX (SIII-A lists it among explicit-realignment "
        "targets): AltiVec superset with 64-bit elements and misaligned "
        "accesses"
    ),
)

SCALAR = Target(
    name="scalar",
    vector_size=0,
    supports_misaligned_load=False,
    supports_misaligned_store=False,
    supports_explicit_realign=False,
    vector_elem_types=frozenset(),
    gpr_count=16,
    fpr_count=16,
    vec_count=0,
    has_scaled_addressing=False,
    issue_width=2,
    description="Generic target without SIMD support (scalarization path)",
)

TARGETS: dict[str, Target] = {
    t.name: t for t in (SSE, ALTIVEC, NEON, AVX, VSX, SCALAR)
}


class UnknownTargetError(ReproError, KeyError):
    """Unknown target name.  Also a :class:`KeyError` for backward
    compatibility with lookup-style callers."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


def get_target(name: str) -> Target:
    """Look up a target by name; raises :class:`UnknownTargetError` (a
    KeyError) with the known set."""
    try:
        return TARGETS[name]
    except KeyError:
        raise UnknownTargetError(
            f"unknown target {name!r}; known: {sorted(TARGETS)}"
        ) from None
