"""``repro.api`` — the one-call pipeline facade over the split toolchain.

Every entry point of the repo (library, :class:`FlowRunner`, the CLI,
:class:`KernelService`) ultimately performs the same five phases::

    frontend  ->  vectorize  ->  encode  ->  jit  ->  vm
    (VaporC)      (offline)      (.vbc)     (online)  (cycle-cost run)

This module is the single instrumented spine for that pipeline:

* :class:`Pipeline` / :func:`compile_and_run` run source to result in
  one call and return a structured :class:`RunArtifacts`;
* the ``*_phase`` helpers wrap each stage in its
  :mod:`repro.obs` span, so every caller that routes through them emits
  the same span taxonomy (``docs/observability.md``);
* :func:`resolve_target` / :func:`resolve_engine` /
  :func:`resolve_compiler` are the one canonical way to pick a target,
  an execution engine, and an online compiler anywhere in the API.

The historical entry points (``compile_source`` + ``vectorize_function``
+ ``MonoJIT().compile`` + ``VM().run``) keep working unchanged — they
are what the facade delegates to.  See ``docs/api.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import obs
from ._compat import warn_once
from .bytecode import decode_function, encode_function
from .frontend import compile_source
from .ir import Function, Module
from .jit import CompiledKernel, MonoJIT, NativeBackend, OptimizingJIT
from .machine import ArrayBuffer
from .machine.registry import DEFAULT_ENGINE, engine_names, get_engine
from .machine.vm import RunResult, VMError
from .targets import get_target
from .targets.base import Target
from .vectorizer import (
    VectorizerConfig,
    native_config,
    split_config,
    vectorize_module,
)

__all__ = [
    "Pipeline",
    "RunArtifacts",
    "compile_and_run",
    "resolve_target",
    "resolve_engine",
    "resolve_compiler",
    "COMPILERS",
    "ENGINES",
    "frontend_phase",
    "vectorize_phase",
    "encode_phase",
    "jit_phase",
    "execute_phase",
]

#: canonical compiler-name -> class registry (the CLI ``--compiler``
#: choices and the service's ``FLOWS`` personalities resolve here).
COMPILERS = {
    "mono": MonoJIT,
    "gcc4cli": OptimizingJIT,
    "native": NativeBackend,
}


def __getattr__(name: str):
    # Engines live in repro.machine.registry now; the old frozen tuple
    # keeps working (reflecting whatever is currently registered) behind
    # a one-time deprecation warning.
    if name == "ENGINES":
        warn_once(
            "repro.api.ENGINES",
            "repro.machine.registry.engine_names()",
        )
        return engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def resolve_target(target) -> Target:
    """The one canonical target coercion: name or Target -> Target."""
    if isinstance(target, Target):
        return target
    return get_target(target)


def resolve_engine(engine: str) -> str:
    """Validate/normalize an execution-engine name (registry lookup)."""
    return get_engine(engine).name


def resolve_compiler(compiler):
    """Name / class / instance -> online-compiler *instance*."""
    if isinstance(compiler, str):
        try:
            cls = COMPILERS[compiler]
        except KeyError:
            raise ValueError(
                f"unknown compiler {compiler!r}; one of "
                f"{', '.join(sorted(COMPILERS))}"
            ) from None
        return cls()
    if isinstance(compiler, type):
        return compiler()
    return compiler


# -- the instrumented phase helpers ------------------------------------------
#
# Each helper is one pipeline phase wrapped in its span.  FlowRunner,
# Pipeline, and the service route through these (directly or by emitting
# the same span names), which is what makes "every entry point emits the
# same span taxonomy" true by construction.


def frontend_phase(source: str, name: str = "module") -> Module:
    """VaporC source -> verified scalar IR module (span: ``frontend``)."""
    with obs.span("frontend", phase="frontend", module=name) as sp:
        module = compile_source(source, name)
        sp.set(functions=len(module.functions))
    return module


def vectorize_phase(
    module: Module, config: VectorizerConfig
) -> Module:
    """Offline auto-vectorization of a module (span: ``vectorize``)."""
    with obs.span(
        "vectorize", phase="vectorize",
        mode="native" if config.target is not None else "split",
    ) as sp:
        out = vectorize_module(module, config)
        sp.set(functions=len(out.functions))
    return out


def encode_phase(fn: Function) -> tuple[bytes, Function]:
    """Encode + decode round-trip through the .vbc wire format
    (span: ``encode``).  Returns ``(blob, decoded_fn)``."""
    with obs.span("encode", phase="encode", function=fn.name) as sp:
        blob = encode_function(fn)
        decoded = decode_function(blob)
        sp.set(bytes=len(blob))
    return blob, decoded


def jit_phase(
    compiler, fn: Function, target, *, force_scalar: bool = False
) -> CompiledKernel:
    """Online compilation for one target (span: ``jit``)."""
    compiler = resolve_compiler(compiler)
    target = resolve_target(target)
    with obs.span(
        "jit", phase="jit", function=fn.name, target=target.name,
        compiler=compiler.name,
    ) as sp:
        ck = compiler.compile(fn, target, force_scalar=force_scalar)
        sp.set(
            compile_seconds=ck.compile_seconds,
            degraded=ck.degraded,
            minstrs=ck.stats.get("minstrs"),
        )
        if ck.events:
            sp.set(events=[e.cause for e in ck.events])
    return ck


def execute_phase(
    ck: CompiledKernel,
    scalar_args: dict | None,
    arrays: dict | None,
    *,
    engine: str = DEFAULT_ENGINE,
) -> RunResult:
    """Cycle-cost execution of a compiled kernel (span: ``vm``).

    This is the unified VM call site: it dispatches through the engine
    registry (:mod:`repro.machine.registry` — any registered engine is
    selectable here by name), and feeds the metrics registry the
    engine's accounting (``vm.runs`` / ``vm.cycles`` /
    ``vm.instructions`` / ``vm.traps``).
    """
    eng = get_engine(engine)
    with obs.span(
        "vm", phase="vm", engine=eng.name, target=ck.target.name,
        function=ck.mfunc.name,
    ) as sp:
        try:
            result = eng.run(ck, scalar_args, arrays)
        except VMError as exc:
            obs.count("vm.traps")
            sp.set(error=type(exc).__name__)
            raise
        sp.set(cycles=result.cycles, instructions=result.instructions)
    obs.count("vm.runs")
    obs.count("vm.cycles", result.cycles)
    obs.count("vm.instructions", result.instructions)
    return result


# -- the one-call facade ------------------------------------------------------


@dataclass
class RunArtifacts:
    """Everything one pipeline invocation produced, in one structure.

    ``arrays`` holds the live :class:`ArrayBuffer`\\ s after execution —
    read outputs with ``artifacts.arrays["y"].read_elements()``.
    """

    function: str
    target: str
    engine: str
    scalar_ir: Function
    vector_ir: Function | None
    bytecode: bytes | None
    compiled: CompiledKernel
    result: RunResult | None = None
    arrays: dict = field(default_factory=dict)
    #: the DegradationEvent chain from the online compiler (empty on a
    #: clean vector compile).
    events: list = field(default_factory=list)
    #: spans recorded during this call (None when tracing was disabled).
    trace: list | None = None

    @property
    def cycles(self) -> float | None:
        return None if self.result is None else self.result.cycles

    @property
    def value(self):
        return None if self.result is None else self.result.value

    @property
    def degraded(self) -> bool:
        return bool(self.events)


class Pipeline:
    """Source -> vectorize -> encode -> JIT -> VM, in one object.

    All options are keyword-only (the API-consistency convention):

    ``target``
        name or :class:`Target` — the online machine (default ``sse``).
    ``compiler``
        ``"mono"`` | ``"gcc4cli"`` | ``"native"`` or a compiler
        class/instance (default ``gcc4cli``).
    ``engine``
        any name from :func:`repro.machine.registry.engine_names`
        (``threaded`` / ``codegen`` / ``reference`` built in — all
        bit-identical; default ``threaded``).
    ``vectorize``
        False compiles the scalar bytecode directly (flow A/E shape).
    ``force_scalar``
        materialize every loop group scalar (the degradation cascade's
        always-lowerable compilation).
    ``roundtrip``
        push the bytecode through the .vbc encode/decode wire format
        (the split story; disable to JIT the in-memory IR directly).
    ``config``
        a :class:`VectorizerConfig`, or a dict of ``split_config``
        overrides (ignored when ``vectorize=False``).

    Example::

        arts = Pipeline(target="neon").run(SRC, {"n": 64}, {"x": x, "y": y})
        print(arts.cycles, arts.arrays["y"].read_elements())
    """

    def __init__(
        self,
        *,
        target="sse",
        compiler="gcc4cli",
        engine: str = DEFAULT_ENGINE,
        vectorize: bool = True,
        force_scalar: bool = False,
        roundtrip: bool = True,
        config=None,
    ) -> None:
        self.target = resolve_target(target)
        self.compiler = resolve_compiler(compiler)
        self.engine = resolve_engine(engine)
        self.vectorize = bool(vectorize)
        self.force_scalar = bool(force_scalar)
        self.roundtrip = bool(roundtrip)
        if config is None or isinstance(config, dict):
            overrides = dict(config or {})
            if isinstance(self.compiler, NativeBackend):
                self._config = native_config(self.target, **overrides)
            else:
                self._config = split_config(**overrides)
        else:
            self._config = config

    # -- internals --------------------------------------------------------

    def _function(self, module: Module, function: str | None) -> Function:
        if function is not None:
            return module[function]
        names = list(module.functions)
        if len(names) != 1:
            raise ValueError(
                f"module defines {len(names)} functions "
                f"({', '.join(names)}); pass function=..."
            )
        return module[names[0]]

    def compile(self, source: str, function: str | None = None) -> RunArtifacts:
        """Offline + online stages only (no execution)."""
        with obs.span("pipeline", phase="pipeline",
                      target=self.target.name) as sp:
            arts = self._compile(source, function)
            sp.set(function=arts.function, degraded=arts.degraded)
        return arts

    def _compile(self, source: str, function: str | None) -> RunArtifacts:
        module = frontend_phase(source)
        scalar_fn = self._function(module, function)
        if self.vectorize:
            vec_module = vectorize_phase(module, self._config)
            work = vec_module[scalar_fn.name]
            vector_ir: Function | None = work
        else:
            with obs.span("vectorize", phase="vectorize", skipped=True):
                pass
            work, vector_ir = scalar_fn, None
        if self.roundtrip and self._config.target is None:
            blob, work = encode_phase(work)
        else:
            with obs.span("encode", phase="encode", skipped=True):
                blob = None
        ck = jit_phase(
            self.compiler, work, self.target,
            force_scalar=self.force_scalar,
        )
        return RunArtifacts(
            function=scalar_fn.name,
            target=self.target.name,
            engine=self.engine,
            scalar_ir=scalar_fn,
            vector_ir=vector_ir,
            bytecode=blob,
            compiled=ck,
            events=list(ck.events),
        )

    def _buffers(self, scalar_fn: Function, arrays: dict | None) -> dict:
        bufs: dict[str, ArrayBuffer] = {}
        for arr in scalar_fn.array_params:
            if arrays is None or arr.name not in arrays:
                raise ValueError(
                    f"array parameter {arr.name!r} not supplied"
                )
            data = arrays[arr.name]
            if isinstance(data, ArrayBuffer):
                bufs[arr.name] = data
            else:
                data = np.asarray(data)
                bufs[arr.name] = ArrayBuffer(
                    arr.elem, int(data.size), data=data
                )
        return bufs

    def run(
        self,
        source: str,
        scalar_args: dict | None = None,
        arrays: dict | None = None,
        function: str | None = None,
    ) -> RunArtifacts:
        """The one-call path: compile ``source`` and execute it.

        ``arrays`` maps array-parameter names to numpy arrays (copied
        into fresh :class:`ArrayBuffer`\\ s) or live ``ArrayBuffer``\\ s
        (used as-is).  Outputs are read back from ``arts.arrays``.
        """
        recorder = obs.active_tracer()
        first = len(recorder.spans) if recorder is not None else 0
        with obs.span("pipeline", phase="pipeline",
                      target=self.target.name) as sp:
            arts = self._compile(source, function)
            bufs = self._buffers(arts.scalar_ir, arrays)
            arts.arrays = bufs
            arts.result = execute_phase(
                arts.compiled, dict(scalar_args or {}), bufs,
                engine=self.engine,
            )
            sp.set(
                function=arts.function, degraded=arts.degraded,
                cycles=arts.result.cycles,
            )
        if recorder is not None:
            arts.trace = recorder.snapshot()[first:]
        return arts


def compile_and_run(
    source: str,
    scalar_args: dict | None = None,
    arrays: dict | None = None,
    *,
    function: str | None = None,
    **pipeline_options,
) -> RunArtifacts:
    """One-call convenience: ``Pipeline(**options).run(...)``.

    >>> arts = compile_and_run(SRC, {"n": 8}, {"x": x, "y": y},
    ...                        target="altivec")
    >>> arts.cycles, arts.value, arts.degraded
    """
    return Pipeline(**pipeline_options).run(
        source, scalar_args, arrays, function=function
    )


# -- best-effort smoke execution (repro compile --trace-out) ------------------


def synthesize_inputs(fn: Function, n: int = 32) -> tuple[dict, dict]:
    """Fabricate plausible inputs for an arbitrary kernel signature.

    Integer scalars become ``n`` (they are overwhelmingly trip counts in
    this language), floats become 1.0; arrays are filled with ones (safe
    for the div/mod kernels) and sized by evaluating their declared
    extents against those scalars.  Best-effort by design — callers
    treat failures as "this kernel cannot be smoked", not as errors.
    """
    scalar_args: dict[str, object] = {}
    for arg in fn.scalar_params:
        scalar_args[arg.name] = 1.0 if arg.type.is_float else n
    arrays: dict[str, np.ndarray] = {}
    for arr in fn.array_params:
        size = 1
        for extent in arr.shape:
            if isinstance(extent, int):
                size *= extent if extent > 0 else n
            else:  # symbolic extent: a scalar Argument
                size *= int(scalar_args.get(extent.name, n))
        size = max(1, size)
        arrays[arr.name] = np.ones(size, dtype=arr.elem.numpy_dtype)
    return scalar_args, arrays


def smoke_run(
    fn: Function,
    scalar_fn: Function | None = None,
    *,
    target="sse",
    compiler="gcc4cli",
    engine: str = DEFAULT_ENGINE,
    n: int = 32,
) -> RunResult | None:
    """JIT + execute ``fn`` on synthesized inputs (spans: jit, vm).

    Used by ``repro compile --trace-out`` so a compile-only invocation
    still produces a trace covering all five phases.  Returns None when
    inputs could not be synthesized or execution trapped — the span
    records the error, the compile itself is unaffected.
    """
    sig = scalar_fn if scalar_fn is not None else fn
    try:
        ck = jit_phase(compiler, fn, target)
        scalar_args, np_arrays = synthesize_inputs(sig, n)
        bufs = {
            name: ArrayBuffer(sig.find_array(name).elem, arr.size, data=arr)
            for name, arr in np_arrays.items()
        }
        return execute_phase(ck, scalar_args, bufs, engine=engine)
    except Exception:
        return None
