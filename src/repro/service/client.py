"""The resilient gateway client: sharding, retries, failover, deadlines.

The other half of the wire contract (:mod:`repro.service.wire`): a
blocking client built for the fail-soft story the gateway exports —

* **classified failures** — every wire problem surfaces as a
  :class:`~repro.service.wire.NetworkError` with a machine-readable
  ``kind`` (connect/reset/timeout/truncated/bad-crc/...), never a raw
  ``OSError`` from inside socket code;
* **jittered-backoff retries** — transient wire failures are retried
  with the toolchain's shared
  :func:`~repro.harness.parallel.backoff_delay` (the same curve the
  service's own retry loop uses), seeded for deterministic campaigns;
* **deliberate placement** — compile requests are **hash-sharded** by
  request shape (:func:`shard_index`): the shape determines the
  canonical bytecode and hence the service's
  :class:`~repro.service.cache.CacheKey`, so all requests for one cache
  key land on one replica — cold misses coalesce on that replica's
  single-flight table instead of compiling once per replica, and its
  cache stays hot for the shapes it owns;
* **per-call failover ordering** — every ``request()`` re-derives its
  replica ordering: the shard owner first, then a *jittered rotation*
  of the remainder (so failover load spreads instead of piling onto the
  next index), with replicas that failed within ``dead_cooldown_s``
  demoted to the back of the order.  A dead first replica therefore
  costs one classified connect failure *once per cooldown window*, not
  one connect timeout on every subsequent call;
* **deadline awareness** — one budget covers the whole ``request()``
  call: each attempt's socket timeout is clipped to the remaining
  budget, the *remaining* (not original) budget rides the frame header
  of every attempt, backoff sleeps never overrun it, and an exhausted
  budget raises a classified
  :class:`~repro.service.admission.DeadlineError` instead of burning a
  retry that cannot finish.

``addresses`` may also be a **callable** returning the current replica
slot list (entries may be ``None`` for a slot that is down) — the hook
:class:`~repro.service.supervisor.FleetSupervisor` uses to hand clients
a live topology whose ports change as replicas restart.

A torn response (connection cut mid-frame, CRC mismatch) is always
*detected* — the CRC trailer covers header and payload — and counts as
a transient wire failure: the client retries, and never, under any
interleaving the chaos campaign can find, hands a partial frame to the
caller as an answer.
"""

from __future__ import annotations

import random
import socket
import time
import zlib

from ..harness.parallel import backoff_delay
from .admission import Deadline, DeadlineError
from .wire import (
    HEADER_LEN,
    NetworkError,
    check_frame,
    check_header,
    decode_payload,
    encode_frame,
)

__all__ = ["GatewayClient", "parse_address", "request_shape", "shard_index"]

#: the gateway's default flow — mirrored here so the client-side shard
#: hash agrees with the server-side request defaults.
DEFAULT_FLOW = "split_vec_gcc4cli"
DEFAULT_TARGET = "sse"

#: the client-visible request shape: exactly the fields that determine
#: the canonical bytecode and hence the service-side CacheKey.
_SHAPE_FIELDS = (
    ("kernel", ""),
    ("flow", DEFAULT_FLOW),
    ("target", DEFAULT_TARGET),
    ("size", None),
    ("force_scalar", False),
)


def parse_address(addr) -> tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` -> ``(host, port)``."""
    if isinstance(addr, str):
        host, sep, port = addr.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"address {addr!r} is not HOST:PORT")
        return (host or "127.0.0.1", int(port))
    host, port = addr
    return (str(host), int(port))


def request_shape(payload: dict) -> str:
    """The canonical shape string of a compile payload.

    The request *shape* — (kernel, flow, target, size, force_scalar) —
    deterministically yields the canonical bytecode and therefore the
    service-side :class:`~repro.service.cache.CacheKey`.  The same
    string drives both client-side placement (:func:`shard_index`) and
    the gateway's pre-admission batcher, so two requests that batch
    into one flight group are exactly two requests that would shard to
    one replica and coalesce on one single-flight key.
    """
    return "\x00".join(
        str(payload.get(k, d)) for k, d in _SHAPE_FIELDS
    )


def shard_index(payload: dict, n_slots: int) -> int:
    """Deterministic replica placement for a compile payload.

    Hashing the shape (:func:`request_shape`) places every request for
    one cache key on one replica without the client ever computing
    bytecode.  CRC-32 over the canonical shape string keeps placement
    stable across processes and Python versions (``hash()`` is salted;
    it would reshuffle the shard map per run).
    """
    if n_slots <= 1:
        return 0
    shape = request_shape(payload)
    return (zlib.crc32(shape.encode("utf-8")) & 0xFFFFFFFF) % n_slots


class GatewayClient:
    """A blocking client for one or more gateway replicas.

    ``addresses`` is the replica slot list — static (list of
    ``HOST:PORT`` / ``(host, port)``) or a callable returning the
    current slots, where ``None`` marks a slot whose replica is down.
    ``retries`` is the number of *additional* attempts after the first;
    each attempt walks the per-call ordering (shard owner first, then
    the jittered remainder).  ``attempt_timeout_s`` bounds any single
    socket operation; the per-request ``deadline_s`` bounds the whole
    call, retries and backoff included.
    """

    def __init__(
        self,
        addresses,
        *,
        retries: int = 2,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        attempt_timeout_s: float | None = 10.0,
        connect_timeout_s: float = 5.0,
        dead_cooldown_s: float = 1.0,
        seed: int = 0,
    ) -> None:
        self._provider = None
        if callable(addresses):
            self._provider = addresses
            self.addresses: list = []
        else:
            if isinstance(addresses, (str, tuple)):
                addresses = [addresses]
            self.addresses = [parse_address(a) for a in addresses]
            if not self.addresses:
                raise ValueError("need at least one gateway address")
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.attempt_timeout_s = attempt_timeout_s
        self.connect_timeout_s = float(connect_timeout_s)
        self.dead_cooldown_s = float(dead_cooldown_s)
        self._rng = random.Random(seed)
        #: one cached connection per replica address (bounded by the
        #: replica count) — sharded traffic alternates shard owners, and
        #: reconnecting per alternation would swamp the shard benefit.
        self._socks: dict[tuple[str, int], socket.socket] = {}
        #: address -> monotonic time of its last wire failure; used to
        #: demote recently dead replicas to the back of the call order.
        self._failed_at: dict[tuple[str, int], float] = {}
        self.attempts = 0
        self.failovers = 0
        self.wire_errors = 0
        #: reused keep-alive connections found dead before any response
        #: byte arrived (the peer idle-reclaimed them between calls) and
        #: transparently resent on a fresh connection.
        self.stale_reconnects = 0
        #: responses that were answered out of a gateway-side flight
        #: group (payload carries ``batched`` >= 2) — the client-visible
        #: evidence that a stampede was merged before admission.
        self.batched_responses = 0

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        for addr in list(self._socks):
            self._drop_connection(addr)

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _drop_connection(self, addr) -> None:
        sock = self._socks.pop(addr, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- topology -------------------------------------------------------------

    def _slots(self) -> list:
        """Current replica slots (``None`` entries = down)."""
        if self._provider is not None:
            slots = list(self._provider())
            return [None if a is None else parse_address(a) for a in slots]
        return list(self.addresses)

    def _prune_stale(self, slots: list) -> None:
        """Drop per-address state for addresses no longer in the topology.

        Under a supervisor every restart lands a replica on a new
        ephemeral port, so ``_socks`` / ``_failed_at`` entries keyed by
        the old ``(host, port)`` would otherwise accumulate forever —
        one dead cached socket and one cooldown stamp per restart.
        """
        current = {a for a in slots if a is not None}
        for addr in list(self._socks):
            if addr not in current:
                self._drop_connection(addr)
        for addr in list(self._failed_at):
            if addr not in current:
                self._failed_at.pop(addr, None)

    def _call_order(self, payload: dict) -> list:
        """The re-derived per-call replica ordering.

        Shard owner first (compile payloads), then the remaining live
        replicas rotated by a seeded jitter so failover traffic spreads;
        any replica that failed within ``dead_cooldown_s`` is demoted to
        the back — still reachable (it may have just restarted) but
        never first in line while presumed dead.
        """
        slots = self._slots()
        self._prune_stale(slots)
        live = [a for a in slots if a is not None]
        if not live:
            raise NetworkError("connect", "no live gateway replicas")
        if len(live) == 1:
            return live
        if payload.get("op", "compile") == "compile":
            first_slot = shard_index(payload, len(slots))
        else:
            first_slot = self._rng.randrange(len(slots))
        first = slots[first_slot]
        rest = [a for a in live if a != first]
        if rest:
            rot = self._rng.randrange(len(rest))
            rest = rest[rot:] + rest[:rot]
        order = ([first] if first is not None else []) + rest
        # Cooldown demotion: a recently dead shard owner must not eat a
        # connect failure on every call for the whole cooldown window.
        # Demote even when *every* live replica is fresh-dead — ordering
        # the least-recently-failed first still beats re-hammering the
        # replica that died most recently.
        now = time.monotonic()
        fresh_dead = [
            a for a in order
            if now - self._failed_at.get(a, -1e9) < self.dead_cooldown_s
        ]
        if fresh_dead:
            order = [a for a in order if a not in fresh_dead] + sorted(
                fresh_dead, key=lambda a: self._failed_at[a]
            )
        return order

    # -- request API ----------------------------------------------------------

    def request(self, payload: dict, deadline_s: float | None = None) -> dict:
        """Send one request, riding out transient wire failures.

        Returns the response payload dict (status ``ok``/``degraded``/
        ``stale``/``shed``/``rejected`` — a shed or drain rejection is
        returned only after failover attempts are exhausted).  Raises
        :class:`NetworkError` when every attempt died on the wire and
        :class:`DeadlineError` when the budget expired first.
        """
        deadline = Deadline(deadline_s)
        last_exc: Exception | None = None
        last_resp: dict | None = None
        prev_addr = None
        tried: set = set()
        for attempt in range(1, self.retries + 2):
            if deadline.expired():
                break
            # Re-derive the ordering every attempt: under a supervisor
            # the topology changes mid-call (a replica dies, its slot
            # reads None, a restart brings it back), and each attempt
            # must see the *current* world, not the one at call entry.
            try:
                order = self._call_order(payload)
            except NetworkError as exc:
                # transient zero capacity — back off and look again
                last_exc, last_resp = exc, None
                self._backoff(attempt, deadline)
                continue
            # Prefer replicas this call has not touched yet: the order
            # is re-jittered every attempt, so indexing it by attempt
            # number could land on the replica that just failed while
            # untried live replicas sit idle.  Only when every replica
            # has been tried does the call re-walk the (cooldown-
            # demoted) ordering.
            untried = [a for a in order if a not in tried]
            if untried:
                addr = untried[0]
            else:
                addr = order[(attempt - 1) % len(order)]
            tried.add(addr)
            if prev_addr is not None and addr != prev_addr:
                self.failovers += 1
            prev_addr = addr
            self.attempts += 1
            try:
                resp = self._attempt(addr, payload, deadline)
            except NetworkError as exc:
                self.wire_errors += 1
                self._failed_at[addr] = time.monotonic()
                last_exc, last_resp = exc, None
            else:
                self._failed_at.pop(addr, None)
                if int(resp.get("batched", 1) or 1) > 1:
                    self.batched_responses += 1
                if not self._should_failover(resp):
                    return resp
                last_exc, last_resp = None, resp
            # Transient failure: the next attempt walks on to the next
            # replica in the re-derived ordering, after a jittered
            # backoff (clipped to the remaining budget — a sleep that
            # outlives the deadline is worse than giving up).
            if attempt <= self.retries:
                self._backoff(attempt, deadline)
        if deadline.expired() and last_resp is None:
            exhausted = DeadlineError(
                f"deadline of {deadline.budget_s:.3f}s expired after "
                f"{self.attempts} attempt(s)"
            )
            if last_exc is not None:
                raise exhausted from last_exc
            raise exhausted
        if last_resp is not None:
            return last_resp  # a shed/drain rejection from the last replica
        assert last_exc is not None
        raise last_exc

    def compile_run(
        self,
        kernel: str,
        *,
        flow: str = DEFAULT_FLOW,
        target: str = DEFAULT_TARGET,
        size: int | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """Convenience wrapper for the ``compile`` verb."""
        return self.request(
            {"op": "compile", "kernel": kernel, "flow": flow,
             "target": target, "size": size},
            deadline_s=deadline_s,
        )

    def health(self, deadline_s: float | None = None) -> dict:
        return self.request({"op": "health"}, deadline_s=deadline_s)

    def ready(self, deadline_s: float | None = None) -> bool:
        resp = self.request({"op": "ready"}, deadline_s=deadline_s)
        return bool(resp.get("ready"))

    def stats(self, deadline_s: float | None = None) -> dict:
        return self.request({"op": "stats"}, deadline_s=deadline_s)

    # -- internals ------------------------------------------------------------

    def _backoff(self, attempt: int, deadline: Deadline) -> None:
        delay = backoff_delay(
            attempt, base=self.backoff_base, cap=self.backoff_cap,
            rng=self._rng,
        )
        rem = deadline.remaining()
        if rem is not None:
            delay = min(delay, rem)
        if delay > 0:
            time.sleep(delay)

    @staticmethod
    def _should_failover(resp: dict) -> bool:
        """Fast classified rejections worth retrying elsewhere: a shed
        replica is overloaded, a draining replica is going away."""
        if resp.get("status") == "shed":
            return True
        return (
            resp.get("status") == "rejected"
            and resp.get("error") == "DrainError"
        )

    def _attempt_timeout(self, deadline: Deadline) -> float | None:
        timeout = self.attempt_timeout_s
        rem = deadline.remaining()
        if rem is not None:
            timeout = rem if timeout is None else min(timeout, rem)
        return timeout

    def _connect(self, addr, timeout: float | None) -> socket.socket:
        sock = self._socks.get(addr)
        if sock is not None:
            return sock
        connect_timeout = self.connect_timeout_s
        if timeout is not None:
            connect_timeout = min(connect_timeout, max(0.001, timeout))
        try:
            sock = socket.create_connection(addr, timeout=connect_timeout)
        except OSError as exc:
            raise NetworkError(
                "connect", f"cannot connect to {addr[0]}:{addr[1]}: {exc}"
            ) from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._socks[addr] = sock
        return sock

    def _attempt(self, addr, payload: dict, deadline: Deadline) -> dict:
        reused = addr in self._socks
        try:
            return self._attempt_once(addr, payload, deadline)
        except NetworkError as exc:
            # Stale keep-alive: the gateway idle-reclaims quiet
            # connections with a clean FIN, so a *reused* socket that
            # sees EOF before a single response byte arrived says
            # nothing about the request — resend once on a fresh
            # connection (the standard keep-alive retry), instead of
            # burning a failover attempt on a healthy replica.  An RST
            # or a partial frame is a real wire failure and still
            # surfaces classified (the retry loop owns those).
            stale = (
                reused
                and exc.kind == "truncated"
                and getattr(exc, "received", 1) == 0
                and getattr(exc, "phase", "") == "frame header"
            )
            if not stale or deadline.expired():
                raise
            self.stale_reconnects += 1
            return self._attempt_once(addr, payload, deadline)

    def _attempt_once(self, addr, payload: dict, deadline: Deadline) -> dict:
        timeout = self._attempt_timeout(deadline)
        sock = self._connect(addr, timeout)
        sock.settimeout(timeout)
        # The *remaining* budget rides the header — transit and queueing
        # on the gateway side spend the caller's budget, not a fresh one.
        frame = encode_frame(payload, deadline_s=deadline.remaining())
        try:
            sock.sendall(frame)
            return self._read_response(sock)
        except NetworkError:
            self._drop_connection(addr)
            raise
        except socket.timeout:
            self._drop_connection(addr)
            raise NetworkError(
                "timeout", f"no complete response within {timeout}s"
            ) from None
        except OSError as exc:
            self._drop_connection(addr)
            raise NetworkError(
                "reset", f"connection failed mid-request: {exc}"
            ) from None

    def _read_response(self, sock: socket.socket) -> dict:
        header = self._read_exact(sock, HEADER_LEN, "frame header")
        _deadline_ms, length = check_header(header)
        rest = self._read_exact(sock, length + 4, "frame body")
        body, crc = rest[:length], rest[length:]
        check_frame(header, body, crc)
        return decode_payload(body)

    @staticmethod
    def _read_exact(sock: socket.socket, n: int, what: str) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            chunk = sock.recv(n - len(buf))
            if not chunk:
                exc = NetworkError(
                    "truncated",
                    f"connection closed {len(buf)} bytes into a "
                    f"{n}-byte {what} (torn response)",
                )
                # Structured context for the stale keep-alive retry: a
                # reused connection closed at byte 0 of the *header* is
                # a dead cached socket, not a torn response.
                exc.received = len(buf)
                exc.phase = what
                raise exc
            buf.extend(chunk)
        return bytes(buf)
