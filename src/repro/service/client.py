"""The resilient gateway client: retries, failover, deadline budget.

The other half of the wire contract (:mod:`repro.service.wire`): a
blocking client built for the fail-soft story the gateway exports —

* **classified failures** — every wire problem surfaces as a
  :class:`~repro.service.wire.NetworkError` with a machine-readable
  ``kind`` (connect/reset/timeout/truncated/bad-crc/...), never a raw
  ``OSError`` from inside socket code;
* **jittered-backoff retries** — transient wire failures are retried
  with the toolchain's shared
  :func:`~repro.harness.parallel.backoff_delay` (the same curve the
  service's own retry loop uses), seeded for deterministic campaigns;
* **failover across replicas** — a shed (``OverloadError``), a drain
  rejection (``DrainError``), or a dead connection rotates to the next
  address in the replica list; fast classified rejections exist exactly
  so callers can retry *elsewhere* cheaply;
* **deadline awareness** — one budget covers the whole ``request()``
  call: each attempt's socket timeout is clipped to the remaining
  budget, the *remaining* (not original) budget rides the frame header
  of every attempt, backoff sleeps never overrun it, and an exhausted
  budget raises a classified
  :class:`~repro.service.admission.DeadlineError` instead of burning a
  retry that cannot finish.

A torn response (connection cut mid-frame, CRC mismatch) is always
*detected* — the CRC trailer covers header and payload — and counts as
a transient wire failure: the client retries, and never, under any
interleaving the chaos campaign can find, hands a partial frame to the
caller as an answer.
"""

from __future__ import annotations

import random
import socket
import time

from ..harness.parallel import backoff_delay
from .admission import Deadline, DeadlineError
from .wire import (
    HEADER_LEN,
    NetworkError,
    check_frame,
    check_header,
    decode_payload,
    encode_frame,
)

__all__ = ["GatewayClient", "parse_address"]


def parse_address(addr) -> tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` -> ``(host, port)``."""
    if isinstance(addr, str):
        host, sep, port = addr.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"address {addr!r} is not HOST:PORT")
        return (host or "127.0.0.1", int(port))
    host, port = addr
    return (str(host), int(port))


class GatewayClient:
    """A blocking client for one or more gateway replicas.

    ``addresses`` is an ordered replica list; the client sticks to one
    connection while it works and rotates on failure.  ``retries`` is
    the number of *additional* attempts after the first (each attempt
    may land on a different replica).  ``attempt_timeout_s`` bounds any
    single socket operation; the per-request ``deadline_s`` bounds the
    whole call, retries and backoff included.
    """

    def __init__(
        self,
        addresses,
        *,
        retries: int = 2,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        attempt_timeout_s: float | None = 10.0,
        connect_timeout_s: float = 5.0,
        seed: int = 0,
    ) -> None:
        if isinstance(addresses, (str, tuple)):
            addresses = [addresses]
        self.addresses = [parse_address(a) for a in addresses]
        if not self.addresses:
            raise ValueError("need at least one gateway address")
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.attempt_timeout_s = attempt_timeout_s
        self.connect_timeout_s = float(connect_timeout_s)
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._sock_addr: tuple[str, int] | None = None
        self._addr_index = 0
        self.attempts = 0
        self.failovers = 0
        self.wire_errors = 0

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._sock_addr = None

    # -- request API ----------------------------------------------------------

    def request(self, payload: dict, deadline_s: float | None = None) -> dict:
        """Send one request, riding out transient wire failures.

        Returns the response payload dict (status ``ok``/``degraded``/
        ``stale``/``shed``/``rejected`` — a shed or drain rejection is
        returned only after failover attempts are exhausted).  Raises
        :class:`NetworkError` when every attempt died on the wire and
        :class:`DeadlineError` when the budget expired first.
        """
        deadline = Deadline(deadline_s)
        last_exc: Exception | None = None
        last_resp: dict | None = None
        for attempt in range(1, self.retries + 2):
            if deadline.expired():
                break
            self.attempts += 1
            try:
                resp = self._attempt(payload, deadline)
            except NetworkError as exc:
                self.wire_errors += 1
                last_exc, last_resp = exc, None
            else:
                if not self._should_failover(resp):
                    return resp
                last_exc, last_resp = None, resp
            # Transient failure: rotate to the next replica and back
            # off (clipped to the remaining budget — a sleep that
            # outlives the deadline is worse than giving up).
            self._rotate()
            if attempt <= self.retries:
                delay = backoff_delay(
                    attempt, base=self.backoff_base, cap=self.backoff_cap,
                    rng=self._rng,
                )
                rem = deadline.remaining()
                if rem is not None:
                    delay = min(delay, rem)
                if delay > 0:
                    time.sleep(delay)
        if deadline.expired() and last_resp is None:
            exhausted = DeadlineError(
                f"deadline of {deadline.budget_s:.3f}s expired after "
                f"{self.attempts} attempt(s)"
            )
            if last_exc is not None:
                raise exhausted from last_exc
            raise exhausted
        if last_resp is not None:
            return last_resp  # a shed/drain rejection from the last replica
        assert last_exc is not None
        raise last_exc

    def compile_run(
        self,
        kernel: str,
        *,
        flow: str = "split_vec_gcc4cli",
        target: str = "sse",
        size: int | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """Convenience wrapper for the ``compile`` verb."""
        return self.request(
            {"op": "compile", "kernel": kernel, "flow": flow,
             "target": target, "size": size},
            deadline_s=deadline_s,
        )

    def health(self, deadline_s: float | None = None) -> dict:
        return self.request({"op": "health"}, deadline_s=deadline_s)

    def ready(self, deadline_s: float | None = None) -> bool:
        resp = self.request({"op": "ready"}, deadline_s=deadline_s)
        return bool(resp.get("ready"))

    def stats(self, deadline_s: float | None = None) -> dict:
        return self.request({"op": "stats"}, deadline_s=deadline_s)

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _should_failover(resp: dict) -> bool:
        """Fast classified rejections worth retrying elsewhere: a shed
        replica is overloaded, a draining replica is going away."""
        if resp.get("status") == "shed":
            return True
        return (
            resp.get("status") == "rejected"
            and resp.get("error") == "DrainError"
        )

    def _rotate(self) -> None:
        self._drop_connection()
        if len(self.addresses) > 1:
            self._addr_index = (self._addr_index + 1) % len(self.addresses)
            self.failovers += 1

    def _attempt_timeout(self, deadline: Deadline) -> float | None:
        timeout = self.attempt_timeout_s
        rem = deadline.remaining()
        if rem is not None:
            timeout = rem if timeout is None else min(timeout, rem)
        return timeout

    def _connect(self, timeout: float | None) -> socket.socket:
        addr = self.addresses[self._addr_index]
        if self._sock is not None and self._sock_addr == addr:
            return self._sock
        self._drop_connection()
        connect_timeout = self.connect_timeout_s
        if timeout is not None:
            connect_timeout = min(connect_timeout, max(0.001, timeout))
        try:
            sock = socket.create_connection(addr, timeout=connect_timeout)
        except OSError as exc:
            raise NetworkError(
                "connect", f"cannot connect to {addr[0]}:{addr[1]}: {exc}"
            ) from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock, self._sock_addr = sock, addr
        return sock

    def _attempt(self, payload: dict, deadline: Deadline) -> dict:
        timeout = self._attempt_timeout(deadline)
        sock = self._connect(timeout)
        sock.settimeout(timeout)
        # The *remaining* budget rides the header — transit and queueing
        # on the gateway side spend the caller's budget, not a fresh one.
        frame = encode_frame(payload, deadline_s=deadline.remaining())
        try:
            sock.sendall(frame)
            return self._read_response(sock)
        except NetworkError:
            self._drop_connection()
            raise
        except socket.timeout:
            self._drop_connection()
            raise NetworkError(
                "timeout", f"no complete response within {timeout}s"
            ) from None
        except OSError as exc:
            self._drop_connection()
            raise NetworkError(
                "reset", f"connection failed mid-request: {exc}"
            ) from None

    def _read_response(self, sock: socket.socket) -> dict:
        header = self._read_exact(sock, HEADER_LEN, "frame header")
        _deadline_ms, length = check_header(header)
        rest = self._read_exact(sock, length + 4, "frame body")
        body, crc = rest[:length], rest[length:]
        check_frame(header, body, crc)
        return decode_payload(body)

    @staticmethod
    def _read_exact(sock: socket.socket, n: int, what: str) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            chunk = sock.recv(n - len(buf))
            if not chunk:
                raise NetworkError(
                    "truncated",
                    f"connection closed {len(buf)} bytes into a "
                    f"{n}-byte {what} (torn response)",
                )
            buf.extend(chunk)
        return bytes(buf)
