"""The network front door: an overload-proof asyncio gateway.

ROADMAP item 1 names this the "millions of users" spine: ``repro
serve`` used to drive a synthetic in-process stream, but the paper's
whole premise is a *split* deployment — bytecode produced once, shipped
over a wire, finished by heterogeneous clients.  This module puts a
real protocol (:mod:`repro.service.wire`) in front of
:class:`~repro.service.KernelService`, built robustness-first:

* **Bounded backpressure** — the gateway admits at most
  ``max_inflight`` concurrent service calls.  Excess requests are
  answered *immediately* with a classified shed (the same
  ``OverloadError`` tag the service's admission queue uses) instead of
  parking in an unbounded queue; overload costs the caller one RTT, not
  a timeout, and never balloons gateway memory.
* **Deadline propagation** — the client's remaining budget rides in the
  frame header and lands in ``ServiceRequest.deadline_s``, so a slow
  compile can never outlive the caller that wanted it.
* **Hostile-wire hygiene** — every frame is CRC-checked; garbage,
  truncated, oversized, or slow-dripped frames are classified
  (:class:`~repro.service.wire.NetworkError`), answered with an error
  frame where framing allows, and the connection is dropped.  A
  per-read idle timeout reclaims slowloris connections.
* **Graceful drain** — on SIGTERM (or :meth:`GatewayServer.drain`) the
  readiness verb flips *first* (load balancers stop routing), the
  listener closes after a grace window, in-flight requests finish under
  a drain budget with their responses fully flushed, late requests get
  a classified :class:`DrainError` rejection, and connections close
  cleanly — a client mid-frame sees a complete response or a clean EOF,
  never a torn frame.  Then the service (and its compile farm) is
  closed, so no worker process ever outlives the front door.

Every served request is one ``service.gateway.request`` span wrapping
the usual ``service.request`` span tree, and the gateway feeds
``gateway.*`` metrics (see docs/observability.md).
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from dataclasses import replace

from .. import faults, obs
from ..errors import ReproError, classify
from .client import request_shape
from .core import KernelService, ServiceRequest
from .wire import (
    HEADER_LEN,
    NetworkError,
    check_frame,
    check_header,
    decode_payload,
    deadline_from_wire,
    encode_frame,
    response_payload,
)

__all__ = ["DrainError", "GatewayServer", "ThreadedGateway"]

#: latency buckets for the gateway request histogram — finer than the
#: default set in the 1–100 ms range where warm requests live, so the
#: load harness can read meaningful p50/p99 straight off the buckets.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.002, 0.003, 0.005, 0.0075, 0.01, 0.015, 0.02,
    0.03, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: flight-group size buckets for the ``gateway.batch.size`` histogram —
#: small integers, since group size is bounded by ``batch_max``.
BATCH_SIZE_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)


class DrainError(ReproError):
    """The gateway is draining for shutdown: request rejected, retry on
    another replica.  A *classified* rejection — the drain analogue of
    :class:`~repro.service.admission.OverloadError`."""

    def __init__(self, state: str) -> None:
        super().__init__(
            f"gateway is {state}: not accepting new work; "
            f"retry against another replica"
        )
        self.state = state


class _ConnDropped(Exception):
    """Internal: an injected :class:`~repro.faults.ConnDrop` tore this
    connection mid-response; unwind the connection loop quietly."""


class _BatchGroup:
    """One pre-admission flight group: same-shape requests that arrived
    within one batch window and will be answered by one admitted
    service call.

    The group's lifecycle is owned entirely by the event loop: the
    *timer* (scheduled at creation) or the *batch_max* overflow flushes
    it, never a particular waiter's connection — so a leader whose
    socket dies mid-window cannot strand the followers or leak the
    table entry.  ``future`` resolves exactly once with an
    ``(outcome, payload)`` tuple that every waiter fans out from.
    """

    __slots__ = (
        "key", "request", "future", "size", "expiries", "timer",
        "flushed", "created",
    )

    def __init__(self, key: str, request: ServiceRequest, future,
                 created: float) -> None:
        self.key = key
        #: the parsed leader request — same shape key means the same
        #: (kernel, flow, target, size) fields, so one parse serves all.
        self.request = request
        self.future = future
        self.size = 0
        #: per-waiter absolute expiry on the loop clock (None = no
        #: deadline) — each waiter re-checks its *own* budget at fan-out.
        self.expiries: list = []
        self.timer = None
        self.flushed = False
        self.created = created


def _jsonable(obj):
    """Best-effort conversion of a stats/health dict to JSON-safe data."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


class GatewayServer:
    """One asyncio TCP gateway fronting one :class:`KernelService`.

    The event loop owns framing, backpressure, and drain; service calls
    run on a dedicated thread pool (``handler_threads``) because
    :meth:`KernelService.handle` is blocking by design.  States move
    strictly ``running -> draining -> closed``.

    ``close_service=True`` makes :meth:`drain` also close the service
    (worker pool + compile farm) — the configuration the CLI uses, so a
    SIGTERM tears down the whole process tree before exit 0.
    """

    def __init__(
        self,
        service: KernelService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 64,
        handler_threads: int = 8,
        idle_timeout_s: float | None = 30.0,
        drain_grace_s: float = 0.05,
        drain_budget_s: float = 10.0,
        batch_window_s: float = 0.0,
        batch_max: int = 16,
        close_service: bool = False,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.idle_timeout_s = idle_timeout_s
        self.drain_grace_s = float(drain_grace_s)
        self.drain_budget_s = float(drain_budget_s)
        #: pre-admission batching window; 0 disables batching entirely
        #: (every compile dispatches individually, the pre-batcher
        #: behavior).
        self.batch_window_s = max(0.0, float(batch_window_s))
        self.batch_max = max(1, int(batch_max))
        self.close_service = bool(close_service)
        self.state = "running"
        self._server: asyncio.AbstractServer | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=int(handler_threads),
            thread_name_prefix="repro-gateway",
        )
        self._inflight = 0
        self._peak_inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._writers: set[asyncio.StreamWriter] = set()
        #: shape key -> open flight group (event-loop-owned; entries
        #: live for at most one batch window).
        self._batches: dict[str, _BatchGroup] = {}
        self._counts = {
            "connections": 0,
            "requests": 0,
            "served": 0,
            "rejected_overload": 0,
            "rejected_drain": 0,
            "frame_errors": 0,
            "conn_resets": 0,
            "injected_drops": 0,
            "batch.merged": 0,
            "batch.flushed": 0,
            "batch.expired": 0,
        }

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`address`."""
        self._server = await asyncio.start_server(
            self._serve_conn, self.host, self.port,
            family=socket.AF_INET,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def ready(self) -> bool:
        """Readiness for load balancers: False the instant drain begins
        — *before* the listener closes, so routing stops first."""
        return self.state == "running"

    async def drain(self) -> None:
        """The drain state machine (docs/service.md §8.3):

        1. readiness flips (``ready`` verb answers False immediately);
        2. ``drain_grace_s`` passes so balancers observe not-ready while
           the listener still accepts (late arrivals get classified
           :class:`DrainError` rejections, not connection refused);
        3. the listener closes — no new connections;
        4. in-flight requests finish under ``drain_budget_s``, their
           responses fully flushed;
        5. open connections close cleanly (a client mid-request-frame
           gets EOF, never a torn response frame);
        6. with ``close_service``, the service's worker pool and compile
           farm shut down — no leaked worker processes.
        """
        if self.state != "running":
            return
        self.state = "draining"
        obs.count("gateway.drains")
        if self.drain_grace_s > 0:
            await asyncio.sleep(self.drain_grace_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Open flight groups hold requests accepted *before* drain began
        # (the drain state check gates joining): flush them now and wait
        # for their fan-outs so every batched waiter gets its answer.
        if self._batches:
            await self._flush_pending_batches(self.drain_budget_s)
        # In-flight requests (already dispatched to the service) finish
        # under the drain budget; anything still running past it is
        # abandoned to the executor's daemon threads — the response is
        # lost but no torn frame is ever written.
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.drain_budget_s
            )
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        self.state = "closed"
        self._executor.shutdown(wait=False)
        if self.close_service:
            self.service.close()

    async def run_until_signal(self, signals=("SIGTERM", "SIGINT")) -> None:
        """Serve until a termination signal, then drain.  The CLI's
        ``serve --listen`` loop: readiness flips before the listener
        closes, in-flight work completes, the farm shuts down, exit 0."""
        import signal as _signal

        if self._server is None:
            await self.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for name in signals:
            sig = getattr(_signal, name, None)
            if sig is None:
                continue
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop.wait()
        finally:
            for sig in installed:
                with contextlib.suppress(Exception):
                    loop.remove_signal_handler(sig)
            await self.drain()

    # -- surfaces -------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "state": self.state,
            "address": list(self.address),
            "inflight": self._inflight,
            "peak_inflight": self._peak_inflight,
            "max_inflight": self.max_inflight,
            "open_connections": len(self._writers),
            "batch_window_s": self.batch_window_s,
            "batch_pending": len(self._batches),
            **self._counts,
        }

    def _bump(self, key: str, n: int = 1) -> None:
        self._counts[key] += n
        obs.count(f"gateway.{key}", n)

    # -- connection loop ------------------------------------------------------

    async def _serve_conn(self, reader, writer) -> None:
        self._bump("connections")
        self._writers.add(writer)
        try:
            while True:
                frame = await self._read_frame(reader)
                if frame is None:
                    break
                payload, deadline_s = frame
                reply = await self._dispatch(payload, deadline_s)
                await self._write_frame(writer, reply)
        except NetworkError as exc:
            # Hostile or torn inbound bytes: classified, answered with a
            # best-effort error frame, connection dropped (framing can't
            # be trusted past the first bad byte).
            self._bump("frame_errors")
            with contextlib.suppress(Exception):
                await self._write_frame(
                    writer, self._error_payload("rejected", exc)
                )
        except _ConnDropped:
            pass
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            self._bump("conn_resets")
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _read_frame(self, reader):
        """One frame off the stream, or None on clean EOF at a frame
        boundary.  Every read is bounded by the idle timeout — a
        slowloris peer (dripping bytes or going silent mid-frame) is
        classified and disconnected, never allowed to pin the
        connection open forever.

        The first byte of a frame is read separately so the two timeout
        cases stay distinct: a peer that has sent *nothing* is merely an
        idle connection and is closed quietly (no error frame — a
        keep-alive client must never find a stale "timeout" reply
        buffered on a connection it reuses later), while a peer that
        stalls *mid-frame* is a slowloris and gets the classified error
        frame before the drop."""
        try:
            first = await self._timed_read(reader, 1)
        except asyncio.IncompleteReadError:
            return None  # clean EOF between frames
        except NetworkError as exc:
            if exc.kind == "timeout":
                return None  # idle connection: reclaim quietly
            raise
        try:
            header = first + await self._timed_read(reader, HEADER_LEN - 1)
        except asyncio.IncompleteReadError as exc:
            raise NetworkError(
                "truncated",
                f"connection closed {1 + len(exc.partial)} bytes into a "
                f"{HEADER_LEN}-byte frame header",
            ) from None
        deadline_ms, length = check_header(header)
        try:
            rest = await self._timed_read(reader, length + 4)
        except asyncio.IncompleteReadError as exc:
            raise NetworkError(
                "truncated",
                f"connection closed {len(exc.partial)} bytes into a "
                f"{length + 4}-byte frame body",
            ) from None
        body, crc = rest[:length], rest[length:]
        check_frame(header, body, crc)
        return decode_payload(body), deadline_from_wire(deadline_ms)

    async def _timed_read(self, reader, n: int) -> bytes:
        if self.idle_timeout_s is None:
            return await reader.readexactly(n)
        try:
            return await asyncio.wait_for(
                reader.readexactly(n), timeout=self.idle_timeout_s
            )
        except asyncio.TimeoutError:
            raise NetworkError(
                "timeout",
                f"peer sent no complete frame within the "
                f"{self.idle_timeout_s}s idle timeout",
            ) from None

    async def _write_frame(self, writer, payload: dict) -> None:
        data = encode_frame(payload)
        drop = faults.wire_conn_drop()
        if drop is not None:
            # Injected mid-response connection drop: write a prefix,
            # then RST.  The peer must classify the torn frame.
            self._bump("injected_drops")
            writer.write(data[:max(0, int(drop.after_bytes))])
            with contextlib.suppress(Exception):
                await writer.drain()
            with contextlib.suppress(Exception):
                writer.transport.abort()
            raise _ConnDropped()
        writer.write(data)
        await writer.drain()

    # -- request dispatch -----------------------------------------------------

    async def _dispatch(self, payload: dict, deadline_s) -> dict:
        op = payload.get("op", "compile")
        if op == "ready":
            return {
                "v": 1, "op": "ready", "ready": self.ready,
                "state": self.state,
            }
        if op == "health":
            health = await asyncio.get_running_loop().run_in_executor(
                None, self.service.health
            )
            if not self.ready:
                health["status"] = self.state
            return {
                "v": 1, "op": "health", "ready": self.ready,
                "state": self.state, "health": _jsonable(health),
            }
        if op == "stats":
            stats = await asyncio.get_running_loop().run_in_executor(
                None, self.service.stats
            )
            return {
                "v": 1, "op": "stats", "gateway": _jsonable(self.stats()),
                "service": _jsonable(stats),
                "farm_pids": self.service.farm_worker_pids(),
            }
        if op == "compile":
            return await self._dispatch_compile(payload, deadline_s)
        return self._reject_payload(
            payload, "rejected", "bad-request", "bad-request",
            f"unknown op {op!r}",
        )

    async def _dispatch_compile(self, payload: dict, deadline_s) -> dict:
        self._bump("requests")
        started = time.perf_counter()
        if self.state != "running":
            # Drain gates *joining* too: groups only ever contain
            # requests accepted while the gateway was running.
            self._bump("rejected_drain")
            exc = DrainError(self.state)
            return self._reject_payload(
                payload, "rejected", classify(exc), "gateway-drain", str(exc)
            )
        if self.batch_window_s > 0:
            return await self._batched_compile(payload, deadline_s, started)
        if self._inflight >= self.max_inflight:
            # Gateway-level backpressure: answered from the event loop
            # in microseconds, without touching the handler pool — the
            # fast classified rejection that makes overload cheap for
            # both sides.  (The service's own admission queue still
            # guards the thread path below.)
            self._bump("rejected_overload")
            return self._reject_payload(
                payload, "shed", "OverloadError", "gateway-overload",
                f"gateway at max_inflight={self.max_inflight}; request "
                f"shed, retry with backoff",
            )
        try:
            request = self._parse_request(payload, deadline_s)
        except (TypeError, ValueError) as exc:
            return self._reject_payload(
                payload, "rejected", "bad-request", "bad-request", str(exc)
            )
        self._inflight += 1
        self._peak_inflight = max(self._peak_inflight, self._inflight)
        self._idle.clear()
        obs.gauge("gateway.inflight", self._inflight)
        try:
            resp = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._handle_traced, request, deadline_s
            )
        finally:
            self._inflight -= 1
            obs.gauge("gateway.inflight", self._inflight)
            if self._inflight == 0:
                self._idle.set()
        self._bump("served")
        obs.observe(
            "gateway.request_seconds", time.perf_counter() - started,
            bounds=LATENCY_BUCKETS,
        )
        return response_payload(resp)

    # -- pre-admission batching -----------------------------------------------

    async def _batched_compile(self, payload: dict, deadline_s,
                               started: float) -> dict:
        """Join (or open) the flight group for this payload's shape and
        await its single fan-out.

        Invariants (chaos-enforced):

        * one group -> one admission slot -> one service call;
        * every waiter receives either the group's byte-identical
          response payload or its *own* classified rejection — never a
          torn frame, never two answers;
        * the group entry leaves ``_batches`` exactly once (timer or
          ``batch_max`` overflow), whoever's connection dies.
        """
        if deadline_s is not None and deadline_s <= 0:
            # A waiter with no budget left must not ride the window: it
            # could never receive the fan-out in time.
            self._bump("batch.expired")
            return self._reject_payload(
                payload, "rejected", "DeadlineError", "batch-deadline",
                "deadline expired before the batch window opened",
            )
        try:
            request = self._parse_request(payload, deadline_s)
        except (TypeError, ValueError) as exc:
            return self._reject_payload(
                payload, "rejected", "bad-request", "bad-request", str(exc)
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        expiry = None if deadline_s is None else now + float(deadline_s)
        key = request_shape(payload)
        group = self._batches.get(key)
        if group is None:
            group = _BatchGroup(key, request, loop.create_future(), now)
            self._batches[key] = group
            group.timer = loop.call_later(
                self.batch_window_s, self._flush_batch, group
            )
        group.size += 1
        group.expiries.append(expiry)
        if group.size >= self.batch_max:
            self._flush_batch(group)
        # shield: a waiter whose task dies (connection torn down, loop
        # shutdown race) must never cancel the shared group future out
        # from under the other waiters.
        kind, data = await asyncio.shield(group.future)
        if expiry is not None and loop.time() >= expiry:
            # This waiter's own budget ran out while the group was in
            # flight: a classified rejection, never a late orphan write.
            self._bump("batch.expired")
            return self._reject_payload(
                payload, "rejected", "DeadlineError", "batch-deadline",
                f"deadline of {deadline_s:.3f}s expired while the "
                f"request was batched",
            )
        if kind == "shed":
            self._bump("rejected_overload")
            return self._reject_payload(
                payload, "shed", "OverloadError", "gateway-overload",
                f"gateway at max_inflight={self.max_inflight}; batched "
                f"request shed, retry with backoff",
            )
        if kind == "expired":
            self._bump("batch.expired")
            return self._reject_payload(
                payload, "rejected", "DeadlineError", "batch-deadline",
                "every waiter's deadline expired before the group ran",
            )
        if kind == "error":
            return self._reject_payload(
                payload, "rejected", data, "batch-internal",
                "internal error while serving the flight group",
            )
        self._bump("served")
        obs.observe(
            "gateway.request_seconds", time.perf_counter() - started,
            bounds=LATENCY_BUCKETS,
        )
        return data

    def _flush_batch(self, group: _BatchGroup) -> None:
        """Close a group to new joiners and hand it to :meth:`_run_batch`.

        Runs on the event loop (timer callback or ``batch_max``
        overflow).  Identity-checked and idempotent: the timer and an
        overflow may race, and a flush must never pop a *newer* group
        that reused the key.
        """
        if group.flushed:
            return
        group.flushed = True
        if group.timer is not None:
            group.timer.cancel()
        if self._batches.get(group.key) is group:
            del self._batches[group.key]
        asyncio.get_running_loop().create_task(self._run_batch(group))

    async def _run_batch(self, group: _BatchGroup) -> None:
        """Serve one flight group: one admission slot, one service
        call, one result resolved into the shared future."""
        loop = asyncio.get_running_loop()
        n = group.size
        self._bump("batch.flushed")
        if n > 1:
            self._bump("batch.merged", n - 1)
        obs.observe("gateway.batch.size", n, bounds=BATCH_SIZE_BUCKETS)
        try:
            if self._inflight >= self.max_inflight:
                # Backpressure at the merge point: the whole group costs
                # one classified shed, answered from the event loop.
                group.future.set_result(("shed", None))
                return
            if any(e is None for e in group.expiries):
                group_deadline = None
            else:
                # The group runs on the *longest* surviving budget: any
                # waiter still inside its own deadline deserves an
                # answer, and shorter-budget waiters are individually
                # rejected at fan-out.
                group_deadline = max(group.expiries) - loop.time()
                if group_deadline <= 0:
                    group.future.set_result(("expired", None))
                    return
            request = replace(
                group.request, deadline_s=group_deadline, batch_size=n
            )
            self._inflight += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
            self._idle.clear()
            obs.gauge("gateway.inflight", self._inflight)
            try:
                resp = await loop.run_in_executor(
                    self._executor, self._handle_traced, request,
                    group_deadline, n,
                )
            finally:
                self._inflight -= 1
                obs.gauge("gateway.inflight", self._inflight)
                if self._inflight == 0:
                    self._idle.set()
            data = dict(response_payload(resp))
            data["batched"] = n
            group.future.set_result(("served", data))
        except Exception as exc:  # pragma: no cover - defensive
            # A group future must settle no matter what: a waiter that
            # never hears back is worse than any classified rejection.
            if not group.future.done():
                group.future.set_result(("error", classify(exc)))

    async def _flush_pending_batches(self, timeout: float) -> None:
        """Drain hook: flush every open group and wait for their
        fan-outs, so requests batched before drain began still get
        complete responses."""
        groups = list(self._batches.values())
        for group in groups:
            self._flush_batch(group)
        futures = [g.future for g in groups if not g.future.done()]
        if futures:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*futures, return_exceptions=True),
                    timeout=timeout,
                )

    def _handle_traced(self, request: ServiceRequest, deadline_s,
                       batch_size: int = 1):
        """Runs on the handler pool: one ``service.gateway.request``
        span wrapping the service's own ``service.request`` span."""
        with obs.span("service.gateway.request", phase="service",
                      kernel=request.kernel, flow=request.flow,
                      target=request.target) as sp:
            if deadline_s is not None:
                sp.set(deadline_s=deadline_s)
            if batch_size > 1:
                sp.set(batch=True, batch_size=batch_size)
            resp = self.service.handle(request)
            sp.set(status=resp.status, from_cache=resp.from_cache)
            return resp

    @staticmethod
    def _parse_request(payload: dict, deadline_s) -> ServiceRequest:
        kernel = payload.get("kernel")
        if not isinstance(kernel, str) or not kernel:
            raise ValueError("request needs a non-empty string 'kernel'")
        flow = payload.get("flow", "split_vec_gcc4cli")
        target = payload.get("target", "sse")
        if not isinstance(flow, str) or not isinstance(target, str):
            raise ValueError("'flow' and 'target' must be strings")
        size = payload.get("size")
        if size is not None and not isinstance(size, int):
            raise ValueError("'size' must be an integer or null")
        return ServiceRequest(
            kernel=kernel, flow=flow, target=target, size=size,
            deadline_s=deadline_s,
        )

    @staticmethod
    def _reject_payload(payload, status, error, cause, detail) -> dict:
        """A rejection in the exact shape of a served response, so
        clients parse one format regardless of where the request died."""
        return {
            "v": 1,
            "status": status,
            "kernel": payload.get("kernel"),
            "flow": payload.get("flow", "split_vec_gcc4cli"),
            "target": payload.get("target", "sse"),
            "size": payload.get("size"),
            "error": error,
            "events": [{"cause": cause, "detail": detail}],
            "from_cache": False,
            "coalesced": False,
            "attempts": 0,
            "result": None,
        }

    def _error_payload(self, status: str, exc: Exception) -> dict:
        return self._reject_payload(
            {}, status, classify(exc), "wire-error", str(exc)
        )


class ThreadedGateway:
    """A :class:`GatewayServer` hosted on a background thread's event
    loop — the sync-world handle tests, benchmarks, and chaos campaigns
    drive.  Construction blocks until the listener is bound (the
    resolved ``address`` is immediately usable); :meth:`drain` runs the
    full drain state machine and :meth:`close` joins the loop thread.
    """

    def __init__(self, service: KernelService, **kwargs) -> None:
        self.gateway = GatewayServer(service, **kwargs)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway-loop", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.gateway.start())
        except BaseException as exc:  # bind failure -> constructor raises
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()
        # Drain/close scheduled the stop; finish cancelled tasks cleanly.
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.close()

    @property
    def address(self) -> tuple[str, int]:
        return self.gateway.address

    @property
    def state(self) -> str:
        return self.gateway.state

    def stats(self) -> dict:
        return self.gateway.stats()

    def drain(self, timeout: float | None = 30.0) -> None:
        """Run the gateway's drain to completion (thread-safe)."""
        if not self._loop.is_running():
            return
        fut = asyncio.run_coroutine_threadsafe(
            self.gateway.drain(), self._loop
        )
        fut.result(timeout=timeout)

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain (if still running), stop the loop, join the thread."""
        with contextlib.suppress(Exception):
            self.drain(timeout=timeout)
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ThreadedGateway":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
