"""The gateway wire protocol: length-prefixed, CRC-framed JSON.

The split deployment the paper describes — bytecode produced once,
shipped over the wire, finished by the client's JIT — needs an actual
wire.  This module defines the framing both ends of that wire share
(:mod:`repro.service.gateway` speaks it over asyncio, the blocking
:mod:`repro.service.client` over plain sockets), designed for exactly
one property: **a torn or hostile byte stream is always detected and
classified, never silently accepted**.

Frame layout (all integers big-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       4     magic  b"VGW1"
    4       1     version (currently 1)
    5       4     deadline_ms — the sender's *remaining* budget in
                  milliseconds; NO_DEADLINE (0xFFFFFFFF) = none.  On a
                  request this lands in ServiceRequest.deadline_s, so a
                  slow compile can never outlive its caller; responses
                  always carry NO_DEADLINE.
    9       4     payload length N (bounded by MAX_PAYLOAD)
    13      N     payload — canonical JSON (sorted keys, no spaces)
    13+N    4     CRC-32 over bytes [4, 13+N) — header fields + payload

The CRC covers the header fields as well as the payload, so a flipped
deadline or length byte is as detectable as a flipped payload byte.
The length field is validated *before* allocation (an adversarial
length cannot balloon memory), and every decode failure raises a
classified :class:`NetworkError` naming what was wrong and where.

**Canonical payload JSON** (:func:`encode_payload`) is the byte-level
contract the gateway tests pin: a warm response served over the wire is
byte-identical to the same :class:`~repro.service.ServiceResponse`
serialized in-process, so the gateway can never reorder, re-float, or
otherwise "improve" an answer in transit.
"""

from __future__ import annotations

import json
import struct
import zlib

from ..errors import ReproError

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_LEN",
    "MAX_PAYLOAD",
    "NO_DEADLINE",
    "NetworkError",
    "encode_payload",
    "decode_payload",
    "encode_frame",
    "decode_frame",
    "frame_size",
    "response_payload",
]

MAGIC = b"VGW1"
VERSION = 1
#: magic(4) + version(1) + deadline_ms(4) + length(4)
HEADER_LEN = 13
_HEADER = struct.Struct("!4sBII")
_CRC = struct.Struct("!I")
#: largest accepted payload — far above any real request/response, far
#: below anything that could be used to balloon gateway memory.
MAX_PAYLOAD = 1 << 20
#: deadline_ms sentinel for "no deadline".
NO_DEADLINE = 0xFFFFFFFF


class NetworkError(ReproError):
    """A wire-level failure: framing, checksum, connection, or timeout.

    ``kind`` is a machine-readable tag — ``bad-magic``, ``bad-version``,
    ``oversized``, ``bad-crc``, ``truncated``, ``bad-json``,
    ``connect``, ``reset``, ``timeout`` — so chaos campaigns and client
    retry policy can switch on *what* broke without parsing messages.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


def encode_payload(obj: dict) -> bytes:
    """Canonical JSON bytes: sorted keys, minimal separators, UTF-8.

    One encoding for the wire, the byte-identity tests, and any future
    on-disk response log — canonical so equality is byte equality.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def decode_payload(data: bytes) -> dict:
    """Parse payload bytes; classified :class:`NetworkError` on failure."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetworkError("bad-json", f"unparseable payload: {exc}") from None
    if not isinstance(obj, dict):
        raise NetworkError(
            "bad-json", f"payload must be a JSON object, got "
            f"{type(obj).__name__}"
        )
    return obj


def deadline_to_wire(deadline_s: float | None) -> int:
    """Remaining seconds -> header milliseconds (clamped, floored at 0)."""
    if deadline_s is None:
        return NO_DEADLINE
    ms = int(max(0.0, float(deadline_s)) * 1000.0)
    return min(ms, NO_DEADLINE - 1)


def deadline_from_wire(deadline_ms: int) -> float | None:
    """Header milliseconds -> seconds budget (None = no deadline)."""
    if deadline_ms == NO_DEADLINE:
        return None
    return deadline_ms / 1000.0


def encode_frame(payload: dict, deadline_s: float | None = None) -> bytes:
    """One complete frame for ``payload``.

    ``deadline_s`` is the sender's remaining budget (requests only;
    responses leave it None).
    """
    body = encode_payload(payload)
    if len(body) > MAX_PAYLOAD:
        raise NetworkError(
            "oversized", f"payload of {len(body)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame limit"
        )
    header = _HEADER.pack(
        MAGIC, VERSION, deadline_to_wire(deadline_s), len(body)
    )
    crc = zlib.crc32(header[4:] + body) & 0xFFFFFFFF
    return header + body + _CRC.pack(crc)


def check_header(header: bytes) -> tuple[int, int]:
    """Validate a 13-byte header; returns (deadline_ms, payload_len).

    Raises a classified :class:`NetworkError` on bad magic, unsupported
    version, or an adversarial length — *before* any payload allocation.
    """
    if len(header) != HEADER_LEN:
        raise NetworkError(
            "truncated", f"header is {len(header)} bytes, need {HEADER_LEN}"
        )
    magic, version, deadline_ms, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise NetworkError("bad-magic", f"bad frame magic {magic!r}")
    if version != VERSION:
        raise NetworkError(
            "bad-version", f"unsupported protocol version {version}"
        )
    if length > MAX_PAYLOAD:
        raise NetworkError(
            "oversized", f"declared payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame limit"
        )
    return deadline_ms, length


def check_frame(header: bytes, body: bytes, crc_bytes: bytes) -> None:
    """Verify the trailing CRC over header fields + payload."""
    if len(crc_bytes) != _CRC.size:
        raise NetworkError(
            "truncated", f"CRC trailer is {len(crc_bytes)} bytes, need 4"
        )
    (crc,) = _CRC.unpack(crc_bytes)
    actual = zlib.crc32(header[4:] + body) & 0xFFFFFFFF
    if crc != actual:
        raise NetworkError(
            "bad-crc", f"frame CRC 0x{crc:08x} != computed 0x{actual:08x} "
            f"(torn or corrupted frame)"
        )


def frame_size(payload: dict) -> int:
    """Size in bytes of the encoded frame for ``payload``."""
    return HEADER_LEN + len(encode_payload(payload)) + _CRC.size


def decode_frame(data: bytes) -> tuple[dict, float | None]:
    """Decode one complete frame from ``data`` (exact size required).

    Returns ``(payload, deadline_s)``.  Raises :class:`NetworkError`
    (classified) on any framing, checksum, or JSON failure.
    """
    if len(data) < HEADER_LEN + _CRC.size:
        raise NetworkError(
            "truncated", f"frame of {len(data)} bytes is shorter than the "
            f"minimum {HEADER_LEN + _CRC.size}"
        )
    header = data[:HEADER_LEN]
    deadline_ms, length = check_header(header)
    end = HEADER_LEN + length
    if len(data) != end + _CRC.size:
        raise NetworkError(
            "truncated", f"frame declares {length} payload bytes but "
            f"{len(data) - HEADER_LEN - _CRC.size} are present"
        )
    body = data[HEADER_LEN:end]
    check_frame(header, body, data[end:end + _CRC.size])
    return decode_payload(body), deadline_from_wire(deadline_ms)


# -- response serialization ----------------------------------------------------


def _json_number(value):
    """Coerce a result value to a plain JSON number (or string fallback).

    Keeps None and bools out of the number path (bool is an int
    subclass) and normalizes numpy scalars so the wire encoding is
    process-independent.
    """
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def response_payload(resp) -> dict:
    """The canonical wire dict for a :class:`ServiceResponse`.

    Everything a remote caller can act on — status, classified error
    tag, the degradation-event chain, cache/coalescing provenance, and
    the result — and nothing process-local (``span_id`` is deliberately
    excluded: it only joins responses to *this* process's trace export).
    The gateway byte-identity test pins that serving over the wire
    cannot change a single byte of this.
    """
    req = resp.request
    out = {
        "v": 1,
        "status": resp.status,
        "kernel": req.kernel,
        "flow": req.flow,
        "target": req.target,
        "size": req.size,
        "error": resp.error,
        "events": [
            {"cause": e.cause, "detail": e.detail} for e in resp.events
        ],
        "from_cache": bool(resp.from_cache),
        "coalesced": bool(resp.coalesced),
        "attempts": int(resp.attempts),
        "result": None,
    }
    if resp.result is not None:
        r = resp.result
        out["result"] = {
            "cycles": _json_number(r.cycles),
            "value": _json_number(r.value),
            "checked": bool(r.checked),
            "bytecode_bytes": int(r.bytecode_bytes),
            "compile_seconds": _json_number(r.compile_seconds),
        }
    return out
