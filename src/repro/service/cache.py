"""Crash-safe persistent kernel cache for the JIT compilation service.

The paper's online stage is cheap, but "cheap" times millions of requests
is still a bill worth not paying twice: a kernel lowered once for
(bytecode, target, compiler, toolchain) can be served from disk on every
later request.  Revec (Mendis et al.) documents why such caches rot —
toolchains move, artifacts get torn by crashes, disks flip bits — so this
cache is built *assuming* its own entries will go bad:

* **Atomic writes.**  Every entry lands via :func:`atomic_write`
  (``tempfile`` in the destination directory + ``fsync`` +
  ``os.replace``), so a crash mid-write leaves at worst an orphaned
  ``*.tmp`` file, never a half-written entry under the final name.
* **Checksummed entries.**  Entries reuse the VBC2 container discipline:
  a ``VBK1`` magic plus a CRC-32 of the payload.  A fresh service can
  only ever serve an entry whose checksum verifies.
* **Corruption self-healing.**  A bad entry (torn, truncated, bit-flipped,
  wrong magic, unpicklable) is *quarantined* — renamed aside, never
  deleted evidence, never served — and the lookup reports a miss so the
  caller recompiles and overwrites.
* **LRU byte-budget, reservation-style.**  The cache holds at most
  ``byte_budget`` bytes of entries; an insert *reserves* its size against
  the budget (evicting least-recently-used entries first) **before** the
  tempfile is written, so peak disk usage is bounded by the budget plus
  one in-flight entry — never "write everything, evict later".
* **Cross-replica leader markers.**  Service replicas sharing one cache
  directory coalesce cold misses through advisory ``.lead`` files next to
  the entries: one replica claims compile leadership (``O_EXCL`` create),
  the others wait-and-read instead of recompiling, and a marker whose
  mtime ages past its TTL is *taken over* — a crashed replica can never
  strand the fleet.  Markers are advisory: the worst case of any race is
  one redundant compile, which the atomic entry write makes harmless.

Keys are :class:`CacheKey` tuples — (bytecode CRC-32, target name,
compiler name, toolchain version) — so a toolchain upgrade or a different
online compiler can never alias a stale artifact.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import tempfile
import threading
import time
import uuid
import zlib
from collections import OrderedDict
from dataclasses import dataclass

from .. import faults, obs
from ..errors import ReproError

__all__ = [
    "CacheError",
    "CacheKey",
    "KernelCache",
    "atomic_write",
    "canonical_crc",
    "pack_kernel",
    "unpack_kernel",
    "ENTRY_MAGIC",
    "TOOLCHAIN_VERSION",
]

#: gensym-suffixed identifiers (value/loop names like ``loop_i_21``) —
#: their numbering depends on process-global counter state, not on the
#: program, so they must not contribute to cache identity.
_GENSYM = re.compile(rb"([A-Za-z][A-Za-z0-9]*_)(\d+)")


def canonical_crc(data: bytes) -> int:
    """CRC-32 of ``data`` under alpha-renaming of gensym identifiers.

    The service keys its cache on the *canonical printed form* of the
    decoded bytecode (positional SSA ids, deterministic across
    processes), because the raw encoded stream embeds gensym value/loop
    names whose counters advance globally — two vectorizer runs over the
    same kernel yield alpha-equivalent but byte-different streams.  Any
    residual gensym-suffixed identifier is renumbered by first occurrence
    before hashing, so alpha-equivalent programs share a key and anything
    else gets its own.
    """
    mapping: dict[bytes, bytes] = {}

    def rename(m: re.Match) -> bytes:
        token = m.group(0)
        out = mapping.get(token)
        if out is None:
            out = mapping[token] = m.group(1) + str(len(mapping)).encode()
        return out

    return zlib.crc32(_GENSYM.sub(rename, data)) & 0xFFFFFFFF

#: entry container magic (VBK = Vapor Bytecode Kernel, format 1).
ENTRY_MAGIC = b"VBK1"
_HEADER_BYTES = len(ENTRY_MAGIC) + 4  # magic + u32le crc32(payload)

#: cache-key component covering everything that can invalidate an artifact
#: besides the bytecode itself: package version and entry format revision.
#: Bumping either orphans old entries instead of mis-serving them.
TOOLCHAIN_VERSION = "repro-1.0.0+vbk1"


class CacheError(ReproError):
    """A kernel-cache entry could not be used.

    Attributes:
        kind: machine-readable tag — ``"bad-magic"``, ``"bad-checksum"``,
            ``"truncated"``, ``"bad-payload"``, ``"io"``, or
            ``"torn-write"`` (fault-injected crash mid-write).
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class _InjectedTornWrite(CacheError, faults.FaultInjected):
    """A :class:`~repro.faults.CacheTornWrite` firing: the process "died"
    between writing the temp file and the atomic rename."""


@dataclass(frozen=True)
class CacheKey:
    """Identity of one lowered artifact.

    ``bytecode_crc`` is the CRC-32 of the *function bytecode* that was
    compiled (offline-stage output), so any change to the portable input
    yields a different key; ``target``/``compiler`` pin the online stage;
    ``toolchain`` pins the code that did the lowering.
    """

    bytecode_crc: int
    target: str
    compiler: str
    toolchain: str = TOOLCHAIN_VERSION

    def filename(self) -> str:
        tool = f"{zlib.crc32(self.toolchain.encode()) & 0xFFFFFFFF:08x}"
        return (
            f"{self.bytecode_crc & 0xFFFFFFFF:08x}"
            f"-{self.target}-{self.compiler}-{tool}.vbk"
        )


def atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically.

    The bytes go to a ``tempfile`` in the *same directory* (so the final
    ``os.replace`` is a same-filesystem rename), are flushed and
    ``fsync``\\ ed, and only then renamed over the destination.  Readers
    therefore observe either the old content or the new content, never a
    torn mix — and a crash at any point leaves the destination untouched.

    This is the one write primitive of the service layer; the CLI routes
    its artifact writes (``repro compile -o``, ``repro report --out``)
    through it too, so a crash or full disk cannot leave a truncated
    ``.vbc`` that a later run would trust.

    Fault injection: an active :class:`~repro.faults.CacheTornWrite` plan
    simulates a crash mid-write — a *partial* temp file is left behind and
    a classified, injection-marked :class:`CacheError` is raised without
    the rename ever happening.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        torn = faults.cache_torn_write()
        if torn is not None:
            # Simulated kill -9 between the partial write and the rename:
            # some bytes hit the temp file, the destination never changes.
            os.write(fd, data[: max(0, len(data) // 2)])
            os.close(fd)
            raise _InjectedTornWrite(
                "torn-write",
                f"injected crash mid-write of {os.path.basename(path)} "
                f"({torn!r}); destination untouched",
            )
        os.write(fd, data)
        os.fsync(fd)
        os.close(fd)
        os.replace(tmp, path)
    except _InjectedTornWrite:
        raise
    except BaseException:
        try:
            os.close(fd)
        except OSError:
            pass
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _pack_entry(payload: bytes) -> bytes:
    return ENTRY_MAGIC + struct.pack(
        "<I", zlib.crc32(payload) & 0xFFFFFFFF
    ) + payload


def pack_kernel(ck) -> bytes:
    """Serialize a :class:`~repro.jit.compilers.CompiledKernel` into the
    checksummed VBK1 envelope the cache stores on disk.

    This is the *wire format of the compile farm* too: a farm worker
    packs its result with this function and ships the envelope bytes
    back over the process boundary, so the leader can both serve the
    kernel (:func:`unpack_kernel`) and persist the exact bytes it
    received (:meth:`KernelCache.put_bytes`) without a second
    serialization — warm-cache responses are byte-identical to the cold
    compile by construction.
    """
    payload = pickle.dumps(
        {
            "mfunc": ck.mfunc,
            "target": ck.target.name,
            "compiler": ck.compiler,
            "compile_seconds": ck.compile_seconds,
            "stats": dict(ck.stats),
            "degraded": ck.degraded,
            "events": list(ck.events),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _pack_entry(payload)


def unpack_kernel(data: bytes):
    """Rebuild a :class:`~repro.jit.compilers.CompiledKernel` from a VBK1
    envelope, verifying magic + checksum.

    Raises :class:`CacheError` on any defect (``truncated`` /
    ``bad-magic`` / ``bad-checksum`` / ``bad-payload``); never returns a
    kernel from bytes that don't verify.
    """
    from ..jit.compilers import CompiledKernel
    from ..targets import get_target

    payload = _unpack_entry(data)
    try:
        rec = pickle.loads(payload)
        return CompiledKernel(
            mfunc=rec["mfunc"],
            target=get_target(rec["target"]),
            compiler=rec["compiler"],
            compile_seconds=rec["compile_seconds"],
            stats=dict(rec["stats"]),
            degraded=rec["degraded"],
            events=list(rec["events"]),
        )
    except Exception as exc:  # unpicklable / malformed payload
        raise CacheError("bad-payload", f"bad-payload: {exc}") from exc


def _unpack_entry(data: bytes) -> bytes:
    """Verify the VBK1 envelope; returns the payload or raises CacheError."""
    if len(data) < _HEADER_BYTES:
        raise CacheError(
            "truncated",
            f"entry of {len(data)} bytes, need >= {_HEADER_BYTES}",
        )
    if data[: len(ENTRY_MAGIC)] != ENTRY_MAGIC:
        raise CacheError(
            "bad-magic",
            f"expected {ENTRY_MAGIC!r}, got {bytes(data[:4])!r}",
        )
    (stored,) = struct.unpack("<I", data[len(ENTRY_MAGIC):_HEADER_BYTES])
    payload = data[_HEADER_BYTES:]
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if stored != actual:
        raise CacheError(
            "bad-checksum",
            f"entry checksum mismatch: header 0x{stored:08x}, "
            f"payload 0x{actual:08x}",
        )
    return payload


class KernelCache:
    """Persistent, self-healing, LRU-bounded store of compiled kernels.

    ``get`` returns a :class:`~repro.jit.compilers.CompiledKernel`
    reconstructed from disk, or ``None`` on miss *or* on any corruption
    (after quarantining the bad entry).  ``put`` serializes the kernel and
    writes it atomically after *reserving* its size against
    ``byte_budget`` (evicting LRU entries first if needed).

    Thread-safe with **scoped locking**: the index lock guards only index
    mutation and counters.  Disk I/O — entry reads, unpickling,
    ``atomic_write``, eviction unlinks — happens *outside* the lock, so
    concurrent gets/puts for distinct keys overlap instead of
    serializing behind one reader's disk + unpickle time.  Atomic
    renames mean concurrent readers never see torn entries regardless.

    The byte budget is enforced against a **running total**
    (``_bytes``), updated on every insert/evict/quarantine — eviction is
    O(evicted), not the old O(n²) recompute-the-sum-per-eviction.
    """

    def __init__(self, root: str, byte_budget: int = 8 << 20) -> None:
        self.root = str(root)
        self.byte_budget = int(byte_budget)
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()  # index + counters ONLY — no I/O
        #: filename -> size, in LRU order (oldest first).
        self._index: OrderedDict[str, int] = OrderedDict()
        #: running sum of ``_index.values()`` (kept exact under _lock).
        self._bytes = 0
        #: bytes reserved by in-flight ``put_bytes`` calls (admission
        #: holds them against the budget before the tempfile exists).
        self._pending = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0
        self.put_failures = 0
        self.oversize_rejects = 0
        self.budget_rejects = 0
        self.marker_claims = 0
        self.marker_waits = 0
        self.marker_takeovers = 0
        self._scan()

    # -- index maintenance ----------------------------------------------------

    def _scan(self) -> None:
        """Rebuild the LRU index from disk (mtime order, oldest first)."""
        entries = []
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if not name.endswith(".vbk") or not os.path.isfile(path):
                continue
            st = os.stat(path)
            entries.append((st.st_mtime_ns, name, st.st_size))
        self._index.clear()
        self._bytes = 0
        for _mt, name, size in sorted(entries):
            self._index[name] = size
            self._bytes += size

    def _quarantine(self, name: str, reason: str) -> None:
        """Move a bad entry aside — it must never be served again, but the
        evidence is kept for post-mortems.

        Evidence names are suffixed with a monotonic timestamp plus a
        random tag, *not* the in-process ``quarantined`` counter: the
        counter resets on every restart, so two services (or one service
        restarted) quarantining the same entry name would silently
        ``os.replace`` the earlier evidence away.
        """
        os.makedirs(self.quarantine_dir, exist_ok=True)
        src = os.path.join(self.root, name)
        tag = f"{time.monotonic_ns():016x}-{uuid.uuid4().hex[:8]}"
        dst = os.path.join(self.quarantine_dir, f"{name}.{tag}.bad")
        try:
            os.replace(src, dst)
        except OSError:
            try:  # fallback: at minimum make it unservable
                os.unlink(src)
            except OSError:
                pass
        with self._lock:
            self.quarantined += 1
            self._drop_index(name)
        obs.count("cache.quarantined")

    def _drop_index(self, name: str) -> int | None:
        """Remove ``name`` from the index, keeping ``_bytes`` exact.

        Caller must hold ``_lock``.  Returns the dropped size, or None.
        """
        size = self._index.pop(name, None)
        if size is not None:
            self._bytes -= size
        return size

    def _evict_over_budget(self) -> list[str]:
        """Pop LRU names until the running total fits the budget.

        Caller must hold ``_lock``.  Returns the evicted filenames; the
        caller unlinks them *after* releasing the lock (index mutation
        is locked, disk I/O is not).
        """
        evicted: list[str] = []
        while self._index and self._bytes > self.byte_budget:
            name, size = self._index.popitem(last=False)
            self._bytes -= size
            self.evictions += 1
            evicted.append(name)
        return evicted

    def _unlink_evicted(self, names: list[str]) -> None:
        for name in names:
            try:
                os.unlink(os.path.join(self.root, name))
            except OSError:
                pass
            obs.count("cache.evictions")

    def total_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._index)

    # -- lookup / insert ------------------------------------------------------

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1
        obs.count("cache.misses")

    def get(self, key: CacheKey):
        """The cached :class:`CompiledKernel` for ``key``, or None.

        Corrupt entries are quarantined and reported as misses — the
        caller recompiles and ``put`` overwrites, which is the
        self-healing loop.

        The read and the unpickle happen *outside* the index lock (the
        entry file is immutable once renamed into place; a concurrent
        ``put`` atomically replaces it, so this reader sees the old
        bytes or the new bytes, never a mix) — only the LRU touch takes
        the lock.
        """
        name = key.filename()
        path = os.path.join(self.root, name)
        try:
            with open(path, "rb") as f:
                data = f.read()
        except FileNotFoundError:
            self._miss()
            return None
        except OSError as exc:
            self._miss()
            self._quarantine(name, f"io: {exc}")
            return None
        try:
            ck = unpack_kernel(data)
        except CacheError as exc:
            self._miss()
            self._quarantine(name, exc.kind)
            return None
        with self._lock:
            # LRU touch (index mutation only).
            self._drop_index(name)
            self._index[name] = len(data)
            self._bytes += len(data)
            self.hits += 1
        try:
            os.utime(path)
        except OSError:
            pass
        obs.count("cache.hits")
        return ck

    def put(self, key: CacheKey, ck) -> bool:
        """Persist ``ck`` under ``key`` atomically; True on success.

        A failed write (including an injected torn write) never poisons
        the cache: the destination is untouched and the failure is only
        counted — serving the freshly compiled kernel is unaffected.
        """
        return self.put_bytes(key, pack_kernel(ck))

    def put_bytes(self, key: CacheKey, data: bytes) -> bool:
        """Persist an already-packed VBK1 envelope under ``key``.

        This is the insert primitive the compile farm uses: the leader
        stores the exact envelope bytes a worker shipped back, with no
        re-serialization, so the on-disk entry is byte-identical to the
        cold response.

        Admission is **reservation-style**: the entry's size is reserved
        against the byte budget — evicting LRU entries as needed — *before*
        the tempfile is written, so peak disk usage stays bounded by the
        budget (plus unreserved foreign writes), never "write first, evict
        later".  An entry larger than the whole budget is rejected outright
        (``oversize_rejects``) instead of flushing the cache for nothing;
        when concurrent reservations outrun the budget even with the index
        drained, the put is likewise given up (``budget_rejects``) rather
        than overshooting the bound; and a failed write rolls its
        reservation back.  A rejected put is benign — the compile result
        is still served, only the cache insert is skipped.
        """
        size = len(data)
        name = key.filename()
        reject = None
        evicted: list[str] = []
        with self._lock:
            if size > self.byte_budget:
                self.oversize_rejects += 1
                reject = "cache.oversize_rejects"
            else:
                self._pending += size
                while self._index and (
                    self._bytes + self._pending > self.byte_budget
                ):
                    ename, esize = self._index.popitem(last=False)
                    self._bytes -= esize
                    self.evictions += 1
                    evicted.append(ename)
                if self._bytes + self._pending > self.byte_budget:
                    self._pending -= size
                    self.budget_rejects += 1
                    reject = "cache.budget_rejects"
        self._unlink_evicted(evicted)
        if reject is not None:
            obs.count(reject)
            return False
        try:
            # Disk I/O outside the lock: the write is an atomic rename,
            # so concurrent readers of the same name are already safe.
            atomic_write(os.path.join(self.root, name), data)
        except (CacheError, OSError):
            with self._lock:
                self._pending -= size
                self.put_failures += 1
            obs.count("cache.put_failures")
            return False
        with self._lock:
            self._pending -= size
            self._drop_index(name)
            self._index[name] = size
            self._bytes += size
            total = self._bytes
        obs.count("cache.puts")
        obs.gauge("cache.bytes", total)
        return True

    # -- cross-replica leader markers -----------------------------------------

    def _marker_path(self, key: CacheKey) -> str:
        return os.path.join(self.root, key.filename() + ".lead")

    def claim_leader(
        self, key: CacheKey, ttl_s: float, *, force: bool = False
    ) -> str | None:
        """Try to claim cross-replica compile leadership for ``key``.

        Leadership is an advisory ``.lead`` file next to the (future)
        cache entry, created with ``O_CREAT | O_EXCL`` so exactly one
        replica per cache directory wins a cold miss.  Returns an opaque
        token on success (pass it to :meth:`release_leader`), or ``None``
        when another replica holds a *fresh* marker — the caller should
        wait-and-poll the cache instead of recompiling.

        A marker whose mtime has aged past ``ttl_s`` is presumed to
        belong to a crashed or wedged replica: it is unlinked and the
        claim retried (a **takeover**).  ``force=True`` treats any
        existing marker as stale — the compile-budget watchdog uses this
        to reclaim leadership when a fresh-looking marker has outlived
        the caller's patience.  Markers are advisory: if two replicas
        ever race past each other, both compile and the atomic entry
        write keeps the cache consistent.

        Fault injection: an active :class:`~repro.faults.StaleMarker`
        plan plants a dead replica's aged marker just before the claim,
        deterministically exercising the takeover path.
        """
        path = self._marker_path(key)
        token = uuid.uuid4().hex
        if faults.stale_marker() is not None:
            # A replica "died" holding leadership: its marker is on disk
            # and old enough that the TTL has long expired.
            try:
                with open(path, "wb") as f:
                    f.write(b"injected-dead-replica\n")
                aged = time.time() - (ttl_s + 60.0)
                os.utime(path, (aged, aged))
            except OSError:
                pass
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - os.stat(path).st_mtime
                except OSError:
                    continue  # marker vanished under us — retry the claim
                if age <= ttl_s and not force:
                    with self._lock:
                        self.marker_waits += 1
                    obs.count("farm.marker_waits")
                    return None
                try:
                    os.unlink(path)
                except OSError:
                    pass
                with self._lock:
                    self.marker_takeovers += 1
                obs.count("farm.marker_takeovers")
                force = False
                continue
            except OSError:
                # Unclaimable marker path (read-only dir, exotic fs):
                # leadership is advisory, so proceed as leader — worst
                # case is a redundant compile, never a wrong answer.
                break
            else:
                try:
                    os.write(fd, token.encode("ascii"))
                finally:
                    os.close(fd)
                break
        with self._lock:
            self.marker_claims += 1
        obs.count("farm.marker_claims")
        return token

    def release_leader(self, key: CacheKey, token: str) -> None:
        """Drop the leadership marker for ``key`` if we still own it.

        Token-checked: after a takeover the marker (if any) belongs to
        the new leader, and a stale release must not unlink it.
        """
        path = self._marker_path(key)
        try:
            with open(path, "rb") as f:
                owner = f.read().decode("ascii", "replace")
        except OSError:
            return
        if owner == token:
            try:
                os.unlink(path)
            except OSError:
                pass

    def evict(self, key: CacheKey) -> bool:
        """Remove the entry for ``key`` (cache invalidation); True when an
        on-disk entry existed and was removed."""
        name = key.filename()
        with self._lock:
            self._drop_index(name)
        try:
            os.unlink(os.path.join(self.root, name))
        except OSError:
            return False
        with self._lock:
            self.evictions += 1
        obs.count("cache.evictions")
        return True

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._index),
                "bytes": self._bytes,
                "byte_budget": self.byte_budget,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": (
                    self.hits / (self.hits + self.misses)
                    if (self.hits + self.misses)
                    else 0.0
                ),
                "evictions": self.evictions,
                "quarantined": self.quarantined,
                "put_failures": self.put_failures,
                "oversize_rejects": self.oversize_rejects,
                "budget_rejects": self.budget_rejects,
                "pending_bytes": self._pending,
                "marker_claims": self.marker_claims,
                "marker_waits": self.marker_waits,
                "marker_takeovers": self.marker_takeovers,
            }
