"""Single-flight compile coalescing and per-key scoped locks.

The paper's bargain is that the online stage is *cheap* — linear-time
materialization per target — but "cheap" still isn't free, and under
concurrent load two classic serialization bugs eat the worker pool:

* **cache stampede** — N concurrent misses for the same
  :class:`~repro.service.cache.CacheKey` do N redundant compiles.  The
  fix is *single-flight* (à la Go's ``golang.org/x/sync/singleflight``):
  the first requester becomes the **leader** and compiles; every
  concurrent requester for the same key becomes a **follower** that
  blocks on the leader's :class:`threading.Event` and shares its
  :class:`~repro.jit.compilers.CompiledKernel`.
* **global critical section** — one service-wide lock around compilation
  means the pool adds zero compile throughput.  The fix is *scoped*
  locking: :class:`KeyedLocks` hands out one mutex per key so distinct
  kernels/targets proceed genuinely in parallel and only identical work
  serializes.

Both primitives are deliberately tiny, stdlib-only, and deterministic
(no wall-clock state), so the seeded chaos campaigns stay reproducible.
"""

from __future__ import annotations

import copy
import threading

__all__ = ["Flight", "SingleFlight", "KeyedLocks"]


def _follower_copy(exc: BaseException) -> BaseException:
    """A per-follower clone of the leader's exception.

    Re-raising one shared exception object from N follower threads is a
    data race on the object itself: every ``raise`` rewrites
    ``__traceback__`` (and ``__context__`` when raised inside an
    ``except`` block), so concurrent followers corrupt each other's
    tracebacks.  Each follower therefore raises its own shallow copy,
    chained (``__cause__``) to the original so the leader's traceback
    stays reachable — and untouched.

    Exception classes with custom ``__init__`` signatures (e.g.
    ``OverloadError(depth, limit)``) can't be rebuilt via
    ``type(exc)(*exc.args)``; allocate without ``__init__`` and copy
    ``args`` plus instance state instead.
    """
    cls = type(exc)
    try:
        clone = cls.__new__(cls)
        clone.args = exc.args
        state = getattr(exc, "__dict__", None)
        if state:
            clone.__dict__.update(state)
    except Exception:
        try:
            clone = copy.copy(exc)
        except Exception:
            return exc  # last resort: the shared object beats no error
    clone.__cause__ = exc
    clone.__suppress_context__ = True
    return clone


class Flight:
    """One in-flight computation: an event plus its eventual outcome.

    The leader calls exactly one of :meth:`resolve` / :meth:`reject`;
    followers :meth:`wait` and then read ``value`` / ``exc``.  A flight
    settles exactly once (``settled`` guards double-completion in
    defensive paths).
    """

    __slots__ = ("_event", "value", "exc", "settled")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.value = None
        self.exc: BaseException | None = None
        self.settled = False

    def resolve(self, value) -> None:
        self.value = value
        self.settled = True
        self._event.set()

    def reject(self, exc: BaseException) -> None:
        self.exc = exc
        self.settled = True
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the flight settles; False on timeout."""
        return self._event.wait(timeout)

    def outcome(self):
        """The settled value, re-raising the leader's exception.

        Only call after :meth:`wait` returned True.  Each caller gets
        its *own* copy of the leader's exception (chained to the
        original via ``__cause__``): concurrent re-raises of one shared
        object would race on its ``__traceback__``.
        """
        if self.exc is not None:
            raise _follower_copy(self.exc)
        return self.value


class SingleFlight:
    """A per-key in-flight table: leaders compute, followers share.

    ::

        flight, leader = sf.begin(key)
        if leader:
            try:
                flight.resolve(compute())
            except BaseException as exc:
                flight.reject(exc)
                raise
            finally:
                sf.end(key, flight)
            value = flight.value
        else:
            flight.wait()
            value = flight.outcome()   # re-raises the leader's failure

    The table only coalesces *concurrent* duplicates: ``end`` removes the
    key, so a later request for the same key starts a fresh flight (and,
    in the service, normally hits the persistent cache instead).
    Followers share the leader's failure too — one deterministic compile
    error answers every coalesced request instead of burning N compiles
    rediscovering it; the per-request retry loop above still retries with
    its own fresh flight.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict = {}
        #: lifetime counters (exposed by ``KernelService.stats()``).
        self.leaders = 0
        self.followers = 0
        self.usurped = 0

    def begin(self, key) -> tuple[Flight, bool]:
        """(flight, is_leader) for ``key``.

        The first caller for a key gets ``is_leader=True`` and *must*
        settle the flight and call :meth:`end`; concurrent callers get
        the same flight with ``is_leader=False``.
        """
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = Flight()
                self.leaders += 1
                return flight, True
            self.followers += 1
            return flight, False

    def end(self, key, flight: Flight) -> None:
        """Retire ``flight`` so later requests start fresh.

        Identity-checked: a stale ``end`` (defensive double-call) never
        removes a newer flight for the same key.
        """
        with self._lock:
            if self._inflight.get(key) is flight:
                del self._inflight[key]

    def usurp(self, key, flight: Flight) -> bool:
        """Depose a wedged leader: retire ``flight`` *without* settling it.

        The compile-budget watchdog calls this when a follower has waited
        out its patience on a leader that looks dead (crashed before
        settling, or wedged mid-compile).  Identity-checked like
        :meth:`end` — if the table already moved on to a newer flight for
        the key, this is a no-op.  After a successful usurp the caller
        loops back through :meth:`begin` and becomes the new leader (or a
        follower of whoever beat it there); the deposed leader's eventual
        ``end`` is harmless because it no longer matches.  Returns True
        when the stale flight was actually removed.
        """
        with self._lock:
            if self._inflight.get(key) is flight:
                del self._inflight[key]
                self.usurped += 1
                return True
            return False

    def inflight(self) -> int:
        """Number of keys currently being computed (for surfaces/tests)."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> dict:
        with self._lock:
            return {
                "leaders": self.leaders,
                "followers": self.followers,
                "usurped": self.usurped,
                "inflight": len(self._inflight),
            }


class KeyedLocks:
    """A lazily-populated map of key -> :class:`threading.Lock`.

    Scoped locking for keyed work (IR construction, bytecode sizing):
    identical keys serialize, distinct keys run in parallel.  Locks are
    never discarded — the key space here is bounded by (kernel, size,
    flow, target) shapes, which is exactly the set of artifacts the
    service caches anyway.
    """

    def __init__(self) -> None:
        self._meta = threading.Lock()
        self._locks: dict = {}

    def get(self, key) -> threading.Lock:
        with self._meta:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def __len__(self) -> int:
        with self._meta:
            return len(self._locks)
