"""The resilient JIT compilation service: ``repro.service.KernelService``.

The paper's split model makes the online stage cheap enough to run
*everywhere, all the time* — which at ROADMAP scale means a long-running,
multi-threaded service accepting (kernel, flow, target) compile/run
requests.  This module composes the resilience primitives of the package
into that service:

* **admission** (:mod:`.admission`) — a bounded in-flight counter sheds
  excess load with a classified :class:`OverloadError` instead of
  queueing unboundedly; per-request :class:`Deadline`\\ s are enforced at
  every pipeline stage and propagated into the parallel sweep harness.
* **kernel cache** (:mod:`.cache`) — compiled artifacts are persisted
  crash-safely and served on later requests; corrupt entries self-heal
  (quarantine → recompile → overwrite).
* **circuit breakers** (:mod:`.breaker`) — one per target; a target whose
  compiles keep failing is short-circuited so requests stop burning
  retry budget on it.
* **retries** — transient failures are retried with the harness's
  jittered exponential :func:`~repro.harness.parallel.backoff_delay`
  before degrading.
* **compile farm** (:mod:`.farm`) — with ``farm_workers > 0`` the
  single-flight leader dispatches each cold compile to a persistent
  worker-*process* pool instead of compiling under the GIL, so N
  distinct misses compile on N cores; with a shared ``cache_dir``,
  leadership coalesces *across replicas* through advisory TTL markers,
  and a per-flight compile-budget watchdog reroutes any flight whose
  leader (thread, worker, or foreign replica) crashes or wedges.

When the primary attempt is exhausted (or short-circuited), the request
enters the **degradation cascade** — strictly ordered, every step
recorded as a :class:`~repro.jit.materialize.DegradationEvent`:

1. **native fallback** — serve from the always-available monolithic
   scalar flow (``native_scalar`` on the ``scalar`` target);
2. **forced-scalar retry** — recompile the requested flow for the
   requested target with every loop group scalarized (PR 2's
   ``force_scalar``), sidestepping vector materializer faults;
3. **stale cache** — re-serve the last known-good response for the same
   request shape, explicitly marked ``stale``;
4. **classified rejection** — a :class:`ServiceResponse` with
   ``status="rejected"``, a closed-taxonomy error tag, and the full
   event chain.  Never a silent wrong answer, never a traceback.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from .. import faults, obs
from .._compat import warn_once
from ..api import execute_phase
from ..errors import classify
from ..harness.flows import FLOWS, FlowResult, FlowRunner
from ..harness.parallel import backoff_delay, run_cells
from ..jit.materialize import DegradationEvent
from ..kernels import get_kernel
from ..targets import get_target
from .admission import AdmissionQueue, Deadline, DeadlineError, OverloadError
from .breaker import CircuitBreaker, CircuitOpenError
from .cache import CacheKey, KernelCache, canonical_crc, unpack_kernel
from .farm import CompileFarm, CompileJob, FarmError
from .singleflight import KeyedLocks, SingleFlight

__all__ = ["ServiceRequest", "ServiceResponse", "KernelService"]


class _ShardedCounters:
    """Per-thread sharded counters, merged at snapshot time.

    The old global ``_counts`` dict behind one lock was the last
    hot-path critical section every request crossed (twice: admission
    and finish).  Each thread now bumps its *own* shard — a plain dict
    pre-populated with the full key set, touched by no other thread — so
    the hot path takes no lock at all.  ``snapshot`` merges the shards
    under the registry lock; it may observe a bump that is mid-flight on
    another core (counters are monotonic, so the snapshot is simply a
    moment-in-time floor), which is the usual sharded-counter bargain.

    Shards are keyed by thread lifetime: a shard stays registered after
    its thread exits so no counts are ever lost, and the registry is
    bounded by the total number of threads that ever touched the service
    (the worker pool is fixed-size; client threads are the caller's).
    """

    def __init__(self, keys) -> None:
        self._keys = tuple(keys)
        self._local = threading.local()
        self._registry: list[dict] = []
        self._registry_lock = threading.Lock()

    def _shard(self) -> dict:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            # Pre-populate every key: after this, the shard is only ever
            # value-updated (never resized), so the lock-free reads in
            # ``snapshot`` can iterate it safely.
            shard = {k: 0 for k in self._keys}
            with self._registry_lock:
                self._registry.append(shard)
            self._local.shard = shard
        return shard

    def bump(self, key: str, n: int = 1) -> None:
        self._shard()[key] += n

    def snapshot(self) -> dict:
        with self._registry_lock:
            shards = list(self._registry)
        out = {k: 0 for k in self._keys}
        for shard in shards:
            for k in self._keys:
                out[k] += shard[k]
        return out


@dataclass(frozen=True)
class ServiceRequest:
    """One compile/run request for a (kernel, flow, target) tuple."""

    kernel: str
    flow: str = "split_vec_gcc4cli"
    target: str = "sse"
    size: int | None = None
    #: wall-clock budget in seconds (None = no deadline).
    deadline_s: float | None = None
    #: number of client requests this request answers: >1 when the
    #: gateway's pre-admission batcher merged a same-shape flight group
    #: into one admitted request (the N-1 riders are recorded in
    #: ``admission.batched``, not ``admission.admitted``).
    batch_size: int = 1


@dataclass
class ServiceResponse:
    """The service's answer — always well-formed, never a traceback.

    ``status`` is one of:

    ========== =========================================================
    status     meaning
    ========== =========================================================
    ``ok``       served from the primary path, clean vector compile
    ``degraded`` served correctly but via a fallback (compile-level
                 scalarization or a cascade step); ``events`` says why
    ``stale``    served from the last known-good result after the whole
                 compile path failed — correct *for that earlier run*
    ``shed``     rejected at admission (:class:`OverloadError`)
    ``rejected`` every cascade step failed; ``error`` holds the
                 classified tag of the root failure
    ========== =========================================================
    """

    request: ServiceRequest
    status: str
    result: FlowResult | None = None
    #: closed-taxonomy tag (:func:`repro.errors.classify`) when not served.
    error: str | None = None
    #: the DegradationEvent chain explaining every fallback step taken.
    events: list = field(default_factory=list)
    from_cache: bool = False
    #: True when this request was coalesced onto another request's
    #: in-flight compile (single-flight follower) instead of compiling
    #: or reading the persistent cache itself.
    coalesced: bool = False
    attempts: int = 1
    #: id of the ``service.request`` trace span that produced this
    #: response (None when tracing is disabled) — lets log processors
    #: join responses to their span trees in the JSONL export.
    span_id: int | None = None

    @property
    def ok(self) -> bool:
        """True when a (possibly degraded/stale) result was served."""
        return self.result is not None

    @property
    def degraded(self) -> bool:
        return bool(self.events)


def _event(kernel: str, target: str, cause: str, detail: str = ""):
    return DegradationEvent(
        function=kernel, target=target, group=None, cause=cause,
        detail=detail,
    )


class KernelService:
    """A long-running, multi-threaded JIT compilation service.

    Synchronous use::

        svc = KernelService(cache_dir="/var/cache/repro")
        resp = svc.handle(ServiceRequest("saxpy_fp", target="sse"))

    Concurrent use::

        futures = [svc.submit(r) for r in requests]   # sheds when full
        responses = [f.result() for f in futures]

    All configuration knobs are keyword-only constructor arguments;
    ``seed`` makes retry jitter deterministic for seeded campaigns
    (``rng_seed`` is the deprecated spelling and warns once).  The
    service is a context manager (``close()`` drains the worker pool).

    Every request is traced as one ``service.request`` span (phase
    ``service``) whose attributes record the final status, cache hit,
    attempt count, breaker state, and degradation-event causes; the
    span's id is echoed on :attr:`ServiceResponse.span_id`.
    """

    #: cascade step names, in order (documented in docs/service.md).
    CASCADE = ("native-fallback", "forced-scalar", "stale-cache")

    def __init__(
        self,
        *,
        cache_dir: str | None = None,
        cache_budget: int = 8 << 20,
        queue_limit: int = 32,
        workers: int = 4,
        farm_workers: int = 0,
        farm_budget_s: float | None = 30.0,
        replica_coalesce: bool = True,
        marker_ttl_s: float = 10.0,
        retries: int = 2,
        backoff_base: float = 0.005,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 6,
        engine: str = "threaded",
        check: bool = True,
        seed: int = 0,
        rng_seed: int | None = None,
    ) -> None:
        if rng_seed is not None:
            warn_once("KernelService(rng_seed=...)",
                      "KernelService(seed=...)")
            seed = rng_seed
        self.runner = FlowRunner(engine=engine, check=check)
        self.cache = (
            KernelCache(cache_dir, cache_budget)
            if cache_dir is not None
            else None
        )
        self.admission = AdmissionQueue(queue_limit)
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = int(breaker_cooldown)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._stale: dict[tuple, FlowResult] = {}
        self._instances: dict[tuple, object] = {}
        self._rng = random.Random(seed)
        # -- scoped locking (the lock map; see docs/service.md §7) -----------
        # The old design funnelled every critical section — IR builds,
        # JIT compiles, bytecode sizing, counters, breakers — through one
        # global RLock, so the worker pool added zero compile throughput.
        # Each concern now has its own lock, and the expensive work (JIT
        # compilation) is serialized only per CacheKey via single-flight.
        # (Service counters went further: per-thread shards, no lock at
        # all on the hot path — see _ShardedCounters.)
        self._breakers_lock = threading.Lock()  # self._breakers map
        self._instances_lock = threading.Lock()  # self._instances map
        self._stale_lock = threading.Lock()     # self._stale map
        self._rng_lock = threading.Lock()       # retry-jitter RNG
        #: per-(kernel, size, flow, target, force) IR/cache-key builds —
        #: identical shapes serialize, distinct shapes run in parallel.
        self._ir_locks = KeyedLocks()
        #: memoized (CacheKey, ir, jit_cls) per request shape, so the
        #: warm path never re-prints IR to recompute cache identity.
        self._keys: dict[tuple, tuple] = {}
        #: per-CacheKey in-flight compile table: concurrent identical
        #: misses share one compile (leader/follower).
        self._singleflight = SingleFlight()
        #: per-flight compile budget (seconds): bounds a farm dispatch,
        #: a follower's patience on an unsettled flight, and the wait on
        #: a foreign replica's leader marker.  None disables watchdogs.
        self.farm_budget_s = farm_budget_s
        self.replica_coalesce = bool(replica_coalesce)
        self.marker_ttl_s = float(marker_ttl_s)
        self._runner_config = self.runner.config()
        # The farm forks eagerly, BEFORE any service thread exists (the
        # request pool below spawns its threads lazily on first submit),
        # so workers never inherit a mid-transaction lock.
        self._farm = (
            CompileFarm(farm_workers, budget_s=farm_budget_s)
            if int(farm_workers) > 0
            else None
        )
        self._pool = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="repro-service"
        )
        self._started = time.monotonic()
        self._counters = _ShardedCounters([
            "requests",
            "ok",
            "degraded",
            "stale",
            "shed",
            "rejected",
            "retries",
            "deadline_misses",
            "degradation_events",
            "breaker_short_circuits",
            "internal_errors",
            "farm_dispatches",
            "farm_fallbacks",
            "flight_usurps",
            "replica_waits",
            "replica_hits",
        ])
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Shut down the worker pool and the compile farm.

        The farm teardown sits in a ``finally`` so an interrupt (Ctrl-C
        lands in ``shutdown(wait=True)`` far more often than anywhere
        else) can never skip it and orphan worker processes; pass
        ``wait=False`` to skip waiting for queued thread work entirely.
        """
        if not self._closed:
            self._closed = True
            try:
                self._pool.shutdown(wait=wait, cancel_futures=not wait)
            finally:
                if self._farm is not None:
                    self._farm.close()

    def farm_worker_pids(self) -> list[int]:
        """PIDs of live compile-farm workers ([] without a farm)."""
        if self._farm is None:
            return []
        return self._farm.worker_pids()

    def __enter__(self) -> "KernelService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- request entry points -------------------------------------------------

    def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Serve one request synchronously (admission still applies)."""
        self._bump("requests")
        try:
            slot = self.admission.admit()
        except OverloadError as exc:
            return self._shed_response(request, exc)
        if request.batch_size > 1:
            # One slot answers the whole flight group; ledger the riders.
            self.admission.note_batched(request.batch_size - 1)
        with slot:
            return self._guarded_serve(request)

    def submit(self, request: ServiceRequest) -> Future:
        """Enqueue a request onto the worker pool.

        Admission is charged *now* — at submission — so a flood of
        submissions past ``queue_limit`` is shed immediately (the future
        resolves to a ``shed`` response) instead of parking unboundedly
        in the executor queue.
        """
        self._bump("requests")
        try:
            slot = self.admission.admit()
        except OverloadError as exc:
            fut: Future = Future()
            fut.set_result(self._shed_response(request, exc))
            return fut

        def work() -> ServiceResponse:
            with slot:
                return self._guarded_serve(request)

        try:
            return self._pool.submit(work)
        except RuntimeError as exc:  # pool shut down
            slot.__exit__(None, None, None)
            fut = Future()
            fut.set_result(
                ServiceResponse(
                    request, "rejected", error=classify(exc),
                    events=[_event(request.kernel, request.target,
                                   "service-closed", str(exc))],
                )
            )
            return fut

    def serve(self, requests) -> list:
        """Submit a batch concurrently; responses in request order."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    def sweep(self, cells, deadline_s: float | None = None, **kwargs):
        """Run a parallel experiment sweep with the request deadline
        propagated into :func:`repro.harness.parallel.run_cells` (the
        remaining budget tightens every cell's timeout)."""
        deadline = Deadline(deadline_s)
        return run_cells(cells, deadline=deadline, **kwargs)

    # -- surfaces -------------------------------------------------------------

    def health(self) -> dict:
        """Cheap liveness/pressure summary (the ``/healthz`` analogue)."""
        with self._breakers_lock:
            breakers = {t: b.state for t, b in self._breakers.items()}
        adm = self.admission.stats()
        status = "ok"
        if any(s != "closed" for s in breakers.values()):
            status = "degraded"
        if adm["depth"] >= adm["limit"]:
            status = "overloaded"
        return {
            "status": status,
            "uptime_s": time.monotonic() - self._started,
            "queue_depth": adm["depth"],
            "queue_limit": adm["limit"],
            "breakers": breakers,
            "cache_enabled": self.cache is not None,
        }

    def stats(self) -> dict:
        """Full counter census for dashboards and the soak artifact."""
        counts = self._counters.snapshot()
        with self._breakers_lock:
            breakers = {
                t: b.snapshot() for t, b in sorted(self._breakers.items())
            }
        out = {
            **counts,
            "admission": self.admission.stats(),
            "breakers": breakers,
            "cache": self.cache.stats() if self.cache is not None else None,
            "singleflight": self._singleflight.stats(),
            "farm": self._farm.stats() if self._farm is not None else None,
        }
        served = counts["ok"] + counts["degraded"] + counts["stale"]
        out["served"] = served
        return out

    # -- internals ------------------------------------------------------------

    def _bump(self, key: str, n: int = 1) -> None:
        self._counters.bump(key, n)
        obs.count(f"service.{key}", n)

    def _shed_response(self, request, exc) -> ServiceResponse:
        self._bump("shed")
        resp = ServiceResponse(request, "shed", error=classify(exc))
        with obs.span("service.request", phase="service",
                      kernel=request.kernel, flow=request.flow,
                      target=request.target) as sp:
            sp.set(status="shed", error=resp.error)
            resp.span_id = getattr(sp, "span_id", None)
        return resp

    def _breaker(self, target: str) -> CircuitBreaker:
        with self._breakers_lock:
            b = self._breakers.get(target)
            if b is None:
                b = self._breakers[target] = CircuitBreaker(
                    self.breaker_threshold, self.breaker_cooldown
                )
            return b

    def _instance(self, kernel: str, size: int | None):
        key = (kernel, size)
        with self._instances_lock:
            inst = self._instances.get(key)
            if inst is None:
                inst = self._instances[key] = get_kernel(kernel).instantiate(
                    size
                )
            return inst

    def _guarded_serve(self, request: ServiceRequest) -> ServiceResponse:
        """The no-traceback guarantee: anything the pipeline (or a bug in
        the service itself) throws becomes a classified rejection.

        Every pass through here is one ``service.request`` span; the
        compile/execute child spans (``jit`` / ``vm``) nest under it.
        """
        with obs.span("service.request", phase="service",
                      kernel=request.kernel, flow=request.flow,
                      target=request.target) as sp:
            try:
                resp = self._serve(request)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # pragma: no cover - defensive
                self._bump("internal_errors")
                self._bump("rejected")
                resp = ServiceResponse(
                    request, "rejected", error=classify(exc),
                    events=[_event(request.kernel, request.target,
                                   "internal-error",
                                   f"{classify(exc)}: {exc}")],
                )
            sp.set(status=resp.status, from_cache=resp.from_cache,
                   attempts=resp.attempts)
            if resp.coalesced:
                sp.set(coalesced=True)
            if request.batch_size > 1:
                sp.set(batch=True, batch_size=request.batch_size)
            with self._breakers_lock:
                breaker = self._breakers.get(request.target)
            if breaker is not None:
                sp.set(breaker=breaker.state)
            if resp.error:
                sp.set(error=resp.error)
            if resp.events:
                sp.set(events=[e.cause for e in resp.events])
            resp.span_id = getattr(sp, "span_id", None)
        return resp

    def _serve(self, request: ServiceRequest) -> ServiceResponse:
        deadline = Deadline(request.deadline_s)
        # Request validation: malformed requests are rejected up front.
        if request.flow not in FLOWS:
            self._bump("rejected")
            return ServiceResponse(
                request, "rejected", error="bad-request",
                events=[_event(request.kernel, request.target, "bad-request",
                               f"unknown flow {request.flow!r}")],
            )
        try:
            get_target(request.target)
            inst = self._instance(request.kernel, request.size)
        except Exception as exc:
            self._bump("rejected")
            return ServiceResponse(
                request, "rejected", error="bad-request",
                events=[_event(request.kernel, request.target, "bad-request",
                               f"{type(exc).__name__}: {exc}")],
            )

        events: list = []
        breaker = self._breaker(request.target)
        primary_exc: Exception | None = None
        attempts = 0

        if breaker.allow():
            # From here this request may BE the half-open probe: every
            # exit path must settle the breaker.  Success and failure
            # record an outcome; any path that leaves without judging
            # the target (deadline expiry, KeyboardInterrupt, a bug in
            # the cascade dispatch below) must still free the probe slot
            # or the breaker wedges half-open forever — hence the
            # try/finally with the ``settled`` flag.
            settled = False
            try:
                try:
                    resp, attempts = self._attempt_with_retries(
                        request, inst, request.flow, request.target, deadline,
                        force_scalar=False,
                    )
                except DeadlineError as exc:
                    # Expiry is load, not target health: no breaker
                    # charge, and the cascade would only blow the budget
                    # further.  (The finally below releases the probe.)
                    self._bump("deadline_misses")
                    self._bump("rejected")
                    return ServiceResponse(
                        request, "rejected", error=classify(exc),
                        events=events, attempts=max(1, attempts),
                    )
                except Exception as exc:
                    primary_exc = exc
                    breaker.record_failure()
                    settled = True
                    events.append(_event(
                        request.kernel, request.target, "primary-failed",
                        f"{classify(exc)}: {exc}",
                    ))
                else:
                    breaker.record_success()
                    settled = True
                    self._remember_good(request, resp)
                    return self._finish(resp)
            finally:
                if not settled:
                    breaker.release_probe()
        else:
            self._bump("breaker_short_circuits")
            events.append(_event(
                request.kernel, request.target, "breaker-open",
                f"target {request.target!r} circuit is "
                f"{breaker.state}; primary attempt short-circuited",
            ))

        return self._cascade(
            request, inst, deadline, events, primary_exc, attempts
        )

    def _attempt_with_retries(
        self, request, inst, flow, target_name, deadline, force_scalar
    ):
        """(response, attempts) for one (flow, target) shape, retrying
        transient classified failures with jittered exponential backoff."""
        last: Exception | None = None
        attempts = 0
        for attempt in range(1, self.retries + 2):
            deadline.check(f"before attempt {attempt}")
            attempts = attempt
            if attempt > 1:
                self._bump("retries")
                with self._rng_lock:
                    delay = backoff_delay(
                        attempt - 1, base=self.backoff_base, cap=0.1,
                        rng=self._rng,
                    )
                rem = deadline.remaining()
                if rem is not None:
                    delay = min(delay, rem)
                if delay > 0:
                    time.sleep(delay)
            try:
                resp = self._attempt_once(
                    request, inst, flow, target_name, deadline, force_scalar
                )
                resp.attempts = attempt
                return resp, attempts
            except (KeyboardInterrupt, SystemExit, DeadlineError):
                raise
            except Exception as exc:
                last = exc
        assert last is not None
        raise last

    def _attempt_once(
        self, request, inst, flow, target_name, deadline, force_scalar
    ) -> ServiceResponse:
        target = get_target(target_name)
        ck, from_cache, coalesced = self._compiled(
            inst, flow, target, force_scalar, deadline=deadline
        )
        deadline.check("after compilation")
        result = self._execute(inst, ck, flow, target)
        events = list(ck.events)
        status = "degraded" if events else "ok"
        return ServiceResponse(
            request, status, result=result, events=events,
            from_cache=from_cache, coalesced=coalesced,
        )

    # -- compile path (cache-fronted) ----------------------------------------

    def _cache_key_ir(self, inst, flow, target, force_scalar=False):
        """(CacheKey, ir, jit_cls) for one request shape.

        Cache identity uses the canonical printed form of the bytecode
        (positional SSA ids), which is stable across processes, where the
        raw encoded stream embeds process-global gensym counters.

        Scoped locking: IR construction takes a *per-shape* lock (so two
        requests for the same shape build it once, while distinct
        kernels/flows/targets build in parallel), and the finished
        (CacheKey, ir, jit_cls) triple is memoized — the warm path never
        re-prints IR just to recompute cache identity.
        """
        from ..ir import print_function

        form, jit_cls = FLOWS[flow]
        shape = (inst.name, inst.size, flow, target.name, bool(force_scalar))
        hit = self._keys.get(shape)
        if hit is not None:
            return hit
        with self._ir_locks.get(shape):
            hit = self._keys.get(shape)
            if hit is not None:
                return hit
            if form == "scalar":
                ir = self.runner.scalar_ir(inst)
            elif form == "split":
                ir = self.runner.split_ir(inst)
            else:
                ir = self.runner.native_ir(inst, target)
            canon = print_function(ir).encode()
            crc = canonical_crc(canon)
            compiler = jit_cls.name + ("+scalarized" if force_scalar else "")
            triple = (CacheKey(crc, target.name, compiler), ir, jit_cls)
            self._keys[shape] = triple
            return triple

    def evict(self, kernel: str, flow: str, target: str,
              size: int | None = None, force_scalar: bool = False) -> bool:
        """Drop the persistent cache entry for one request shape.

        The operational cache-invalidation surface: True when an on-disk
        entry existed and was removed.  (Also what the chaos soak uses to
        force a real compile-and-put on a warm cache.)
        """
        if self.cache is None:
            return False
        inst = self._instance(kernel, size)
        key, _ir, _jit = self._cache_key_ir(
            inst, flow, get_target(target), force_scalar
        )
        return self.cache.evict(key)

    def _compiled(self, inst, flow, target, force_scalar=False,
                  deadline=None):
        """(CompiledKernel, from_cache, coalesced) for one request shape.

        The compile path is **single-flight**: a persistent-cache miss
        enters the per-CacheKey in-flight table.  The first requester
        (the *leader*) JIT-compiles — under no service-wide lock, so
        distinct keys compile genuinely in parallel — and only the
        leader writes the cache.  Concurrent requesters for the same key
        (*followers*) block on the leader's flight and share its
        CompiledKernel: N identical cold misses do exactly one compile
        instead of N (the classic cache stampede).  Followers honour
        their own deadline while waiting and share the leader's failure
        (one deterministic compile error answers the whole cohort; each
        request's retry loop then starts its own fresh flight).

        With a :class:`CompileFarm` the leader *dispatches* instead of
        compiling inline, so distinct keys compile in distinct worker
        processes — genuinely on distinct cores, no GIL.  With a shared
        cache directory, leadership extends *across replicas* through
        advisory TTL markers (see ``KernelCache.claim_leader``).  Both
        layers are guarded by the per-flight compile-budget watchdog:
        a follower whose flight outlives ``farm_budget_s`` usurps the
        presumed-dead leader and reroutes the compile, and a leader
        waiting on a foreign replica's fresh-but-silent marker reclaims
        leadership the same way.
        """
        key, ir, jit_cls = self._cache_key_ir(
            inst, flow, target, force_scalar
        )
        with obs.span("jit", phase="jit", target=target.name,
                      compiler=jit_cls.name,
                      force_scalar=force_scalar) as sp:
            while True:
                if self.cache is not None:
                    ck = self.cache.get(key)
                    if ck is not None:
                        sp.set(cached=True)
                        return ck, True, False
                flight, leader = self._singleflight.begin(key)
                if leader:
                    return self._lead_flight(
                        key, ir, jit_cls, flight, inst, flow, target,
                        force_scalar, deadline, sp,
                    )
                # Follower: coalesce onto the in-flight compile.
                obs.count("service.singleflight.follower")
                if self._await_flight(flight, deadline, self.farm_budget_s):
                    ck = flight.outcome()  # re-raises the leader's failure
                    sp.set(cached=False, coalesced=True)
                    if ck.degraded:
                        sp.set(degraded=True,
                               events=[e.cause for e in ck.events])
                    return ck, False, True
                # Compile-budget watchdog: the flight outlived our
                # patience without settling — its leader is presumed
                # crashed or wedged.  Depose it (identity-checked, so a
                # racing settle wins harmlessly) and loop: we re-check
                # the cache and then become the new leader, or follow
                # whoever beat us to it.
                self._bump("flight_usurps")
                obs.count("service.singleflight.usurped")
                self._singleflight.usurp(key, flight)

    def _lead_flight(self, key, ir, jit_cls, flight, inst, flow, target,
                     force_scalar, deadline, sp):
        """The leader's whole tenure: recheck, cross-replica claim,
        compile (farm or inline), publish, cache put.

        Everything below runs under flight ownership; ``end`` is
        deferred until *after* the cache put so that any straggler that
        missed the cache pre-put either joins this flight (begin before
        end) or re-checks the cache and hits (begin after end implies
        the put already landed).  Either way: exactly one compile per
        key per cohort, deterministic.  Any exit — including a bug in
        the dispatch below — settles the flight, so followers are never
        stranded on a leader that died silently.
        """
        token = None
        try:
            if self.cache is not None:
                ck = self.cache.get(key)
                if ck is not None:
                    # Lost the pre-begin race: a previous leader
                    # compiled and published between our cache miss
                    # and our begin().  Serve the artifact and hand
                    # it to any followers already parked on us.
                    flight.resolve(ck)
                    sp.set(cached=True)
                    return ck, True, False
                if self.replica_coalesce:
                    claimed = self._claim_replica_lead(
                        key, flight, deadline, sp
                    )
                    if not isinstance(claimed, str):
                        return claimed  # served from a replica's compile
                    token = claimed
            # Compile outside any global lock: distinct keys compile
            # genuinely in parallel (farm workers: on distinct cores).
            obs.count("service.singleflight.leader")
            try:
                ck, envelope = self._jit_compile(
                    key, ir, jit_cls, inst, flow, target, force_scalar, sp
                )
            except BaseException as exc:
                flight.reject(exc)
                raise
            flight.resolve(ck)
            sp.set(cached=False, compile_seconds=ck.compile_seconds)
            if ck.degraded:
                sp.set(degraded=True,
                       events=[e.cause for e in ck.events])
            if self.cache is not None and not self._tainted(ck):
                # A failed write (ENOSPC, injected torn write) only
                # loses the cache benefit; the freshly compiled
                # kernel is still served.  Only the leader ever
                # writes: one put per key per cohort — and a farm
                # compile persists the worker's exact envelope bytes.
                if envelope is not None:
                    self.cache.put_bytes(key, envelope)
                else:
                    self.cache.put(key, ck)
            return ck, False, False
        except BaseException as exc:
            # Defensive: a failure anywhere in the leader region (cache
            # recheck, marker I/O, a service bug) must not strand parked
            # followers on an unsettled flight.
            if not flight.settled:
                flight.reject(exc)
            raise
        finally:
            if token is not None and self.cache is not None:
                self.cache.release_leader(key, token)
            self._singleflight.end(key, flight)

    #: poll interval while waiting on a foreign replica's leader marker.
    _MARKER_POLL_S = 0.02

    def _claim_replica_lead(self, key, flight, deadline, sp):
        """Claim cross-replica leadership, or wait out whoever holds it.

        Returns the marker token (str) once this service owns the
        compile for ``key`` — possibly after a TTL/budget takeover from
        a dead replica — or the full ``(ck, True, False)`` result triple
        when the foreign leader published first and we served its
        artifact straight from the shared cache.
        """
        token = self.cache.claim_leader(key, self.marker_ttl_s)
        if token is not None:
            return token
        # A foreign replica holds a fresh marker: wait-and-read.  Our
        # patience is the compile budget; past it we forcibly reclaim
        # leadership (the marker looked fresh but its owner may be
        # wedged — the watchdog rule is the same as for local flights).
        self._bump("replica_waits")
        budget = self.farm_budget_s
        limit = None if budget is None else time.monotonic() + budget
        while token is None:
            time.sleep(self._MARKER_POLL_S)
            ck = self.cache.get(key)
            if ck is not None:
                self._bump("replica_hits")
                obs.count("farm.replica_hits")
                flight.resolve(ck)
                sp.set(cached=True, replica=True)
                return ck, True, False
            if deadline is not None:
                deadline.check("while waiting for a replica's compile")
            force = limit is not None and time.monotonic() >= limit
            token = self.cache.claim_leader(
                key, self.marker_ttl_s, force=force
            )
        return token

    def _jit_compile(self, key, ir, jit_cls, inst, flow, target,
                     force_scalar, sp):
        """(CompiledKernel, envelope-bytes-or-None) for one compile.

        With a farm, the leader dispatches and gets back the packed VBK1
        envelope (reused verbatim for the cache put); a *dispatch*
        failure (worker crash/stall — :class:`FarmError`) falls back to
        compiling inline, so farm faults cost latency, never answers.  A
        *compile* failure inside the worker arrives reclassified as the
        same error the inline path would raise and propagates to the
        retry/cascade machinery unchanged.
        """
        if self._farm is not None:
            job = CompileJob(
                key=key, kernel=inst.name, size=inst.size, flow=flow,
                target=target.name, force_scalar=bool(force_scalar),
                runner_kwargs=self._runner_config,
                plan=faults.active_plan(),
            )
            self._bump("farm_dispatches")
            try:
                envelope = self._farm.compile(job)
            except FarmError as exc:
                self._bump("farm_fallbacks")
                obs.count("farm.inline_fallbacks")
                sp.set(farm_fallback=exc.kind)
            else:
                ck = unpack_kernel(envelope)
                self._mirror_compile_obs(ck)
                sp.set(farm=True)
                return ck, envelope
        return jit_cls().compile(ir, target, force_scalar=force_scalar), None

    @staticmethod
    def _mirror_compile_obs(ck) -> None:
        """Re-emit the ``jit.*`` metrics for a farm compile in *this*
        process (the worker's own emissions died with its memory), so
        dashboards and the identical-mix benchmark see exactly one
        ``jit.compiles`` per cold compile regardless of where it ran."""
        obs.count("jit.compiles")
        obs.count("jit.loops_vectorized", ck.stats.get("loops_vectorized", 0))
        obs.count("jit.loops_scalarized", ck.stats.get("loops_scalarized", 0))
        obs.count("jit.degradation_events", len(ck.events))
        if ck.events:
            obs.count("jit.degraded_compiles")
        obs.observe("jit.compile_seconds", ck.compile_seconds)

    @staticmethod
    def _await_flight(flight, deadline, budget_s=None) -> bool:
        """Block on a leader's flight; True when it settled.

        Honours the follower's own deadline (raising
        :class:`DeadlineError` on expiry, as before) *and* the per-flight
        compile budget: False means the budget ran out on an unsettled
        flight — the caller's cue to usurp the presumed-dead leader
        instead of waiting forever (deadline-less requests used to hang
        here if a leader crashed between ``begin`` and ``reject``).
        """
        limit = None if budget_s is None else time.monotonic() + budget_s
        while True:
            timeout = None if deadline is None else deadline.remaining()
            if limit is not None:
                rem = max(0.0, limit - time.monotonic())
                timeout = rem if timeout is None else min(timeout, rem)
            if flight.wait(timeout=timeout):
                return True
            if deadline is not None:
                # remaining() clamps at 0.0, so once expired check() raises.
                deadline.check("while waiting for the coalesced compile")
            if limit is not None and time.monotonic() >= limit:
                return False

    @staticmethod
    def _tainted(ck) -> bool:
        """Must this artifact be kept out of the persistent cache?

        A kernel that degraded *while a fault plan was installed* (or
        whose events record an injected cause) reflects the fault, not
        the toolchain — persisting it would serve a needlessly
        scalarized artifact long after the fault cleared, the exact
        cached-artifact rot Revec warns about.  Genuine deterministic
        degradations (e.g. AltiVec's unsupported unaligned store) are
        cacheable: they reproduce identically on recompile.
        """
        from .. import faults as _faults

        if any(e.cause == "fault-injected" for e in ck.events):
            return True
        return ck.degraded and _faults.active_plan() is not None

    def _execute(self, inst, ck, flow, target) -> FlowResult:
        """Run a compiled kernel exactly like FlowRunner.run would, so a
        warm-cache service response is byte-identical to a cold run."""
        bufs = self.runner.make_buffers(inst)
        vm_result = execute_phase(
            ck, inst.scalar_args, bufs, engine=self.runner.engine
        )
        checked = False
        if self.runner.check:
            self.runner.verify(inst, bufs, vm_result.value)
            checked = True
        scalar_bytes, vec_bytes = self._bytecode_sizes(inst)
        form = FLOWS[flow][0]
        return FlowResult(
            kernel=inst.name,
            flow=flow,
            target=target.name,
            cycles=vm_result.cycles,
            value=vm_result.value,
            compile_seconds=ck.compile_seconds,
            bytecode_bytes=scalar_bytes if form == "scalar" else vec_bytes,
            checked=checked,
            stats=dict(ck.stats),
        )

    def _bytecode_sizes(self, inst) -> tuple[int, int]:
        """Thread-safe (scalar, vectorized) encoded sizes for a kernel.

        Scoped locking: the memoized fast path is a lock-free dict read
        (entries are immutable once inserted); construction serializes
        per (kernel, size) — not service-wide — so two distinct kernels
        size their bytecode in parallel.
        """
        key = (inst.name, inst.size)
        sizes = self.runner._sizes_cache.get(key)
        if sizes is not None:
            return sizes
        with self._ir_locks.get(("sizes",) + key):
            return self.runner.bytecode_sizes(inst)

    # -- the degradation cascade ---------------------------------------------

    def _cascade(
        self, request, inst, deadline, events, primary_exc, attempts
    ) -> ServiceResponse:
        """native target -> forced-scalar retry -> stale cache ->
        classified rejection.  Every step leaves a DegradationEvent."""
        root = (
            f"{classify(primary_exc)}: {primary_exc}"
            if primary_exc is not None
            else "breaker open"
        )

        # Step 1: the always-available monolithic scalar flow.
        if (request.flow, request.target) != ("native_scalar", "scalar"):
            try:
                deadline.check("before native fallback")
                resp = self._attempt_once(
                    request, inst, "native_scalar", "scalar", deadline,
                    force_scalar=False,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                events.append(_event(
                    request.kernel, "scalar", "native-fallback-failed",
                    f"{classify(exc)}: {exc}",
                ))
            else:
                events.append(_event(
                    request.kernel, "scalar", "native-fallback",
                    f"served via native_scalar/scalar after: {root}",
                ))
                resp.status = "degraded"
                resp.events = events + resp.events
                return self._finish(resp)

        # Step 2: requested shape, every loop group force-scalarized.
        try:
            deadline.check("before forced-scalar retry")
            resp = self._attempt_once(
                request, inst, request.flow, request.target, deadline,
                force_scalar=True,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            events.append(_event(
                request.kernel, request.target, "forced-scalar-failed",
                f"{classify(exc)}: {exc}",
            ))
        else:
            events.append(_event(
                request.kernel, request.target, "forced-scalar",
                f"served with all groups scalarized after: {root}",
            ))
            resp.status = "degraded"
            resp.events = events + resp.events
            return self._finish(resp)

        # Step 3: last known-good result for this exact request shape.
        with self._stale_lock:
            stale = self._stale.get(self._stale_key(request))
        if stale is not None:
            events.append(_event(
                request.kernel, request.target, "stale-cache",
                f"re-serving last known-good result after: {root}",
            ))
            return self._finish(ServiceResponse(
                request, "stale", result=replace(stale), events=events,
            ))

        # Step 4: classified rejection — the fail-soft floor.
        exc = primary_exc if primary_exc is not None else CircuitOpenError(
            request.target, "degradation cascade exhausted"
        )
        self._bump("degradation_events", len(events))
        self._bump("rejected")
        return ServiceResponse(
            request, "rejected", error=classify(exc), events=events,
            attempts=max(1, attempts),
        )

    def _stale_key(self, request) -> tuple:
        return (request.kernel, request.size, request.flow, request.target)

    def _remember_good(self, request, resp) -> None:
        if resp.result is not None and resp.result.checked:
            with self._stale_lock:
                self._stale[self._stale_key(request)] = resp.result

    def _finish(self, resp: ServiceResponse) -> ServiceResponse:
        self._bump(resp.status)
        if resp.events:
            self._bump("degradation_events", len(resp.events))
        return resp
