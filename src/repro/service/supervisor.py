"""Self-healing replica fleet: supervised sharded gateway processes.

One :class:`FleetSupervisor` turns N single-process gateways
(``serve --listen``) into a serving *tier*: N child processes share one
crash-safe cache directory (the cross-replica coalescing substrate from
:mod:`repro.service.cache` — ``.lead`` TTL markers, atomic VBK1 writes,
quarantine self-healing), while clients hash-shard placement by request
shape (:func:`repro.service.client.shard_index`) so every cache key has
one deliberate home replica and failover walks the live remainder.

The supervisor's job is the part the paper never had to worry about:
**the hardware under a replica dies**.  Concretely —

* **spawn + discovery** — each replica binds an ephemeral port
  (``--listen 127.0.0.1:0``) and announces it on stdout as a
  machine-readable ``LISTENING host:port`` line *before* readiness
  flips; a per-child reader thread scans for it (and keeps draining
  stdout so a chatty child can never block on a full pipe);
* **liveness** — one manager thread per replica probes the wire
  ``health`` verb under ``probe_timeout_s``; the deadline rides the
  frame header, so a wedged replica stalls *its own prober* for at most
  one probe budget and never the rest of the fleet.  A dead process
  (``poll()``), a silent spawn (no announcement within
  ``spawn_timeout_s``), or ``probe_failures`` consecutive probe misses
  all mean the same thing: restart;
* **restart policy** — jittered exponential backoff
  (:func:`repro.harness.parallel.backoff_delay`, the toolchain's one
  retry curve) between respawns, with **flap suppression**: more than
  ``restart_budget`` restarts inside ``restart_window_s`` parks the
  replica with a classified :class:`FleetError` instead of burning CPU
  on a crash loop.  A parked slot reads ``None`` in :meth:`slots`, so
  sharded clients route around it; fleet readiness reports the degraded
  capacity honestly.

Crash consistency is inherited, not re-implemented: a ``kill -9`` mid
cache write leaves only a ``*.tmp`` the index never reads, a killed
leader's stale ``.lead`` marker is reclaimed by any survivor after the
marker TTL, and the farm workers of the dead replica reap themselves
via the parent-death watchdog (:mod:`repro.service.farm`).  The
``chaos --profile fleet`` campaign SIGKILLs replicas at exactly those
moments and asserts all of it end-to-end (docs/resilience.md).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

from .. import obs
from ..errors import ReproError
from ..harness.parallel import backoff_delay
from .admission import DeadlineError
from .client import GatewayClient, parse_address
from .wire import NetworkError

__all__ = ["FleetError", "FleetSupervisor", "Replica"]


class FleetError(ReproError):
    """Classified fleet-capacity failure.

    ``kind`` is machine-readable: ``parked`` (a replica exhausted its
    restart budget and was taken out of rotation), ``spawn`` (a replica
    never announced its port), ``no-capacity`` (no live replica left to
    serve), ``closed`` (supervisor already stopped).
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class Replica:
    """One supervised gateway child: process, address, and life story."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: subprocess.Popen | None = None
        self.address: tuple[str, int] | None = None
        self.state = "stopped"  # starting|up|backoff|parked|stopped
        self.announced = threading.Event()
        self.spawned_at = 0.0
        self.probe_failures = 0
        self.restarts = 0          # lifetime respawn count
        self.restart_times: list[float] = []  # inside the flap window
        self.error: FleetError | None = None
        #: pids this slot has ever run — the chaos campaign audits that
        #: every dead incarnation (and its farm) is actually gone.
        self.pid_history: list[int] = []

    def snapshot(self) -> dict:
        return {
            "index": self.index,
            "state": self.state,
            "address": (
                f"{self.address[0]}:{self.address[1]}"
                if self.address else None
            ),
            "pid": self.proc.pid if self.proc is not None else None,
            "restarts": self.restarts,
            "probe_failures": self.probe_failures,
            "error": str(self.error) if self.error else None,
        }


class FleetSupervisor:
    """Spawn, probe, and heal N gateway replicas over one cache dir.

    ``probe_timeout_s`` bounds every liveness probe end-to-end (it rides
    the wire frame header, so even a replica wedged *mid-handler* cannot
    hold a prober past it).  ``restart_budget`` restarts within
    ``restart_window_s`` parks a flapping replica with a classified
    :class:`FleetError`.  Tests (and the wedged-replica regression)
    override :meth:`_replica_command` to supervise arbitrary children
    that speak the same ``LISTENING host:port`` contract.
    """

    def __init__(
        self,
        replicas: int,
        cache_dir: str,
        *,
        farm_workers: int = 0,
        workers: int = 4,
        queue_limit: int = 64,
        max_inflight: int = 64,
        batch_window_ms: float = 0.0,
        batch_max: int = 16,
        marker_ttl_s: float | None = None,
        farm_budget_s: float | None = None,
        probe_interval_s: float = 0.2,
        probe_timeout_s: float = 1.0,
        probe_failures: int = 3,
        spawn_timeout_s: float = 20.0,
        restart_backoff_base: float = 0.05,
        restart_backoff_cap: float = 2.0,
        restart_budget: int = 5,
        restart_window_s: float = 30.0,
        seed: int = 0,
    ) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.cache_dir = str(cache_dir)
        self.farm_workers = int(farm_workers)
        self.workers = int(workers)
        self.queue_limit = int(queue_limit)
        self.max_inflight = int(max_inflight)
        self.batch_window_ms = float(batch_window_ms)
        self.batch_max = int(batch_max)
        self.marker_ttl_s = marker_ttl_s
        self.farm_budget_s = farm_budget_s
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.probe_failures = int(probe_failures)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.restart_backoff_base = float(restart_backoff_base)
        self.restart_backoff_cap = float(restart_backoff_cap)
        self.restart_budget = int(restart_budget)
        self.restart_window_s = float(restart_window_s)
        self.seed = int(seed)
        self._replicas = [Replica(i) for i in range(replicas)]
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._managers: list[threading.Thread] = []
        self._started = False
        self._closed = False
        self._restart_total = 0

    # -- child command seam ---------------------------------------------------

    def _replica_command(self, index: int) -> list[str]:
        """The child command line for replica ``index``.

        Overridable seam: anything that prints ``LISTENING host:port``
        on stdout and speaks the gateway wire protocol can be
        supervised (tests use it to plant wedged or crashing stubs).
        """
        cmd = [
            sys.executable, "-u", "-m", "repro", "serve",
            "--listen", "127.0.0.1:0",
            "--cache-dir", self.cache_dir,
            "--farm-workers", str(self.farm_workers),
            "--jobs", str(self.workers),
            "--queue-limit", str(self.queue_limit),
            "--max-inflight", str(self.max_inflight),
            "--seed", str(self.seed + index),
        ]
        if self.batch_window_ms > 0:
            cmd += ["--batch-window-ms", str(self.batch_window_ms),
                    "--batch-max", str(self.batch_max)]
        if self.marker_ttl_s is not None:
            cmd += ["--marker-ttl", str(self.marker_ttl_s)]
        if self.farm_budget_s is not None:
            cmd += ["--farm-budget", str(self.farm_budget_s)]
        return cmd

    def _child_env(self) -> dict:
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.dirname(src)  # .../src/repro/service -> .../src
        prev = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + prev if prev else "")
        return env

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn every replica and block until the fleet is ready.

        Raises :class:`FleetError` (``spawn``) if any replica fails to
        announce its port within ``spawn_timeout_s`` — the fleet is torn
        back down before raising, never left half-up.
        """
        if self._started:
            raise FleetError("closed", "supervisor already started")
        self._started = True
        with obs.span("supervisor.start", phase="service",
                      replicas=len(self._replicas)):
            for r in self._replicas:
                self._spawn(r)
            deadline = time.monotonic() + self.spawn_timeout_s
            for r in self._replicas:
                rem = max(0.0, deadline - time.monotonic())
                if not r.announced.wait(rem):
                    self.stop()
                    raise FleetError(
                        "spawn",
                        f"replica {r.index} announced no port within "
                        f"{self.spawn_timeout_s:.1f}s",
                    )
        for r in self._replicas:
            t = threading.Thread(
                target=self._manage, args=(r,),
                name=f"repro-fleet-manage-{r.index}", daemon=True,
            )
            t.start()
            self._managers.append(t)
        obs.gauge("supervisor.replicas_up", self.up_count())

    def stop(self) -> None:
        """Stop managers, then drain children politely (SIGTERM, then
        SIGKILL escalation).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        for t in self._managers:
            t.join(timeout=10.0)
        procs = []
        with self._lock:
            for r in self._replicas:
                if r.proc is not None and r.proc.poll() is None:
                    try:
                        r.proc.terminate()
                    except OSError:
                        pass
                    procs.append(r.proc)
                r.state = "stopped" if r.state != "parked" else "parked"
                r.address = None
        deadline = time.monotonic() + 10.0
        for proc in procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- topology -------------------------------------------------------------

    def slots(self) -> list:
        """Current replica slot list for sharded clients: one entry per
        replica index, ``(host, port)`` when serving, ``None`` when
        down/backing-off/parked — so the shard *map* stays stable while
        availability changes underneath it."""
        with self._lock:
            return [
                r.address if r.state == "up" else None
                for r in self._replicas
            ]

    def client(self, **kwargs) -> GatewayClient:
        """A sharded client bound to the live topology."""
        return GatewayClient(self.slots, **kwargs)

    def up_count(self) -> int:
        with self._lock:
            return sum(1 for r in self._replicas if r.state == "up")

    def ready(self) -> dict:
        """Fleet readiness, honest about degraded capacity."""
        with self._lock:
            up = sum(1 for r in self._replicas if r.state == "up")
            parked = sum(1 for r in self._replicas if r.state == "parked")
        total = len(self._replicas)
        return {
            "ready": up > 0,
            "degraded": up < total,
            "up": up,
            "parked": parked,
            "replicas": total,
        }

    def stats(self) -> dict:
        with self._lock:
            snaps = [r.snapshot() for r in self._replicas]
            restarts = self._restart_total
        return {
            "restarts": restarts,
            "parked": sum(1 for s in snaps if s["state"] == "parked"),
            "replicas": snaps,
        }

    def replica_pids(self) -> dict:
        """index -> live child pid (absent while down)."""
        with self._lock:
            return {
                r.index: r.proc.pid
                for r in self._replicas
                if r.proc is not None and r.proc.poll() is None
            }

    def pid_history(self) -> dict:
        """index -> every pid that slot ever ran (for post-mortem
        leak audits)."""
        with self._lock:
            return {r.index: list(r.pid_history) for r in self._replicas}

    def kill(self, index: int, sig: int = signal.SIGKILL) -> int | None:
        """Send ``sig`` to replica ``index`` (chaos driver hook).
        Returns the pid signalled, or ``None`` if the slot was down."""
        with self._lock:
            r = self._replicas[index]
            proc = r.proc
        if proc is None or proc.poll() is not None:
            return None
        try:
            os.kill(proc.pid, sig)
        except ProcessLookupError:
            return None
        return proc.pid

    # -- internals ------------------------------------------------------------

    def _spawn(self, r: Replica) -> None:
        cmd = self._replica_command(r.index)
        with obs.span("supervisor.spawn", phase="service", replica=r.index):
            proc = subprocess.Popen(
                cmd,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                env=self._child_env(),
            )
        with self._lock:
            r.proc = proc
            r.address = None
            r.state = "starting"
            r.announced = threading.Event()
            r.spawned_at = time.monotonic()
            r.probe_failures = 0
            r.pid_history.append(proc.pid)
        obs.count("supervisor.spawned")
        threading.Thread(
            target=self._read_child, args=(r, proc),
            name=f"repro-fleet-stdout-{r.index}", daemon=True,
        ).start()

    def _read_child(self, r: Replica, proc: subprocess.Popen) -> None:
        """Scan the child's stdout for the ``LISTENING host:port``
        announcement, then keep draining so the pipe never fills."""
        announced = r.announced
        stdout = proc.stdout
        if stdout is None:
            return
        try:
            for line in stdout:
                if not announced.is_set() and line.startswith("LISTENING "):
                    try:
                        addr = parse_address(line.split()[1])
                    except (IndexError, ValueError):
                        continue
                    with self._lock:
                        # only adopt the announcement if this proc is
                        # still the slot's current incarnation
                        if r.proc is proc and not self._stop.is_set():
                            r.address = addr
                            r.state = "up"
                    announced.set()
                    obs.gauge("supervisor.replicas_up", self.up_count())
        except (OSError, ValueError):
            pass
        finally:
            try:
                stdout.close()
            except OSError:
                pass

    def _probe(self, r: Replica) -> bool:
        """One liveness probe under its own wire deadline.

        *Any* well-formed response proves the replica is alive and
        dispatching (even a shed — overload is not death); only a wire
        failure or an expired probe deadline counts against it.  The
        deadline rides the frame header, so the gateway itself retires
        the probe if its handler wedges — the prober is never on the
        hook for longer than ``probe_timeout_s``.
        """
        with self._lock:
            addr = r.address
        if addr is None:
            return False
        client = GatewayClient(
            [addr], retries=0,
            attempt_timeout_s=self.probe_timeout_s,
            connect_timeout_s=self.probe_timeout_s,
            seed=self.seed + r.index,
        )
        try:
            resp = client.request(
                {"op": "health"}, deadline_s=self.probe_timeout_s
            )
            return isinstance(resp, dict)
        except (NetworkError, DeadlineError):
            return False
        finally:
            client.close()

    def _manage(self, r: Replica) -> None:
        """Per-replica manager loop: death watch, liveness probes,
        restart with backoff, flap suppression."""
        while not self._stop.wait(self.probe_interval_s):
            with self._lock:
                state, proc = r.state, r.proc
            if state == "parked":
                return
            if proc is None:
                continue
            rc = proc.poll()
            if rc is not None:
                self._restart(r, f"process exited rc={rc}")
                continue
            if not r.announced.is_set():
                if time.monotonic() - r.spawned_at > self.spawn_timeout_s:
                    self._restart(r, "no port announcement")
                continue
            if self._probe(r):
                r.probe_failures = 0
                continue
            r.probe_failures += 1
            obs.count("supervisor.probe_failures")
            if r.probe_failures >= self.probe_failures:
                self._restart(
                    r, f"wedged ({r.probe_failures} probe failures)"
                )

    def _restart(self, r: Replica, reason: str) -> None:
        """Tear down a dead/wedged incarnation and respawn with backoff
        — or park the replica when it flaps past its restart budget."""
        with self._lock:
            r.state = "backoff"
            r.address = None
            proc, r.proc = r.proc, None
        obs.gauge("supervisor.replicas_up", self.up_count())
        if proc is not None:
            try:
                proc.kill()
            except OSError:
                pass
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                pass
        now = time.monotonic()
        with self._lock:
            r.restart_times = [
                t for t in r.restart_times
                if now - t < self.restart_window_s
            ]
            if len(r.restart_times) >= self.restart_budget:
                r.state = "parked"
                r.error = FleetError(
                    "parked",
                    f"replica {r.index} parked: {len(r.restart_times)} "
                    f"restarts within {self.restart_window_s:.0f}s "
                    f"(last cause: {reason})",
                )
                obs.count("supervisor.parked")
                return
            r.restart_times.append(now)
            r.restarts += 1
            self._restart_total += 1
            attempt = len(r.restart_times)
        obs.count("supervisor.restarts")
        with obs.span("supervisor.restart", phase="service",
                      replica=r.index, reason=reason, attempt=attempt):
            delay = backoff_delay(
                attempt,
                base=self.restart_backoff_base,
                cap=self.restart_backoff_cap,
            )
            obs.observe("supervisor.restart_backoff_seconds", delay)
            if self._stop.wait(delay):
                return
            self._spawn(r)
