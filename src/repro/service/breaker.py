"""Per-target circuit breakers for the JIT compilation service.

A target whose materializer keeps faulting (a broken toolchain build, a
poisoned idiom table, a fault-injection campaign...) must not be allowed
to burn a compile attempt — and a retry budget — on every request.  The
classic remedy is a circuit breaker (Nygard, *Release It!*), here with a
**request-count** clock instead of wall time so seeded chaos campaigns
are deterministic:

::

    CLOSED --(failure_threshold consecutive failures)--> OPEN
    OPEN   --(cooldown-th request)---------------------> HALF-OPEN
    HALF-OPEN --probe succeeds--> CLOSED
    HALF-OPEN --probe fails----> OPEN (cooldown restarts)

* **closed** — requests flow normally; consecutive failures are counted,
  any success resets the count.
* **open** — :meth:`CircuitBreaker.allow` returns False: the service
  skips the primary attempt entirely and routes the request straight
  into the degradation cascade.  The request that *crosses* ``cooldown``
  flips the breaker HALF-OPEN and is itself admitted as the probe — so
  exactly ``cooldown - 1`` requests are short-circuited per open cycle,
  not ``cooldown`` (sparse traffic used to need one extra request before
  any probe ran).
* **half-open** — exactly one request is allowed through as a probe; its
  outcome decides the next state.  A probe whose request *evaporates*
  without reaching the target (deadline expiry before the attempt
  starts) must call :meth:`CircuitBreaker.release_probe` so the probe
  slot frees without charging target health — otherwise the breaker
  wedges half-open forever.

The breaker never *raises* by itself — :class:`CircuitOpenError` exists
so the service can classify a response that was short-circuited and then
exhausted the whole cascade.
"""

from __future__ import annotations

import threading

from .. import obs
from ..errors import ReproError

__all__ = ["CircuitBreaker", "CircuitOpenError", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(ReproError):
    """A request was short-circuited because its target's breaker is open
    (and the degradation cascade could not produce a response either)."""

    def __init__(self, target: str, message: str = "") -> None:
        super().__init__(
            f"circuit open for target {target!r}"
            + (f": {message}" if message else "")
        )
        self.target = target


class CircuitBreaker:
    """One breaker (one per target inside the service).

    Thread-safe; all transitions happen under a lock.  ``allow()`` both
    *asks* and *advances the clock*: every denied request counts toward
    the open-state cooldown.
    """

    def __init__(self, failure_threshold: int = 3, cooldown: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = int(cooldown)
        self._lock = threading.Lock()
        self.state = CLOSED
        self._consecutive_failures = 0
        self._denied_since_open = 0
        self._probe_inflight = False
        # lifetime counters for service.stats()
        self.opens = 0
        self.short_circuits = 0
        self.probes = 0

    def allow(self) -> bool:
        """May a primary attempt proceed?  False = short-circuit into the
        degradation cascade."""
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN:
                self._denied_since_open += 1
                if self._denied_since_open >= self.cooldown:
                    # Crossing the cooldown arms *and performs* the
                    # probe: this very request is admitted, so sparse
                    # traffic needs cooldown requests to probe, not
                    # cooldown + 1.
                    self.state = HALF_OPEN
                    self._probe_inflight = True
                    self.probes += 1
                    obs.count("breaker.probes")
                    return True
                self.short_circuits += 1
                obs.count("breaker.short_circuits")
                return False
            # HALF_OPEN: admit exactly one probe at a time.
            if self._probe_inflight:
                self.short_circuits += 1
                obs.count("breaker.short_circuits")
                return False
            self._probe_inflight = True
            self.probes += 1
            obs.count("breaker.probes")
            return True

    def release_probe(self) -> None:
        """Free the probe slot without judging the target.

        For probes whose request never actually exercised the target —
        e.g. a per-request deadline expired before the attempt started.
        Expiry is load, not target health, so neither
        :meth:`record_success` nor :meth:`record_failure` applies; but
        the slot *must* be released or the breaker wedges: every later
        HALF-OPEN ``allow()`` would see ``_probe_inflight`` and
        short-circuit forever.
        """
        with self._lock:
            self._probe_inflight = False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self.state == HALF_OPEN:
                self.state = CLOSED
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            if self.state == HALF_OPEN:
                # Failed probe: back to open, restart the cooldown.
                self.state = OPEN
                self.opens += 1
                obs.count("breaker.opened")
                self._denied_since_open = 0
                self._probe_inflight = False
                return
            self._consecutive_failures += 1
            if (
                self.state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self.state = OPEN
                self.opens += 1
                obs.count("breaker.opened")
                self._denied_since_open = 0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "short_circuits": self.short_circuits,
                "probes": self.probes,
            }
