"""Resilient JIT compilation service (see docs/service.md).

``KernelService`` turns the paper's cheap online stage into a
long-running, multi-threaded compile/run service with a crash-safe
persistent kernel cache, bounded admission + load shedding, per-target
circuit breakers, per-request deadlines, and a strictly ordered
degradation cascade — never a silent wrong answer, never a traceback.

The network front door lives alongside it: ``GatewayServer`` (an
asyncio TCP listener speaking the CRC-framed wire protocol of
:mod:`repro.service.wire`) and ``GatewayClient`` (a blocking client
with retries, failover, and deadline propagation) — see
docs/service.md §8.

Above both sits the self-healing tier: ``FleetSupervisor`` spawns N
gateway replicas as child processes over one shared cache directory,
hash-shards client placement by request shape, probes liveness over the
wire under a probe deadline, and restarts dead or wedged replicas with
jittered backoff and flap suppression (docs/service.md §9).
"""

from .admission import AdmissionQueue, Deadline, DeadlineError, OverloadError
from .breaker import CircuitBreaker, CircuitOpenError
from .cache import (
    CacheError,
    CacheKey,
    KernelCache,
    TOOLCHAIN_VERSION,
    atomic_write,
)
from .client import GatewayClient
from .core import KernelService, ServiceRequest, ServiceResponse
from .farm import CompileFarm, CompileJob, FarmError
from .gateway import DrainError, GatewayServer, ThreadedGateway
from .supervisor import FleetError, FleetSupervisor
from .wire import NetworkError

__all__ = [
    "KernelService",
    "ServiceRequest",
    "ServiceResponse",
    "GatewayServer",
    "ThreadedGateway",
    "GatewayClient",
    "NetworkError",
    "DrainError",
    "FleetSupervisor",
    "FleetError",
    "CompileFarm",
    "CompileJob",
    "FarmError",
    "KernelCache",
    "CacheKey",
    "CacheError",
    "atomic_write",
    "TOOLCHAIN_VERSION",
    "AdmissionQueue",
    "Deadline",
    "DeadlineError",
    "OverloadError",
    "CircuitBreaker",
    "CircuitOpenError",
]
