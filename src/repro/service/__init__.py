"""Resilient JIT compilation service (see docs/service.md).

``KernelService`` turns the paper's cheap online stage into a
long-running, multi-threaded compile/run service with a crash-safe
persistent kernel cache, bounded admission + load shedding, per-target
circuit breakers, per-request deadlines, and a strictly ordered
degradation cascade — never a silent wrong answer, never a traceback.
"""

from .admission import AdmissionQueue, Deadline, DeadlineError, OverloadError
from .breaker import CircuitBreaker, CircuitOpenError
from .cache import (
    CacheError,
    CacheKey,
    KernelCache,
    TOOLCHAIN_VERSION,
    atomic_write,
)
from .core import KernelService, ServiceRequest, ServiceResponse
from .farm import CompileFarm, CompileJob, FarmError

__all__ = [
    "KernelService",
    "ServiceRequest",
    "ServiceResponse",
    "CompileFarm",
    "CompileJob",
    "FarmError",
    "KernelCache",
    "CacheKey",
    "CacheError",
    "atomic_write",
    "TOOLCHAIN_VERSION",
    "AdmissionQueue",
    "Deadline",
    "DeadlineError",
    "OverloadError",
    "CircuitBreaker",
    "CircuitOpenError",
]
