"""The compile farm: a cross-process fabric for the service's JIT work.

PR 5 bought the service single-flight coalescing and scoped locks, and
the benchmark promptly showed the ceiling: with a pure-Python online
compiler every "parallel" compile still serializes on the interpreter
lock, so 8 worker *threads* deliver ~1× aggregate compile throughput on
distinct keys.  The paper's economics — one expensive offline
vectorization, then a cheap JIT *everywhere* — need that JIT step to
scale with cores, not with one GIL.

So the leader stops compiling inline and **dispatches**:

* A persistent pool of worker *processes* is spawned eagerly per
  :class:`CompileFarm` (warm: each worker imports :mod:`repro.jit` and
  builds its :class:`~repro.harness.flows.FlowRunner` up front), so
  dispatch latency is one pickled :class:`CompileJob`, not a fork+import.
* A job carries the request *shape* (kernel, size, flow, target,
  force_scalar) plus the process-stable
  :class:`~repro.service.cache.CacheKey` the leader computed.  The
  worker rebuilds the IR from source, **verifies its canonical CRC
  matches the job's key** (a divergent worker toolchain must fail
  loudly, never poison the cache), compiles, and ships back the packed
  VBK1 envelope — the exact bytes the cache stores, so warm responses
  stay byte-identical to cold ones with no re-serialization.
* Failures come back *classified*: a compile error inside the worker is
  reconstructed in the leader with the same
  :func:`repro.errors.classify` tag (including the ``[injected]``
  marker), so retries, breakers, and the degradation cascade behave
  exactly as they would for an inline compile.
* A worker that dies mid-job (:class:`~repro.faults.WorkerCrash`, real
  segfault, OOM-kill) breaks the pool: the farm hard-kills and rebuilds
  it, then reports a :class:`FarmError` (``worker-crash``) for the job —
  the service reroutes that compile inline, so one dead worker costs one
  compile's latency, never a wrong answer or a torn cache entry.  A job
  that overruns its compile budget (:class:`~repro.faults.WorkerStall`,
  wedged worker) is treated the same way under ``worker-stall``.

The farm also ships the active :class:`~repro.faults.FaultPlan` with
every job, so seeded chaos campaigns reach *inside* the worker
processes: crash/stall faults fire at the dispatch boundary and compile
faults fire in the worker's JIT, deterministically.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context

from .. import faults, obs
from ..errors import FaultInjected, ReproError, classify
from .cache import CacheKey, canonical_crc, pack_kernel

__all__ = ["CompileJob", "CompileFarm", "FarmError"]


class FarmError(ReproError):
    """A compile-farm dispatch that could not produce an artifact.

    Attributes:
        kind: machine-readable tag — ``"worker-crash"`` (the worker
            process died mid-compile), ``"worker-stall"`` (the compile
            budget expired on a wedged worker), ``"key-mismatch"`` (the
            worker's rebuilt IR hashed differently from the job's
            CacheKey — toolchain skew), ``"remote"`` (an unclassified
            error inside the worker), or ``"closed"`` (dispatch after
            shutdown).

    The service treats a FarmError as a *dispatch* failure, not a kernel
    failure: the leader falls back to compiling inline, so farm faults
    degrade throughput, never correctness.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


@dataclass(frozen=True)
class CompileJob:
    """One JIT compile, described portably enough to run in any worker.

    The job ships the request *shape* plus the leader's
    :class:`CacheKey`; the worker rebuilds the IR from kernel source and
    refuses to compile if its canonical CRC disagrees with
    ``key.bytecode_crc`` (see :class:`FarmError` ``key-mismatch``).
    ``runner_kwargs`` reproduce the service's FlowRunner configuration
    (vectorizer overrides change the IR, hence the key); ``plan`` arms
    the worker's fault-injection points for seeded chaos campaigns.
    """

    key: CacheKey
    kernel: str
    size: int | None
    flow: str
    target: str
    force_scalar: bool = False
    runner_kwargs: dict | None = None
    plan: object | None = None


# -- worker-process state ------------------------------------------------------

_W_RUNNERS: dict = {}
_W_INSTANCES: dict = {}


#: how often a farm worker checks that its parent service is alive.
_PARENT_WATCH_INTERVAL_S = 0.5


def _watch_parent() -> None:
    """Worker-side dead-man's switch: exit when the parent dies.

    ``atexit`` and ``close()`` reap workers on every *polite* teardown,
    but a ``kill -9`` of the service process runs neither — and a
    fork-spawned pool worker blocked on its job queue would sit orphaned
    forever (the queue's write end survives in sibling workers, so no
    EOF ever arrives).  A daemon thread polls ``os.getppid()`` instead:
    when the parent dies the worker is reparented (to init or a
    subreaper), the ppid changes, and the worker hard-exits.  This is
    what makes the fleet invariant — *zero leaked farm workers after a
    replica SIGKILL* — true by construction rather than by cleanup.
    """
    parent = os.getppid()

    def watch() -> None:
        while True:
            if os.getppid() != parent:
                os._exit(0)
            time.sleep(_PARENT_WATCH_INTERVAL_S)

    threading.Thread(
        target=watch, name="repro-farm-parent-watch", daemon=True
    ).start()


def _warm_worker() -> None:
    """Pool initializer: pay the import bill at spawn time, not on the
    first dispatched job, and arm the parent-death watchdog."""
    from .. import jit  # noqa: F401  (imported for its side effects)
    from ..harness import flows  # noqa: F401

    _watch_parent()


def _w_runner(runner_kwargs: dict | None):
    from ..harness.flows import FlowRunner

    key = tuple(sorted((runner_kwargs or {}).items(), key=lambda kv: kv[0]))
    key = repr(key)
    runner = _W_RUNNERS.get(key)
    if runner is None:
        runner = _W_RUNNERS[key] = FlowRunner(**(runner_kwargs or {}))
    return runner


def _w_instance(name: str, size):
    from ..kernels import get_kernel

    key = (name, size)
    inst = _W_INSTANCES.get(key)
    if inst is None:
        inst = _W_INSTANCES[key] = get_kernel(name).instantiate(size)
    return inst


def _run_job(job: CompileJob):
    """Execute one compile job inside a worker process.

    Returns ``("ok", envelope_bytes)`` or ``("error", tag, injected,
    message)`` — errors are *described*, not raised, because a pickled
    exception round-trip loses multi-arg constructors; the leader
    reconstructs an exception that classifies identically.
    """
    from ..harness.flows import FLOWS
    from ..ir import print_function
    from ..targets import get_target

    if job.plan is not None:
        faults.install(job.plan)
    else:
        faults.uninstall()
    fault = faults.worker_fault(job.kernel, job.flow)
    if fault is not None:
        if isinstance(fault, faults.WorkerCrash):
            import os

            os._exit(fault.exit_code)  # simulated segfault: no reply
        if isinstance(fault, faults.WorkerStall):
            time.sleep(fault.seconds)
    try:
        form, jit_cls = FLOWS[job.flow]
        runner = _w_runner(job.runner_kwargs)
        inst = _w_instance(job.kernel, job.size)
        target = get_target(job.target)
        if form == "scalar":
            ir = runner.scalar_ir(inst)
        elif form == "split":
            ir = runner.split_ir(inst)
        else:
            ir = runner.native_ir(inst, target)
        crc = canonical_crc(print_function(ir).encode())
        if crc != job.key.bytecode_crc:
            raise FarmError(
                "key-mismatch",
                f"worker IR for {job.kernel}/{job.flow} hashed to "
                f"0x{crc:08x}, leader keyed 0x{job.key.bytecode_crc:08x} "
                f"— toolchain skew, refusing to poison the cache",
            )
        ck = jit_cls().compile(ir, target, force_scalar=job.force_scalar)
        return ("ok", pack_kernel(ck))
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        return (
            "error",
            classify(exc),
            isinstance(exc, FaultInjected),
            f"{type(exc).__name__}: {exc}",
        )


def _reraise_remote(tag: str, injected: bool, message: str) -> None:
    """Rebuild a worker-side failure so :func:`classify` agrees.

    The base class named by ``tag`` is resolved from the
    :mod:`repro.errors` catalogue; injected faults get a dynamic
    ``(base, FaultInjected)`` hybrid so the ``[injected]`` marker
    survives the process boundary.  Unclassified worker errors become
    ``FarmError`` (``remote``) — a farm problem by definition.
    """
    from .. import errors

    base = tag.split("[", 1)[0]
    if base == "FarmError":
        cls: type = FarmError
    elif base in errors._HOMES:
        cls = getattr(errors, base)
    else:
        raise FarmError("remote", f"unclassified worker failure: {message}")
    if injected and not issubclass(cls, FaultInjected):
        cls = type(f"Remote{base}", (cls, FaultInjected), {})
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    if isinstance(exc, FarmError):
        exc.kind = "remote"
    raise exc


class CompileFarm:
    """A persistent, rebuildable pool of compile-worker processes.

    Spawned **eagerly** (workers fork and warm at construction, before
    the service's request threads exist — forking a threaded process is
    the classic deadlock recipe) and owned by one
    :class:`~repro.service.core.KernelService`.  ``compile`` dispatches
    one :class:`CompileJob` and blocks the calling leader thread — which
    holds no lock and shares the GIL freely — until the worker replies,
    so N leader threads drive N workers compiling on N cores.

    Crash/stall recovery keeps the farm available: a broken pool is
    hard-killed and respawned (``rebuilds`` counter) and the failed job
    is reported as a classified :class:`FarmError` for the service to
    reroute inline.  ``budget_s`` is the per-dispatch compile budget the
    watchdog enforces; ``None`` disables it (trusting workers never to
    wedge, which chaos campaigns demonstrate is optimism).
    """

    def __init__(self, workers: int, budget_s: float | None = 30.0) -> None:
        self.workers = max(1, int(workers))
        self.budget_s = budget_s
        self._ctx = get_context("fork")
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        self.dispatched = 0
        self.completed = 0
        self.crashes = 0
        self.stalls = 0
        self.rebuilds = 0
        self._spawn()
        # A farm that outlives its owner must not outlive the process:
        # if the service is torn down by KeyboardInterrupt/SIGTERM before
        # close() runs, this hook hard-kills the workers at interpreter
        # exit instead of leaving orphaned compile processes behind.
        atexit.register(self._kill)

    # -- pool lifecycle --------------------------------------------------------

    def _spawn(self) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._ctx,
            initializer=_warm_worker,
        )
        # Force the workers into existence now (ProcessPoolExecutor
        # spawns lazily on first submit): map a no-op over the pool.
        for fut in [
            self._pool.submit(_warm_probe) for _ in range(self.workers)
        ]:
            try:
                fut.result(timeout=60.0)
            except Exception:
                break  # degraded spawn; first dispatch will surface it

    def _kill(self) -> None:
        """Hard-kill the pool: stuck or dead workers cannot be joined."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        for p in procs:
            try:
                p.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for p in procs:
            try:
                p.join(timeout=5.0)
            except Exception:
                pass

    def _rebuild(self) -> None:
        self._kill()
        if not self._closed:
            self.rebuilds += 1
            obs.count("farm.rebuilds")
            self._spawn()

    def close(self) -> None:
        self._closed = True
        self._kill()
        atexit.unregister(self._kill)

    def worker_pids(self) -> list[int]:
        """PIDs of the current worker processes (for leak auditing).

        The gateway's ``stats`` verb and the chaos campaign's
        leaked-workers invariant both read this: after ``close()`` every
        PID listed here must be dead.
        """
        pool = self._pool
        if pool is None:
            return []
        return sorted(
            p.pid for p in getattr(pool, "_processes", {}).values()
            if p.pid is not None
        )

    # -- dispatch --------------------------------------------------------------

    def compile(self, job: CompileJob, budget_s: float | None = None):
        """Compile ``job`` in a worker; returns the VBK1 envelope bytes.

        Raises a reconstructed classified error when the *compile*
        failed (same tag the inline path would raise), or
        :class:`FarmError` when the *dispatch* failed — worker crash,
        budget overrun (``budget_s`` overrides the farm default for this
        call), or a closed farm.
        """
        if self._closed or self._pool is None:
            raise FarmError("closed", "compile farm is shut down")
        budget = self.budget_s if budget_s is None else budget_s
        self.dispatched += 1
        obs.count("farm.dispatched")
        start = time.perf_counter()
        with obs.span(
            "service.farm.dispatch", phase="service", kernel=job.kernel,
            flow=job.flow, target=job.target, workers=self.workers,
        ) as sp:
            try:
                fut = self._pool.submit(_run_job, job)
            except (RuntimeError, BrokenProcessPool) as exc:
                sp.set(outcome="worker-crash")
                self.crashes += 1
                obs.count("farm.crashes")
                self._rebuild()
                raise FarmError(
                    "worker-crash", f"pool rejected dispatch: {exc}"
                ) from exc
            try:
                reply = fut.result(timeout=budget)
            except FutureTimeoutError:
                sp.set(outcome="worker-stall")
                self.stalls += 1
                obs.count("farm.stalls")
                self._rebuild()
                raise FarmError(
                    "worker-stall",
                    f"{job.kernel}/{job.flow} on {job.target}: compile "
                    f"budget of {budget}s expired; worker killed",
                ) from None
            except (BrokenProcessPool, OSError, EOFError) as exc:
                sp.set(outcome="worker-crash")
                self.crashes += 1
                obs.count("farm.crashes")
                self._rebuild()
                raise FarmError(
                    "worker-crash",
                    f"{job.kernel}/{job.flow} on {job.target}: worker died "
                    f"mid-compile ({type(exc).__name__})",
                ) from exc
            elapsed = time.perf_counter() - start
            if reply[0] == "ok":
                self.completed += 1
                obs.count("farm.completed")
                obs.observe("farm.dispatch_seconds", elapsed)
                sp.set(outcome="ok", dispatch_seconds=elapsed)
                return reply[1]
            _status, tag, injected, message = reply
            sp.set(outcome="error", error=tag)
            obs.count("farm.remote_errors")
            _reraise_remote(tag, injected, message)

    # -- surfaces --------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "budget_s": self.budget_s,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "crashes": self.crashes,
            "stalls": self.stalls,
            "rebuilds": self.rebuilds,
        }


def _warm_probe() -> bool:
    """No-op submitted at spawn to force worker creation and verify the
    warm imports succeeded."""
    return True
