"""Bounded admission and per-request deadlines for the service.

A long-running compile service meeting "heavy traffic from millions of
users" (ROADMAP) has one non-negotiable property: *it sheds load instead
of falling over*.  Admission is a bounded counter — a request either gets
a slot or is rejected immediately with a classified
:class:`OverloadError` (cheap for the caller to retry elsewhere), never
parked in an unbounded queue that converts overload into latency and
latency into memory exhaustion.

Deadlines are plain data (:class:`Deadline`) carried by the request and
*propagated*: into retry loops (no retry is started that cannot finish),
and into the parallel sweep harness (the remaining budget becomes the
per-cell timeout of :func:`repro.harness.parallel.run_cells`).  An
expired deadline is a classified :class:`DeadlineError`.
"""

from __future__ import annotations

import threading
import time

from .. import obs
from ..errors import ReproError

__all__ = ["AdmissionQueue", "Deadline", "DeadlineError", "OverloadError"]


class OverloadError(ReproError):
    """The admission queue is full: the request was shed, not queued."""

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"service overloaded: {depth} requests in flight "
            f"(admission limit {limit}); request shed"
        )
        self.depth = depth
        self.limit = limit


class DeadlineError(ReproError):
    """A request's deadline expired before (or while) it was served."""

    def __init__(self, message: str) -> None:
        super().__init__(message)


class Deadline:
    """A monotonic-clock deadline; ``None`` budget = no deadline.

    The clock is injectable so unit tests and seeded campaigns can drive
    expiry deterministically instead of sleeping.
    """

    def __init__(self, budget_s: float | None, clock=time.monotonic) -> None:
        self.clock = clock
        self.budget_s = budget_s
        self._expires = None if budget_s is None else clock() + float(budget_s)

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0.0), or None for no deadline."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - self.clock())

    def expired(self) -> bool:
        return self._expires is not None and self.clock() >= self._expires

    def check(self, what: str) -> None:
        """Raise a classified :class:`DeadlineError` when expired."""
        if self.expired():
            raise DeadlineError(
                f"deadline of {self.budget_s:.3f}s expired {what}"
            )

    def __repr__(self) -> str:
        rem = self.remaining()
        return f"Deadline(budget={self.budget_s}, remaining={rem})"


class AdmissionQueue:
    """A bounded in-flight counter with load-shedding.

    Use as a context manager per request::

        with admission.admit():     # raises OverloadError when full
            ... serve ...

    ``depth`` is the current number of admitted requests, ``peak_depth``
    the high-water mark, ``shed`` the number of rejected admissions.
    """

    def __init__(self, limit: int = 32) -> None:
        if limit < 1:
            raise ValueError("admission limit must be >= 1")
        self.limit = int(limit)
        self._lock = threading.Lock()
        self.depth = 0
        self.peak_depth = 0
        self.admitted = 0
        self.shed = 0
        #: requests answered *without* an admission slot because a
        #: gateway flight group merged them into one admitted request.
        self.batched = 0

    class _Slot:
        def __init__(self, queue: "AdmissionQueue") -> None:
            self.queue = queue

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            with self.queue._lock:
                self.queue.depth -= 1
                obs.gauge("admission.depth", self.queue.depth)
            return False

    def admit(self) -> "AdmissionQueue._Slot":
        with self._lock:
            if self.depth >= self.limit:
                self.shed += 1
                obs.count("admission.shed")
                raise OverloadError(self.depth, self.limit)
            self.depth += 1
            self.admitted += 1
            self.peak_depth = max(self.peak_depth, self.depth)
            obs.count("admission.admitted")
            obs.gauge("admission.depth", self.depth)
        return self._Slot(self)

    def note_batched(self, n: int) -> None:
        """Record ``n`` requests that rode a flight group's single slot.

        Pre-admission batching (the gateway) answers N same-shape
        requests out of one admitted request; the N-1 riders never call
        :meth:`admit`, so without this note the admission ledger would
        silently under-count the traffic the service actually absorbed.
        """
        if n <= 0:
            return
        with self._lock:
            self.batched += int(n)
        obs.count("admission.batched", int(n))

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": self.depth,
                "limit": self.limit,
                "peak_depth": self.peak_depth,
                "admitted": self.admitted,
                "shed": self.shed,
                "batched": self.batched,
            }
