"""ASCII report formatting for the experiment drivers.

These renderers produce the figure/table layouts the paper reports, used by
``python -m repro.harness`` and by EXPERIMENTS.md generation.
"""

from __future__ import annotations

__all__ = [
    "format_figure5",
    "format_figure6",
    "format_table3",
    "format_timings",
    "bar",
    "table",
]


def bar(value: float, scale: float = 20.0, maximum: float = 3.0) -> str:
    """A crude ASCII bar for figure-style rows."""
    filled = int(min(value, maximum) / maximum * scale)
    return "#" * filled


def table(headers: list[str], rows: list[tuple], floatfmt: str = "{:.2f}") -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered = [
        [floatfmt.format(c) if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    out = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_figure5(result) -> str:
    """Render a Figure5Result the way the paper plots it."""
    lines = [
        f"Figure 5 ({result.target.upper()}): Mono JIT normalized "
        "vectorization impact, (A/C)/(E/F), higher is better",
        "",
    ]
    rows = [(k, v, bar(v)) for k, v in result.rows]
    lines.append(table(["kernel", "impact", ""], rows))
    lines.append("")
    lines.append(f"arithmetic mean: {result.arith_mean:.2f}")
    return "\n".join(lines)


def format_figure6(result) -> str:
    """Render a Figure6Result (normalized times, lower is better)."""
    lines = [
        f"Figure 6 ({result.target.upper()}): split-vectorized execution "
        "time normalized to native (D/F), lower is better",
        "",
    ]
    rows = [(k, v, bar(v, maximum=2.0)) for k, v in result.rows]
    lines.append(table(["kernel", "normalized", ""], rows))
    lines.append("")
    lines.append(f"harmonic mean: {result.harmonic_mean:.2f}")
    return "\n".join(lines)


def format_timings(cell_seconds, title: str = "sweep timings") -> str:
    """Summarize per-cell wall-clock stats from an experiment sweep.

    ``cell_seconds`` is the ``(kernel, flow, seconds)`` list attached to a
    figure result.  Timings are machine- and job-count-dependent, so this
    is deliberately *not* part of the deterministic report body; callers
    print it separately (or to stderr).
    """
    if not cell_seconds:
        return f"{title}: no cells"
    per_flow: dict[str, float] = {}
    for _kernel, flow, seconds in cell_seconds:
        per_flow[flow] = per_flow.get(flow, 0.0) + seconds
    total = sum(per_flow.values())
    slowest = max(cell_seconds, key=lambda c: c[2])
    lines = [
        f"{title}: {len(cell_seconds)} cells, {total:.2f}s wall-clock "
        "(sum of per-cell compile+run)",
        table(
            ["flow", "seconds", "share"],
            [
                (flow, secs, f"{secs / total * 100:.0f}%")
                for flow, secs in sorted(per_flow.items())
            ],
        ),
        f"slowest cell: {slowest[0]} via {slowest[1]} ({slowest[2]:.2f}s)",
    ]
    return "\n".join(lines)


def format_table3(result) -> str:
    """Render the Table 3 rows (IACA cycles per iteration)."""
    lines = [
        "Table 3: IACA-style AVX simulation, cycles per vector-loop "
        "iteration",
        "",
        table(
            ["kernel", "native", "split"],
            [(k, str(n), str(s)) for k, n, s in result.rows],
        ),
    ]
    return "\n".join(lines)
