"""Experiment harness: the Figure 4 flows and per-figure/table drivers."""

from .experiments import (
    TABLE3_KERNELS,
    Figure5Result,
    Figure6Result,
    Table3Result,
    ablation_alignment,
    ablation_dependence_hints,
    ablation_realign_reuse,
    compile_time_stats,
    figure5,
    figure6,
    scalarization_overhead,
    table3,
)
from .flows import FLOWS, FlowResult, FlowRunner
from .parallel import Cell, CellError, CellResult, run_cells
from .report import format_figure5, format_figure6, format_table3, format_timings

__all__ = [
    "FlowRunner",
    "FlowResult",
    "FLOWS",
    "Cell",
    "CellError",
    "CellResult",
    "run_cells",
    "figure5",
    "figure6",
    "table3",
    "TABLE3_KERNELS",
    "Figure5Result",
    "Figure6Result",
    "Table3Result",
    "ablation_alignment",
    "ablation_realign_reuse",
    "ablation_dependence_hints",
    "compile_time_stats",
    "scalarization_overhead",
    "format_figure5",
    "format_figure6",
    "format_table3",
    "format_timings",
]
