"""Seeded chaos campaigns over the fail-soft pipeline.

A campaign draws ``n_faults`` faults from a seeded RNG, injects each into
the matching layer of the toolchain, and classifies the observable
outcome.  The **chaos invariant** asserted by :meth:`ChaosReport.ok`:

    every injected fault leads to a *correct* result (possibly via the
    scalar-fallback degradation path) or a *classified* trap — never a
    silent wrong answer and never an unclassified traceback.

Layers and their pass criteria:

========================= ==================================================
layer                     passing outcomes
========================= ==================================================
``bytecode``              bit-flipped container rejected by a classified
                          :class:`~repro.bytecode.writer.FormatError`
                          before any IR reaches the JIT
``jit-lowering``          forced idiom-lowering failure degrades the loop
                          group to scalar; run still checks against numpy
``jit-materialize``       whole-function materialization failure triggers
                          the force-scalar compile retry; run still checks
``vm-mem``                injected memory fault raises the *identical*
                          classified VMError from both execution engines
``vm-misalign``           skewed array bases either still check or raise a
                          classified VMError (alignment trap)
``harness``               crashed/stalled workers are quarantined; every
                          other cell of the sweep completes and checks
========================= ==================================================

Failing outcomes — ``silent-wrong`` (corruption accepted), ``wrong-answer``
(fallback produced values that fail the numpy check), ``unclassified-trap``
(an exception outside the :mod:`repro.errors` taxonomy), and
``parity-mismatch`` (the two VM engines disagree on a trap) — make the
campaign fail.

Campaigns are deterministic in ``seed`` and run single-process (the
``harness`` layer, which needs real worker processes, is opt-in via
``include_harness``).

**Service soak profile** (:func:`run_service_campaign`, CLI ``repro chaos
--profile service``): the same invariant asserted against a *live*
:class:`~repro.service.KernelService` — one long-running service absorbs
hundreds of seeded faults (on-disk cache corruption, torn cache writes,
JIT faults, transient and persistent VM faults, overload bursts, expired
deadlines) while every response stays well-formed: correct answers are
byte-identical to a cold no-cache run, degraded/stale responses carry
their :class:`~repro.jit.materialize.DegradationEvent` chain, rejections
carry a closed-taxonomy tag, and corrupt/torn cache entries are
quarantined and recompiled, never served.

**Gateway soak profile** (:func:`run_gateway_campaign`, CLI ``repro chaos
--profile gateway``): the invariant moves out to the *network front
door* — a live :class:`~repro.service.gateway.ThreadedGateway` fronting
a farm-backed service absorbs seeded wire-level hostility (garbage
frames, truncated frames, slowloris drips, connections torn mid-response
by :class:`~repro.faults.ConnDrop`) alongside overload bursts, expired
wire deadlines, and in-service JIT/VM faults, while three gateway-grade
guarantees hold: **zero torn responses** (every answer a client accepts
reproduces the cold reference bit-for-bit; every partial frame is
classified), **zero unclassified errors** (every rejection carries a
closed-taxonomy tag), and **zero leaked farm workers** (after the drain
epilogue and service close, no compile worker PID survives).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from .. import faults
from ..bytecode import encode_module
from ..errors import classify, is_classified
from ..frontend import compile_source
from ..kernels import get_kernel
from ..machine.registry import engine_names
from ..vectorizer import split_config, vectorize_module
from .flows import CheckError, FlowRunner

__all__ = [
    "ChaosTrial",
    "ChaosReport",
    "run_campaign",
    "run_service_campaign",
    "run_gateway_campaign",
    "LAYERS",
    "SERVICE_LAYERS",
    "FARM_LAYERS",
    "GATEWAY_LAYERS",
]

#: injection layers with their campaign weights.
LAYERS = ("bytecode", "jit-lowering", "jit-materialize", "vm-mem",
          "vm-misalign")
_WEIGHTS = (40, 20, 5, 20, 15)

#: failing outcome tags (anything else passes).  ``torn-response`` (a
#: partial or corrupted wire frame accepted as an answer) and
#: ``leaked-workers`` (farm processes outliving their service) belong to
#: the gateway profile's invariant; ``torn-cache`` (a shared cache entry
#: that fails envelope verification after a replica SIGKILL) and
#: ``stale-lead`` (a dead leader's marker outliving its TTL unreclaimed)
#: belong to the fleet profile's.
FAILING = ("silent-wrong", "wrong-answer", "unclassified-trap",
           "parity-mismatch", "torn-response", "leaked-workers",
           "torn-cache", "stale-lead")

_DEFAULT_KERNELS = ("saxpy_fp", "dscal_fp", "interp_fp", "sfir_fp")
_IDIOMS = ("*", "realign_load", "vstore", "reduc_plus", "init_uniform")
_TARGETS = ("sse", "altivec", "neon")
_FLOWS = ("split_vec_mono", "split_vec_gcc4cli")


@dataclass(frozen=True)
class ChaosTrial:
    """One injected fault and its observed outcome."""

    layer: str
    kernel: str
    fault: str
    outcome: str  # trapped | degraded-correct | correct | quarantined | FAILING
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome not in FAILING


@dataclass
class ChaosReport:
    """The outcome census of one campaign."""

    seed: int
    trials: list = field(default_factory=list)
    #: final ``KernelService.stats()`` snapshot (service profile only).
    service_stats: dict | None = None

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.trials)

    @property
    def failures(self) -> list:
        return [t for t in self.trials if not t.ok]

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for t in self.trials:
            out[t.outcome] = out.get(t.outcome, 0) + 1
        return dict(sorted(out.items()))

    def summary(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed}, "
            f"{len(self.trials)} faults injected"
        ]
        for outcome, n in self.counts().items():
            flag = "  !!" if outcome in FAILING else ""
            lines.append(f"  {outcome:18s} {n:4d}{flag}")
        lines.append("invariant " + ("HELD" if self.ok else "VIOLATED"))
        return "\n".join(lines)


def _encoded(kernel: str, size: int, cache: dict) -> bytes:
    blob = cache.get(kernel)
    if blob is None:
        inst = get_kernel(kernel).instantiate(size)
        module = compile_source(inst.source, inst.name)
        blob = cache[kernel] = encode_module(
            vectorize_module(module, split_config())
        )
    return blob


def _classified_outcome(exc: Exception) -> ChaosTrial | tuple[str, str]:
    if isinstance(exc, CheckError):
        return ("wrong-answer", str(exc))
    if is_classified(exc):
        return ("trapped", classify(exc))
    return ("unclassified-trap", f"{type(exc).__name__}: {exc}")


def _trial_bytecode(kernel: str, size: int, rng, cache) -> ChaosTrial:
    from ..bytecode import decode_module

    data = _encoded(kernel, size, cache)
    flip = faults.BitFlip(offset=rng.randrange(len(data)),
                          bit=rng.randrange(8))
    corrupted = faults.FaultPlan([flip]).corrupt(data)
    try:
        decode_module(corrupted)
    except Exception as exc:
        outcome, detail = _classified_outcome(exc)
        return ChaosTrial("bytecode", kernel, repr(flip), outcome, detail)
    return ChaosTrial(
        "bytecode", kernel, repr(flip), "silent-wrong",
        "corrupted container decoded without a trap",
    )


def _run_checked(kernel: str, size: int, flow: str, target: str,
                 plan, **runner_kwargs):
    """(FlowResult, CompiledKernel) under an installed plan."""
    from ..targets import get_target

    runner = FlowRunner(**runner_kwargs)
    inst = get_kernel(kernel).instantiate(size)
    with faults.injected(plan):
        result = runner.run(inst, flow, target)
        ck = runner.compiled(inst, flow, get_target(target))
    return result, ck


def _trial_jit(kernel: str, size: int, rng, materialize: bool) -> ChaosTrial:
    flow = rng.choice(_FLOWS)
    target = rng.choice(_TARGETS)
    if materialize:
        fault = faults.MaterializeFault(target="*")
        layer = "jit-materialize"
    else:
        fault = faults.LoweringFault(idiom=rng.choice(_IDIOMS), target="*")
        layer = "jit-lowering"
    plan = faults.FaultPlan([fault])
    try:
        result, ck = _run_checked(kernel, size, flow, target, plan)
    except Exception as exc:
        outcome, detail = _classified_outcome(exc)
        return ChaosTrial(layer, kernel, repr(fault), outcome, detail)
    if not result.checked:
        return ChaosTrial(layer, kernel, repr(fault), "silent-wrong",
                          "result was not checked")
    outcome = "degraded-correct" if ck.degraded else "correct"
    detail = "; ".join(f"{e.cause}" for e in ck.events)
    return ChaosTrial(layer, kernel, repr(fault), outcome, detail)


def _trial_vm_mem(kernel: str, size: int, rng) -> ChaosTrial:
    flow = rng.choice(_FLOWS)
    target = rng.choice(_TARGETS)
    after = rng.randrange(1, 80)
    fault = faults.MemFault(after=after)
    observed = {}
    for engine in engine_names():
        plan = faults.FaultPlan([fault])
        try:
            result, _ck = _run_checked(
                kernel, size, flow, target, plan, engine=engine
            )
            observed[engine] = (
                ("correct", "") if result.checked
                else ("silent-wrong", "unchecked")
            )
        except Exception as exc:
            observed[engine] = _classified_outcome(exc) + (str(exc),)
    a, b = observed["threaded"], observed["reference"]
    if a != b:
        return ChaosTrial(
            "vm-mem", kernel, repr(fault), "parity-mismatch",
            f"threaded={a} reference={b}",
        )
    outcome, detail = a[0], a[1]
    return ChaosTrial("vm-mem", kernel, repr(fault), outcome, detail)


def _trial_vm_misalign(kernel: str, size: int, rng) -> ChaosTrial:
    flow = rng.choice(_FLOWS)
    target = rng.choice(_TARGETS)
    mis = rng.choice((1, 2, 3, 4, 5, 7, 8, 12))
    fault = faults.MisalignFault(misalign=mis)
    plan = faults.FaultPlan([fault])
    try:
        result, _ck = _run_checked(
            kernel, size, flow, target, plan,
            base_misalign=plan.misalign() or 0,
        )
    except Exception as exc:
        outcome, detail = _classified_outcome(exc)
        return ChaosTrial("vm-misalign", kernel, repr(fault), outcome, detail)
    if not result.checked:
        return ChaosTrial("vm-misalign", kernel, repr(fault), "silent-wrong",
                          "result was not checked")
    return ChaosTrial("vm-misalign", kernel, repr(fault), "correct", "")


def _trials_harness(kernels, size: int, rng, timeout: float) -> list:
    """One crashed and one stalled sweep (worker processes required)."""
    from .parallel import Cell, run_cells

    out = []
    cells = [
        Cell(k, flow, "sse", size) for k in kernels for flow in _FLOWS
    ]
    for fault in (
        faults.WorkerCrash(kernel=rng.choice(kernels)),
        faults.WorkerStall(kernel=rng.choice(kernels), seconds=3600.0),
    ):
        plan = faults.FaultPlan([fault])
        results = run_cells(
            cells, jobs=2, fault_plan=plan, timeout=timeout, retries=1
        )
        bad = [r for r in results if not r.ok]
        wrongly_ok = [r for r in bad if r.cell.kernel != fault.kernel]
        missing = len(results) != len(cells)
        if wrongly_ok or missing or not bad:
            out.append(ChaosTrial(
                "harness", fault.kernel, repr(fault), "silent-wrong",
                f"quarantined={[(r.cell.kernel, r.cell.flow) for r in bad]} "
                f"of {len(results)}/{len(cells)} results",
            ))
        else:
            out.append(ChaosTrial(
                "harness", fault.kernel, repr(fault), "quarantined",
                f"{len(bad)} cell(s) quarantined "
                f"({bad[0].error_kind}), {len(results) - len(bad)} completed",
            ))
    return out


def run_campaign(
    n_faults: int = 200,
    seed: int = 0,
    kernels=_DEFAULT_KERNELS,
    size: int = 16,
    include_harness: bool = False,
    harness_timeout: float = 10.0,
) -> ChaosReport:
    """Inject ``n_faults`` seeded faults; returns the outcome census.

    Deterministic in ``seed``.  ``include_harness`` adds two process-pool
    sweeps (a worker crash and a worker stall) on top of ``n_faults``.
    """
    rng = random.Random(seed)
    kernels = tuple(kernels)
    report = ChaosReport(seed=seed)
    enc_cache: dict = {}
    for _ in range(int(n_faults)):
        layer = rng.choices(LAYERS, weights=_WEIGHTS)[0]
        kernel = rng.choice(kernels)
        if layer == "bytecode":
            t = _trial_bytecode(kernel, size, rng, enc_cache)
        elif layer == "jit-lowering":
            t = _trial_jit(kernel, size, rng, materialize=False)
        elif layer == "jit-materialize":
            t = _trial_jit(kernel, size, rng, materialize=True)
        elif layer == "vm-mem":
            t = _trial_vm_mem(kernel, size, rng)
        else:
            t = _trial_vm_misalign(kernel, size, rng)
        report.trials.append(t)
    if include_harness:
        report.trials.extend(
            _trials_harness(kernels, size, rng, harness_timeout)
        )
    return report


# -- the service soak profile -------------------------------------------------

#: service-profile fault layers with their campaign weights.
SERVICE_LAYERS = (
    "svc-plain", "svc-cache-corrupt", "svc-torn-write", "svc-jit-lowering",
    "svc-jit-materialize", "svc-vm-transient", "svc-vm-persistent",
    "svc-overload", "svc-deadline",
)
_SERVICE_WEIGHTS = (20, 18, 8, 12, 8, 12, 12, 5, 5)

#: extra layers mixed in when the soak runs with a compile farm
#: (``farm_workers > 0``); kept separate so the default campaign's
#: seeded fault stream — and every pinned-seed determinism test — is
#: unchanged by the farm's existence.
FARM_LAYERS = ("svc-farm-crash", "svc-farm-stall", "svc-stale-marker")
_FARM_WEIGHTS = (6, 4, 5)


class _ServiceSoak:
    """State of one service soak campaign: a live service, a cold
    no-cache reference runner, and per-trial validators."""

    def __init__(self, seed: int, size: int, cache_dir: str,
                 farm_workers: int = 0) -> None:
        from ..service import KernelService

        self.rng = random.Random(seed)
        self.seed = seed
        self.size = size
        self.cache_dir = cache_dir
        # backoff_base=0 keeps the soak fast and deterministic (no real
        # sleeps); tight breaker knobs make open/half-open/closed cycles
        # happen organically within a 200-fault campaign.  The tight
        # farm budget keeps the stall-watchdog trials sub-second.
        self.svc = KernelService(
            cache_dir=cache_dir, seed=seed, retries=1,
            backoff_base=0.0, breaker_threshold=2, breaker_cooldown=4,
            queue_limit=16, workers=2,
            farm_workers=farm_workers, farm_budget_s=0.4,
        )
        self.ref_runner = FlowRunner()
        self._refs: dict = {}
        self._torn = 0

    def close(self) -> None:
        self.svc.close()

    def _request(self, kernel: str, size: int | None = None, **over):
        from ..service import ServiceRequest

        return ServiceRequest(
            kernel,
            flow=over.get("flow", self.rng.choice(_FLOWS)),
            target=over.get("target", self.rng.choice(_TARGETS)),
            size=self.size if size is None else size,
            deadline_s=over.get("deadline_s"),
        )

    def reference(self, kernel: str, flow: str, target: str, size: int):
        """Cold no-cache (cycles, value) for one shape, computed outside
        any fault extent."""
        key = (kernel, flow, target, size)
        if key not in self._refs:
            inst = get_kernel(kernel).instantiate(size)
            r = self.ref_runner.run(inst, flow, target)
            self._refs[key] = (r.cycles, r.value)
        return self._refs[key]

    def judge(self, layer: str, fault: str, req, resp) -> ChaosTrial:
        """Classify a ServiceResponse against the fail-soft invariant."""
        kernel = req.kernel
        if resp.error is not None and resp.error.startswith("unclassified"):
            return ChaosTrial(layer, kernel, fault, "unclassified-trap",
                              resp.error)
        if resp.result is not None:
            if not resp.result.checked and resp.status != "stale":
                return ChaosTrial(layer, kernel, fault, "silent-wrong",
                                  "result served without checking")
            if resp.status == "ok":
                cycles, value = self.reference(
                    kernel, resp.result.flow, resp.result.target, req.size
                )
                if resp.result.cycles != cycles or resp.result.value != value:
                    return ChaosTrial(
                        layer, kernel, fault, "wrong-answer",
                        f"cycles {resp.result.cycles} vs cold {cycles}",
                    )
                return ChaosTrial(layer, kernel, fault, "correct",
                                  "warm-cache" if resp.from_cache else "")
            if resp.status == "stale":
                if not resp.events:
                    return ChaosTrial(layer, kernel, fault, "silent-wrong",
                                      "stale response without event chain")
                return ChaosTrial(layer, kernel, fault, "served-stale",
                                  "; ".join(e.cause for e in resp.events))
            # degraded
            if not resp.events:
                return ChaosTrial(layer, kernel, fault, "silent-wrong",
                                  "degraded response without event chain")
            return ChaosTrial(layer, kernel, fault, "degraded-correct",
                              "; ".join(e.cause for e in resp.events))
        if resp.status == "shed":
            return ChaosTrial(layer, kernel, fault, "shed", resp.error or "")
        if resp.status == "rejected":
            if resp.error is None:
                return ChaosTrial(layer, kernel, fault, "silent-wrong",
                                  "rejected without a classified tag")
            return ChaosTrial(layer, kernel, fault, "trapped", resp.error)
        return ChaosTrial(layer, kernel, fault, "silent-wrong",
                          f"unknown response status {resp.status!r}")

    # -- trial kinds ----------------------------------------------------------

    def plain(self, kernel: str) -> ChaosTrial:
        req = self._request(kernel)
        return self.judge("svc-plain", "none", req, self.svc.handle(req))

    def cache_corrupt(self, kernel: str) -> ChaosTrial:
        """Flip one byte of every on-disk entry, then serve: corrupted
        entries must be quarantined and recompiled, never served."""
        import os

        names = [
            n for n in os.listdir(self.cache_dir) if n.endswith(".vbk")
        ]
        for name in names:
            path = os.path.join(self.cache_dir, name)
            with open(path, "rb") as f:
                data = bytearray(f.read())
            if not data:
                continue
            off = self.rng.randrange(len(data))
            data[off] ^= 1 << self.rng.randrange(8)
            with open(path, "wb") as f:
                f.write(bytes(data))
        before = self.svc.cache.quarantined
        req = self._request(kernel)
        resp = self.svc.handle(req)
        if names and resp.from_cache:
            return ChaosTrial(
                "svc-cache-corrupt", kernel, "bitflip-all-entries",
                "silent-wrong", "a corrupted cache entry was served",
            )
        trial = self.judge("svc-cache-corrupt", "bitflip-all-entries",
                           req, resp)
        if not trial.ok:
            return trial
        healed = self.svc.cache.quarantined > before
        # Self-healing: the same request is now re-servable (recompiled,
        # overwritten) with identical results.
        resp2 = self.svc.handle(req)
        trial2 = self.judge("svc-cache-corrupt", "bitflip-all-entries",
                            req, resp2)
        if not trial2.ok:
            return trial2
        if (
            resp.result is not None and resp2.result is not None
            and resp2.result.value != resp.result.value
        ):
            return ChaosTrial(
                "svc-cache-corrupt", kernel, "bitflip-all-entries",
                "wrong-answer", "recompiled entry changed the answer",
            )
        return ChaosTrial(
            "svc-cache-corrupt", kernel, "bitflip-all-entries",
            "healed" if healed else trial.outcome,
            f"quarantined {self.svc.cache.quarantined - before} entries",
        )

    def torn_write(self, kernel: str) -> ChaosTrial:
        """Kill the (simulated) service mid-cache-write: no entry under
        the final name, fresh services recompile."""
        from ..service import KernelService

        self._torn += 1
        req = self._request(kernel, flow="split_vec_gcc4cli", target="sse")
        # Drop any existing entry so the request compiles and *puts* — the
        # put is where the torn write fires.  (The cache key is a function
        # of the bytecode, so a warm entry would otherwise absorb it.)
        self.svc.evict(kernel, req.flow, req.target, size=req.size)
        fault = faults.CacheTornWrite()
        before = self.svc.cache.put_failures
        with faults.injected(faults.FaultPlan([fault])):
            resp = self.svc.handle(req)
        trial = self.judge("svc-torn-write", repr(fault), req, resp)
        if not trial.ok:
            return trial
        if self.svc.cache.put_failures <= before:
            return ChaosTrial("svc-torn-write", kernel, repr(fault),
                              "silent-wrong", "torn write did not fire")
        # Crash-safety: a fresh service over the same directory must not
        # find (let alone serve) the half-written entry.
        fresh = KernelService(cache_dir=self.cache_dir, seed=self.seed)
        try:
            resp2 = fresh.handle(req)
        finally:
            fresh.close()
        if resp2.from_cache:
            return ChaosTrial(
                "svc-torn-write", kernel, repr(fault), "silent-wrong",
                "fresh service served a torn-write entry",
            )
        trial2 = self.judge("svc-torn-write", repr(fault), req, resp2)
        if not trial2.ok:
            return trial2
        return ChaosTrial(
            "svc-torn-write", kernel, repr(fault), "crash-safe",
            "destination untouched; fresh service recompiled",
        )

    def jit(self, kernel: str, materialize: bool) -> ChaosTrial:
        layer = "svc-jit-materialize" if materialize else "svc-jit-lowering"
        fault = (
            faults.MaterializeFault(target="*") if materialize
            else faults.LoweringFault(idiom=self.rng.choice(_IDIOMS),
                                      target="*")
        )
        req = self._request(kernel)
        with faults.injected(faults.FaultPlan([fault])):
            resp = self.svc.handle(req)
        trial = self.judge(layer, repr(fault), req, resp)
        if not trial.ok:
            return trial
        # Taint guard: the fault-degraded artifact must not have been
        # persisted — a later clean request must not replay the fault.
        resp2 = self.svc.handle(self._request(
            kernel, flow=req.flow, target=req.target
        ))
        if resp2.events and any(
            e.cause == "fault-injected" for e in resp2.events
        ):
            return ChaosTrial(
                layer, kernel, repr(fault), "silent-wrong",
                "fault-degraded artifact leaked into the persistent cache",
            )
        return trial

    def vm(self, kernel: str, persistent: bool) -> ChaosTrial:
        layer = "svc-vm-persistent" if persistent else "svc-vm-transient"
        fault = (
            faults.MemFault(after=self.rng.randrange(1, 8), repeat=True)
            if persistent
            else faults.MemFault(after=self.rng.randrange(1, 80))
        )
        req = self._request(kernel)
        with faults.injected(faults.FaultPlan([fault])):
            resp = self.svc.handle(req)
        return self.judge(layer, repr(fault), req, resp)

    def overload(self, kernel: str) -> ChaosTrial:
        """Saturate admission, observe a classified shed, then recover."""
        adm = self.svc.admission
        slots = []
        try:
            while adm.depth < adm.limit:
                slots.append(adm.admit())
            req = self._request(kernel)
            resp = self.svc.handle(req)
        finally:
            for s in slots:
                s.__exit__(None, None, None)
        if resp.status != "shed" or resp.error != "OverloadError":
            return ChaosTrial(
                "svc-overload", kernel, "admission-saturation",
                "silent-wrong",
                f"expected a classified shed, got {resp.status}/{resp.error}",
            )
        resp2 = self.svc.handle(req)
        trial2 = self.judge("svc-overload", "admission-saturation",
                            req, resp2)
        if not trial2.ok:
            return trial2
        return ChaosTrial("svc-overload", kernel, "admission-saturation",
                          "shed", "shed while saturated, served after")

    def deadline(self, kernel: str) -> ChaosTrial:
        req = self._request(kernel, deadline_s=0.0)
        resp = self.svc.handle(req)
        trial = self.judge("svc-deadline", "deadline_s=0", req, resp)
        # An open breaker (left by an earlier persistent-fault trial) may
        # short-circuit before the deadline is even consulted; both tags
        # are classified and correct for their interleaving.
        if trial.outcome == "trapped" and resp.error not in (
            "DeadlineError", "CircuitOpenError"
        ):
            return ChaosTrial(
                "svc-deadline", kernel, "deadline_s=0", "silent-wrong",
                f"expected DeadlineError, got {resp.error}",
            )
        return trial

    # -- compile-farm trials (farm_workers > 0 campaigns only) ----------------

    def farm_crash(self, kernel: str) -> ChaosTrial:
        """A farm worker dies mid-compile: the pool is rebuilt, the job
        rerouted inline, the response classified and correct, and the
        cache entry written afterwards is whole (served next request)."""
        req = self._request(kernel, flow="split_vec_gcc4cli")
        self.svc.evict(kernel, req.flow, req.target, size=req.size)
        fault = faults.WorkerCrash(kernel=kernel)
        before = self.svc._farm.crashes
        with faults.injected(faults.FaultPlan([fault])):
            resp = self.svc.handle(req)
        trial = self.judge("svc-farm-crash", repr(fault), req, resp)
        if not trial.ok:
            return trial
        if self.svc._farm.crashes <= before:
            return ChaosTrial("svc-farm-crash", kernel, repr(fault),
                              "silent-wrong", "worker crash did not fire")
        # No torn entry: the rerouted compile's cache entry must verify
        # and serve (a crash must never poison what the leader persists).
        resp2 = self.svc.handle(req)
        trial2 = self.judge("svc-farm-crash", repr(fault), req, resp2)
        if not trial2.ok:
            return trial2
        return ChaosTrial("svc-farm-crash", kernel, repr(fault),
                          "rerouted", "pool rebuilt; compiled inline")

    def farm_stall(self, kernel: str) -> ChaosTrial:
        """A wedged farm worker outlives the compile budget: the
        watchdog kills the pool and the leader reroutes inline."""
        req = self._request(kernel, flow="split_vec_gcc4cli")
        self.svc.evict(kernel, req.flow, req.target, size=req.size)
        fault = faults.WorkerStall(kernel=kernel, seconds=30.0)
        before = self.svc._farm.stalls
        with faults.injected(faults.FaultPlan([fault])):
            resp = self.svc.handle(req)
        trial = self.judge("svc-farm-stall", repr(fault), req, resp)
        if not trial.ok:
            return trial
        if self.svc._farm.stalls <= before:
            return ChaosTrial("svc-farm-stall", kernel, repr(fault),
                              "silent-wrong",
                              "stall watchdog did not fire")
        return ChaosTrial("svc-farm-stall", kernel, repr(fault),
                          "rerouted", "budget watchdog killed the worker; "
                          "compiled inline")

    def stale_marker(self, kernel: str) -> ChaosTrial:
        """A dead replica's aged leader marker sits next to the entry at
        claim time: this service must take leadership over (TTL expiry),
        compile, and serve — never wait forever on a corpse."""
        req = self._request(kernel, flow="split_vec_gcc4cli")
        self.svc.evict(kernel, req.flow, req.target, size=req.size)
        fault = faults.StaleMarker()
        before = self.svc.cache.marker_takeovers
        with faults.injected(faults.FaultPlan([fault])):
            resp = self.svc.handle(req)
        trial = self.judge("svc-stale-marker", repr(fault), req, resp)
        if not trial.ok:
            return trial
        if self.svc.cache.marker_takeovers <= before:
            return ChaosTrial("svc-stale-marker", kernel, repr(fault),
                              "silent-wrong",
                              "marker takeover did not fire")
        return ChaosTrial("svc-stale-marker", kernel, repr(fault),
                          "marker-takeover",
                          "aged marker reclaimed; compiled locally")

    # -- scripted epilogue trials ---------------------------------------------

    def breaker_cycle(self) -> ChaosTrial:
        """Deterministic closed -> open -> half-open -> closed cycle."""
        from ..service import KernelService

        s2 = KernelService(
            cache_dir=None, retries=0, backoff_base=0.0,
            breaker_threshold=2, breaker_cooldown=3,
        )
        try:
            req = self._request("saxpy_fp", flow="split_vec_gcc4cli",
                                target="neon")
            plan = faults.FaultPlan([faults.MemFault(after=1, repeat=True)])
            states = []
            with faults.injected(plan):
                for _ in range(2):          # threshold failures -> open
                    s2.handle(req)
                states.append(s2._breakers["neon"].state)
                for _ in range(2):          # cooldown - 1 short-circuits
                    s2.handle(req)
                states.append(s2._breakers["neon"].state)
            # The request that crosses the cooldown IS the probe (the
            # breaker no longer burns one extra denied request arming
            # it); the fault has cleared, so it succeeds and closes.
            probe = s2.handle(req)
            states.append(s2._breakers["neon"].state)
            ok = (
                states == ["open", "open", "closed"]
                and probe.result is not None
            )
            return ChaosTrial(
                "svc-breaker", "saxpy_fp", "MemFault(repeat)",
                "breaker-cycled" if ok else "silent-wrong",
                f"states={states}",
            )
        finally:
            s2.close()

    def stale_serve(self) -> ChaosTrial:
        """A known-good result survives a total runtime outage."""
        from ..service import KernelService

        s3 = KernelService(cache_dir=None, retries=0, backoff_base=0.0)
        try:
            req = self._request("dscal_fp", flow="split_vec_gcc4cli",
                                target="sse")
            good = s3.handle(req)
            plan = faults.FaultPlan([faults.MemFault(after=1, repeat=True)])
            with faults.injected(plan):
                resp = s3.handle(req)
            ok = (
                good.status == "ok"
                and resp.status == "stale"
                and resp.result is not None
                and resp.result.value == good.result.value
                and resp.result.cycles == good.result.cycles
                and any(e.cause == "stale-cache" for e in resp.events)
            )
            return ChaosTrial(
                "svc-stale", "dscal_fp", "MemFault(repeat)",
                "served-stale" if ok else "silent-wrong",
                f"status={resp.status}, events="
                f"{[e.cause for e in resp.events]}",
            )
        finally:
            s3.close()


def run_service_campaign(
    n_faults: int = 200,
    seed: int = 0,
    kernels=_DEFAULT_KERNELS,
    size: int = 16,
    cache_dir: str | None = None,
    farm_workers: int = 0,
) -> ChaosReport:
    """Soak a live :class:`~repro.service.KernelService` with ``n_faults``
    seeded faults; returns the outcome census with ``service_stats``
    attached.  Deterministic in ``seed`` (service jitter is seeded and
    backoff sleeps are disabled).

    ``farm_workers > 0`` runs the service with a compile farm and mixes
    the :data:`FARM_LAYERS` into the stream — worker crash/stall at the
    dispatch boundary and stale cross-replica leader markers at claim
    time.  The default (farm-less) fault stream is bit-for-bit what it
    was before the farm existed, so pinned-seed campaigns stay stable.
    """
    import shutil
    import tempfile

    rng = random.Random(seed)
    kernels = tuple(kernels)
    layers, weights = SERVICE_LAYERS, _SERVICE_WEIGHTS
    if int(farm_workers) > 0:
        layers = layers + FARM_LAYERS
        weights = weights + _FARM_WEIGHTS
    own_dir = cache_dir is None
    root = cache_dir or tempfile.mkdtemp(prefix="repro-svc-chaos-")
    soak = _ServiceSoak(seed, size, root, farm_workers=int(farm_workers))
    report = ChaosReport(seed=seed)
    try:
        for _ in range(int(n_faults)):
            layer = rng.choices(layers, weights=weights)[0]
            kernel = rng.choice(kernels)
            if layer == "svc-plain":
                t = soak.plain(kernel)
            elif layer == "svc-cache-corrupt":
                t = soak.cache_corrupt(kernel)
            elif layer == "svc-torn-write":
                t = soak.torn_write(kernel)
            elif layer == "svc-jit-lowering":
                t = soak.jit(kernel, materialize=False)
            elif layer == "svc-jit-materialize":
                t = soak.jit(kernel, materialize=True)
            elif layer == "svc-vm-transient":
                t = soak.vm(kernel, persistent=False)
            elif layer == "svc-vm-persistent":
                t = soak.vm(kernel, persistent=True)
            elif layer == "svc-overload":
                t = soak.overload(kernel)
            elif layer == "svc-farm-crash":
                t = soak.farm_crash(kernel)
            elif layer == "svc-farm-stall":
                t = soak.farm_stall(kernel)
            elif layer == "svc-stale-marker":
                t = soak.stale_marker(kernel)
            else:
                t = soak.deadline(kernel)
            report.trials.append(t)
        report.trials.append(soak.breaker_cycle())
        report.trials.append(soak.stale_serve())
        report.service_stats = soak.svc.stats()
    finally:
        soak.close()
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)
    return report


# -- the gateway soak profile --------------------------------------------------

#: gateway-profile fault layers with their campaign weights.
GATEWAY_LAYERS = (
    "gw-plain", "gw-garbage", "gw-truncated", "gw-slowloris",
    "gw-conn-drop", "gw-overload", "gw-deadline", "gw-jit-fault",
    "gw-batch",
)
_GATEWAY_WEIGHTS = (30, 10, 10, 8, 12, 8, 10, 12, 12)


def _pid_alive(pid: int) -> bool:
    import os

    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class _WireJudge:
    """Response judging shared by the gateway and fleet soaks.

    Subclass contract: ``self.size`` (trial problem size),
    ``self.ref_runner`` (a cold :class:`FlowRunner`), ``self._refs``
    (the reference memo dict).
    """

    def reference(self, kernel: str, flow: str, target: str,
                  size: int | None = None):
        """Cold no-cache (cycles, value), computed outside any fault."""
        size = self.size if size is None else size
        key = (kernel, flow, target, size)
        if key not in self._refs:
            inst = get_kernel(kernel).instantiate(size)
            r = self.ref_runner.run(inst, flow, target)
            self._refs[key] = (r.cycles, r.value)
        return self._refs[key]

    def judge(self, layer: str, fault: str, req: dict,
              resp: dict) -> ChaosTrial:
        """Classify a wire response payload against the invariant.

        The gateway-grade twist on :meth:`_ServiceSoak.judge`: an ``ok``
        result whose cycles/value diverge from the cold reference is a
        **torn response** — the wire changed the answer."""
        kernel = req.get("kernel", "?")
        error = resp.get("error")
        if error is not None and str(error).startswith("unclassified"):
            return ChaosTrial(layer, kernel, fault, "unclassified-trap",
                              str(error))
        status = resp.get("status")
        result = resp.get("result")
        if result is not None:
            if not result.get("checked") and status != "stale":
                return ChaosTrial(layer, kernel, fault, "silent-wrong",
                                  "result served without checking")
            if status == "ok":
                cycles, value = self.reference(
                    kernel, resp["flow"], resp["target"],
                    size=req.get("size"),
                )
                if result["cycles"] != cycles or result["value"] != value:
                    return ChaosTrial(
                        layer, kernel, fault, "torn-response",
                        f"wire result {result['cycles']}/{result['value']} "
                        f"diverged from cold reference {cycles}/{value}",
                    )
                return ChaosTrial(layer, kernel, fault, "correct",
                                  "warm-cache" if resp.get("from_cache")
                                  else "")
            if status in ("stale", "degraded"):
                if not resp.get("events"):
                    return ChaosTrial(layer, kernel, fault, "silent-wrong",
                                      f"{status} response without its "
                                      f"event chain")
                tag = ("served-stale" if status == "stale"
                       else "degraded-correct")
                return ChaosTrial(layer, kernel, fault, tag, "; ".join(
                    e["cause"] for e in resp["events"]
                ))
        if status == "shed":
            return ChaosTrial(layer, kernel, fault, "shed", error or "")
        if status == "rejected":
            if error is None:
                return ChaosTrial(layer, kernel, fault, "silent-wrong",
                                  "rejected without a classified tag")
            return ChaosTrial(layer, kernel, fault, "trapped", str(error))
        return ChaosTrial(layer, kernel, fault, "silent-wrong",
                          f"unknown response status {status!r}")


class _GatewaySoak(_WireJudge):
    """State of one gateway soak: a live farm-backed service behind a
    live :class:`~repro.service.gateway.ThreadedGateway`, one resilient
    client, one no-retry client, and raw-socket hostile peers."""

    def __init__(self, seed: int, size: int, cache_dir: str,
                 farm_workers: int = 2) -> None:
        from ..service import GatewayClient, KernelService, ThreadedGateway

        self.rng = random.Random(seed)
        self.seed = seed
        self.size = size
        self.svc = KernelService(
            cache_dir=cache_dir, seed=seed, retries=1, backoff_base=0.0,
            breaker_threshold=4, breaker_cooldown=3, queue_limit=16,
            workers=4, farm_workers=farm_workers, farm_budget_s=10.0,
        )
        # A short idle timeout keeps the slowloris trials sub-second;
        # drain_grace_s=0 because readiness-vs-listener ordering is the
        # drain epilogue's (and the unit tests') job, not the soak's.
        # Batching is ON for the whole soak (not only the gw-batch
        # layer): every other fault layer then also exercises its
        # compile requests *through* the pre-admission batcher, so the
        # batch path earns the same zero-torn / zero-unclassified
        # invariants as the direct path.
        self.gw = ThreadedGateway(
            self.svc, max_inflight=8, idle_timeout_s=0.35,
            drain_grace_s=0.0, drain_budget_s=10.0,
            batch_window_s=0.05, batch_max=8,
        )
        self.addr = self.gw.address
        self.client = GatewayClient(
            [self.addr], retries=2, backoff_base=0.001, backoff_cap=0.01,
            seed=seed,
        )
        self.fast = GatewayClient([self.addr], retries=0, seed=seed + 1)
        self.ref_runner = FlowRunner()
        self._refs: dict = {}

    def close(self) -> None:
        self.client.close()
        self.fast.close()
        self.gw.close()
        self.svc.close()

    # -- shared plumbing -------------------------------------------------------

    def _payload(self, kernel: str, **over) -> dict:
        return {
            "op": "compile",
            "kernel": kernel,
            "flow": over.get("flow", self.rng.choice(_FLOWS)),
            "target": over.get("target", self.rng.choice(_TARGETS)),
            "size": self.size,
        }

    # -- raw-socket hostile peer ----------------------------------------------

    def _raw_reply(self, sock, timeout: float = 5.0):
        """Read one reply frame: ``(payload, torn)`` — ``(None, False)``
        is a clean close with no reply, ``(None, True)`` a torn one."""
        import socket as _socket

        from ..service.wire import (
            HEADER_LEN, NetworkError, check_header, decode_frame,
        )

        sock.settimeout(timeout)

        def rd(n: int) -> bytes:
            buf = b""
            while len(buf) < n:
                try:
                    chunk = sock.recv(n - len(buf))
                except (_socket.timeout, OSError):
                    return buf
                if not chunk:
                    return buf
                buf += chunk
            return buf

        header = rd(HEADER_LEN)
        if not header:
            return None, False
        try:
            if len(header) < HEADER_LEN:
                raise NetworkError("truncated", "short reply header")
            _ms, length = check_header(header)
            payload, _dl = decode_frame(header + rd(length + 4))
            return payload, False
        except NetworkError:
            return None, True

    def _raw_send(self, chunks, delay_s: float = 0.0, timeout: float = 5.0):
        """Open a raw connection, send ``chunks`` (optionally dripped),
        then read one reply.  Returns ``(payload, torn)``."""
        import socket as _socket

        sock = _socket.create_connection(self.addr, timeout=timeout)
        try:
            try:
                for i, chunk in enumerate(chunks):
                    if i and delay_s:
                        time.sleep(delay_s)
                    sock.sendall(chunk)
            except OSError:
                pass  # the gateway cut us off early — also an answer
            return self._raw_reply(sock, timeout=timeout)
        finally:
            sock.close()

    def _liveness(self, layer: str, kernel: str, fault: str):
        """The gateway must still answer after hostile bytes."""
        self.fast.close()  # probe on a fresh connection
        try:
            if self.fast.ready():
                return None
            detail = "gateway reports not-ready"
        except Exception as exc:  # noqa: BLE001 - census, not control flow
            detail = f"liveness probe failed: {exc}"
        return ChaosTrial(layer, kernel, fault, "silent-wrong",
                          f"gateway wedged after hostile bytes ({detail})")

    # -- trial kinds ----------------------------------------------------------

    def plain(self, kernel: str) -> ChaosTrial:
        req = self._payload(kernel)
        resp = self.client.request(req, deadline_s=60.0)
        return self.judge("gw-plain", "none", req, resp)

    def garbage(self, kernel: str) -> ChaosTrial:
        from ..service import wire

        mode = self.rng.choice(
            ("random", "bad-magic", "bad-crc", "bad-length")
        )
        fault = faults.GarbageFrame(mode=mode)
        good = wire.encode_frame({"op": "ready"})
        if mode == "bad-magic":
            data = b"XGW0" + good[4:]
        elif mode == "bad-crc":
            data = good[:-1] + bytes([good[-1] ^ 0x5A])
        elif mode == "bad-length":
            # An adversarial length field: must be rejected before any
            # payload allocation, so a tiny body is all we ever send.
            data = wire._HEADER.pack(
                wire.MAGIC, wire.VERSION, wire.NO_DEADLINE,
                wire.MAX_PAYLOAD + 1,
            ) + b"\x00" * 8
        else:
            n = self.rng.randrange(16, 64)
            data = bytes(self.rng.getrandbits(8) for _ in range(n))
            if data[:4] == wire.MAGIC:  # astronomically unlikely; be sure
                data = b"\xff" + data[1:]
        reply, torn = self._raw_send([data])
        alive = self._liveness("gw-garbage", kernel, repr(fault))
        if alive is not None:
            return alive
        if torn:
            return ChaosTrial("gw-garbage", kernel, repr(fault),
                              "torn-response", "garbled error reply")
        if reply is None:
            return ChaosTrial("gw-garbage", kernel, repr(fault),
                              "conn-closed", "dropped without a reply")
        if reply.get("status") == "rejected" and (
            reply.get("error") == "NetworkError"
        ):
            return ChaosTrial("gw-garbage", kernel, repr(fault), "trapped",
                              f"NetworkError ({mode})")
        return ChaosTrial("gw-garbage", kernel, repr(fault), "silent-wrong",
                          f"garbage answered with {reply.get('status')}/"
                          f"{reply.get('error')}")

    def truncated(self, kernel: str) -> ChaosTrial:
        import socket as _socket

        from ..service import wire

        good = wire.encode_frame(self._payload(kernel), deadline_s=5.0)
        keep = self.rng.randrange(1, len(good) - 1)
        fault = faults.TruncatedFrame(keep=keep)
        sock = _socket.create_connection(self.addr, timeout=5.0)
        try:
            sock.sendall(good[:keep])
            sock.shutdown(_socket.SHUT_WR)  # EOF mid-frame, reply readable
            reply, torn = self._raw_reply(sock)
        finally:
            sock.close()
        alive = self._liveness("gw-truncated", kernel, repr(fault))
        if alive is not None:
            return alive
        if torn:
            return ChaosTrial("gw-truncated", kernel, repr(fault),
                              "torn-response", "garbled error reply")
        if reply is None:
            return ChaosTrial("gw-truncated", kernel, repr(fault),
                              "conn-closed", f"cut at {keep}B, clean close")
        if reply.get("status") == "rejected" and (
            reply.get("error") == "NetworkError"
        ):
            return ChaosTrial("gw-truncated", kernel, repr(fault), "trapped",
                              f"NetworkError after {keep}B prefix")
        return ChaosTrial("gw-truncated", kernel, repr(fault),
                          "silent-wrong",
                          f"truncated frame answered with "
                          f"{reply.get('status')}/{reply.get('error')}")

    def slowloris(self, kernel: str) -> ChaosTrial:
        from ..service import wire

        req = self._payload(kernel)
        frame = wire.encode_frame(req, deadline_s=30.0)
        honest = self.rng.random() < 0.4
        if honest:
            # Slow but honest: the whole frame arrives, dripped well
            # inside the idle timeout — the gateway must serve it.
            fault = faults.SlowWire(chunk=32, delay_s=0.01, complete=True)
            chunks = [frame[i:i + 32] for i in range(0, len(frame), 32)]
            reply, torn = self._raw_send(chunks, delay_s=0.01)
            if torn:
                return ChaosTrial("gw-slowloris", kernel, repr(fault),
                                  "torn-response", "garbled reply")
            if reply is None:
                return ChaosTrial("gw-slowloris", kernel, repr(fault),
                                  "silent-wrong",
                                  "honest slow frame got no reply")
            return self.judge("gw-slowloris", repr(fault), req, reply)
        # Stalling peer: a prefix, then silence — the idle timeout must
        # reclaim the connection instead of pinning it open forever.
        fault = faults.SlowWire(chunk=7, complete=False)
        start = time.perf_counter()
        reply, torn = self._raw_send([frame[:7]])
        elapsed = time.perf_counter() - start
        alive = self._liveness("gw-slowloris", kernel, repr(fault))
        if alive is not None:
            return alive
        if torn:
            return ChaosTrial("gw-slowloris", kernel, repr(fault),
                              "torn-response", "garbled timeout reply")
        if reply is not None and not (
            reply.get("status") == "rejected"
            and reply.get("error") == "NetworkError"
        ):
            return ChaosTrial("gw-slowloris", kernel, repr(fault),
                              "silent-wrong",
                              f"stalled peer answered with "
                              f"{reply.get('status')}/{reply.get('error')}")
        return ChaosTrial("gw-slowloris", kernel, repr(fault),
                          "timeout-reclaimed",
                          f"connection reclaimed in {elapsed:.2f}s")

    def conn_drop(self, kernel: str) -> ChaosTrial:
        after = self.rng.randrange(1, 48)
        fault = faults.ConnDrop(after_bytes=after, count=1)
        req = self._payload(kernel)
        before = self.client.wire_errors
        with faults.injected(faults.FaultPlan([fault])):
            resp = self.client.request(req, deadline_s=60.0)
        trial = self.judge("gw-conn-drop", repr(fault), req, resp)
        if not trial.ok:
            return trial
        if self.client.wire_errors <= before:
            return ChaosTrial("gw-conn-drop", kernel, repr(fault),
                              "silent-wrong", "conn drop did not fire")
        return ChaosTrial(
            "gw-conn-drop", kernel, repr(fault), "retried-through",
            f"response torn at {after}B, classified and retried "
            f"({trial.outcome})",
        )

    def overload(self, kernel: str) -> ChaosTrial:
        req = self._payload(kernel)
        gw = self.gw.gateway
        # Saturate the gateway's inflight gauge (the campaign is serial,
        # so nothing else is touching it), observe a fast classified
        # shed, then release and observe recovery.
        gw._inflight += gw.max_inflight
        try:
            resp = self.fast.request(req, deadline_s=10.0)
        finally:
            gw._inflight -= gw.max_inflight
        if resp.get("status") != "shed" or (
            resp.get("error") != "OverloadError"
        ):
            return ChaosTrial(
                "gw-overload", kernel, "inflight-saturation",
                "silent-wrong",
                f"expected a classified shed, got {resp.get('status')}/"
                f"{resp.get('error')}",
            )
        resp2 = self.client.request(req, deadline_s=60.0)
        trial2 = self.judge("gw-overload", "inflight-saturation", req, resp2)
        if not trial2.ok:
            return trial2
        return ChaosTrial("gw-overload", kernel, "inflight-saturation",
                          "shed", "shed while saturated, served after")

    def deadline(self, kernel: str) -> ChaosTrial:
        from ..service import wire

        # A 1 ms budget in the frame header: the wire deadline must land
        # in the service, which rejects with DeadlineError (or, rarely,
        # serves inside the millisecond / trips an already-open breaker).
        req = self._payload(kernel)
        reply, torn = self._raw_send(
            [wire.encode_frame(req, deadline_s=0.001)]
        )
        fault = "wire-deadline=1ms"
        if torn:
            return ChaosTrial("gw-deadline", kernel, fault, "torn-response",
                              "garbled reply")
        if reply is None:
            return ChaosTrial("gw-deadline", kernel, fault, "silent-wrong",
                              "no reply to a deadlined request")
        trial = self.judge("gw-deadline", fault, req, reply)
        if trial.outcome == "trapped" and reply.get("error") not in (
            "DeadlineError", "CircuitOpenError"
        ):
            return ChaosTrial(
                "gw-deadline", kernel, fault, "silent-wrong",
                f"expected DeadlineError, got {reply.get('error')}",
            )
        return trial

    def jit_fault(self, kernel: str) -> ChaosTrial:
        """An in-service fault observed *through* the wire: the response
        must carry the same classified degradation story it would
        in-process."""
        if self.rng.random() < 0.5:
            fault = faults.MemFault(after=self.rng.randrange(1, 60))
        else:
            fault = faults.LoweringFault(idiom=self.rng.choice(_IDIOMS),
                                         target="*")
        req = self._payload(kernel)
        with faults.injected(faults.FaultPlan([fault])):
            resp = self.client.request(req, deadline_s=60.0)
        return self.judge("gw-jit-fault", repr(fault), req, resp)

    def batch_storm(self, kernel: str) -> ChaosTrial:
        """A same-shape stampede into the pre-admission batcher.

        ``waiters`` raw connections send byte-identical compile frames
        inside one batch window; with ``kill_leader`` the connection
        that *opened* the group is torn down mid-window.  Invariants:
        every surviving waiter reads one complete, CRC-valid response
        frame (zero torn fan-outs), exactly one frame (zero double
        answers), waiters that report the same flight group got
        byte-identical payloads, and the batch table ends empty (zero
        leaked group entries)."""
        import socket as _socket

        from ..service import wire

        waiters = self.rng.randrange(3, 8)
        kill_leader = self.rng.random() < 0.4
        fault = faults.BatchStorm(waiters=waiters, kill_leader=kill_leader)
        req = self._payload(kernel)
        frame = wire.encode_frame(req, deadline_s=30.0)
        socks = []
        try:
            for _ in range(waiters):
                s = _socket.create_connection(self.addr, timeout=5.0)
                s.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
                socks.append(s)
            # The first send opens the group (it is the leader); the
            # rest join inside the window.
            for s in socks:
                s.sendall(frame)
            survivors = socks
            if kill_leader:
                socks[0].close()
                survivors = socks[1:]
            replies = []
            for s in survivors:
                payload, torn = self._raw_reply(s, timeout=30.0)
                if torn:
                    return ChaosTrial("gw-batch", kernel, repr(fault),
                                      "torn-response",
                                      "torn batch fan-out frame")
                if payload is None:
                    return ChaosTrial("gw-batch", kernel, repr(fault),
                                      "silent-wrong",
                                      "a batched waiter got no reply")
                replies.append(payload)
            # Zero double answers: one frame per waiter, nothing else
            # buffered on any surviving connection.
            for s in survivors:
                s.settimeout(0.1)
                try:
                    extra = s.recv(1)
                except (_socket.timeout, OSError):
                    extra = b""
                if extra:
                    return ChaosTrial("gw-batch", kernel, repr(fault),
                                      "silent-wrong",
                                      "a batched waiter was answered twice")
        finally:
            for s in socks:
                try:
                    s.close()
                except OSError:
                    pass
        for payload in replies:
            trial = self.judge("gw-batch", repr(fault), req, payload)
            if not trial.ok:
                return trial
        # Waiters answered out of one flight group (same ``batched``
        # count) must have byte-identical payloads; scheduling may
        # legitimately split a storm across groups, so identity is
        # asserted per group, not across the storm.
        by_group: dict = {}
        for payload in replies:
            by_group.setdefault(payload.get("batched", 1), set()).add(
                wire.encode_payload(payload)
            )
        for batched, blobs in by_group.items():
            if batched > 1 and len(blobs) > 1:
                return ChaosTrial(
                    "gw-batch", kernel, repr(fault), "torn-response",
                    f"waiters of one {batched}-wide flight group got "
                    f"{len(blobs)} distinct payloads",
                )
        leaked = self.gw.stats().get("batch_pending", 0)
        if leaked:
            return ChaosTrial("gw-batch", kernel, repr(fault),
                              "silent-wrong",
                              f"{leaked} flight group(s) leaked in the "
                              f"batch table after fan-out")
        merged = max(by_group) if by_group else 0
        return ChaosTrial(
            "gw-batch", kernel, repr(fault), "correct",
            f"{len(replies)} waiter(s) answered"
            + (f", widest group {merged}" if merged > 1 else "")
            + (", leader killed mid-window" if kill_leader else ""),
        )

    # -- scripted epilogue trials ---------------------------------------------

    def drain_trial(self) -> ChaosTrial:
        """Graceful drain on a fresh gateway: readiness flips first, a
        late request gets a classified DrainError, the in-flight request
        completes with a whole response, and post-drain connections are
        refused."""
        import threading

        from ..service import (
            GatewayClient, KernelService, NetworkError, ThreadedGateway,
        )

        svc2 = KernelService(cache_dir=None, seed=self.seed, workers=2,
                             farm_workers=0)
        gw2 = ThreadedGateway(svc2, drain_grace_s=0.4, drain_budget_s=15.0,
                              close_service=True)
        addr = gw2.address
        bg: dict = {}

        def inflight_request() -> None:
            c = GatewayClient([addr], retries=0, seed=self.seed + 7)
            try:
                # Cold compile on a no-cache service: long enough to
                # still be in flight when the drain lands.
                bg["resp"] = c.request(
                    self._payload("gemm_fp", flow="split_vec_gcc4cli",
                                  target="sse"),
                    deadline_s=60.0,
                )
            except Exception as exc:  # noqa: BLE001 - judged below
                bg["exc"] = exc
            finally:
                c.close()

        worker = threading.Thread(target=inflight_request)
        worker.start()
        waited = 0.0
        while (gw2.stats()["inflight"] == 0 and not bg and waited < 5.0):
            time.sleep(0.005)
            waited += 0.005
        drainer = threading.Thread(target=gw2.drain)
        drainer.start()
        time.sleep(0.05)  # let the drain coroutine flip the state
        # Inside the grace window the listener still accepts: readiness
        # must already answer False and compiles must already be
        # rejected with a classified DrainError.
        late_ready: bool | None = None
        late_resp: dict | None = None
        late = GatewayClient([addr], retries=0, seed=self.seed + 8)
        try:
            late_ready = late.ready(deadline_s=5.0)
            late_resp = late.request(self._payload("saxpy_fp"),
                                     deadline_s=5.0)
        except Exception:  # noqa: BLE001 - the grace window may close
            pass
        finally:
            late.close()
        worker.join(timeout=60.0)
        drainer.join(timeout=60.0)
        refused = False
        try:
            probe = GatewayClient([addr], retries=0, seed=self.seed + 9)
            try:
                probe.ready(deadline_s=2.0)
            finally:
                probe.close()
        except NetworkError:
            refused = True
        gw2.close()
        svc2.close()
        fault = "SIGTERM-equivalent drain"
        if "exc" in bg:
            return ChaosTrial("gw-drain", "gemm_fp", fault, "torn-response",
                              f"in-flight request died in the drain: "
                              f"{bg['exc']}")
        if "resp" not in bg:
            return ChaosTrial("gw-drain", "gemm_fp", fault, "silent-wrong",
                              "in-flight request never completed")
        trial = self.judge("gw-drain", fault,
                           self._payload("gemm_fp", flow="split_vec_gcc4cli",
                                         target="sse"), bg["resp"])
        if not trial.ok:
            return trial
        if late_ready is True:
            return ChaosTrial("gw-drain", "gemm_fp", fault, "silent-wrong",
                              "readiness still True after drain began")
        if late_resp is not None and not (
            late_resp.get("status") == "rejected"
            and late_resp.get("error") == "DrainError"
        ):
            return ChaosTrial(
                "gw-drain", "gemm_fp", fault, "silent-wrong",
                f"late request got {late_resp.get('status')}/"
                f"{late_resp.get('error')}, wanted a DrainError rejection",
            )
        if not refused:
            return ChaosTrial("gw-drain", "gemm_fp", fault, "silent-wrong",
                              "gateway still accepting after drain closed")
        return ChaosTrial(
            "gw-drain", "gemm_fp", fault, "drained-clean",
            "in-flight completed whole; late request classified; "
            "listener closed",
        )

    def leaked_workers_trial(self) -> ChaosTrial:
        """Close the whole stack; every farm worker PID must be dead."""
        pids = self.svc.farm_worker_pids()
        self.close()
        deadline = time.perf_counter() + 10.0
        alive = [p for p in pids if _pid_alive(p)]
        while alive and time.perf_counter() < deadline:
            time.sleep(0.05)
            alive = [p for p in pids if _pid_alive(p)]
        if alive:
            return ChaosTrial("gw-shutdown", "*", "stack close",
                              "leaked-workers",
                              f"farm PIDs {alive} survived service close")
        return ChaosTrial("gw-shutdown", "*", "stack close", "farm-reaped",
                          f"all {len(pids)} farm workers dead after close")


def run_gateway_campaign(
    n_faults: int = 200,
    seed: int = 0,
    kernels=_DEFAULT_KERNELS,
    size: int = 16,
    cache_dir: str | None = None,
    farm_workers: int = 2,
) -> ChaosReport:
    """Soak a live gateway-fronted service with ``n_faults`` seeded
    wire-and-service faults; returns the outcome census with gateway and
    service stats attached.

    The fault stream is deterministic in ``seed``; trial outcomes are
    wall-clock tolerant (a deadline that is rarely met in time is still
    a passing, classified outcome).  Ends with two scripted epilogues:
    the graceful-drain trial and the leaked-workers audit — the
    invariant of ISSUE 7: zero torn responses, zero unclassified errors,
    zero leaked farm workers.
    """
    import shutil
    import tempfile

    rng = random.Random(seed)
    kernels = tuple(kernels)
    own_dir = cache_dir is None
    root = cache_dir or tempfile.mkdtemp(prefix="repro-gw-chaos-")
    soak = _GatewaySoak(seed, size, root, farm_workers=int(farm_workers))
    report = ChaosReport(seed=seed)
    try:
        for _ in range(int(n_faults)):
            layer = rng.choices(GATEWAY_LAYERS,
                                weights=_GATEWAY_WEIGHTS)[0]
            kernel = rng.choice(kernels)
            if layer == "gw-plain":
                t = soak.plain(kernel)
            elif layer == "gw-garbage":
                t = soak.garbage(kernel)
            elif layer == "gw-truncated":
                t = soak.truncated(kernel)
            elif layer == "gw-slowloris":
                t = soak.slowloris(kernel)
            elif layer == "gw-conn-drop":
                t = soak.conn_drop(kernel)
            elif layer == "gw-overload":
                t = soak.overload(kernel)
            elif layer == "gw-deadline":
                t = soak.deadline(kernel)
            elif layer == "gw-batch":
                t = soak.batch_storm(kernel)
            else:
                t = soak.jit_fault(kernel)
            report.trials.append(t)
        report.service_stats = {
            "service": soak.svc.stats(),
            "gateway": soak.gw.stats(),
        }
        report.trials.append(soak.drain_trial())
        report.trials.append(soak.leaked_workers_trial())
    finally:
        soak.close()
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)
    return report


FLEET_LAYERS = ("fl-plain", "fl-warm-identity", "fl-kill-compile",
                "fl-kill-write", "fl-kill-lead", "fl-kill-wire")
_FLEET_WEIGHTS = (25, 15, 18, 12, 15, 15)


class _FleetSoak(_WireJudge):
    """State of one fleet soak: a live :class:`FleetSupervisor` over N
    real ``serve --listen`` child processes sharing one cache directory,
    one sharded failover client, and the SIGKILL chaos driver.

    The kill layers SIGKILL the *shard-owner* replica of an in-flight
    cold compile at seeded moments — early (mid-compile), late
    (mid-cache-write), while its ``.lead`` cross-replica coalescing
    marker is fresh, and mid-frame under a pinned no-retry client — and
    judge that the sharded client rides through with a correct answer
    while the supervisor respawns the victim.  Every killed pid (replica
    and its farm workers) is recorded for the end-of-campaign leak
    audit; the shared cache directory is audited last: every ``*.vbk``
    must verify, the quarantine must be empty (atomic writes never let a
    torn entry into the namespace), and no stale ``.lead`` marker may
    survive.
    """

    def __init__(self, seed: int, size: int, cache_dir: str,
                 replicas: int = 3, farm_workers: int = 1) -> None:
        from ..service.supervisor import FleetSupervisor

        self.rng = random.Random(seed)
        self.seed = seed
        self.size = size
        self.root = cache_dir
        self.replicas = int(replicas)
        self.marker_ttl_s = 1.5
        self.sup = FleetSupervisor(
            self.replicas, cache_dir,
            farm_workers=farm_workers, workers=4,
            queue_limit=32, max_inflight=32,
            marker_ttl_s=self.marker_ttl_s, farm_budget_s=10.0,
            probe_interval_s=0.1, probe_timeout_s=2.0, probe_failures=3,
            restart_backoff_base=0.02, restart_backoff_cap=0.1,
            # Kill storms are the point of this campaign; the flap->park
            # path has its own scripted epilogue on a throwaway replica.
            restart_budget=10 ** 9,
            seed=seed,
        )
        self.sup.start()
        # Retry budget sized to ride out a full respawn (~1s): even if a
        # kill ever leaves zero live slots for a moment, the client must
        # wait out the supervisor, not surface a lost answer.
        self.client = self.sup.client(
            retries=8, backoff_base=0.02, backoff_cap=0.4,
            dead_cooldown_s=0.25, seed=seed,
        )
        self.ref_runner = FlowRunner()
        self._refs: dict = {}
        # Odd sizes, strictly increasing: every cold shape is a CacheKey
        # the fleet has never seen (warm trials use ``size`` itself).
        self._cold_size = size + (1 if size % 2 == 0 else 2)
        self.dead_pids: list[int] = []
        self.kills = 0

    def close(self) -> None:
        self.client.close()
        self.sup.stop()

    # -- plumbing --------------------------------------------------------------

    def _payload(self, kernel: str, size: int | None = None) -> dict:
        return {
            "op": "compile",
            "kernel": kernel,
            "flow": self.rng.choice(_FLOWS),
            "target": self.rng.choice(_TARGETS),
            "size": self.size if size is None else size,
        }

    def _cold_payload(self, kernel: str) -> dict:
        size = self._cold_size
        self._cold_size += 2
        return self._payload(kernel, size=size)

    def _pids_of(self, index: int) -> list:
        """The victim's own pid plus its farm workers' (for the
        post-mortem leak audit) — snapshotted *before* the kill."""
        from ..service import GatewayClient

        pids = []
        pid = self.sup.replica_pids().get(index)
        if pid is not None:
            pids.append(pid)
        addr = self.sup.slots()[index]
        if addr is not None:
            c = GatewayClient([addr], retries=0, seed=self.seed + 97)
            try:
                st = c.stats(deadline_s=10.0)
                pids.extend(int(p) for p in (st.get("farm_pids") or ()))
            except Exception:  # noqa: BLE001 - racing the kill window
                pass
            finally:
                c.close()
        return pids

    def _heal(self, layer: str, kernel: str, fault: str):
        """Wait for the supervisor to respawn every replica; a fleet
        that cannot heal is a failing outcome, not a flake."""
        deadline = time.perf_counter() + 60.0
        while time.perf_counter() < deadline:
            if self.sup.up_count() == self.replicas:
                return None
            time.sleep(0.05)
        return ChaosTrial(layer, kernel, fault, "silent-wrong",
                          f"fleet stuck at {self.sup.up_count()}/"
                          f"{self.replicas} replicas 60s after the kill")

    def _lead_files(self) -> list:
        import os

        try:
            return [n for n in os.listdir(self.root)
                    if n.endswith(".lead")]
        except OSError:
            return []

    # -- trial kinds -----------------------------------------------------------

    def plain(self, kernel: str) -> ChaosTrial:
        req = self._payload(kernel)
        resp = self.client.request(req, deadline_s=120.0)
        return self.judge("fl-plain", "none", req, resp)

    def warm_identity(self, kernel: str) -> ChaosTrial:
        """The same warm key served by *every* live replica must come
        back byte-identical — shared-cache read-through means one
        envelope on disk is the single source of truth."""
        from ..service import DeadlineError, GatewayClient, NetworkError
        from ..service.wire import encode_payload

        layer, fault = "fl-warm-identity", "cross-replica byte-compare"
        req = self._payload(kernel)
        warm = self.client.request(req, deadline_s=120.0)
        t0 = self.judge(layer, fault, req, warm)
        if not t0.ok:
            return t0
        if warm.get("status") != "ok":
            return ChaosTrial(layer, kernel, fault, t0.outcome,
                              f"warm-up got {warm.get('status')}; "
                              f"identity not comparable this trial")
        blobs = set()
        probed = 0
        for addr in self.sup.slots():
            if addr is None:
                continue
            c = GatewayClient([addr], retries=2, backoff_base=0.01,
                              seed=self.seed + 31)
            try:
                resp = c.request(req, deadline_s=60.0)
            except (NetworkError, DeadlineError):
                # The slot list is a snapshot: a replica killed by an
                # earlier trial can die between slots() and connect.
                # That's a liveness event, not an identity violation —
                # skip it; the supervisor's restart loop owns recovery.
                continue
            except Exception as exc:  # noqa: BLE001 - judged below
                return ChaosTrial(layer, kernel, fault, "unclassified-trap",
                                  f"replica {addr} probe died: {exc!r}")
            finally:
                c.close()
            t = self.judge(layer, fault, req, resp)
            if not t.ok:
                return t
            if resp.get("status") != "ok" or not resp.get("from_cache"):
                return ChaosTrial(
                    layer, kernel, fault, "silent-wrong",
                    f"replica {addr} answered {resp.get('status')}/"
                    f"from_cache={resp.get('from_cache')} for a warm key",
                )
            blobs.add(encode_payload(resp["result"]))
            probed += 1
        if len(blobs) > 1:
            return ChaosTrial(layer, kernel, fault, "torn-response",
                              f"warm result diverges across {probed} "
                              f"replicas ({len(blobs)} variants)")
        return ChaosTrial(layer, kernel, fault, "correct",
                          f"byte-identical across {probed} replicas")

    def _kill_mid_flight(self, layer: str, delay_lo: float,
                         delay_hi: float) -> ChaosTrial:
        """Cold compile through the sharded client; SIGKILL the shard
        owner after a seeded delay inside the flight."""
        import threading

        from ..service.client import shard_index

        kernel = self.rng.choice(_DEFAULT_KERNELS)
        req = self._cold_payload(kernel)
        victim = shard_index(req, self.replicas)
        fault = f"kill -9 replica {victim} after ~{delay_lo:.2f}s"
        doomed = self._pids_of(victim)
        out: dict = {}

        def issue() -> None:
            try:
                out["resp"] = self.client.request(req, deadline_s=120.0)
            except Exception as exc:  # noqa: BLE001 - judged below
                out["exc"] = exc

        worker = threading.Thread(target=issue)
        worker.start()
        time.sleep(self.rng.uniform(delay_lo, delay_hi))
        pid = self.sup.kill(victim)
        if pid is not None:
            self.kills += 1
            self.dead_pids.extend(doomed)
        worker.join(timeout=180.0)
        if worker.is_alive():
            return ChaosTrial(layer, kernel, fault, "silent-wrong",
                              "request still in flight 180s after kill")
        trial = self._judge_ride_through(layer, kernel, fault, req, out)
        if not trial.ok:
            return trial
        healed = self._heal(layer, kernel, fault)
        if healed is not None:
            return healed
        return trial

    def _judge_ride_through(self, layer: str, kernel: str, fault: str,
                            req: dict, out: dict) -> ChaosTrial:
        if "exc" in out:
            from ..errors import classify, is_classified

            exc = out["exc"]
            if is_classified(exc):
                # Classified but still a lost answer: with a whole fleet
                # to fail over to, the client should have ridden through.
                return ChaosTrial(layer, kernel, fault, "silent-wrong",
                                  f"sharded client gave up with "
                                  f"{classify(exc)}: {exc}")
            return ChaosTrial(layer, kernel, fault, "unclassified-trap",
                              f"{type(exc).__name__}: {exc}")
        trial = self.judge(layer, fault, req, out["resp"])
        if not trial.ok:
            return trial
        if trial.outcome != "correct":
            return trial
        return ChaosTrial(layer, kernel, fault, "killed-through",
                          f"served correct through the kill "
                          f"({out['resp'].get('attempts')} attempt(s))")

    def kill_compile(self) -> ChaosTrial:
        return self._kill_mid_flight("fl-kill-compile", 0.005, 0.08)

    def kill_write(self) -> ChaosTrial:
        return self._kill_mid_flight("fl-kill-write", 0.08, 0.4)

    def kill_lead(self) -> ChaosTrial:
        """Kill the shard owner while its cross-replica ``.lead`` marker
        is fresh; a survivor must reclaim it within the marker TTL and
        no stale marker may outlive the trial."""
        trial = self._kill_mid_flight("fl-kill-lead", 0.02, 0.15)
        if not trial.ok:
            return trial
        deadline = time.perf_counter() + self.marker_ttl_s + 10.0
        leads = self._lead_files()
        while leads and time.perf_counter() < deadline:
            time.sleep(0.05)
            leads = self._lead_files()
        if leads:
            return ChaosTrial("fl-kill-lead", trial.kernel, trial.fault,
                              "stale-lead",
                              f"markers {leads} still present "
                              f"{self.marker_ttl_s + 10.0:.1f}s after the "
                              f"kill (TTL {self.marker_ttl_s}s)")
        return trial

    def kill_wire(self) -> ChaosTrial:
        """SIGKILL the replica a *pinned no-retry* client is mid-frame
        with: the cut must surface as a classified NetworkError (never a
        partial frame accepted as an answer), and the sharded client
        must then serve the same request through the survivors."""
        import threading

        from ..service import GatewayClient
        from ..service.client import shard_index

        layer = "fl-kill-wire"
        kernel = self.rng.choice(_DEFAULT_KERNELS)
        req = self._cold_payload(kernel)
        victim = shard_index(req, self.replicas)
        fault = f"kill -9 replica {victim} mid-frame"
        addr = self.sup.slots()[victim]
        if addr is None:
            # The victim is mid-respawn from a prior trial; the pinned
            # half of this trial needs a live socket to cut.
            healed = self._heal(layer, kernel, fault)
            if healed is not None:
                return healed
            addr = self.sup.slots()[victim]
        doomed = self._pids_of(victim)
        pinned = GatewayClient([addr], retries=0, seed=self.seed + 53)
        out: dict = {}

        def issue() -> None:
            try:
                out["resp"] = pinned.request(req, deadline_s=60.0)
            except Exception as exc:  # noqa: BLE001 - judged below
                out["exc"] = exc

        worker = threading.Thread(target=issue)
        worker.start()
        time.sleep(self.rng.uniform(0.01, 0.1))
        pid = self.sup.kill(victim)
        if pid is not None:
            self.kills += 1
            self.dead_pids.extend(doomed)
        worker.join(timeout=120.0)
        pinned.close()
        if worker.is_alive():
            return ChaosTrial(layer, kernel, fault, "silent-wrong",
                              "pinned request still in flight 120s "
                              "after kill")
        if "exc" in out:
            from ..errors import classify, is_classified

            exc = out["exc"]
            if not is_classified(exc):
                return ChaosTrial(layer, kernel, fault, "unclassified-trap",
                                  f"{type(exc).__name__}: {exc}")
            detail = f"pinned client saw classified {classify(exc)}"
        else:
            # The kill landed outside the flight; the reply must still
            # be a whole, correct frame.
            t = self.judge(layer, fault, req, out["resp"])
            if not t.ok:
                return t
            detail = "kill missed the flight; whole frame served"
        resp2 = self.client.request(req, deadline_s=120.0)
        t2 = self.judge(layer, fault, req, resp2)
        if not t2.ok:
            return t2
        healed = self._heal(layer, kernel, fault)
        if healed is not None:
            return healed
        return ChaosTrial(layer, kernel, fault, "killed-through",
                          f"{detail}; survivors served the same key")

    # -- scripted epilogue trials ---------------------------------------------

    def park_trial(self) -> ChaosTrial:
        """Flap suppression on a throwaway one-replica supervisor: kill
        it past its restart budget and the replica must park with a
        classified FleetError, with readiness reporting the lost
        capacity."""
        from ..errors import classify
        from ..service.supervisor import FleetSupervisor

        layer, fault = "fl-park", "kill -9 x3 inside the flap window"
        sup = FleetSupervisor(
            1, self.root, farm_workers=0, workers=2,
            probe_interval_s=0.05, probe_timeout_s=2.0,
            restart_backoff_base=0.01, restart_backoff_cap=0.05,
            restart_budget=2, restart_window_s=60.0,
            seed=self.seed + 71,
        )
        try:
            sup.start()
            deadline = time.perf_counter() + 90.0
            while time.perf_counter() < deadline:
                ready = sup.ready()
                if ready["parked"] == 1:
                    break
                pids = sup.replica_pids()
                if pids:
                    sup.kill(0)
                time.sleep(0.05)
            ready = sup.ready()
            if ready["parked"] != 1:
                return ChaosTrial(layer, "*", fault, "silent-wrong",
                                  f"replica never parked: {ready}")
            if ready["ready"] or not ready["degraded"]:
                return ChaosTrial(layer, "*", fault, "silent-wrong",
                                  f"parked fleet still reports {ready}")
            err = sup.stats()["replicas"][0]["error"]
            parked_err = sup._replicas[0].error
            if parked_err is None or classify(parked_err) != "FleetError":
                return ChaosTrial(layer, "*", fault, "unclassified-trap",
                                  f"parked without a classified "
                                  f"FleetError: {err!r}")
            return ChaosTrial(layer, "*", fault, "parked-classified",
                              str(err))
        finally:
            sup.stop()

    def cache_audit_trial(self) -> ChaosTrial:
        """The shared cache after the kill storm: every ``*.vbk``
        envelope verifies, the quarantine is empty, no ``.lead`` marker
        survives.  Leftover ``*.tmp`` droppings are harmless by design
        (the index never reads them) and only reported."""
        import os

        from ..service.cache import unpack_kernel

        layer, fault = "fl-cache-audit", f"after {self.kills} kills"
        entries, tmps = 0, 0
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if name.endswith(".tmp"):
                tmps += 1
                continue
            if not name.endswith(".vbk") or not os.path.isfile(path):
                continue
            entries += 1
            try:
                with open(path, "rb") as f:
                    unpack_kernel(f.read())
            except Exception as exc:  # noqa: BLE001 - the audit verdict
                return ChaosTrial(layer, "*", fault, "torn-cache",
                                  f"{name} failed verification: {exc}")
        qdir = os.path.join(self.root, "quarantine")
        quarantined = os.listdir(qdir) if os.path.isdir(qdir) else []
        if quarantined:
            return ChaosTrial(layer, "*", fault, "torn-cache",
                              f"quarantine not empty: {quarantined} — a "
                              f"torn entry reached the cache namespace")
        leads = self._lead_files()
        if leads:
            return ChaosTrial(layer, "*", fault, "stale-lead",
                              f"leader markers survived the campaign: "
                              f"{leads}")
        return ChaosTrial(layer, "*", fault, "cache-clean",
                          f"{entries} entries verified, quarantine "
                          f"empty, 0 stale leads, {tmps} harmless "
                          f"tmp dropping(s)")

    def farm_leak_trial(self) -> ChaosTrial:
        """Every pid that died in the storm — replicas *and* their farm
        workers — must actually be gone (the farm's parent-death
        watchdog is what makes the workers true orphan-proof)."""
        layer, fault = "fl-leak-audit", f"{self.kills} kills"
        deadline = time.perf_counter() + 20.0
        alive = [p for p in set(self.dead_pids) if _pid_alive(p)]
        while alive and time.perf_counter() < deadline:
            time.sleep(0.05)
            alive = [p for p in set(self.dead_pids) if _pid_alive(p)]
        if alive:
            return ChaosTrial(layer, "*", fault, "leaked-workers",
                              f"pids {alive} survived their replica's "
                              f"SIGKILL")
        return ChaosTrial(layer, "*", fault, "farm-reaped",
                          f"all {len(set(self.dead_pids))} killed pids "
                          f"(replicas + farm workers) are gone")

    def final_ready_trial(self) -> ChaosTrial:
        """The fleet must end the campaign at full serving capacity."""
        layer, fault = "fl-final", "post-storm readiness"
        healed = self._heal(layer, "*", fault)
        if healed is not None:
            return healed
        req = self._payload(self.rng.choice(_DEFAULT_KERNELS))
        resp = self.client.request(req, deadline_s=120.0)
        trial = self.judge(layer, fault, req, resp)
        if not trial.ok:
            return trial
        ready = self.sup.ready()
        if not ready["ready"] or ready["degraded"]:
            return ChaosTrial(layer, "*", fault, "silent-wrong",
                              f"fleet not at full capacity: {ready}")
        return ChaosTrial(layer, "*", fault, "fleet-ready",
                          f"{ready['up']}/{ready['replicas']} replicas "
                          f"up after {self.kills} kills")


def run_fleet_campaign(
    n_faults: int = 200,
    seed: int = 0,
    kernels=_DEFAULT_KERNELS,
    size: int = 16,
    cache_dir: str | None = None,
    replicas: int = 3,
    farm_workers: int = 1,
) -> ChaosReport:
    """SIGKILL crash-consistency campaign over a supervised replica
    fleet (ISSUE 8's invariant).

    ``n_faults`` seeded trials against a live N-replica fleet sharing
    one cache directory — plain sharded traffic, cross-replica warm
    byte-identity probes, and SIGKILLs of the shard-owner replica
    mid-cold-compile, mid-cache-write, while holding a ``.lead``
    marker, and mid-frame under a pinned client — followed by four
    scripted epilogues: the flap->park trial, the shared-cache audit
    (every envelope verifies, quarantine empty, zero stale leads), the
    killed-pid leak audit, and the full-capacity readiness check.
    """
    import shutil
    import tempfile

    rng = random.Random(seed)
    kernels = tuple(kernels)
    own_dir = cache_dir is None
    root = cache_dir or tempfile.mkdtemp(prefix="repro-fleet-chaos-")
    soak = _FleetSoak(seed, size, root, replicas=int(replicas),
                      farm_workers=int(farm_workers))
    report = ChaosReport(seed=seed)
    try:
        for _ in range(int(n_faults)):
            layer = rng.choices(FLEET_LAYERS, weights=_FLEET_WEIGHTS)[0]
            kernel = rng.choice(kernels)
            try:
                if layer == "fl-plain":
                    t = soak.plain(kernel)
                elif layer == "fl-warm-identity":
                    t = soak.warm_identity(kernel)
                elif layer == "fl-kill-compile":
                    t = soak.kill_compile()
                elif layer == "fl-kill-write":
                    t = soak.kill_write()
                elif layer == "fl-kill-lead":
                    t = soak.kill_lead()
                else:
                    t = soak.kill_wire()
            except Exception as exc:  # noqa: BLE001 - census integrity:
                # a trial that dies is a failing outcome, never a
                # campaign crash that loses the whole report.
                t = ChaosTrial(layer, kernel, "trial-crashed",
                               "unclassified-trap",
                               f"{type(exc).__name__}: {exc}")
            report.trials.append(t)
        report.trials.append(soak.park_trial())
        report.trials.append(soak.cache_audit_trial())
        report.trials.append(soak.farm_leak_trial())
        report.trials.append(soak.final_ready_trial())
        report.service_stats = {
            "fleet": soak.sup.stats(),
            "ready": soak.sup.ready(),
            "kills": soak.kills,
            "client": {
                "attempts": soak.client.attempts,
                "failovers": soak.client.failovers,
                "wire_errors": soak.client.wire_errors,
            },
        }
    finally:
        soak.close()
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)
    return report
