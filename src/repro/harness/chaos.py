"""Seeded chaos campaigns over the fail-soft pipeline.

A campaign draws ``n_faults`` faults from a seeded RNG, injects each into
the matching layer of the toolchain, and classifies the observable
outcome.  The **chaos invariant** asserted by :meth:`ChaosReport.ok`:

    every injected fault leads to a *correct* result (possibly via the
    scalar-fallback degradation path) or a *classified* trap — never a
    silent wrong answer and never an unclassified traceback.

Layers and their pass criteria:

========================= ==================================================
layer                     passing outcomes
========================= ==================================================
``bytecode``              bit-flipped container rejected by a classified
                          :class:`~repro.bytecode.writer.FormatError`
                          before any IR reaches the JIT
``jit-lowering``          forced idiom-lowering failure degrades the loop
                          group to scalar; run still checks against numpy
``jit-materialize``       whole-function materialization failure triggers
                          the force-scalar compile retry; run still checks
``vm-mem``                injected memory fault raises the *identical*
                          classified VMError from both execution engines
``vm-misalign``           skewed array bases either still check or raise a
                          classified VMError (alignment trap)
``harness``               crashed/stalled workers are quarantined; every
                          other cell of the sweep completes and checks
========================= ==================================================

Failing outcomes — ``silent-wrong`` (corruption accepted), ``wrong-answer``
(fallback produced values that fail the numpy check), ``unclassified-trap``
(an exception outside the :mod:`repro.errors` taxonomy), and
``parity-mismatch`` (the two VM engines disagree on a trap) — make the
campaign fail.

Campaigns are deterministic in ``seed`` and run single-process (the
``harness`` layer, which needs real worker processes, is opt-in via
``include_harness``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .. import faults
from ..bytecode import encode_module
from ..errors import classify, is_classified
from ..frontend import compile_source
from ..kernels import get_kernel
from ..vectorizer import split_config, vectorize_module
from .flows import CheckError, FlowRunner

__all__ = ["ChaosTrial", "ChaosReport", "run_campaign", "LAYERS"]

#: injection layers with their campaign weights.
LAYERS = ("bytecode", "jit-lowering", "jit-materialize", "vm-mem",
          "vm-misalign")
_WEIGHTS = (40, 20, 5, 20, 15)

#: failing outcome tags (anything else passes).
FAILING = ("silent-wrong", "wrong-answer", "unclassified-trap",
           "parity-mismatch")

_DEFAULT_KERNELS = ("saxpy_fp", "dscal_fp", "interp_fp", "sfir_fp")
_IDIOMS = ("*", "realign_load", "vstore", "reduc_plus", "init_uniform")
_TARGETS = ("sse", "altivec", "neon")
_FLOWS = ("split_vec_mono", "split_vec_gcc4cli")


@dataclass(frozen=True)
class ChaosTrial:
    """One injected fault and its observed outcome."""

    layer: str
    kernel: str
    fault: str
    outcome: str  # trapped | degraded-correct | correct | quarantined | FAILING
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome not in FAILING


@dataclass
class ChaosReport:
    """The outcome census of one campaign."""

    seed: int
    trials: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.trials)

    @property
    def failures(self) -> list:
        return [t for t in self.trials if not t.ok]

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for t in self.trials:
            out[t.outcome] = out.get(t.outcome, 0) + 1
        return dict(sorted(out.items()))

    def summary(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed}, "
            f"{len(self.trials)} faults injected"
        ]
        for outcome, n in self.counts().items():
            flag = "  !!" if outcome in FAILING else ""
            lines.append(f"  {outcome:18s} {n:4d}{flag}")
        lines.append("invariant " + ("HELD" if self.ok else "VIOLATED"))
        return "\n".join(lines)


def _encoded(kernel: str, size: int, cache: dict) -> bytes:
    blob = cache.get(kernel)
    if blob is None:
        inst = get_kernel(kernel).instantiate(size)
        module = compile_source(inst.source, inst.name)
        blob = cache[kernel] = encode_module(
            vectorize_module(module, split_config())
        )
    return blob


def _classified_outcome(exc: Exception) -> ChaosTrial | tuple[str, str]:
    if isinstance(exc, CheckError):
        return ("wrong-answer", str(exc))
    if is_classified(exc):
        return ("trapped", classify(exc))
    return ("unclassified-trap", f"{type(exc).__name__}: {exc}")


def _trial_bytecode(kernel: str, size: int, rng, cache) -> ChaosTrial:
    from ..bytecode import decode_module

    data = _encoded(kernel, size, cache)
    flip = faults.BitFlip(offset=rng.randrange(len(data)),
                          bit=rng.randrange(8))
    corrupted = faults.FaultPlan([flip]).corrupt(data)
    try:
        decode_module(corrupted)
    except Exception as exc:
        outcome, detail = _classified_outcome(exc)
        return ChaosTrial("bytecode", kernel, repr(flip), outcome, detail)
    return ChaosTrial(
        "bytecode", kernel, repr(flip), "silent-wrong",
        "corrupted container decoded without a trap",
    )


def _run_checked(kernel: str, size: int, flow: str, target: str,
                 plan, **runner_kwargs):
    """(FlowResult, CompiledKernel) under an installed plan."""
    from ..targets import get_target

    runner = FlowRunner(**runner_kwargs)
    inst = get_kernel(kernel).instantiate(size)
    with faults.injected(plan):
        result = runner.run(inst, flow, target)
        ck = runner.compiled(inst, flow, get_target(target))
    return result, ck


def _trial_jit(kernel: str, size: int, rng, materialize: bool) -> ChaosTrial:
    flow = rng.choice(_FLOWS)
    target = rng.choice(_TARGETS)
    if materialize:
        fault = faults.MaterializeFault(target="*")
        layer = "jit-materialize"
    else:
        fault = faults.LoweringFault(idiom=rng.choice(_IDIOMS), target="*")
        layer = "jit-lowering"
    plan = faults.FaultPlan([fault])
    try:
        result, ck = _run_checked(kernel, size, flow, target, plan)
    except Exception as exc:
        outcome, detail = _classified_outcome(exc)
        return ChaosTrial(layer, kernel, repr(fault), outcome, detail)
    if not result.checked:
        return ChaosTrial(layer, kernel, repr(fault), "silent-wrong",
                          "result was not checked")
    outcome = "degraded-correct" if ck.degraded else "correct"
    detail = "; ".join(f"{e.cause}" for e in ck.events)
    return ChaosTrial(layer, kernel, repr(fault), outcome, detail)


def _trial_vm_mem(kernel: str, size: int, rng) -> ChaosTrial:
    flow = rng.choice(_FLOWS)
    target = rng.choice(_TARGETS)
    after = rng.randrange(1, 80)
    fault = faults.MemFault(after=after)
    observed = {}
    for engine in ("threaded", "reference"):
        plan = faults.FaultPlan([fault])
        try:
            result, _ck = _run_checked(
                kernel, size, flow, target, plan, engine=engine
            )
            observed[engine] = (
                ("correct", "") if result.checked
                else ("silent-wrong", "unchecked")
            )
        except Exception as exc:
            observed[engine] = _classified_outcome(exc) + (str(exc),)
    a, b = observed["threaded"], observed["reference"]
    if a != b:
        return ChaosTrial(
            "vm-mem", kernel, repr(fault), "parity-mismatch",
            f"threaded={a} reference={b}",
        )
    outcome, detail = a[0], a[1]
    return ChaosTrial("vm-mem", kernel, repr(fault), outcome, detail)


def _trial_vm_misalign(kernel: str, size: int, rng) -> ChaosTrial:
    flow = rng.choice(_FLOWS)
    target = rng.choice(_TARGETS)
    mis = rng.choice((1, 2, 3, 4, 5, 7, 8, 12))
    fault = faults.MisalignFault(misalign=mis)
    plan = faults.FaultPlan([fault])
    try:
        result, _ck = _run_checked(
            kernel, size, flow, target, plan,
            base_misalign=plan.misalign() or 0,
        )
    except Exception as exc:
        outcome, detail = _classified_outcome(exc)
        return ChaosTrial("vm-misalign", kernel, repr(fault), outcome, detail)
    if not result.checked:
        return ChaosTrial("vm-misalign", kernel, repr(fault), "silent-wrong",
                          "result was not checked")
    return ChaosTrial("vm-misalign", kernel, repr(fault), "correct", "")


def _trials_harness(kernels, size: int, rng, timeout: float) -> list:
    """One crashed and one stalled sweep (worker processes required)."""
    from .parallel import Cell, run_cells

    out = []
    cells = [
        Cell(k, flow, "sse", size) for k in kernels for flow in _FLOWS
    ]
    for fault in (
        faults.WorkerCrash(kernel=rng.choice(kernels)),
        faults.WorkerStall(kernel=rng.choice(kernels), seconds=3600.0),
    ):
        plan = faults.FaultPlan([fault])
        results = run_cells(
            cells, jobs=2, fault_plan=plan, timeout=timeout, retries=1
        )
        bad = [r for r in results if not r.ok]
        wrongly_ok = [r for r in bad if r.cell.kernel != fault.kernel]
        missing = len(results) != len(cells)
        if wrongly_ok or missing or not bad:
            out.append(ChaosTrial(
                "harness", fault.kernel, repr(fault), "silent-wrong",
                f"quarantined={[(r.cell.kernel, r.cell.flow) for r in bad]} "
                f"of {len(results)}/{len(cells)} results",
            ))
        else:
            out.append(ChaosTrial(
                "harness", fault.kernel, repr(fault), "quarantined",
                f"{len(bad)} cell(s) quarantined "
                f"({bad[0].error_kind}), {len(results) - len(bad)} completed",
            ))
    return out


def run_campaign(
    n_faults: int = 200,
    seed: int = 0,
    kernels=_DEFAULT_KERNELS,
    size: int = 16,
    include_harness: bool = False,
    harness_timeout: float = 10.0,
) -> ChaosReport:
    """Inject ``n_faults`` seeded faults; returns the outcome census.

    Deterministic in ``seed``.  ``include_harness`` adds two process-pool
    sweeps (a worker crash and a worker stall) on top of ``n_faults``.
    """
    rng = random.Random(seed)
    kernels = tuple(kernels)
    report = ChaosReport(seed=seed)
    enc_cache: dict = {}
    for _ in range(int(n_faults)):
        layer = rng.choices(LAYERS, weights=_WEIGHTS)[0]
        kernel = rng.choice(kernels)
        if layer == "bytecode":
            t = _trial_bytecode(kernel, size, rng, enc_cache)
        elif layer == "jit-lowering":
            t = _trial_jit(kernel, size, rng, materialize=False)
        elif layer == "jit-materialize":
            t = _trial_jit(kernel, size, rng, materialize=True)
        elif layer == "vm-mem":
            t = _trial_vm_mem(kernel, size, rng)
        else:
            t = _trial_vm_misalign(kernel, size, rng)
        report.trials.append(t)
    if include_harness:
        report.trials.extend(
            _trials_harness(kernels, size, rng, harness_timeout)
        )
    return report
