"""Process-parallel experiment sweeps, hardened for the fail-soft story.

An experiment is a map over *cells* — (kernel, flow, target, size)
tuples — each producing one :class:`~repro.harness.flows.FlowResult`.
Cells are independent (the VM is deterministic and every worker builds
its own :class:`FlowRunner`), so the sweep parallelizes across processes
with :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism: results are returned in *input cell order* regardless of
completion order, kernel instantiation is seeded, and the VM has no
timing noise — so a report generated with ``jobs=N`` is byte-identical
to ``jobs=1``.  Only the per-cell wall-clock timings (reported
separately) differ between runs.

Resilience (the hardened part):

* a cell that raises inside a worker comes back as an error-annotated
  :class:`CellResult` (``result=None``, ``error``/``error_kind`` set) —
  the sweep completes and only the faulty cell is quarantined;
* a worker that *dies* (segfault-style, simulated by
  :class:`~repro.faults.WorkerCrash`) breaks the process pool — the pool
  is torn down and rebuilt, the in-flight cells are re-run in
  **isolation mode** (one at a time) so the crasher is blamed
  deterministically and innocent neighbours are not charged attempts;
* a cell that overruns ``timeout`` seconds (simulated by
  :class:`~repro.faults.WorkerStall`) has its pool killed and is charged
  an attempt;
* charged failures are retried up to ``retries`` times with linear
  backoff before the cell is quarantined;
* ``KeyboardInterrupt`` propagates promptly: worker processes are
  terminated and the pool is shut down in a ``finally:`` block, so no
  children are orphaned.

Worker processes keep a per-process :class:`FlowRunner` (compilation
caches) and a per-process kernel-instance cache, so cells should be
ordered kernel-major to maximize cache reuse.  A ``fault_plan``
(:class:`~repro.faults.FaultPlan`) ships to every worker through the
pool initializer, arming all injection points inside the worker.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from .. import faults, obs
from ..errors import ReproError, classify
from ..kernels import get_kernel
from .flows import FlowResult, FlowRunner

__all__ = ["Cell", "CellResult", "CellError", "backoff_delay", "run_cells"]


def backoff_delay(
    attempt: int, base: float = 0.05, cap: float = 1.0, rng=None
) -> float:
    """Jittered exponential backoff delay for re-attempt ``attempt``.

    ``base * 2**(attempt-1)`` capped at ``cap``, scaled by a uniform
    jitter in ``[0.5, 1.0)`` so a thundering herd of retries decorrelates.
    This is the one retry policy of the toolchain: :func:`run_cells` uses
    it between cell re-attempts and
    :class:`repro.service.KernelService` uses it between request retries
    (pass a seeded ``rng`` for deterministic campaigns).
    """
    if attempt <= 0 or base <= 0:
        return 0.0
    span = min(float(cap), float(base) * (2.0 ** (attempt - 1)))
    r = (rng or random).random()
    return span * (0.5 + 0.5 * r)


class CellError(ReproError):
    """A sweep cell that could not produce a result: the wrapped worker
    failure (classified), a worker crash, or a deadline overrun.

    Attributes:
        kind: machine-readable tag — ``"worker-crash"``, ``"timeout"``,
            or the :func:`repro.errors.classify` tag of the underlying
            exception.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


@dataclass(frozen=True)
class Cell:
    """One (kernel x flow x target) execution of an experiment sweep."""

    kernel: str
    flow: str
    target: str
    size: int | None = None


@dataclass
class CellResult:
    """A cell's flow result plus its wall-clock cost (compile + run).

    A quarantined cell carries ``result=None`` with ``error`` (human
    readable) and ``error_kind`` (machine readable) set; ``attempts`` is
    the number of tries consumed (1 for a first-try success).
    """

    cell: Cell
    result: FlowResult | None
    seconds: float
    error: str | None = None
    error_kind: str | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.result is not None


# -- worker-process state -----------------------------------------------------

_RUNNER: FlowRunner | None = None
_INSTANCES: dict = {}


def _init_worker(runner_kwargs: dict, fault_plan=None) -> None:
    global _RUNNER
    _RUNNER = FlowRunner(**runner_kwargs)
    _INSTANCES.clear()
    if fault_plan is not None:
        faults.install(fault_plan)
    else:
        faults.uninstall()


def _instance(name: str, size: int | None):
    key = (name, size)
    inst = _INSTANCES.get(key)
    if inst is None:
        inst = _INSTANCES[key] = get_kernel(name).instantiate(size)
    return inst


def _apply_worker_fault(cell: Cell) -> None:
    """Consult the installed plan for a crash/stall matching this cell."""
    fault = faults.worker_fault(cell.kernel, cell.flow)
    if fault is None:
        return
    if isinstance(fault, faults.WorkerCrash):
        import os

        os._exit(fault.exit_code)  # simulated segfault: no cleanup, no reply
    if isinstance(fault, faults.WorkerStall):
        time.sleep(fault.seconds)


def _run_cell(cell: Cell) -> CellResult:
    _apply_worker_fault(cell)
    start = time.perf_counter()
    try:
        inst = _instance(cell.kernel, cell.size)
        result = _RUNNER.run(inst, cell.flow, cell.target)
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        return CellResult(
            cell, None, time.perf_counter() - start,
            error=str(exc), error_kind=classify(exc),
        )
    return CellResult(cell, result, time.perf_counter() - start)


def _run_cell_serial(cell: Cell, runner: FlowRunner, instances: dict) -> CellResult:
    start = time.perf_counter()
    try:
        key = (cell.kernel, cell.size)
        inst = instances.get(key)
        if inst is None:
            inst = instances[key] = get_kernel(cell.kernel).instantiate(
                cell.size
            )
        result = runner.run(inst, cell.flow, cell.target)
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        return CellResult(
            cell, None, time.perf_counter() - start,
            error=str(exc), error_kind=classify(exc),
        )
    return CellResult(cell, result, time.perf_counter() - start)


# -- the hardened scheduler ---------------------------------------------------


class _Pool:
    """A rebuildable ProcessPoolExecutor with hard-kill teardown."""

    def __init__(self, jobs: int, kwargs: dict, fault_plan) -> None:
        self.jobs = jobs
        self.kwargs = kwargs
        self.fault_plan = fault_plan
        self.pool: ProcessPoolExecutor | None = None

    def get(self) -> ProcessPoolExecutor:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.kwargs, self.fault_plan),
            )
        return self.pool

    def kill(self) -> None:
        """Terminate worker processes and discard the executor.  Used
        after a crash/timeout (stuck or dead workers cannot be joined)
        and on KeyboardInterrupt (no orphaned children)."""
        pool = self.pool
        self.pool = None
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        for p in procs:
            try:
                p.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for p in procs:
            try:
                p.join(timeout=5.0)
            except Exception:
                pass


def run_cells(
    cells,
    jobs: int = 1,
    runner: FlowRunner | None = None,
    runner_kwargs: dict | None = None,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.05,
    fault_plan=None,
    deadline=None,
) -> list[CellResult]:
    """Run every cell; returns results in input order.

    ``jobs=1`` runs serially in-process against ``runner`` (or a fresh
    :class:`FlowRunner` built from ``runner_kwargs``), sharing its
    compilation caches with the caller.  ``jobs>1`` fans the cells out to
    a process pool; each worker builds its own runner from
    ``runner_kwargs`` (a live runner's caches hold compiled closures and
    are deliberately not shipped across the process boundary).

    ``timeout`` is a per-cell deadline in seconds (None = no deadline);
    ``retries`` bounds re-attempts after a crash or overrun (with
    jittered exponential :func:`backoff_delay` sleeps, ``backoff`` being
    the base delay); ``fault_plan`` arms the injection points inside
    every worker.  A cell that exhausts its attempts is *quarantined*:
    its :class:`CellResult` carries ``result=None`` and a classified
    ``error_kind`` while the rest of the sweep completes normally.

    ``deadline`` bounds the *whole sweep*: either a float budget in
    seconds or a :class:`repro.service.Deadline` (anything exposing
    ``remaining()``), as propagated from a service request.  The
    remaining budget tightens every cell's effective timeout, and cells
    that cannot start before expiry are quarantined with
    ``CellError[deadline]`` (deadline expiry is terminal — no retries).
    """
    cells = list(cells)

    if deadline is None:
        remaining = None
    elif hasattr(deadline, "remaining"):
        remaining = deadline.remaining
    else:
        _expires = time.monotonic() + float(deadline)

        def remaining() -> float:
            return max(0.0, _expires - time.monotonic())

    def _deadline_result(cell: Cell, attempts: int = 1) -> CellResult:
        err = CellError(
            "deadline",
            f"{cell.kernel}/{cell.flow} on {cell.target}: sweep deadline "
            f"expired before the cell could run",
        )
        return CellResult(
            cell, None, 0.0,
            error=str(err), error_kind="CellError[deadline]",
            attempts=attempts,
        )

    if jobs <= 1:
        if runner is None:
            runner = FlowRunner(**(runner_kwargs or {}))
        instances: dict = {}

        def serial(cell: Cell) -> CellResult:
            if remaining is not None and remaining() <= 0.0:
                return _deadline_result(cell)
            return _run_cell_serial(cell, runner, instances)

        if fault_plan is not None:
            with faults.injected(fault_plan):
                return [serial(c) for c in cells]
        return [serial(c) for c in cells]

    kwargs = dict(runner_kwargs or {})
    if runner is not None and not kwargs:
        kwargs = runner.config()

    results: list[CellResult | None] = [None] * len(cells)
    #: (index, cell, attempts-so-far)
    pending: deque = deque((i, c, 0) for i, c in enumerate(cells))
    isolate: deque = deque()  # cells re-run one-at-a-time after a crash
    mgr = _Pool(jobs, kwargs, fault_plan)
    inflight: dict = {}  # future -> (index, cell, attempts, deadline)

    def submit(i, cell, attempts):
        if attempts > 0 and backoff > 0:
            time.sleep(backoff_delay(attempts, base=backoff))
        fut = mgr.get().submit(_run_cell, cell)
        limit = timeout
        if remaining is not None:
            rem = remaining()
            limit = rem if limit is None else min(limit, rem)
        dl = None if limit is None else time.monotonic() + max(0.0, limit)
        inflight[fut] = (i, cell, attempts + 1, dl)

    def charge(i, cell, attempts, kind, message):
        """Charge a failed attempt; requeue or quarantine."""
        if attempts <= retries:
            obs.count("harness.retries")
            (isolate if isolation[0] else pending).append((i, cell, attempts))
        else:
            obs.count("harness.quarantined")
            err = CellError(kind, message)
            results[i] = CellResult(
                cell, None, 0.0,
                error=str(err), error_kind=f"CellError[{kind}]",
                attempts=attempts,
            )

    isolation = [False]

    def breakdown(blame_kind: str, expired_keys):
        """Pool died or a deadline passed: kill it, sort the in-flight
        cells into blamed (charged) vs innocent (free re-run)."""
        obs.count(
            "harness.timeouts" if blame_kind == "timeout"
            else "harness.worker_crashes"
        )
        mgr.kill()
        isolation[0] = True
        for fut, (i, cell, attempts, _dl) in list(inflight.items()):
            blamed = fut in expired_keys or len(inflight) == 1
            if blamed:
                charge(
                    i, cell, attempts, blame_kind,
                    f"{cell.kernel}/{cell.flow} on {cell.target} "
                    f"(attempt {attempts})",
                )
            else:
                # Innocent bystander: re-run without charging an attempt.
                isolate.append((i, cell, attempts - 1))
        inflight.clear()

    try:
        while pending or isolate or inflight:
            # Isolation mode runs one cell at a time so a repeat crash
            # deterministically blames the cell that died.
            cap = 1 if isolation[0] else jobs
            queue = isolate if isolate else pending
            while queue and len(inflight) < cap:
                i, cell, attempts = queue.popleft()
                if remaining is not None and remaining() <= 0.0:
                    # Sweep deadline expired: terminal, no retries.
                    results[i] = _deadline_result(cell, max(1, attempts))
                    queue = isolate if isolate else pending
                    continue
                try:
                    submit(i, cell, attempts)
                except BrokenProcessPool:
                    # The pool broke between completions; everything in
                    # flight is innocent, this cell is merely unlucky.
                    queue.appendleft((i, cell, attempts))
                    breakdown("worker-crash", set())
                    break
                queue = isolate if isolate else pending
            if not inflight:
                continue

            poll = 0.05
            if timeout:
                poll = min(poll, timeout / 4)
            done, _ = wait(inflight, timeout=poll, return_when=FIRST_COMPLETED)

            now = time.monotonic()
            expired = {
                f for f, (_i, _c, _a, dl) in inflight.items()
                if dl is not None and now > dl and f not in done
            }
            if expired:
                breakdown("timeout", expired)
                continue

            crashed = False
            for fut in done:
                i, cell, attempts, _dl = inflight.pop(fut)
                try:
                    res = fut.result()
                except (BrokenProcessPool, OSError, EOFError):
                    # The worker died; we cannot tell (yet) whether this
                    # future's cell was the trigger — re-examine everyone.
                    inflight[fut] = (i, cell, attempts, _dl)
                    crashed = True
                    break
                res.attempts = attempts
                results[i] = res
            if crashed:
                breakdown("worker-crash", set())
    finally:
        mgr.kill()

    return [r for r in results if r is not None]
