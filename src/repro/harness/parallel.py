"""Process-parallel experiment sweeps.

An experiment is a map over *cells* — (kernel, flow, target, size)
tuples — each producing one :class:`~repro.harness.flows.FlowResult`.
Cells are independent (the VM is deterministic and every worker builds
its own :class:`FlowRunner`), so the sweep parallelizes across processes
with :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism: results are returned in *input cell order* regardless of
completion order (``Executor.map`` semantics), kernel instantiation is
seeded, and the VM has no timing noise — so a report generated with
``jobs=N`` is byte-identical to ``jobs=1``.  Only the per-cell wall-clock
timings (reported separately) differ between runs.

Worker processes keep a per-process :class:`FlowRunner` (compilation
caches) and a per-process kernel-instance cache, so cells should be
ordered kernel-major to maximize cache reuse within a chunk.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..kernels import get_kernel
from .flows import FlowResult, FlowRunner

__all__ = ["Cell", "CellResult", "run_cells"]


@dataclass(frozen=True)
class Cell:
    """One (kernel x flow x target) execution of an experiment sweep."""

    kernel: str
    flow: str
    target: str
    size: int | None = None


@dataclass
class CellResult:
    """A cell's flow result plus its wall-clock cost (compile + run)."""

    cell: Cell
    result: FlowResult
    seconds: float


# -- worker-process state -----------------------------------------------------

_RUNNER: FlowRunner | None = None
_INSTANCES: dict = {}


def _init_worker(runner_kwargs: dict) -> None:
    global _RUNNER
    _RUNNER = FlowRunner(**runner_kwargs)
    _INSTANCES.clear()


def _instance(name: str, size: int | None):
    key = (name, size)
    inst = _INSTANCES.get(key)
    if inst is None:
        inst = _INSTANCES[key] = get_kernel(name).instantiate(size)
    return inst


def _run_cell(cell: Cell) -> CellResult:
    inst = _instance(cell.kernel, cell.size)
    start = time.perf_counter()
    result = _RUNNER.run(inst, cell.flow, cell.target)
    return CellResult(cell, result, time.perf_counter() - start)


def run_cells(
    cells,
    jobs: int = 1,
    runner: FlowRunner | None = None,
    runner_kwargs: dict | None = None,
) -> list[CellResult]:
    """Run every cell; returns results in input order.

    ``jobs=1`` runs serially in-process against ``runner`` (or a fresh
    :class:`FlowRunner` built from ``runner_kwargs``), sharing its
    compilation caches with the caller.  ``jobs>1`` fans the cells out to
    a process pool; each worker builds its own runner from
    ``runner_kwargs`` (a live runner's caches hold compiled closures and
    are deliberately not shipped across the process boundary).
    """
    cells = list(cells)
    if jobs <= 1:
        if runner is None:
            runner = FlowRunner(**(runner_kwargs or {}))
        out = []
        instances: dict = {}
        for cell in cells:
            key = (cell.kernel, cell.size)
            inst = instances.get(key)
            if inst is None:
                inst = instances[key] = get_kernel(cell.kernel).instantiate(
                    cell.size
                )
            start = time.perf_counter()
            result = runner.run(inst, cell.flow, cell.target)
            out.append(CellResult(cell, result, time.perf_counter() - start))
        return out

    kwargs = dict(runner_kwargs or {})
    if runner is not None and not kwargs:
        kwargs = runner.config()
    # Chunk so each worker gets runs of consecutive (same-kernel) cells:
    # the per-process compilation caches then hit within a chunk.
    chunksize = max(1, len(cells) // (jobs * 4))
    with ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker, initargs=(kwargs,)
    ) as pool:
        return list(pool.map(_run_cell, cells, chunksize=chunksize))
