"""Experiment drivers: one function per table/figure of the paper.

Each driver returns plain data (lists of rows + summary statistics) so the
benchmark harness, the tests, and EXPERIMENTS.md generation can share them.
See DESIGN.md's per-experiment index (E1-E10).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..jit import NativeBackend, OptimizingJIT
from ..kernels import all_kernels, get_kernel
from ..machine import analyze_loop_throughput
from ..targets import AVX, get_target
from .flows import FlowRunner

__all__ = [
    "figure5",
    "figure6",
    "table3",
    "ablation_alignment",
    "compile_time_stats",
    "ablation_realign_reuse",
    "ablation_dependence_hints",
    "scalarization_overhead",
    "Figure5Result",
    "Figure6Result",
    "Table3Result",
]

#: Table 3's kernel subset (the fp kernels with AVX support).
TABLE3_KERNELS = (
    "dissolve_fp", "sfir_fp", "interp_fp", "MMM_fp",
    "saxpy_fp", "dscal_fp", "saxpy_dp", "dscal_dp",
)


@dataclass
class Figure5Result:
    """Mono JIT normalized vectorization impact: (A/C) / (E/F)."""

    target: str
    rows: list = field(default_factory=list)  # (kernel, impact)
    polybench_avg: float = 0.0
    arith_mean: float = 0.0
    #: per-cell wall-clock stats: (kernel, flow, seconds), sweep order.
    cell_seconds: list = field(default_factory=list)


@dataclass
class Figure6Result:
    """gcc4cli split-vectorized time normalized to native: D / F."""

    target: str
    rows: list = field(default_factory=list)  # (kernel, normalized time)
    harmonic_mean: float = 0.0
    #: per-cell wall-clock stats: (kernel, flow, seconds), sweep order.
    cell_seconds: list = field(default_factory=list)


@dataclass
class Table3Result:
    """IACA-style cycles per vector-loop iteration on AVX."""

    rows: list = field(default_factory=list)  # (kernel, native, split)


def _runner(overrides=None, **kw) -> FlowRunner:
    return FlowRunner(vectorizer_overrides=overrides or {}, **kw)


#: Figure 5 problem-size multiplier for the Table 2 media/DSP kernels.
#: The threaded-code engine made the VM fast enough to run the sweep at
#: sizes closer to the paper's; ``quick=True`` (CI) keeps the historical
#: default sizes.  PolyBench kernels keep their defaults either way (they
#: are O(n^2)/O(n^3) in the size parameter).
FIGURE5_KERNEL_SCALE = 2


def _figure5_size(kernel, size: int | None, quick: bool) -> int | None:
    if size is not None:
        return size
    if quick or kernel.category != "kernel":
        return None
    return kernel.default_size * FIGURE5_KERNEL_SCALE


def _sweep(kernels, flows, target, sizes, jobs, runner):
    """Run a (kernel x flow) sweep; returns ({(kernel, flow): cycles},
    [(kernel, flow, seconds), ...]) with deterministic ordering."""
    from .parallel import Cell, run_cells

    cells = [
        Cell(kernel.name, flow, target, sizes[kernel.name])
        for kernel in kernels
        for flow in flows
    ]
    results = run_cells(cells, jobs=jobs, runner=runner)
    cycles = {
        (r.cell.kernel, r.cell.flow):
            r.result.cycles if r.result is not None else float("nan")
        for r in results
    }
    timings = [(r.cell.kernel, r.cell.flow, r.seconds) for r in results]
    return cycles, timings


def figure5(target: str = "sse", size: int | None = None,
            runner: FlowRunner | None = None, jobs: int = 1,
            quick: bool = False) -> Figure5Result:
    """Figure 5: Mono JIT vectorization impact normalized to native.

    impact = (A/C) / (E/F) where A/C are Mono scalar/vector bytecode
    executions and E/F native scalar/vector (Figure 4 letters); higher is
    better, 1.0 means the JIT extracts exactly the native speedup.

    ``jobs`` fans the (kernel x flow) cells out over worker processes;
    results (and therefore the rendered figure) are byte-identical for any
    job count.  ``quick`` reverts to the historical small problem sizes.
    """
    if runner is None and jobs <= 1:
        runner = _runner()
    kernels = all_kernels()
    flows = ("split_scalar_mono", "split_vec_mono",
             "native_scalar", "native_vec")
    sizes = {k.name: _figure5_size(k, size, quick) for k in kernels}
    cycles, timings = _sweep(kernels, flows, target, sizes, jobs, runner)
    out = Figure5Result(target=target, cell_seconds=timings)
    impacts = []
    poly_impacts = []
    for kernel in kernels:
        a = cycles[(kernel.name, "split_scalar_mono")]
        c = cycles[(kernel.name, "split_vec_mono")]
        e = cycles[(kernel.name, "native_scalar")]
        f = cycles[(kernel.name, "native_vec")]
        impact = (a / c) / (e / f)
        if kernel.category == "polybench":
            poly_impacts.append(impact)
        else:
            out.rows.append((kernel.name, impact))
            impacts.append(impact)
    out.polybench_avg = statistics.fmean(poly_impacts)
    out.rows.append(("polybench_avg", out.polybench_avg))
    out.arith_mean = statistics.fmean(impacts + [out.polybench_avg])
    return out


def figure6(target: str = "sse", size: int | None = None,
            runner: FlowRunner | None = None,
            jobs: int = 1) -> Figure6Result:
    """Figure 6: split-vectorized execution time normalized to native
    (D/F, lower is better).  ``jobs`` parallelizes the sweep across
    processes with byte-identical results."""
    if runner is None and jobs <= 1:
        runner = _runner()
    kernels = all_kernels()
    flows = ("split_vec_gcc4cli", "native_vec")
    sizes = {k.name: size for k in kernels}
    cycles, timings = _sweep(kernels, flows, target, sizes, jobs, runner)
    out = Figure6Result(target=target, cell_seconds=timings)
    ratios = []
    for kernel in kernels:
        d = cycles[(kernel.name, "split_vec_gcc4cli")]
        f = cycles[(kernel.name, "native_vec")]
        ratio = d / f
        out.rows.append((kernel.name, ratio))
        ratios.append(ratio)
    out.harmonic_mean = statistics.harmonic_mean(ratios)
    return out


def table3(size: int | None = None,
           runner: FlowRunner | None = None) -> Table3Result:
    """Table 3: static AVX throughput (cycles/iteration) of the vector loop,
    native vs split, via the IACA-style analyzer."""
    runner = runner or _runner()
    out = Table3Result()
    for name in TABLE3_KERNELS:
        kernel = get_kernel(name)
        inst = kernel.instantiate(size)
        native_ck = NativeBackend().compile(
            runner.native_ir(inst, AVX), AVX
        )
        split_ck = OptimizingJIT().compile(runner.split_ir(inst), AVX)
        native_cycles = analyze_loop_throughput(native_ck.mfunc, AVX).rounded()
        split_cycles = analyze_loop_throughput(split_ck.mfunc, AVX).rounded()
        out.rows.append((name, native_cycles, split_cycles))
    return out


def ablation_alignment(targets=("sse", "altivec"), size: int | None = None):
    """§V-A.b: repeat the Mono experiment with alignment optimizations and
    hints disabled; report the per-kernel degradation factor (paper: 2.5x
    average)."""
    base = _runner()
    nohints = _runner(
        overrides={"enable_alignment_opts": False}
    )
    rows = []
    factors = []
    for target in targets:
        for kernel in all_kernels():
            inst = kernel.instantiate(size)
            with_opts = base.run(inst, "split_vec_mono", target).cycles
            without = nohints.run(inst, "split_vec_mono", target).cycles
            factor = without / with_opts
            rows.append((target, kernel.name, factor))
            factors.append(factor)
    return {"rows": rows, "average_degradation": statistics.fmean(factors)}


def ablation_realign_reuse(target: str = "altivec", size: int | None = None):
    """DESIGN.md ablation: optimized realignment (cross-iteration reuse of
    the last aligned load, Figure 2d) vs naive per-iteration realignment."""
    base = _runner()
    noreuse = _runner(overrides={"enable_realign_reuse": False})
    rows = []
    for kernel in all_kernels("kernel"):
        inst = kernel.instantiate(size)
        with_reuse = base.run(inst, "split_vec_gcc4cli", target).cycles
        without = noreuse.run(inst, "split_vec_gcc4cli", target).cycles
        rows.append((kernel.name, without / with_reuse))
    return {"rows": rows,
            "average": statistics.fmean(r[1] for r in rows)}


def ablation_dependence_hints(size: int | None = None):
    """§III-B.b's alternative dependence policy: version loops with
    loop-carried dependences on ``VF <= distance`` instead of refusing.
    Reports which kernels gain vectorized loops."""
    conservative = _runner()
    hinted = _runner(overrides={"dependence_hints": True})
    rows = []
    for kernel in all_kernels():
        inst = kernel.instantiate(size)
        rep_a = conservative.split_ir(inst).annotations["vect_report"]
        rep_b = hinted.split_ir(inst).annotations["vect_report"]
        vec_a = sum(v.startswith("vectorized") for v in rep_a.values())
        vec_b = sum(v.startswith("vectorized") for v in rep_b.values())
        if vec_a != vec_b:
            rows.append((kernel.name, vec_a, vec_b))
    return {"rows": rows}


def compile_time_stats(targets=("sse", "altivec"), size: int | None = None,
                       repeats: int = 3):
    """§V-A.c: bytecode size increase under vectorization and the
    (proportional) JIT compile-time increase; plus absolute compile times.

    The paper reports ~5x size, 4.85x/5.37x compile time on x86/PowerPC,
    and notes compile time is proportional to bytecode size.
    """
    import time

    from ..jit import MonoJIT

    runner = _runner()
    size_ratios = []
    rows = []
    time_ratio_by_target = {}
    for target_name in targets:
        target = get_target(target_name)
        time_ratios = []
        for kernel in all_kernels():
            inst = kernel.instantiate(size)
            scalar_bytes, vec_bytes = runner.bytecode_sizes(inst)
            scalar_ir = runner.scalar_ir(inst)
            vec_ir = runner.split_ir(inst)
            t_scalar = min(
                _time_compile(MonoJIT(), scalar_ir, target)
                for _ in range(repeats)
            )
            t_vec = min(
                _time_compile(MonoJIT(), vec_ir, target)
                for _ in range(repeats)
            )
            if target_name == targets[0]:
                size_ratios.append(vec_bytes / scalar_bytes)
                rows.append(
                    (kernel.name, scalar_bytes, vec_bytes,
                     vec_bytes / scalar_bytes)
                )
            time_ratios.append(t_vec / t_scalar)
        time_ratio_by_target[target_name] = statistics.fmean(time_ratios)
    return {
        "rows": rows,
        "avg_size_ratio": statistics.fmean(size_ratios),
        "avg_compile_time_ratio": time_ratio_by_target,
    }


def _time_compile(jit, ir, target) -> float:
    import time

    start = time.perf_counter()
    jit.compile(ir, target)
    return time.perf_counter() - start


def scalarization_overhead(size: int | None = None,
                           runner: FlowRunner | None = None):
    """§III-C.d / §V-B: on a target without SIMD, executing the *vectorized*
    bytecode must cost no more than the scalar bytecode (the loop_bound
    collapse).  Returns per-kernel overhead ratios (≈1.0 is the goal)."""
    runner = runner or _runner()
    rows = []
    for kernel in all_kernels():
        inst = kernel.instantiate(size)
        vec = runner.run(inst, "split_vec_gcc4cli", "scalar").cycles
        scal = runner.run(inst, "split_scalar_gcc4cli", "scalar").cycles
        rows.append((kernel.name, vec / scal))
    return {"rows": rows,
            "average": statistics.fmean(r[1] for r in rows)}
