"""The compilation flows of the paper's Figure 4.

Letters follow the figure as used in the evaluation ratios:

* **A** — scalar bytecode executed by the Mono-like JIT;
* **C** — vectorized bytecode executed by the Mono-like JIT;
* **D** — vectorized bytecode compiled by the gcc4cli-like online compiler;
* **E** — native scalar compilation;
* **F** — native (monolithic) vectorized compilation.

(The scalar-bytecode-through-gcc4cli flow is also provided for the
low-scalar-overhead claim.)  Each flow compiles a kernel instance, executes
it on the cycle-cost VM, checks the results against the numpy reference,
and reports cycles plus compile-time/bytecode statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..api import execute_phase, resolve_engine
from ..machine.registry import DEFAULT_ENGINE
from ..bytecode import decode_function, encode_function
from ..errors import ReproError
from ..frontend import compile_source
from ..ir import Function
from ..jit import CompiledKernel, MonoJIT, NativeBackend, OptimizingJIT
from ..kernels import Kernel, KernelInstance, get_kernel
from ..machine import ArrayBuffer
from ..targets import Target, get_target
from ..vectorizer import native_config, split_config, vectorize_function

__all__ = ["FlowResult", "FlowRunner", "FLOWS"]

#: flow name -> (offline form, online compiler class)
FLOWS = {
    "split_scalar_mono": ("scalar", MonoJIT),
    "split_vec_mono": ("split", MonoJIT),
    "split_scalar_gcc4cli": ("scalar", OptimizingJIT),
    "split_vec_gcc4cli": ("split", OptimizingJIT),
    "native_scalar": ("scalar", NativeBackend),
    "native_vec": ("native", NativeBackend),
}


@dataclass
class FlowResult:
    """One kernel execution under one flow."""

    kernel: str
    flow: str
    target: str
    cycles: float
    value: object
    compile_seconds: float
    bytecode_bytes: int
    checked: bool
    stats: dict = field(default_factory=dict)


class CheckError(ReproError, AssertionError):
    """A flow produced results that disagree with the numpy reference.

    Also an :class:`AssertionError` for backward compatibility with tests
    that assert on the check failure directly.
    """


class FlowRunner:
    """Compiles and runs kernels through the Figure 4 flows, with caching.

    ``base_misalign`` controls the simulated base alignment of every array
    (0 = the JIT/native runtime aligns allocations, the default story).
    ``vectorizer_overrides`` feed the ablation experiments (e.g.
    ``enable_alignment_opts=False`` for §V-A.b).

    ``engine`` selects the execution engine: ``"threaded"`` (default) runs
    pre-decoded closure code (:mod:`repro.machine.threaded`), ``"reference"``
    runs the decode-per-instruction reference interpreter.  The two are
    differential-tested to be bit-identical (cycles, values, op counts), so
    every figure/table is engine-independent.

    Every :meth:`run` is instrumented as the canonical span taxonomy of
    ``docs/observability.md``: one ``flow`` root containing exactly the
    five phase spans (``frontend`` / ``vectorize`` / ``encode`` / ``jit``
    / ``vm``), with cache hits and skipped stages recorded as span
    attributes rather than missing spans.  When :mod:`repro.obs` is
    disabled the instrumentation is a handful of no-op calls.
    """

    def __init__(
        self,
        *,
        base_misalign: int = 0,
        check: bool = True,
        vectorizer_overrides: dict | None = None,
        use_bytecode_roundtrip: bool = True,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.base_misalign = base_misalign
        self.check = check
        self.vectorizer_overrides = dict(vectorizer_overrides or {})
        self.use_bytecode_roundtrip = use_bytecode_roundtrip
        self.engine = resolve_engine(engine)
        self._scalar_cache: dict = {}
        self._vec_cache: dict = {}
        self._split_cache: dict = {}
        self._native_cache: dict = {}
        self._compiled_cache: dict = {}
        self._sizes_cache: dict = {}

    def config(self) -> dict:
        """Constructor kwargs reproducing this runner (minus its caches);
        used to rebuild equivalent runners inside worker processes."""
        return {
            "base_misalign": self.base_misalign,
            "check": self.check,
            "vectorizer_overrides": dict(self.vectorizer_overrides),
            "use_bytecode_roundtrip": self.use_bytecode_roundtrip,
            "engine": self.engine,
        }

    # -- offline stage --------------------------------------------------------

    def scalar_ir(self, instance: KernelInstance) -> Function:
        key = (instance.name, instance.size)
        if key not in self._scalar_cache:
            module = compile_source(instance.source, instance.name)
            self._scalar_cache[key] = module[instance.entry]
        return self._scalar_cache[key]

    def vectorized_ir(self, instance: KernelInstance) -> Function:
        """The split-form IR straight out of the offline vectorizer
        (before the bytecode round-trip)."""
        key = (instance.name, instance.size)
        if key not in self._vec_cache:
            cfg = split_config(**self.vectorizer_overrides)
            self._vec_cache[key] = vectorize_function(
                self.scalar_ir(instance), cfg
            )
        return self._vec_cache[key]

    def split_ir(self, instance: KernelInstance) -> Function:
        key = (instance.name, instance.size)
        if key not in self._split_cache:
            vec = self.vectorized_ir(instance)
            if self.use_bytecode_roundtrip:
                vec = decode_function(encode_function(vec))
            self._split_cache[key] = vec
        return self._split_cache[key]

    def native_ir(self, instance: KernelInstance, target: Target) -> Function:
        key = (instance.name, instance.size, target.name)
        if key not in self._native_cache:
            overrides = dict(self.vectorizer_overrides)
            overrides.pop("assume_noalias", None)
            cfg = native_config(target, **overrides)
            self._native_cache[key] = vectorize_function(
                self.scalar_ir(instance), cfg
            )
        return self._native_cache[key]

    def bytecode_sizes(self, instance: KernelInstance) -> tuple[int, int]:
        """(scalar, vectorized) encoded byte sizes for this kernel."""
        key = (instance.name, instance.size)
        if key not in self._sizes_cache:
            self._sizes_cache[key] = (
                len(encode_function(self.scalar_ir(instance))),
                len(encode_function(self.split_ir(instance))),
            )
        return self._sizes_cache[key]

    # -- online stage ----------------------------------------------------------

    def compiled(
        self, instance: KernelInstance, flow: str, target: Target
    ) -> CompiledKernel:
        """The offline+online phases, spanned — see the class docstring.

        Each phase span is emitted even when its work is cached (attr
        ``cached=True``) or inapplicable to this flow (``skipped=True``),
        so one :meth:`run` always yields the same five-span shape and
        per-phase attribution stays truthful: a warm cache shows up as a
        near-zero-duration span, not a missing one.
        """
        form, jit_cls = FLOWS[flow]
        ir_key = (instance.name, instance.size)
        with obs.span("frontend", phase="frontend",
                      kernel=instance.name) as sp:
            sp.set(cached=ir_key in self._scalar_cache)
            scalar = self.scalar_ir(instance)
        with obs.span("vectorize", phase="vectorize", form=form) as sp:
            if form == "scalar":
                sp.set(skipped=True)
                ir = scalar
            elif form == "split":
                sp.set(cached=ir_key in self._vec_cache)
                ir = self.vectorized_ir(instance)
            else:
                sp.set(cached=(*ir_key, target.name) in self._native_cache,
                       mode="native", target=target.name)
                ir = self.native_ir(instance, target)
        with obs.span("encode", phase="encode") as sp:
            if form == "split" and self.use_bytecode_roundtrip:
                sp.set(cached=ir_key in self._split_cache)
                ir = self.split_ir(instance)
            else:
                sp.set(skipped=True)
        key = (instance.name, instance.size, flow, target.name)
        with obs.span("jit", phase="jit", target=target.name,
                      compiler=jit_cls.name) as sp:
            ck = self._compiled_cache.get(key)
            if ck is None:
                ck = self._compiled_cache[key] = jit_cls().compile(ir, target)
                sp.set(cached=False, compile_seconds=ck.compile_seconds)
            else:
                sp.set(cached=True)
            if ck.degraded:
                sp.set(degraded=True, events=[e.cause for e in ck.events])
        return ck

    # -- execution ---------------------------------------------------------

    def make_buffers(self, instance: KernelInstance) -> dict[str, ArrayBuffer]:
        fn = self.scalar_ir(instance)
        bufs: dict[str, ArrayBuffer] = {}
        for arr in fn.array_params:
            data = instance.arrays[arr.name]
            bufs[arr.name] = ArrayBuffer(
                arr.elem, int(np.asarray(data).size),
                base_misalign=self.base_misalign,
                data=np.asarray(data),
            )
        return bufs

    def run(
        self, instance: KernelInstance, flow: str, target: Target | str
    ) -> FlowResult:
        if isinstance(target, str):
            target = get_target(target)
        with obs.span("flow", phase="flow", kernel=instance.name,
                      flow=flow, target=target.name) as root:
            result = self._run(instance, flow, target)
            root.set(cycles=result.cycles, checked=result.checked)
        return result

    def _run(
        self, instance: KernelInstance, flow: str, target: Target
    ) -> FlowResult:
        ck = self.compiled(instance, flow, target)
        bufs = self.make_buffers(instance)
        result = execute_phase(
            ck, instance.scalar_args, bufs, engine=self.engine
        )
        checked = False
        if self.check:
            self.verify(instance, bufs, result.value)
            checked = True
        scalar_bytes, vec_bytes = self.bytecode_sizes(instance)
        form = FLOWS[flow][0]
        return FlowResult(
            kernel=instance.name,
            flow=flow,
            target=target.name,
            cycles=result.cycles,
            value=result.value,
            compile_seconds=ck.compile_seconds,
            bytecode_bytes=scalar_bytes if form == "scalar" else vec_bytes,
            checked=checked,
            stats=dict(ck.stats),
        )

    def verify(self, instance: KernelInstance, bufs, value) -> None:
        kernel = instance.kernel
        for name, expected in instance.expected_arrays.items():
            got = bufs[name].read_elements().reshape(np.asarray(expected).shape)
            expected = np.asarray(expected)
            if expected.dtype.kind == "f":
                if not np.allclose(got, expected, rtol=kernel.rtol, atol=1e-5):
                    worst = np.abs(got - expected).max()
                    raise CheckError(
                        f"{instance.name}: array {name} mismatch "
                        f"(max abs err {worst})"
                    )
            else:
                diff = np.abs(got.astype(np.int64) - expected.astype(np.int64))
                if diff.max() > kernel.int_atol:
                    raise CheckError(
                        f"{instance.name}: array {name} mismatch "
                        f"(max abs err {diff.max()})"
                    )
        if instance.expected_return is not None:
            exp = instance.expected_return
            if isinstance(exp, float):
                if not np.isclose(float(value), exp, rtol=kernel.rtol):
                    raise CheckError(
                        f"{instance.name}: return {value} != {exp}"
                    )
            else:
                if int(value) != int(exp):
                    raise CheckError(
                        f"{instance.name}: return {value} != {exp}"
                    )
