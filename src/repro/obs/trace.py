"""Hierarchical trace spans: the toolchain's attribution backbone.

The paper's split-compilation argument is quantitative — every offline
cost-model decision must be attributable to an online outcome — so the
spine records *where time goes* as a tree of spans covering the five
pipeline phases (``frontend``, ``vectorize``, ``encode``, ``jit``,
``vm``) plus service request spans.  Design constraints, in order:

1. **Near-zero cost when disabled.**  No recorder installed means
   :func:`span` returns a shared no-op context manager after one global
   ``None`` check — no Span object, no attribute dict copies, no clock
   reads.  The disabled-mode overhead on the threaded-VM throughput
   benchmark is measured by ``benchmarks/bench_obs_overhead.py`` and
   gated <5% in CI.
2. **Dependency-free.**  Standard library only (``contextvars``,
   ``threading``, ``json``, ``time``); importable from every layer
   without cycles.
3. **Thread-correct.**  Parenthood propagates through a
   :class:`contextvars.ContextVar`, so spans opened on a service worker
   thread nest under that thread's request span and never under another
   request's.  The recorder itself is shared and lock-protected.

Spans are exported as JSONL — one JSON object per line, schema in
``docs/observability.md`` — and rendered back into a phase-attributed
tree by ``repro trace`` (:mod:`repro.obs.render`).
"""

from __future__ import annotations

import contextvars
import io
import json
import threading
import time
from contextlib import contextmanager

__all__ = [
    "PHASES",
    "Span",
    "TraceRecorder",
    "span",
    "current_span",
    "install_tracer",
    "active_tracer",
    "uninstall_tracer",
]

#: The canonical phase taxonomy.  ``flow``/``pipeline``/``service`` are
#: roots; the five pipeline phases are the attribution leaves the
#: acceptance tests assert on.
PHASES = (
    "frontend",   # VaporC lex/parse/sema/lower (offline)
    "vectorize",  # the offline auto-vectorizer (split or native config)
    "encode",     # bytecode encode + decode round-trip (the wire format)
    "jit",        # online materialization + backend (per target)
    "vm",         # cycle-cost execution on an engine
)

_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: module-global active recorder; ``None`` = tracing disabled.
_TRACER: "TraceRecorder | None" = None


class Span:
    """One timed region.  Created only while a recorder is installed."""

    __slots__ = (
        "name", "phase", "span_id", "parent_id", "trace_id",
        "start_s", "dur_s", "attrs", "_t0",
    )

    def __init__(
        self,
        name: str,
        phase: str,
        span_id: int,
        parent_id: int | None,
        trace_id: int,
        start_s: float,
        attrs: dict,
    ) -> None:
        self.name = name
        self.phase = phase
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.start_s = start_s
        self.dur_s: float | None = None
        self.attrs = attrs
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach structured attributes (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "phase": self.phase,
            "start_s": round(self.start_s, 9),
            "dur_s": None if self.dur_s is None else round(self.dur_s, 9),
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, phase={self.phase!r}, "
                f"id={self.span_id}, parent={self.parent_id}, "
                f"dur={self.dur_s})")


class _NullSpan:
    """The shared disabled-mode context manager: enter/exit/set are no-ops
    and ``__enter__`` returns itself so call sites never branch on None."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager produced by :func:`span` while recording."""

    __slots__ = ("_rec", "_span", "_token")

    def __init__(self, rec: "TraceRecorder", name: str, phase: str,
                 attrs: dict) -> None:
        self._rec = rec
        self._span = rec._start(name, phase, attrs)
        self._token = None

    def __enter__(self) -> Span:
        s = self._span
        self._token = _CURRENT.set(s)
        s._t0 = time.perf_counter()
        return s

    def __exit__(self, exc_type, exc, tb) -> bool:
        s = self._span
        s.dur_s = time.perf_counter() - s._t0
        if exc is not None and "error" not in s.attrs:
            s.attrs["error"] = type(exc).__name__
        if self._token is not None:
            _CURRENT.reset(self._token)
        self._rec._finish(s)
        return False


class TraceRecorder:
    """Collects finished spans; thread-safe; exports JSONL.

    Span ids are allocated in start order; ``start_s`` is measured from
    the recorder's creation on the monotonic clock, so every exported
    number is non-negative and meaningful within one recording session.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._next_id = 1
        self.spans: list[Span] = []

    # -- span lifecycle (called from _SpanContext) ------------------------

    def _start(self, name: str, phase: str, attrs: dict) -> Span:
        parent = _CURRENT.get()
        with self._lock:
            sid = self._next_id
            self._next_id += 1
        if parent is not None:
            parent_id: int | None = parent.span_id
            trace_id = parent.trace_id
        else:
            parent_id = None
            trace_id = sid
        return Span(
            name, phase, sid, parent_id, trace_id,
            time.perf_counter() - self._epoch, attrs,
        )

    def _finish(self, s: Span) -> None:
        with self._lock:
            self.spans.append(s)

    # -- export -----------------------------------------------------------

    def snapshot(self) -> list[Span]:
        """Finished spans, ordered by start (stable under concurrency)."""
        with self._lock:
            spans = list(self.spans)
        return sorted(spans, key=lambda s: s.span_id)

    def to_jsonl(self) -> str:
        buf = io.StringIO()
        for s in self.snapshot():
            buf.write(json.dumps(s.to_dict(), sort_keys=True,
                                 default=_json_default))
            buf.write("\n")
        return buf.getvalue()

    def write_jsonl(self, path: str) -> None:
        """Export crash-safely (tempfile + fsync + rename)."""
        from ..service.cache import atomic_write

        atomic_write(path, self.to_jsonl().encode())


def _json_default(obj):
    """Spans may carry numpy scalars or arbitrary objects as attributes;
    the export degrades them to floats/strings rather than failing."""
    try:
        return float(obj)
    except (TypeError, ValueError):
        return str(obj)


# -- module-level API ---------------------------------------------------------


def span(name: str, phase: str = "", **attrs):
    """Open a span; the hot no-op when no recorder is installed.

    Usage::

        with obs.span("vm", phase="vm", target="sse") as sp:
            result = run(...)
            sp.set(cycles=result.cycles)
    """
    rec = _TRACER
    if rec is None:
        return NULL_SPAN
    return _SpanContext(rec, name, phase, attrs)


def current_span() -> Span | None:
    """The innermost open span on this thread/context (None if none)."""
    return _CURRENT.get()


def active_tracer() -> TraceRecorder | None:
    """The installed recorder, or None when tracing is disabled."""
    return _TRACER


def install_tracer(rec: TraceRecorder | None) -> TraceRecorder | None:
    """Install ``rec`` as the process-global recorder; returns the
    previous one (so callers can restore it)."""
    global _TRACER
    prev = _TRACER
    _TRACER = rec
    return prev


def uninstall_tracer() -> None:
    """Disable tracing (``span()`` reverts to the shared no-op)."""
    install_tracer(None)


@contextmanager
def _tracing(rec: TraceRecorder):
    prev = install_tracer(rec)
    try:
        yield rec
    finally:
        install_tracer(prev)
