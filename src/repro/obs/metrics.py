"""The metrics registry: counters, gauges, and fixed-bucket histograms.

One registry serves the whole toolchain; every layer feeds it through
the guarded module-level helpers (:func:`repro.obs.count`,
:func:`repro.obs.observe`, :func:`repro.obs.gauge`), which cost one
global ``None`` check when metrics are disabled.  The catalogue of
metric names is documented in ``docs/observability.md``; by convention
names are dotted ``layer.metric`` (``vm.cycles``, ``cache.hits``,
``harness.retries``, ...).

Histograms use *fixed* bucket boundaries (chosen at creation, default
decade/half-decade boundaries suited to seconds) so snapshots from
different processes/runs are mergeable by simple addition — the property
Prometheus-style histograms are built around.
"""

from __future__ import annotations

import json
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: default histogram boundaries (seconds-flavoured): 100µs .. 10s.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing sum (floats allowed: cycle totals)."""

    __slots__ = ("name", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self.value += n

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, cache bytes, breaker state)."""

    __slots__ = ("name", "value", "_lock")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        with self._lock:
            self.value = v

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1) -> None:
        self.inc(-n)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    is the +Inf overflow bucket, so ``len(counts) == len(bounds) + 1``.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max",
                 "_lock")
    kind = "histogram"

    def __init__(self, name: str, bounds=DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        v = float(v)
        i = 0
        for i, b in enumerate(self.bounds):  # noqa: B007 - small, fixed
            if v <= b:
                break
        else:
            i = len(self.bounds)
        with self._lock:
            self.counts[i] += 1
            self.count += 1
            self.sum += v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Name -> metric map with get-or-create accessors.

    Creating the same name with a different kind raises — a metric name
    means one thing everywhere (catalogue discipline).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = self._metrics[name] = cls(name, *args)
            elif not isinstance(m, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(m).__name__}, requested {cls.__name__}"
                )
            return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, bounds)

    def snapshot(self) -> dict:
        """Deterministic (name-sorted) dump of every metric."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: m.to_dict() for name, m in items}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def write_json(self, path: str) -> None:
        from ..service.cache import atomic_write

        atomic_write(path, self.to_json().encode())
