"""``repro.obs`` — the end-to-end observability spine.

One dependency-free subsystem gives every entry point (library facade,
:class:`~repro.harness.flows.FlowRunner`, the CLI, and
:class:`~repro.service.KernelService`) the same two instruments:

* **trace spans** (:mod:`.trace`) — a hierarchical, contextvar-propagated
  span tree over the five pipeline phases (``frontend``, ``vectorize``,
  ``encode``, ``jit``, ``vm``) plus ``service`` request spans, exported
  as JSONL and rendered by ``repro trace``;
* **metrics** (:mod:`.metrics`) — counters/gauges/histograms fed by the
  VM engines (cycles, instructions, traps), the JIT (loops vectorized /
  scalarized, degradations), the kernel cache (hit/miss/quarantine),
  admission/breakers, and the parallel harness (retries, timeouts,
  crashes).

Both are **disabled by default** and near-free when disabled: every call
site goes through a guarded helper that performs one global ``None``
check and returns (measured <5% on the threaded-VM throughput benchmark
by ``benchmarks/bench_obs_overhead.py``, gated in CI).

Typical use::

    from repro import obs

    with obs.recording() as ob:
        runner.run(inst, "split_vec_gcc4cli", "sse")
    ob.write_trace("t.jsonl")      # render with: repro trace t.jsonl
    ob.write_metrics("m.json")

See ``docs/observability.md`` for the span taxonomy, metric catalogue,
and the JSONL schema.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .render import (
    TraceFormatError,
    load_trace,
    phase_rollup,
    render_trace,
)
from .trace import (
    NULL_SPAN,
    PHASES,
    Span,
    TraceRecorder,
    active_tracer,
    current_span,
    install_tracer,
    span,
    uninstall_tracer,
)

__all__ = [
    "PHASES",
    "Span",
    "TraceRecorder",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Observation",
    "span",
    "current_span",
    "count",
    "observe",
    "gauge",
    "metrics",
    "enabled",
    "recording",
    "install",
    "uninstall",
    "active_tracer",
    "TraceFormatError",
    "load_trace",
    "render_trace",
    "phase_rollup",
]

from . import trace as _trace_mod

#: module-global active registry; ``None`` = metrics disabled.
_METRICS: MetricsRegistry | None = None


def metrics() -> MetricsRegistry | None:
    """The active registry, or None when metrics are disabled."""
    return _METRICS


def enabled() -> bool:
    """True when a trace recorder or metrics registry is installed."""
    return _trace_mod._TRACER is not None or _METRICS is not None


# -- guarded feed helpers (the one-None-check hot path) -----------------------


def count(name: str, n: float = 1) -> None:
    """Increment counter ``name`` if metrics are enabled; else no-op."""
    m = _METRICS
    if m is not None:
        m.counter(name).inc(n)


def observe(name: str, value: float, bounds=DEFAULT_BUCKETS) -> None:
    """Record ``value`` into histogram ``name`` if metrics are enabled."""
    m = _METRICS
    if m is not None:
        m.histogram(name, bounds).observe(value)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` if metrics are enabled; else no-op."""
    m = _METRICS
    if m is not None:
        m.gauge(name).set(value)


# -- session management -------------------------------------------------------


@dataclass
class Observation:
    """Handle to one recording session: the recorder + registry pair."""

    trace: TraceRecorder | None
    metrics: MetricsRegistry | None

    def spans(self) -> list[Span]:
        return self.trace.snapshot() if self.trace is not None else []

    def write_trace(self, path: str) -> None:
        if self.trace is None:
            raise ValueError("this observation was started without tracing")
        self.trace.write_jsonl(path)

    def write_metrics(self, path: str) -> None:
        if self.metrics is None:
            raise ValueError("this observation was started without metrics")
        self.metrics.write_json(path)

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot() if self.metrics is not None else {}


def install(
    trace: TraceRecorder | None = None,
    registry: MetricsRegistry | None = None,
) -> tuple[TraceRecorder | None, MetricsRegistry | None]:
    """Install a recorder/registry pair; returns the previous pair."""
    global _METRICS
    prev_tracer = install_tracer(trace)
    prev_metrics = _METRICS
    _METRICS = registry
    return prev_tracer, prev_metrics


def uninstall() -> None:
    """Disable tracing and metrics (back to the near-zero-cost mode)."""
    install(None, None)


@contextmanager
def recording(trace: bool = True, metrics: bool = True):
    """Enable observability for a region; restores the previous state.

    Yields an :class:`Observation` whose recorder/registry stay readable
    after the ``with`` block exits (export happens *after* the region so
    every span is finished).
    """
    rec = TraceRecorder() if trace else None
    reg = MetricsRegistry() if metrics else None
    prev = install(rec, reg)
    try:
        yield Observation(rec, reg)
    finally:
        install(*prev)
